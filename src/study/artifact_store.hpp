// Content-addressed on-disk artifact store — the solver cache's second
// tier.
//
// The in-memory SolverCache shares compiled solvers within one process;
// this store persists their compiled state (core/compiled_artifact.hpp,
// serialized by io/artifact_codec) so the NEXT process starts warm:
// repeated CI studies, every shard of a `--shard k/N` run, and re-runs
// after a crash all skip the schema compilation entirely. Because compile
// and import are deterministic and the codec is bit-exact, a warm run's
// report is byte-for-byte the cold run's report.
//
// Layout: one file per cache key under the store root,
//
//   <root>/<model-hash-hex>/<solver>-<config-hash-hex>.rrla
//
// where the directory is the model's 64-bit content hash (so all
// compilations of one model live together and invalidate together when
// the model changes — a changed model is a NEW address, never an
// overwritten one) and the file name carries the solver plus a hash of
// the exact SolverConfig. The full key is ALSO stored inside the artifact
// and re-verified on load (artifact_matches), so hash collisions and
// hand-copied files degrade to misses.
//
// Write discipline: store() serializes to a sibling temp file and
// atomically renames it over the final path — concurrent shards writing
// the same key land one complete file, never a torn one. Load failures of
// any kind (absent, truncated, corrupt, foreign endianness, stale
// identity) are counted and reported as misses; the store never throws on
// the read path and never lets a bad file produce a wrong answer.
//
// Retention: entries are content-addressed, so they never go stale — but
// they also never expire on their own, and a large model fleet's store
// grows without bound. gc() is the explicit sweep (`rrl_solve
// --cache-gc`): it removes leftover temp files (crashed writers) and
// unreadable/foreign entries, and with a byte cap (`--cache-cap`) evicts
// least-recently-USED entries — load() touches an entry's mtime on every
// verified hit, so recency tracks use, not creation — until the surviving
// entries fit. Eviction can only ever cost a future recompile; gc is safe
// to run while a fleet is using the store (a racing load of an evicted
// entry degrades to a miss by design).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/compiled_artifact.hpp"

namespace rrl {

/// Two-tier accounting of the disk side (monotone).
struct ArtifactStoreStats {
  std::size_t hits = 0;     ///< loads that returned a verified artifact
  std::size_t misses = 0;   ///< loads that found no usable file
  std::size_t invalid = 0;  ///< subset of misses: file present but
                            ///< corrupt/stale/foreign
  std::size_t stores = 0;   ///< artifacts written
};

/// Outcome of one gc() sweep.
struct ArtifactGcStats {
  std::size_t scanned = 0;          ///< entries (.rrla files) examined
  std::size_t removed_temp = 0;     ///< leftover writer temp files removed
  std::size_t removed_invalid = 0;  ///< unreadable entries removed
  std::size_t evicted = 0;          ///< valid entries evicted under the cap
  std::uint64_t bytes_before = 0;   ///< valid-entry bytes before eviction
  std::uint64_t bytes_after = 0;    ///< valid-entry bytes after eviction
};

class ArtifactStore {
 public:
  /// A store rooted at `root` (created on first write; a missing root
  /// just means every load misses).
  explicit ArtifactStore(std::string root);

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  /// The verified artifact for (model_hash, solver, config), or nullopt.
  /// Never throws: a file that is absent, unreadable, corrupt, of a
  /// foreign format/endianness, or whose embedded identity does not match
  /// the requested key exactly is a miss.
  [[nodiscard]] std::optional<CompiledArtifact> load(
      std::uint64_t model_hash, const std::string& solver,
      const SolverConfig& config) const;

  /// Persist `artifact` under its own identity (atomic rename-on-write).
  /// Returns false (and counts nothing) if the artifact has no payload;
  /// filesystem failures are swallowed — the store is a cache, losing a
  /// write costs a future recompile, not correctness.
  bool store(const CompiledArtifact& artifact) const;

  /// The file path a key resolves to (exposed for tests and tooling).
  [[nodiscard]] std::string entry_path(std::uint64_t model_hash,
                                       const std::string& solver,
                                       const SolverConfig& config) const;

  /// Sweep the store: remove leftover `.tmp*` files and entries that fail
  /// to parse (corrupt, truncated, foreign endianness). With cap_bytes >
  /// 0, additionally evict valid entries in least-recently-used order
  /// (oldest mtime first; load() touches entries on verified hits) until
  /// the remaining bytes are <= cap_bytes — an exactly-full store evicts
  /// nothing. A missing root is an empty sweep. Filesystem errors on
  /// individual files are skipped (the entry is simply retained);
  /// eviction order ties break by path so sweeps are deterministic.
  ArtifactGcStats gc(std::uint64_t cap_bytes = 0) const;

  [[nodiscard]] ArtifactStoreStats stats() const;

 private:
  std::string root_;
  mutable std::mutex mutex_;
  mutable ArtifactStoreStats stats_;
};

}  // namespace rrl
