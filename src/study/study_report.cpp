#include "study/study_report.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/contracts.hpp"

namespace rrl {
namespace {

constexpr const char* kMetaPrefix = "# rrl-study v1 scenarios=";
constexpr const char* kHeader =
    "scenario,point,model,solver,measure,epsilon,t,value,dtmc_steps,error";
constexpr const char* kTimingsSuffix = ",seconds,cache_tier";

std::string csv_escape(const std::string& field) {
  // Newlines are flattened to spaces first: the reader is line-oriented
  // (multi-line quoted fields are not supported), and the only free-text
  // fields are labels and error messages where a space is faithful enough.
  std::string flat = field;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  if (flat.find_first_of(",\"") == std::string::npos) return flat;
  std::string out = "\"";
  for (const char c : flat) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Split one CSV line into fields, honoring double-quote escaping.
std::vector<std::string> split_csv(const std::string& line, int line_no) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) {
    throw contract_error("report, line " + std::to_string(line_no) +
                         ": unterminated quoted field");
  }
  fields.push_back(std::move(field));
  return fields;
}

double parse_double(const std::string& field, int line_no) {
  if (field.empty()) return 0.0;
  std::istringstream ss(field);
  double v = 0.0;
  if (!(ss >> v) || !ss.eof()) {
    throw contract_error("report, line " + std::to_string(line_no) +
                         ": bad number '" + field + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& field, int line_no) {
  std::istringstream ss(field);
  std::uint64_t v = 0;
  if (!(ss >> v) || !ss.eof()) {
    throw contract_error("report, line " + std::to_string(line_no) +
                         ": bad index '" + field + "'");
  }
  return v;
}

}  // namespace

void write_report_header(std::ostream& out, std::uint64_t total_scenarios,
                         bool timings) {
  out << kMetaPrefix << total_scenarios << "\n" << kHeader;
  if (timings) out << kTimingsSuffix;
  out << "\n";
}

void write_report_row(std::ostream& out, const ReportRow& r, bool timings) {
  out << r.scenario << ',' << r.point << ',' << csv_escape(r.model) << ','
      << csv_escape(r.solver) << ',' << r.measure << ','
      << fmt_double(r.epsilon) << ',';
  if (r.failed()) {
    out << ",,," << csv_escape(r.error);
  } else {
    out << fmt_double(r.t) << ',' << fmt_double(r.value) << ','
        << r.dtmc_steps << ',';
  }
  if (timings) {
    out << ',' << fmt_double(r.seconds) << ',' << csv_escape(r.tier);
  }
  out << "\n";
}

void write_report_csv(std::ostream& out, std::uint64_t total_scenarios,
                      const std::vector<ReportRow>& rows, bool timings) {
  write_report_header(out, total_scenarios, timings);
  for (const ReportRow& r : rows) write_report_row(out, r, timings);
}

std::vector<ReportRow> read_report_csv(std::istream& in,
                                       std::uint64_t& total_scenarios,
                                       bool* timings) {
  std::string line;
  int line_no = 0;

  if (!std::getline(in, line)) {
    throw contract_error("report: empty input");
  }
  ++line_no;
  if (line.rfind(kMetaPrefix, 0) != 0) {
    throw contract_error("report: missing '# rrl-study v1' metadata line");
  }
  total_scenarios = parse_u64(line.substr(std::string(kMetaPrefix).size()),
                              line_no);

  if (!std::getline(in, line) ||
      (line != kHeader && line != std::string(kHeader) + kTimingsSuffix)) {
    throw contract_error("report: missing or unexpected header line");
  }
  const bool has_timings = line != kHeader;
  if (timings != nullptr) *timings = has_timings;
  ++line_no;

  const std::size_t want_fields = has_timings ? 12u : 10u;
  std::vector<ReportRow> rows;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> f = split_csv(line, line_no);
    if (f.size() != want_fields) {
      throw contract_error("report, line " + std::to_string(line_no) +
                           ": expected " + std::to_string(want_fields) +
                           " fields, got " + std::to_string(f.size()));
    }
    ReportRow row;
    row.scenario = parse_u64(f[0], line_no);
    row.point = parse_u64(f[1], line_no);
    row.model = f[2];
    row.solver = f[3];
    row.measure = f[4];
    row.epsilon = parse_double(f[5], line_no);
    row.t = parse_double(f[6], line_no);
    row.value = parse_double(f[7], line_no);
    row.dtmc_steps =
        f[8].empty() ? 0
                     : static_cast<std::int64_t>(parse_u64(f[8], line_no));
    row.error = f[9];
    if (has_timings) {
      row.seconds = parse_double(f[10], line_no);
      row.tier = f[11];
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ReportRow> merge_report_rows(
    const std::vector<std::vector<ReportRow>>& shards,
    const std::vector<std::uint64_t>& shard_totals,
    std::uint64_t& total_scenarios) {
  RRL_EXPECTS(!shards.empty());
  RRL_EXPECTS(shards.size() == shard_totals.size());
  total_scenarios = shard_totals.front();
  for (const std::uint64_t t : shard_totals) {
    if (t != total_scenarios) {
      throw contract_error(
          "merge: shard reports disagree on the study size (" +
          std::to_string(t) + " vs " + std::to_string(total_scenarios) +
          " scenarios) — were they produced by the same study?");
    }
  }

  std::vector<ReportRow> merged;
  for (const auto& shard : shards) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ReportRow& a, const ReportRow& b) {
                     return a.scenario != b.scenario ? a.scenario < b.scenario
                                                     : a.point < b.point;
                   });

  // Coverage: every scenario 0..total-1 present, no (scenario, point) twice.
  std::uint64_t next_expected = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const ReportRow& row = merged[i];
    if (row.scenario >= total_scenarios) {
      throw contract_error("merge: row for scenario " +
                           std::to_string(row.scenario) +
                           " outside the study (" +
                           std::to_string(total_scenarios) + " scenarios)");
    }
    if (i > 0 && merged[i - 1].scenario == row.scenario &&
        merged[i - 1].point == row.point) {
      throw contract_error(
          "merge: duplicate row for scenario " +
          std::to_string(row.scenario) + ", point " +
          std::to_string(row.point) + " — overlapping shards?");
    }
    if (row.scenario > next_expected) {
      throw contract_error("merge: no rows for scenario " +
                           std::to_string(next_expected) +
                           " — missing shard?");
    }
    if (row.scenario == next_expected) ++next_expected;
  }
  if (next_expected != total_scenarios) {
    throw contract_error("merge: no rows for scenario " +
                         std::to_string(next_expected) +
                         " — missing shard?");
  }
  return merged;
}

}  // namespace rrl
