#include "study/study_exec.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rrl {

ExecutedSlice execute_scenarios(const StudyPlan& plan,
                                const std::vector<std::size_t>& positions,
                                SolverCache& cache,
                                const ExecOptions& options, ThreadPool* pool,
                                std::vector<SolveWorkspace>* workspaces) {
  const trace::Span span("slice.execute", positions.size());
  static auto& slices = metrics::counter("rrl_exec_slices_total");
  static auto& scenarios_in =
      metrics::counter("rrl_exec_scenarios_total");
  slices.add(1);
  scenarios_in.add(positions.size());
  const SolverCacheStats cache_before = cache.stats();

  ExecutedSlice slice;
  slice.scenarios.reserve(positions.size());
  slice.tiers.reserve(positions.size());

  BatchRequest batch;
  batch.scenarios.reserve(positions.size());
  for (const std::size_t p : positions) {
    RRL_EXPECTS(p < plan.scenarios.size());
    const PlannedScenario& planned = plan.scenarios[p];
    slice.scenarios.push_back(planned.meta);

    SweepScenario scenario;
    scenario.model = planned.meta.model;
    scenario.solver = planned.meta.solver;
    scenario.config = planned.config;
    scenario.request = planned.request;
    CacheTier tier = CacheTier::kNone;
    if (options.use_cache) {
      // Shared compiled solver. A construction failure (structural
      // precondition, e.g. rsd on an absorbing chain) caches nothing and
      // leaves shared_solver null: the fallback below reconstructs per
      // scenario inside the sweep, which records the same error in that
      // scenario's slot — per-scenario isolation identical to the
      // uncached path.
      try {
        scenario.shared_solver = cache.get_or_build(
            planned.model, planned.meta.solver, planned.config, &tier);
      } catch (const std::exception&) {
        tier = CacheTier::kNone;
      }
    }
    // The chain is always advertised (the engine's model-size scheduling
    // heuristic reads it); the data vectors are only copied when the
    // sweep must construct the solver itself.
    scenario.chain = &planned.model->file.chain;
    if (scenario.shared_solver == nullptr) {
      scenario.rewards = planned.model->file.rewards;
      scenario.initial = planned.model->file.initial;
    }
    slice.tiers.push_back(tier);
    batch.scenarios.push_back(std::move(scenario));
  }

  batch.jobs = options.jobs;
  if (pool != nullptr) {
    RRL_EXPECTS(workspaces != nullptr);
    slice.sweep = run_sweep(batch, *pool, *workspaces);
  } else {
    slice.sweep = run_sweep(batch);
  }
  slice.jobs = slice.sweep.jobs;

  const SolverCacheStats cache_after = cache.stats();
  slice.cache.hits = cache_after.hits - cache_before.hits;
  slice.cache.misses = cache_after.misses - cache_before.misses;
  slice.cache.disk_hits = cache_after.disk_hits - cache_before.disk_hits;
  slice.cache.disk_misses =
      cache_after.disk_misses - cache_before.disk_misses;
  slice.cache.disk_stores =
      cache_after.disk_stores - cache_before.disk_stores;
  slice.cache.fetch_hits = cache_after.fetch_hits - cache_before.fetch_hits;
  slice.cache.fetch_misses =
      cache_after.fetch_misses - cache_before.fetch_misses;

  // The plan (and the cache entries) pin the models the sweep borrowed
  // chains from; both outlive the returned slice in every caller.
  return slice;
}

ExecutedSlice execute_unit(const StudyPlan& plan, const WorkUnit& unit,
                           SolverCache& cache, const ExecOptions& options,
                           ThreadPool* pool,
                           std::vector<SolveWorkspace>* workspaces) {
  RRL_EXPECTS(unit.count > 0 &&
              unit.first + unit.count <= plan.scenarios.size());
  const trace::Span span("unit.execute", unit.id);
  static auto& units = metrics::counter("rrl_exec_units_total");
  units.add(1);
  std::vector<std::size_t> positions(unit.count);
  for (std::size_t i = 0; i < unit.count; ++i) positions[i] = unit.first + i;
  return execute_scenarios(plan, positions, cache, options, pool,
                           workspaces);
}

std::vector<ReportRow> report_rows(
    const std::vector<StudyScenario>& scenarios, const SweepReport& sweep,
    const std::vector<CacheTier>& tiers,
    const std::vector<std::vector<double>>& grids) {
  std::vector<ReportRow> out;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const StudyScenario& scenario = scenarios[s];
    const ScenarioResult& result = sweep.results[s];
    ReportRow base;
    base.scenario = scenario.index;
    base.model = scenario.model;
    base.solver = scenario.solver;
    base.measure = measure_name(scenario.measure);
    base.epsilon = scenario.epsilon;
    base.seconds = result.seconds;
    base.tier =
        cache_tier_name(s < tiers.size() ? tiers[s] : CacheTier::kNone);
    if (!result.ok()) {
      base.error = result.error;
      out.push_back(std::move(base));
      continue;
    }
    const std::vector<double>& times = grids[scenario.grid];
    for (std::size_t p = 0; p < result.report.points.size(); ++p) {
      ReportRow row = base;
      row.point = p;
      const TransientValue& point = result.report.points[p];
      row.t = times[p];
      row.value = point.value;
      row.dtmc_steps = point.stats.dtmc_steps;
      out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace rrl
