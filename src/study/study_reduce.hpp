// Incremental study reduction — the last stage of the plan / dispatch /
// execute / reduce pipeline.
//
// Work units finish in arbitrary order (that is the point of dynamic
// dispatch), but the canonical report is ordered by global scenario index.
// Because the planner's units are CONTIGUOUS scenario ranges, order
// restoration does not require buffering the whole study: the reducer
// holds only the units that finished ahead of the in-order frontier and
// flushes every maximal contiguous prefix the moment it completes — rows
// stream into the output as results arrive, and the finished file is
// byte-for-byte what write_report_csv would have produced from the fully
// sorted row list (both go through the same header/row writers).
//
// Validation mirrors merge_report_rows, shifted to unit granularity so it
// can run online: each added unit's rows must stay inside the unit's
// declared range, be sorted by (scenario, point) without duplicates, and
// cover every scenario of the range (a failed scenario contributes its
// error row); overlapping or duplicate units are rejected when added, and
// finish() rejects a study with ranges never delivered. A unit that was
// dispatched twice (worker death re-dispatch) must therefore be reported
// to the reducer only once — the dispatcher's job.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "study/study_report.hpp"

namespace rrl {

class StudyReducer {
 public:
  /// Writes the report prologue to `out` immediately; rows follow as
  /// units land. `timings` selects the extended column layout (excluded
  /// from byte-compare mode).
  StudyReducer(std::ostream& out, std::uint64_t total_scenarios,
               bool timings = false);

  /// Add one finished unit covering global scenarios
  /// [first_scenario, first_scenario + scenario_count) with its report
  /// rows in canonical order. Flushes every row that became contiguous
  /// with what is already written. Throws contract_error on overlap,
  /// out-of-range or unsorted rows, or a scenario of the range with no
  /// row.
  void add_unit(std::uint64_t first_scenario, std::uint64_t scenario_count,
                std::vector<ReportRow> rows);

  /// Declare the study complete: every scenario must have been flushed.
  /// Throws contract_error when ranges are missing (e.g. all workers died
  /// with units still queued).
  void finish();

  /// Scenarios flushed to the output so far (the in-order frontier).
  [[nodiscard]] std::uint64_t scenarios_flushed() const noexcept {
    return next_;
  }
  [[nodiscard]] std::uint64_t total_scenarios() const noexcept {
    return total_;
  }
  [[nodiscard]] std::size_t rows_written() const noexcept {
    return rows_written_;
  }
  /// FAILED scenarios seen so far (error rows) — the study's partial-
  /// failure signal, surfaced in the exit code by the CLI.
  [[nodiscard]] std::size_t failed_scenarios() const noexcept {
    return failed_;
  }

 private:
  void flush_ready();

  std::ostream& out_;
  std::uint64_t total_ = 0;
  bool timings_ = false;
  std::uint64_t next_ = 0;  ///< first scenario not yet written
  std::size_t rows_written_ = 0;
  std::size_t failed_ = 0;
  /// Units finished ahead of the frontier, keyed by first scenario.
  struct PendingUnit {
    std::uint64_t count = 0;
    std::vector<ReportRow> rows;
  };
  std::map<std::uint64_t, PendingUnit> pending_;
};

}  // namespace rrl
