// Work-stealing multi-process dispatch — the second stage of the plan /
// dispatch / execute / reduce pipeline, and the distributed face of the
// study subsystem.
//
// Static `--shard k/N` slicing is zero-coordination but fixed: one heavy
// model (a large RR schema compile) straggles its shard while the others
// sit idle, and every shard recompiles every model it touches. The
// dispatcher replaces the fixed slices with dynamic unit handout: a parent
// process (`rrl_solve --serve`) spawns N worker processes (`--worker`, the
// same binary) connected over stdio pipes, hands each an initial work unit
// (expensive units first — longest-processing-time order), and gives a
// worker its next unit the moment it returns one — workers that finish
// early keep pulling queued units off the straggler's plate, which is the
// work-stealing property that matters at this granularity. Units are the
// planner's (model, solver) groups, so every scenario of a unit shares one
// compiled solver and the batched V-solve survives the re-chunking.
//
// Fault model: a worker that dies mid-unit (crash, OOM kill, lost machine)
// is detected by pipe EOF; its in-flight unit is re-queued at the head and
// re-dispatched to a surviving worker. The reducer receives every unit
// exactly once, so the merged report stays byte-for-byte identical to the
// single-process run under any worker count, any completion order and any
// mid-run worker loss. Only when ALL workers are gone with work remaining
// does dispatch fail (contract_error) — partial results remain in the
// output stream.
//
// The handshake: each worker re-reads the study file and re-plans it, then
// sends a hello carrying its plan fingerprint; the parent refuses to hand
// work to a worker whose fingerprint disagrees (e.g. the study file
// changed between spawns, or the binaries' protocols differ). Unit ids
// therefore mean the same scenarios on both sides.
//
// Deployment note: point every worker at one shared --cache-dir (the
// content-addressed artifact store) and the fleet shares a warm tier —
// workers flush compiled artifacts after every unit, so even within one
// run a schema compiled by worker A warm-starts worker B's next unit on
// the same model. The same applies across machines over shared storage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "study/solver_cache.hpp"
#include "study/study_plan.hpp"
#include "study/study_reduce.hpp"

namespace rrl {

/// Parent-side knobs.
struct DispatchOptions {
  /// Worker processes to spawn (>= 1).
  int workers = 2;
  /// argv of a worker process (argv[0] = binary path; typically
  /// {rrl_solve, "--worker", "--study", <file>, ...}).
  std::vector<std::string> worker_command;
  /// Extra argv appended to worker i's command (test hooks, per-worker
  /// tuning); may be shorter than `workers`.
  std::vector<std::vector<std::string>> worker_extra_args;
};

/// Parent-side outcome accounting.
struct DispatchReport {
  int workers = 0;               ///< workers spawned
  std::size_t units = 0;         ///< units reduced (== plan.units.size())
  std::uint64_t scenarios = 0;   ///< scenarios reduced
  std::size_t failed_scenarios = 0;  ///< error rows among them
  std::size_t redispatched = 0;  ///< units re-queued after a worker loss
  std::size_t workers_lost = 0;  ///< workers that died mid-run
  double seconds = 0.0;          ///< wall-clock of the whole dispatch
  /// Sum of the workers' per-unit solve wall-clocks: the fleet's total
  /// compute. worker_seconds / (seconds * workers) is the fleet's
  /// parallel efficiency — low values mean spawn/handshake overhead or
  /// tail idling dominated.
  double worker_seconds = 0.0;
};

/// Spawn the worker fleet, hand out every unit of `plan` dynamically, and
/// stream finished units into `reducer` (finish() is called on success, so
/// the output is complete and validated when this returns). Throws
/// contract_error when no worker can be spawned, a worker's handshake
/// disagrees with `plan`, or every worker is lost with work remaining.
[[nodiscard]] DispatchReport dispatch_study(const StudyPlan& plan,
                                            const DispatchOptions& options,
                                            StudyReducer& reducer);

/// Worker-side knobs.
struct WorkerOptions {
  /// Threads per worker (the sweep engine's jobs; <= 0 = hardware).
  int jobs = 1;
  /// false = per-scenario fresh construction (equivalence testing).
  bool use_cache = true;
  /// TEST HOOK (--test-die-after): after executing this many units, the
  /// worker exits abnormally on its next assignment without replying —
  /// the dispatcher's death-recovery regression uses it to kill a worker
  /// deterministically mid-run. < 0 = never.
  int die_after_units = -1;
  /// TEST HOOK (--test-die-delay-ms): milliseconds to sleep before the
  /// die_after_units exit — long enough for the fleet's survivors to
  /// drain the queue and go idle, which is the death schedule the
  /// re-dispatch path must also cover.
  int die_delay_ms = 0;
};

/// The worker loop behind `rrl_solve --worker`: handshake on `out_fd`,
/// then execute every unit assigned on `in_fd` (through the given cache,
/// whose attached store — if any — is flushed after every unit so fleet
/// peers sharing the cache-dir start warm) until shutdown or EOF. Returns
/// a process exit code (0 = clean shutdown). The caller must keep fds 0/1
/// free of any other output — diagnostics go to stderr.
[[nodiscard]] int run_worker_loop(const StudyPlan& plan, SolverCache& cache,
                                  const WorkerOptions& options,
                                  int in_fd = 0, int out_fd = 1);

}  // namespace rrl
