// Work-stealing multi-process dispatch — the second stage of the plan /
// dispatch / execute / reduce pipeline, and the distributed face of the
// study subsystem.
//
// Static `--shard k/N` slicing is zero-coordination but fixed: one heavy
// model (a large RR schema compile) straggles its shard while the others
// sit idle, and every shard recompiles every model it touches. The
// dispatcher replaces the fixed slices with dynamic unit handout: a parent
// process (`rrl_solve --serve`) spawns N worker processes (`--worker`, the
// same binary) connected over stdio pipes, hands each an initial work unit
// (expensive units first — longest-processing-time order), and gives a
// worker its next unit the moment it returns one — workers that finish
// early keep pulling queued units off the straggler's plate, which is the
// work-stealing property that matters at this granularity. Units are the
// planner's (model, solver) groups, so every scenario of a unit shares one
// compiled solver and the batched V-solve survives the re-chunking.
//
// Transports: every peer — a fork/exec'd local child or a remote machine's
// `rrl_solve --connect host:port` process — is one FrameChannel
// (io/net_transport.hpp) in the same non-blocking poll loop. `--serve
// --listen <port>` arms a TCP listener; remotes may join at ANY point of
// the run (elastic fleet: a late joiner greets, is verified, and starts
// pulling queued units) and leave at any point (below). Local and remote
// workers interleave freely; with `--workers 0 --listen <port>` the fleet
// is remote-only.
//
// Fault model: a worker that dies mid-unit (crash, OOM kill, lost machine,
// dropped connection) is detected by EOF/write-error on its channel —
// and, for remotes, by heartbeat silence: a connected worker pings from a
// background thread even while its main thread solves, so a hung machine
// cannot hold a unit hostage (pipes need no pings — a local child's death
// is already an EOF). Either way the in-flight unit is re-queued at the
// head and re-dispatched to a surviving worker. The reducer receives every
// unit exactly once, so the merged report stays byte-for-byte identical to
// the single-process run under any fleet size, any join/leave schedule,
// any completion order. Only when ALL workers are gone with work remaining
// AND no listener is armed does dispatch fail (contract_error) — with a
// listener the parent waits for the next joiner instead.
//
// The handshake: each worker re-reads the study file and re-plans it, then
// sends a hello carrying its plan fingerprint; the parent refuses to hand
// work to a worker whose fingerprint disagrees (e.g. the study file
// changed between spawns, or the binaries' protocols differ). Unit ids
// therefore mean the same scenarios on both sides. A LOCAL mismatch is
// fatal (the parent spawned that worker — its own configuration is
// broken); a REMOTE mismatch only rejects that connection (counted in
// `remotes_rejected`) — one stray wrong binary must not kill the study.
//
// Artifact fetch: `--cache-dir` does not cross machines, so a remote
// worker that misses memory and (its own) disk asks the PARENT's store
// over the wire (artifact_request/artifact_data frames) before compiling
// cold — a warm parent turns a remote cold start into a network copy. A
// parent-side miss degrades to a local compile on the worker, counted,
// never an error.
//
// Deployment note: local workers pointed at one shared --cache-dir (the
// content-addressed artifact store) still share a warm tier directly —
// workers flush compiled artifacts after every unit, so even within one
// run a schema compiled by worker A warm-starts worker B's next unit on
// the same model.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "study/artifact_store.hpp"
#include "study/solver_cache.hpp"
#include "study/study_plan.hpp"
#include "study/study_reduce.hpp"

namespace rrl {

/// Parent-side knobs.
struct DispatchOptions {
  /// Local worker processes to spawn. Must be >= 1 unless a listener is
  /// armed (listen_fd >= 0), where 0 means "remote workers only".
  int workers = 2;
  /// argv of a local worker process (argv[0] = binary path; typically
  /// {rrl_solve, "--worker", "--study", <file>, ...}).
  std::vector<std::string> worker_command;
  /// Extra argv appended to worker i's command (test hooks, per-worker
  /// tuning); may be shorter than `workers`.
  std::vector<std::vector<std::string>> worker_extra_args;
  /// A listening TCP socket (tcp_listen().fd) accepting remote workers,
  /// or -1 for a local-only fleet. Caller-owned: dispatch_study polls and
  /// accepts on it but never closes it.
  int listen_fd = -1;
  /// A remote worker silent for longer than this (no result, no ping) is
  /// declared dead and its unit re-queued. <= 0 disables the sweep (EOF
  /// detection still applies). Local pipe workers are never subject to
  /// it. Must comfortably exceed the workers' --heartbeat-ms.
  int heartbeat_timeout_ms = 10000;
  /// The store artifact_request frames are served from (nullptr = every
  /// request answered "not found"; the worker compiles locally).
  /// Caller-owned; must outlive the dispatch.
  const ArtifactStore* artifact_store = nullptr;
  /// > 0: print a live progress line (units done/queued, scenarios/sec,
  /// per-worker busy fraction, cache tiers) to stderr about this often.
  /// Observability only — the reduced report is unaffected.
  int stats_interval_ms = 0;
};

/// Per-worker accounting aggregated from kResult frames (units, busy
/// seconds) and the latest kStatsReport snapshot (counters). A worker's
/// counters are ABSOLUTE values for its process, so fleet totals are the
/// sum of every worker's latest snapshot (see DispatchReport::
/// fleet_counters); `busy_seconds / DispatchReport::seconds` is the
/// worker's busy fraction over the run.
struct WorkerStats {
  std::string label;         ///< "local-N" or "remote-N"
  bool remote = false;
  bool lost = false;         ///< died or timed out mid-run
  std::size_t units = 0;     ///< units this worker completed
  std::uint64_t scenarios = 0;  ///< scenarios across those units
  double busy_seconds = 0.0;    ///< summed per-unit solve wall-clock
  /// Latest metrics snapshot the worker piggybacked on a result (empty
  /// until its first completed unit).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Parent-side outcome accounting.
struct DispatchReport {
  int workers = 0;               ///< local workers spawned
  std::size_t remote_workers = 0;  ///< remote joins that passed handshake
  std::size_t remotes_rejected = 0;  ///< remote joins refused at handshake
  std::size_t units = 0;         ///< units reduced (== plan.units.size())
  std::uint64_t scenarios = 0;   ///< scenarios reduced
  std::size_t failed_scenarios = 0;  ///< error rows among them
  std::size_t redispatched = 0;  ///< units re-queued after a worker loss
  std::size_t workers_lost = 0;  ///< workers that died mid-run
  std::size_t artifact_requests = 0;  ///< artifact fetches asked of us
  std::size_t artifact_hits = 0;      ///< ... served from our store
  double seconds = 0.0;          ///< wall-clock of the whole dispatch
  /// Sum of the workers' per-unit solve wall-clocks: the fleet's total
  /// compute. worker_seconds / (seconds * fleet size) is the fleet's
  /// parallel efficiency — low values mean spawn/handshake overhead or
  /// tail idling dominated.
  double worker_seconds = 0.0;
  /// One entry per worker that ever passed the handshake (locals first,
  /// remotes in join order). sum of .units over the entries == `units`.
  std::vector<WorkerStats> worker_stats;
  /// Fleet-wide counter totals: every worker's LATEST snapshot summed by
  /// name. Empty when no worker ever reported (e.g. an empty plan).
  std::vector<std::pair<std::string, std::uint64_t>> fleet_counters;
};

/// Spawn the local worker fleet (and accept remote joiners when
/// options.listen_fd is armed), hand out every unit of `plan` dynamically,
/// and stream finished units into `reducer` (finish() is called on
/// success, so the output is complete and validated when this returns).
/// Throws contract_error when no worker can be spawned, a LOCAL worker's
/// handshake disagrees with `plan`, or every worker is lost with work
/// remaining and no listener armed.
[[nodiscard]] DispatchReport dispatch_study(const StudyPlan& plan,
                                            const DispatchOptions& options,
                                            StudyReducer& reducer);

/// Worker-side knobs.
struct WorkerOptions {
  /// Threads per worker (the sweep engine's jobs; <= 0 = hardware).
  int jobs = 1;
  /// false = per-scenario fresh construction (equivalence testing).
  bool use_cache = true;
  /// Heartbeat interval: > 0 starts a background thread sending a ping
  /// frame this often, so the parent can tell "busy solving for minutes"
  /// from "hung" (remote workers; pipes leave it 0 — death is an EOF).
  int heartbeat_ms = 0;
  /// Pull artifacts the cache misses from the parent over the wire
  /// (remote workers; a local worker shares the parent's filesystem and
  /// uses --cache-dir directly).
  bool fetch_artifacts = false;
  /// TEST HOOK (--test-die-after): after executing this many units, the
  /// worker exits abnormally on its next assignment without replying —
  /// the dispatcher's death-recovery regression uses it to kill a worker
  /// deterministically mid-run. < 0 = never.
  int die_after_units = -1;
  /// TEST HOOK (--test-die-delay-ms): milliseconds to sleep before the
  /// die_after_units exit — long enough for the fleet's survivors to
  /// drain the queue and go idle, which is the death schedule the
  /// re-dispatch path must also cover.
  int die_delay_ms = 0;
  /// TEST HOOK (--test-deaf-after): close the read side of the wire just
  /// BEFORE returning the Nth result (so the parent's next assign write
  /// deterministically fails — EPIPE on a pipe — rather than racing into
  /// the pipe buffer), then hang without exiting: the
  /// observed-death-on-write path the SIGPIPE regression pins down.
  /// < 0 = never; use >= 1.
  int deaf_after_units = -1;
  /// TEST HOOK (--test-mute-after): on the assignment after this many
  /// executed units, accept the unit, then stop heartbeating and hang
  /// without exiting or closing anything — the unit is held hostage by a
  /// healthy socket, the schedule only the parent's heartbeat timeout
  /// can catch. < 0 = never.
  int mute_after_units = -1;
};

/// The worker loop behind `rrl_solve --worker` (stdio pipes to a parent
/// on this machine) and `rrl_solve --connect` (a TCP socket to a remote
/// parent; in_fd == out_fd): handshake on `out_fd`, then execute every
/// unit assigned on `in_fd` (through the given cache, whose attached
/// store — if any — is flushed after every unit so fleet peers sharing
/// the cache-dir start warm) until shutdown or EOF. With
/// options.fetch_artifacts the cache's last-chance fetcher is wired to an
/// artifact_request round trip on the same fds. Returns a process exit
/// code (0 = clean shutdown). The caller must keep the fds free of any
/// other output — diagnostics go to stderr.
[[nodiscard]] int run_worker_loop(const StudyPlan& plan, SolverCache& cache,
                                  const WorkerOptions& options,
                                  int in_fd = 0, int out_fd = 1);

}  // namespace rrl
