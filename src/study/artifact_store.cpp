#include "study/artifact_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "io/artifact_codec.hpp"
#include "support/fnv.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rrl {
namespace {

namespace fs = std::filesystem;

struct StoreCounters {
  metrics::Counter& loads = metrics::counter("rrl_artifact_loads_total");
  metrics::Counter& invalid = metrics::counter("rrl_artifact_invalid_total");
  metrics::Counter& stores = metrics::counter("rrl_artifact_stores_total");
};

StoreCounters& store_counters() {
  static StoreCounters c;
  return c;
}

/// FNV-1a over the exact bit patterns of every SolverConfig field — the
/// file-name half of the key (the full key is re-verified from the
/// artifact's embedded identity on load).
std::uint64_t hash_config(const SolverConfig& config) {
  std::uint64_t h = kFnv1aOffset;
  fnv1a_mix(h, &config.epsilon, sizeof(config.epsilon));
  fnv1a_mix(h, &config.rate_factor, sizeof(config.rate_factor));
  fnv1a_mix(h, &config.regenerative, sizeof(config.regenerative));
  fnv1a_mix(h, &config.step_cap, sizeof(config.step_cap));
  return h;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Solver names are registry identifiers; anything unexpected is escaped
/// so the file name stays path-safe.
std::string sanitized(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(safe ? c : '_');
  }
  return out;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

std::string ArtifactStore::entry_path(std::uint64_t model_hash,
                                      const std::string& solver,
                                      const SolverConfig& config) const {
  return (fs::path(root_) / hex64(model_hash) /
          (sanitized(solver) + "-" + hex64(hash_config(config)) + ".rrla"))
      .string();
}

std::optional<CompiledArtifact> ArtifactStore::load(
    std::uint64_t model_hash, const std::string& solver,
    const SolverConfig& config) const {
  const std::string path = entry_path(model_hash, solver, config);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    const trace::Span span("artifact.load");
    CompiledArtifact artifact = read_artifact_file(path);
    if (!artifact_matches(artifact, solver, model_hash, config)) {
      throw contract_error("artifact identity mismatch (stale entry)");
    }
    // Touch on use: gc()'s LRU eviction orders by mtime, so a verified
    // hit refreshes the entry's recency. Best effort — a read-only store
    // still serves hits, it just ages like nobody used it.
    std::error_code touch_ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), touch_ec);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    store_counters().loads.add(1);
    return artifact;
  } catch (const std::exception&) {
    // Corrupt, truncated, foreign or stale: a miss, never an error — the
    // caller recompiles and a later store() replaces the bad file.
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    ++stats_.invalid;
    store_counters().invalid.add(1);
    return std::nullopt;
  }
}

bool ArtifactStore::store(const CompiledArtifact& artifact) const {
  if (!artifact.has_payload()) return false;
  const std::string path =
      entry_path(artifact.model_hash, artifact.solver, artifact.config);
  const fs::path target(path);
  // Atomic publish: write a sibling temp file, then rename over the final
  // name. Writers racing on one key each get their OWN temp — the pid
  // separates processes (shards), the counter separates threads within
  // one — and the last rename wins with a complete file either way.
  static std::atomic<unsigned long> temp_serial{0};
  fs::path temp = target;
  temp += ".tmp" + std::to_string(static_cast<unsigned long>(::getpid())) +
          "-" + std::to_string(temp_serial.fetch_add(1));
  try {
    const trace::Span span("artifact.store");
    fs::create_directories(target.parent_path());
    write_artifact_file(temp.string(), artifact);
    fs::rename(temp, target);
  } catch (const std::exception&) {
    std::error_code ec;
    fs::remove(temp, ec);
    return false;  // cache write lost; correctness unaffected
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  store_counters().stores.add(1);
  return true;
}

ArtifactGcStats ArtifactStore::gc(std::uint64_t cap_bytes) const {
  ArtifactGcStats out;
  std::error_code ec;
  if (!fs::exists(root_, ec) || ec) return out;

  struct Entry {
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
    std::string path;
  };
  std::vector<Entry> entries;

  for (fs::recursive_directory_iterator
           it(root_, fs::directory_options::skip_permission_denied, ec),
       end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) {
      ec.clear();
      continue;
    }
    const fs::path& path = it->path();
    const std::string name = path.filename().string();
    if (name.find(".tmp") != std::string::npos) {
      // A leftover writer temp (crashed before its atomic rename): by
      // the write discipline nothing ever reads these, so removal is
      // always safe. Note a LIVE writer's temp could race this; losing
      // that write costs a recompile, never correctness (same contract
      // as store()).
      if (fs::remove(path, ec) && !ec) ++out.removed_temp;
      ec.clear();
      continue;
    }
    if (path.extension() != ".rrla") continue;
    ++out.scanned;
    try {
      (void)read_artifact_file(path.string());
    } catch (const std::exception&) {
      // Unreadable (corrupt, truncated, foreign): every load would count
      // it invalid and recompile anyway — reclaim the bytes.
      if (fs::remove(path, ec) && !ec) ++out.removed_invalid;
      ec.clear();
      continue;
    }
    Entry entry;
    entry.mtime = fs::last_write_time(path, ec);
    if (ec) {
      ec.clear();
      continue;
    }
    entry.bytes = static_cast<std::uint64_t>(fs::file_size(path, ec));
    if (ec) {
      ec.clear();
      continue;
    }
    entry.path = path.string();
    out.bytes_before += entry.bytes;
    entries.push_back(std::move(entry));
  }

  out.bytes_after = out.bytes_before;
  if (cap_bytes > 0 && out.bytes_before > cap_bytes) {
    // Least-recently-used first (oldest mtime; ties by path so repeated
    // sweeps of identical stores evict identically).
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const Entry& entry : entries) {
      if (out.bytes_after <= cap_bytes) break;
      if (fs::remove(entry.path, ec) && !ec) {
        out.bytes_after -= entry.bytes;
        ++out.evicted;
      }
      ec.clear();
    }
  }

  // Sweep now-empty model directories (best effort; a racing writer
  // recreates its directory via create_directories).
  for (fs::directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory(ec) && !ec && fs::is_empty(it->path(), ec) &&
        !ec) {
      fs::remove(it->path(), ec);
    }
    ec.clear();
  }
  return out;
}

ArtifactStoreStats ArtifactStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rrl
