#include "study/study_reduce.hpp"

#include <ostream>
#include <string>
#include <utility>

#include "support/contracts.hpp"

namespace rrl {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw contract_error("reduce: " + what);
}

}  // namespace

StudyReducer::StudyReducer(std::ostream& out, std::uint64_t total_scenarios,
                           bool timings)
    : out_(out), total_(total_scenarios), timings_(timings) {
  write_report_header(out_, total_, timings_);
}

void StudyReducer::add_unit(std::uint64_t first_scenario,
                            std::uint64_t scenario_count,
                            std::vector<ReportRow> rows) {
  if (scenario_count == 0) reject("empty unit");
  if (first_scenario + scenario_count > total_) {
    reject("unit [" + std::to_string(first_scenario) + ", " +
           std::to_string(first_scenario + scenario_count) +
           ") outside the study (" + std::to_string(total_) +
           " scenarios)");
  }
  if (first_scenario < next_ || pending_.count(first_scenario) != 0) {
    reject("unit for scenario " + std::to_string(first_scenario) +
           " delivered twice — double dispatch?");
  }
  // Range overlap with other pending units: the unit before must end at or
  // before first_scenario; the unit after must start at or after the end.
  const auto after = pending_.lower_bound(first_scenario);
  if (after != pending_.end() &&
      after->first < first_scenario + scenario_count) {
    reject("unit for scenario " + std::to_string(first_scenario) +
           " overlaps the unit for scenario " +
           std::to_string(after->first));
  }
  if (after != pending_.begin()) {
    const auto before = std::prev(after);
    if (before->first + before->second.count > first_scenario) {
      reject("unit for scenario " + std::to_string(first_scenario) +
             " overlaps the unit for scenario " +
             std::to_string(before->first));
    }
  }

  // Row validation, online: inside the range, sorted by (scenario, point)
  // without duplicates, every scenario of the range covered.
  std::uint64_t expected = first_scenario;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReportRow& row = rows[i];
    if (row.scenario < first_scenario ||
        row.scenario >= first_scenario + scenario_count) {
      reject("row for scenario " + std::to_string(row.scenario) +
             " outside its unit [" + std::to_string(first_scenario) + ", " +
             std::to_string(first_scenario + scenario_count) + ")");
    }
    if (i > 0) {
      const ReportRow& prev = rows[i - 1];
      if (row.scenario < prev.scenario ||
          (row.scenario == prev.scenario && row.point <= prev.point)) {
        reject("rows for scenario " + std::to_string(row.scenario) +
               " out of order or duplicated");
      }
    }
    if (row.scenario > expected) {
      reject("no rows for scenario " + std::to_string(expected));
    }
    if (row.scenario == expected) ++expected;
    if (row.failed() && row.point == 0) ++failed_;
  }
  if (expected != first_scenario + scenario_count) {
    reject("no rows for scenario " + std::to_string(expected));
  }

  pending_.emplace(first_scenario,
                   PendingUnit{scenario_count, std::move(rows)});
  flush_ready();
}

void StudyReducer::flush_ready() {
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == next_) {
    for (const ReportRow& row : it->second.rows) {
      write_report_row(out_, row, timings_);
      ++rows_written_;
    }
    next_ += it->second.count;
    it = pending_.erase(it);
  }
  out_.flush();
}

void StudyReducer::finish() {
  if (next_ != total_) {
    reject("no rows for scenario " + std::to_string(next_) +
           " — undelivered work units?");
  }
  RRL_EXPECTS(pending_.empty());
  out_.flush();
}

}  // namespace rrl
