// Mergeable study reports: the canonical row stream of a (possibly
// sharded) study run.
//
// Shard k of a study solves a deterministic slice of the expanded
// scenario list and emits its rows tagged with GLOBAL scenario indices;
// merging is then a pure order-restore: concatenate the shards' rows,
// sort by (scenario, point), verify exact coverage of 0..total-1, and
// write — byte-for-byte the file the unsharded run would have written,
// because every field of a row is deterministic (values are bit-identical
// across worker counts and batch compositions; wall-clock timings are
// deliberately excluded).
//
// CSV layout (header line, then one row per grid point, or one row per
// FAILED scenario with the error in the last field):
//
//   # rrl-study v1 scenarios=<total>
//   scenario,point,model,solver,measure,epsilon,t,value,dtmc_steps,error
//
// Fields containing commas/quotes/newlines are double-quote escaped
// (standard CSV); doubles are printed with %.17g so values round-trip
// exactly.
//
// Timings mode (--timings) appends two diagnostic columns, `seconds`
// (the scenario's solve wall-clock, repeated on each of its rows) and
// `cache_tier` (where the scenario's solver came from: mem | disk | cold |
// none), so stragglers and cold compiles are attributable per scenario.
// Both are non-deterministic or deployment-dependent, so timings reports
// are EXCLUDED from byte-compare mode: the byte-identity guarantees (shard
// merge == unsharded, serve == single-process, warm == cold) are stated
// for the canonical 10-column layout only. The reader accepts either
// layout and reports which one it saw.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrl {

/// One report row: a (scenario, grid point) value, or a scenario failure
/// (point == 0, empty value fields, non-empty error).
struct ReportRow {
  std::uint64_t scenario = 0;  ///< GLOBAL scenario index in the expansion
  std::uint64_t point = 0;     ///< grid point index within the scenario
  std::string model;
  std::string solver;
  std::string measure;  ///< "trr" | "mrr"
  double epsilon = 0.0;
  double t = 0.0;
  double value = 0.0;
  std::int64_t dtmc_steps = 0;
  std::string error;  ///< non-empty iff the scenario failed
  /// Diagnostic fields, written only in timings mode (see header comment).
  double seconds = 0.0;  ///< scenario solve wall-clock
  std::string tier;      ///< solver provenance ("mem"|"disk"|"cold"|"none")

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

/// Write the canonical report: metadata line, header, rows in the given
/// order (callers pass rows already in global order). `timings` appends
/// the diagnostic columns (never in byte-compared reports).
void write_report_csv(std::ostream& out, std::uint64_t total_scenarios,
                      const std::vector<ReportRow>& rows,
                      bool timings = false);

/// The report prologue (metadata line + column header) and a single row —
/// write_report_csv's own building blocks, exposed so the incremental
/// reducer (study_reduce.hpp) emits byte-for-byte the same stream while
/// flushing rows as units finish.
void write_report_header(std::ostream& out, std::uint64_t total_scenarios,
                         bool timings = false);
void write_report_row(std::ostream& out, const ReportRow& row,
                      bool timings = false);

/// Parse a report produced by write_report_csv (either column layout).
/// Returns the rows and sets `total_scenarios` from the metadata line;
/// `timings` (when non-null) reports whether the diagnostic columns were
/// present. Throws contract_error on malformed input.
[[nodiscard]] std::vector<ReportRow> read_report_csv(
    std::istream& in, std::uint64_t& total_scenarios,
    bool* timings = nullptr);

/// Merge shard reports: all inputs must agree on total_scenarios; rows are
/// sorted by (scenario, point) and validated — no duplicate (scenario,
/// point), every scenario index in [0, total) covered by at least one row.
/// Returns the merged rows (write_report_csv of these reproduces the
/// unsharded report byte-for-byte). Throws contract_error on overlap,
/// gaps, or metadata mismatch.
[[nodiscard]] std::vector<ReportRow> merge_report_rows(
    const std::vector<std::vector<ReportRow>>& shards,
    const std::vector<std::uint64_t>& shard_totals,
    std::uint64_t& total_scenarios);

}  // namespace rrl
