#include "study/study_format.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace rrl {
namespace {

[[noreturn]] void parse_fail(int line, const std::string& message) {
  throw contract_error("study file, line " + std::to_string(line) + ": " +
                       message);
}

// Resolve `path` against `base_dir` unless it is absolute.
std::string resolved(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

}  // namespace

StudySpec read_study(std::istream& in, const std::string& base_dir) {
  StudySpec spec;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    // Single-operand keywords reject trailing tokens so that list-style
    // input ("grid a:b:c d:e:f") fails loudly instead of silently
    // shrinking the expansion; use one line per grid.
    const auto reject_extras = [&] {
      std::string extra;
      if (line >> extra) {
        parse_fail(line_no, "'" + keyword + "' takes exactly one operand "
                                "(got '" + extra + "' after it)");
      }
    };

    if (keyword == "model") {
      std::string path;
      if (!(line >> path)) parse_fail(line_no, "'model' needs a path");
      reject_extras();
      spec.model_labels.push_back(path);
      spec.models.push_back(resolved(base_dir, path));
    } else if (keyword == "solvers") {
      std::string name;
      std::vector<std::string> names;
      while (line >> name) names.push_back(name);
      if (names.empty()) {
        parse_fail(line_no, "'solvers' needs 'all' or solver names");
      }
      if (names.size() == 1 && names.front() == "all") {
        spec.solvers.clear();  // resolved against the registry at run time
      } else {
        spec.solvers = std::move(names);
      }
    } else if (keyword == "measures") {
      std::vector<MeasureKind> measures;
      std::string token;
      while (line >> token) {
        if (token == "trr") {
          measures.push_back(MeasureKind::kTrr);
        } else if (token == "mrr") {
          measures.push_back(MeasureKind::kMrr);
        } else if (token == "both") {
          measures.push_back(MeasureKind::kTrr);
          measures.push_back(MeasureKind::kMrr);
        } else {
          parse_fail(line_no, "'measures' accepts trr, mrr or both (got '" +
                                  token + "')");
        }
      }
      if (measures.empty()) {
        parse_fail(line_no, "'measures' needs trr, mrr or both");
      }
      spec.measures = std::move(measures);
    } else if (keyword == "epsilons" || keyword == "epsilon") {
      std::vector<double> epsilons;
      double eps = 0.0;
      while (line >> eps) {
        if (!(eps > 0.0)) {
          parse_fail(line_no, "epsilons must be positive");
        }
        epsilons.push_back(eps);
      }
      if (!line.eof()) parse_fail(line_no, "malformed epsilon value");
      if (epsilons.empty()) {
        parse_fail(line_no, "'epsilons' needs at least one value");
      }
      spec.epsilons = std::move(epsilons);
    } else if (keyword == "grid") {
      std::string body;
      if (!(line >> body)) {
        parse_fail(line_no, "'grid' needs <lo>:<hi>:<count>");
      }
      double lo = 0.0, hi = 0.0, count = 0.0;
      char c1 = 0, c2 = 0;
      std::istringstream grid(body);
      if (!(grid >> lo >> c1 >> hi >> c2 >> count) || c1 != ':' ||
          c2 != ':' || !grid.eof() || lo <= 0.0 || hi < lo || count < 1.0 ||
          count > 100000.0 || count != std::floor(count)) {
        parse_fail(line_no,
                   "'grid' expects lo:hi:count with 0 < lo <= hi and an "
                   "integer 1 <= count <= 100000");
      }
      reject_extras();
      spec.grids.push_back(
          log_time_grid(lo, hi, static_cast<int>(count)));
    } else if (keyword == "times") {
      std::vector<double> ts;
      double t = 0.0;
      while (line >> t) {
        if (!(t > 0.0)) parse_fail(line_no, "times must be positive");
        ts.push_back(t);
      }
      if (!line.eof()) parse_fail(line_no, "malformed time value");
      if (ts.empty()) parse_fail(line_no, "'times' needs at least one value");
      spec.grids.push_back(std::move(ts));
    } else if (keyword == "regenerative") {
      std::string token;
      if (!(line >> token)) {
        parse_fail(line_no, "'regenerative' needs auto or a state index");
      }
      if (token == "auto") {
        spec.regenerative = -1;
      } else {
        std::istringstream idx(token);
        long s = -1;
        if (!(idx >> s) || !idx.eof() || s < 0) {
          parse_fail(line_no,
                     "'regenerative' needs auto or a non-negative index");
        }
        spec.regenerative = static_cast<index_t>(s);
      }
      reject_extras();
    } else if (keyword == "jobs") {
      long n = 0;
      if (!(line >> n) || n < 1) {
        parse_fail(line_no, "'jobs' needs a positive count");
      }
      reject_extras();
      spec.jobs = static_cast<int>(n);
    } else {
      parse_fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (spec.models.empty()) {
    throw contract_error("study file: no 'model' line");
  }
  if (spec.grids.empty()) {
    throw contract_error("study file: no 'grid' or 'times' line");
  }
  return spec;
}

StudySpec read_study_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw contract_error("cannot open study file: " + path);
  const auto slash = path.rfind('/');
  const std::string base_dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash);
  return read_study(in, base_dir);
}

}  // namespace rrl
