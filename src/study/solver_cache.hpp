// Model-keyed solver cache (the heart of the study subsystem).
//
// The regenerative methods pay a substantial one-time cost per model —
// regenerative-state selection, randomized-DTMC construction, and (per
// horizon, memoized inside RR/RRL) the schema — that the single-shot sweep
// engine rebuilt for every scenario. The cache shares ONE immutable
// compiled solver across all scenarios keyed to the same
// (model content hash, solver name, SolverConfig): solvers are safe to
// drive from concurrent workers as long as each worker brings its own
// SolveWorkspace, which the sweep engine guarantees, so sharing the
// instance is free — and because solver construction and solve_grid() are
// deterministic, batch results through cached solvers are bit-identical to
// per-scenario fresh-solver runs.
//
// Epsilon note: scenarios that differ only in their error target SHOULD
// share a solver — SolveRequest::epsilon overrides the constructed default
// in every method — so callers maximize sharing by constructing with one
// canonical config.epsilon (the study runner uses the study's tightest)
// and carrying the per-scenario epsilon in the request.
//
// Disk tier: attach_store() adds a second, cross-process tier
// (study/artifact_store.hpp). A memory miss then first consults the store
// — a verified artifact warm-starts the freshly constructed solver via
// import_compiled(), skipping the schema compilation — and
// flush_to_store() persists every entry's compiled state after a run, so
// the next process (a repeat study, the other shards of a --shard k/N
// run) starts warm. Warm-started solvers answer bit-identically to cold
// ones, so the tier is invisible in results.
//
// Each cache entry pins the StudyModel it was compiled from, so a cached
// solver's borrowed chain stays alive as long as the entry does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "study/artifact_store.hpp"
#include "study/model_repository.hpp"

namespace rrl {

/// Cache identity: model content + method + construction parameters
/// (every SolverConfig field participates).
struct SolverCacheKey {
  std::uint64_t model_hash = 0;
  std::string solver;
  double epsilon = 0.0;
  double rate_factor = 0.0;
  index_t regenerative = -1;
  std::int64_t step_cap = -1;

  [[nodiscard]] auto tie() const {
    return std::tie(model_hash, solver, epsilon, rate_factor, regenerative,
                    step_cap);
  }
  [[nodiscard]] bool operator<(const SolverCacheKey& o) const {
    return tie() < o.tie();
  }
};

/// Where a resolved solver came from — the provenance get_or_build reports
/// per lookup (and the study report's `cache_tier` column under
/// --timings, where stragglers caused by cold compiles become visible).
enum class CacheTier {
  kNone,      ///< not resolved through the cache (no-cache mode, or the
              ///< per-scenario fallback after a construction failure)
  kMemory,    ///< shared an already-compiled in-memory solver
  kDisk,      ///< memory miss warm-started from the disk artifact tier
  kFetched,   ///< memory+disk miss warm-started through the fetcher hook
              ///< (a remote worker pulling from the parent's store)
  kCompiled,  ///< memory miss compiled cold
};

/// Compact spelling for report rows:
/// "none" | "mem" | "disk" | "fetch" | "cold".
[[nodiscard]] constexpr const char* cache_tier_name(CacheTier tier) noexcept {
  switch (tier) {
    case CacheTier::kMemory:
      return "mem";
    case CacheTier::kDisk:
      return "disk";
    case CacheTier::kFetched:
      return "fetch";
    case CacheTier::kCompiled:
      return "cold";
    case CacheTier::kNone:
    default:
      return "none";
  }
}

/// Tiered hit/miss accounting (monotone). `misses` counts every memory
/// miss; `disk_hits` the subset warm-started from the disk tier,
/// `disk_misses` the subset that consulted the disk and came up empty
/// (both stay 0 without an attached store). `fetch_hits`/`fetch_misses`
/// are the same split for the fetcher hook — a remote worker's
/// parent-served artifact pulls — consulted only after a disk miss.
struct SolverCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t disk_hits = 0;
  std::size_t disk_misses = 0;
  std::size_t disk_stores = 0;
  std::size_t fetch_hits = 0;
  std::size_t fetch_misses = 0;
};

/// A last-chance artifact source consulted after memory and disk both
/// miss (remote workers wire this to an artifact_request round trip with
/// the parent). Returning nullopt means "not available, compile cold" —
/// a counted miss, never an error. Called under the cache lock, so a
/// fetcher must not re-enter the cache.
using ArtifactFetcher =
    std::function<std::optional<CompiledArtifact>(const SolverCacheKey&)>;

class SolverCache {
 public:
  /// The shared solver for (model, solver_name, config), built on first
  /// use. The config participates in the key exactly as given —
  /// regenerative = -1 (auto) is its own key and constructs through the
  /// registry's deterministic auto-selection, identically to the uncached
  /// path; callers meaning "the model file's hint" resolve that
  /// themselves first (see io/model_solver.hpp's resolved_config).
  /// Construction errors (unknown solver, structural precondition) are
  /// thrown to the caller and nothing is cached. Thread-safe; a miss
  /// builds under the lock (the study runner resolves scenarios serially
  /// before fanning out, so misses are never on a hot concurrent path).
  /// When `tier` is non-null it receives the lookup's provenance (memory
  /// share / disk warm-start / cold compile); untouched on throw.
  [[nodiscard]] std::shared_ptr<const TransientSolver> get_or_build(
      const std::shared_ptr<const StudyModel>& model,
      const std::string& solver_name, SolverConfig config,
      CacheTier* tier = nullptr);

  /// Attach the cross-process disk tier. `read` = false ("cold" mode)
  /// skips disk loads but keeps flush_to_store() writing, refreshing the
  /// store from a from-scratch compile. Call before the first
  /// get_or_build; the store must outlive the cache's use of it.
  void attach_store(std::shared_ptr<const ArtifactStore> store,
                    bool read = true);

  /// Install the last-chance artifact source (see ArtifactFetcher).
  /// Consulted on a memory+disk double miss, before the cold compile;
  /// a fetched artifact warm-starts construction exactly like a disk hit
  /// and is marked imported, so flush_to_store treats it as disk-current.
  /// Call before the first get_or_build.
  void set_fetcher(ArtifactFetcher fetcher);

  /// Export every entry's compiled state to the attached store (no-op
  /// without one). Called after a run so the artifacts include whatever
  /// schemas the sweep actually computed. Returns the number of artifacts
  /// written.
  std::size_t flush_to_store();

  [[nodiscard]] SolverCacheStats stats() const;

  /// Number of compiled solvers held.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const StudyModel> model;  ///< keeps the chain alive
    std::shared_ptr<const TransientSolver> solver;
    /// Disk-tier provenance: set when the entry was warm-started, with
    /// the (t, eps) schema keys the imported artifact carried (sorted).
    /// flush_to_store skips entries whose compiled state is still exactly
    /// what the disk already holds — a fully warm N-shard run then
    /// rewrites nothing.
    bool imported = false;
    std::vector<std::pair<double, double>> imported_keys;
  };

  mutable std::mutex mutex_;
  std::map<SolverCacheKey, Entry> entries_;
  SolverCacheStats stats_;
  std::shared_ptr<const ArtifactStore> store_;
  bool read_disk_ = true;
  ArtifactFetcher fetcher_;
};

}  // namespace rrl
