// Model-keyed solver cache (the heart of the study subsystem).
//
// The regenerative methods pay a substantial one-time cost per model —
// regenerative-state selection, randomized-DTMC construction, and (per
// horizon, memoized inside RR/RRL) the schema — that the single-shot sweep
// engine rebuilt for every scenario. The cache shares ONE immutable
// compiled solver across all scenarios keyed to the same
// (model content hash, solver name, SolverConfig): solvers are safe to
// drive from concurrent workers as long as each worker brings its own
// SolveWorkspace, which the sweep engine guarantees, so sharing the
// instance is free — and because solver construction and solve_grid() are
// deterministic, batch results through cached solvers are bit-identical to
// per-scenario fresh-solver runs.
//
// Epsilon note: scenarios that differ only in their error target SHOULD
// share a solver — SolveRequest::epsilon overrides the constructed default
// in every method — so callers maximize sharing by constructing with one
// canonical config.epsilon (the study runner uses the study's tightest)
// and carrying the per-scenario epsilon in the request.
//
// Each cache entry pins the StudyModel it was compiled from, so a cached
// solver's borrowed chain stays alive as long as the entry does.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/registry.hpp"
#include "study/model_repository.hpp"

namespace rrl {

/// Cache identity: model content + method + construction parameters
/// (every SolverConfig field participates).
struct SolverCacheKey {
  std::uint64_t model_hash = 0;
  std::string solver;
  double epsilon = 0.0;
  double rate_factor = 0.0;
  index_t regenerative = -1;
  std::int64_t step_cap = -1;

  [[nodiscard]] auto tie() const {
    return std::tie(model_hash, solver, epsilon, rate_factor, regenerative,
                    step_cap);
  }
  [[nodiscard]] bool operator<(const SolverCacheKey& o) const {
    return tie() < o.tie();
  }
};

/// Hit/miss accounting (monotone).
struct SolverCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

class SolverCache {
 public:
  /// The shared solver for (model, solver_name, config), built on first
  /// use. The config participates in the key exactly as given —
  /// regenerative = -1 (auto) is its own key and constructs through the
  /// registry's deterministic auto-selection, identically to the uncached
  /// path; callers meaning "the model file's hint" resolve that
  /// themselves first (see io/model_solver.hpp's resolved_config).
  /// Construction errors (unknown solver, structural precondition) are
  /// thrown to the caller and nothing is cached. Thread-safe; a miss
  /// builds under the lock (the study runner resolves scenarios serially
  /// before fanning out, so misses are never on a hot concurrent path).
  [[nodiscard]] std::shared_ptr<const TransientSolver> get_or_build(
      const std::shared_ptr<const StudyModel>& model,
      const std::string& solver_name, SolverConfig config);

  [[nodiscard]] SolverCacheStats stats() const;

  /// Number of compiled solvers held.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const StudyModel> model;  ///< keeps the chain alive
    std::shared_ptr<const TransientSolver> solver;
  };

  mutable std::mutex mutex_;
  std::map<SolverCacheKey, Entry> entries_;
  SolverCacheStats stats_;
};

}  // namespace rrl
