// Content-addressed model repository (the study subsystem's model store).
//
// A parametric study names the same model file in many scenarios — often
// the same file under several paths (shards started in different working
// directories, symlinked model libraries). The repository parses each
// model once, content-hashes it (chain structure + rates + rewards +
// initial distribution + regenerative hint, all by exact bit pattern), and
// interns it: two paths whose contents hash identically share one
// immutable StudyModel, and everything downstream — most importantly the
// solver cache, which keys compiled solvers by this hash — deduplicates
// for free.
//
// Lifetime: models are handed out as shared_ptr<const StudyModel>; the
// repository retains its own reference, so a model stays alive as long as
// either the repository or any scenario/cache entry uses it.
//
// Threading: all members are internally synchronized; load() may be called
// from concurrent workers (each path is parsed at most once per
// repository, barring a benign race that parses twice and interns once).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "io/model_format.hpp"

namespace rrl {

/// An interned model: the parsed file plus its identity.
struct StudyModel {
  std::string label;   ///< display label (the path as first given)
  ModelFile file;
  std::uint64_t hash = 0;  ///< content hash (see hash_model)
};

/// Order-sensitive 64-bit content hash (FNV-1a over the exact bit patterns
/// of the chain's CSR arrays, rewards, initial distribution and
/// regenerative hint). Equal models — however they were read or built —
/// hash equal; the reverse holds up to the usual 64-bit collision odds,
/// which is the standard content-address trade.
///
/// GENERATED models (non-empty spec_key) hash their canonical spec string
/// instead: expansion is deterministic, so the spec names the content
/// exactly, and interning a million-state model costs a few bytes of
/// hashing instead of a full CSR walk. Two spellings of the same spec
/// canonicalize identically (markov/generator.hpp) and therefore intern
/// to one entry; a generated model and a hand-written copy of its
/// expansion hash differently, which only costs a duplicate cache line,
/// never a wrong answer.
[[nodiscard]] std::uint64_t hash_model(const ModelFile& model);

class ModelRepository {
 public:
  /// The model at `path`, parsed at most once: repeated loads of the same
  /// path — or of a different path with identical contents — return the
  /// same interned instance. Throws (contract_error) on unreadable or
  /// malformed files.
  [[nodiscard]] std::shared_ptr<const StudyModel> load(
      const std::string& path);

  /// Intern an in-memory model under `label` (generators, tests, benches).
  /// Content-deduplicates exactly like load().
  [[nodiscard]] std::shared_ptr<const StudyModel> adopt(
      const std::string& label, ModelFile file);

  /// Number of DISTINCT models interned (by content).
  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] std::shared_ptr<const StudyModel> intern(
      const std::string& label, ModelFile file);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const StudyModel>> by_path_;
  std::map<std::uint64_t, std::shared_ptr<const StudyModel>> by_hash_;
};

}  // namespace rrl
