// The `.study` file format: a cartesian parameter sweep in ten lines.
//
// A study declares the axes of a batch — models x solvers x measures x
// epsilons x time grids — and expands into one scenario per combination,
// so a 4-model, 4-solver, 2-measure, 3-epsilon, 2-grid study is 192
// scenarios from six lines. Line-oriented, whitespace-separated, '#'
// comments, keywords in any order:
//
//   model <path>              # repeatable, >= 1; relative paths resolve
//                             # against the study file's directory
//   solvers all | <name>...   # default: every registered solver
//   measures trr | mrr | both # default: trr  (a list "trr mrr" works too)
//   epsilons <e1> <e2> ...    # default: 1e-12
//   grid <lo>:<hi>:<count>    # one log-spaced time grid; repeatable
//   times <t1> <t2> ...       # one explicit time grid; repeatable
//   regenerative auto | <i>   # default: each model file's hint, else auto
//   jobs <n>                  # default worker count (CLI --jobs overrides)
//
// At least one `model` and one `grid`/`times` line are required. The
// expansion order is fixed and documented (study_runner.hpp): model-major,
// then solver, measure, epsilon, grid — scenario indices are therefore
// stable across runs, which is what makes deterministic sharding and
// mergeable shard reports possible.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/transient_solver.hpp"

namespace rrl {

/// A parsed study: the axes, not yet expanded.
struct StudySpec {
  std::vector<std::string> models;  ///< paths, already base-dir resolved
  std::vector<std::string> model_labels;  ///< the paths as written
  std::vector<std::string> solvers;       ///< empty = all registered
  std::vector<MeasureKind> measures = {MeasureKind::kTrr};
  std::vector<double> epsilons = {1e-12};
  std::vector<std::vector<double>> grids;  ///< one entry per grid/times line
  /// Regenerative state override for every model: -2 = use each file's
  /// hint (the default), -1 = auto-select, >= 0 = this exact index.
  index_t regenerative = -2;
  int jobs = 1;

  /// Scenarios in the full expansion. An empty `solvers` defers to the
  /// registry, so the true count is only known at run time — pass the
  /// resolved solver count (run_study does this internally).
  [[nodiscard]] std::size_t scenario_count(std::size_t solver_count) const {
    return models.size() * solver_count * measures.size() *
           epsilons.size() * grids.size();
  }
};

/// Sentinel: use each model file's regenerative hint.
inline constexpr index_t kRegenerativeFromModel = -2;

/// Parse a study from a stream. `base_dir` (may be empty) is prepended to
/// relative model paths. Throws contract_error with a line-numbered
/// message on malformed input; defaults are applied afterwards (solvers
/// left empty for run-time registry resolution). Validates that at least
/// one model and one grid are declared.
[[nodiscard]] StudySpec read_study(std::istream& in,
                                   const std::string& base_dir = "");

/// Parse a study file; relative model paths resolve against its directory.
[[nodiscard]] StudySpec read_study_file(const std::string& path);

}  // namespace rrl
