// Study planning: expand a StudySpec into an ordered StudyPlan of
// cost-annotated work units — the first stage of the plan / dispatch /
// execute / reduce pipeline.
//
// Expansion order (the contract that makes sharding, dispatching and
// merging work): scenario indices enumerate the cartesian product in fixed
// nested order —
//
//   for model in models:            # outermost
//     for solver in solvers:
//       for measure in measures:
//         for epsilon in epsilons:
//           for grid in grids:      # innermost
//
// — so index i is stable across runs, machines, shard counts and worker
// counts. The planner resolves everything the expansion needs up front
// (solver names against the registry, models through the repository, the
// canonical construction epsilon, each model's regenerative hint), so a
// typo fails the study, not one scenario per combination.
//
// Work units: the plan partitions the expansion into contiguous units, one
// per (model, solver) pair — every scenario of a unit shares ONE compiled
// solver through the SolverCache, and because the unit keeps the whole
// (measure x epsilon x grid) block together, the batched V-solve of shared
// RR solvers survives any re-chunking a dispatcher performs: a unit is the
// smallest schedulable grain that loses no sharing. Units carry a cost
// estimate (model size x scenario volume) so a dispatcher can schedule the
// expensive units first and a straggler model never idles the fleet.
//
// The fingerprint hashes the expansion's identity (sizes, unit boundaries,
// per-scenario solver/measure/epsilon and the grids' exact bit patterns).
// Two processes planning the same study — the dispatch parent and its
// workers — agree on the fingerprint iff they agree on every unit's
// meaning, which the serve handshake verifies before any work is handed
// out.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/transient_solver.hpp"
#include "study/model_repository.hpp"
#include "study/study_format.hpp"

namespace rrl {

/// Identity of one expanded scenario (reporting metadata).
struct StudyScenario {
  std::uint64_t index = 0;  ///< GLOBAL index in the full expansion
  std::string model;        ///< model label (path as written in the study)
  std::string solver;
  MeasureKind measure = MeasureKind::kTrr;
  double epsilon = 0.0;
  std::size_t grid = 0;  ///< index into StudyPlan::grids
};

/// One expanded scenario with everything needed to solve it: the interned
/// model, the canonical construction config (the study's tightest epsilon,
/// the resolved regenerative hint) and the per-scenario request.
struct PlannedScenario {
  StudyScenario meta;
  std::shared_ptr<const StudyModel> model;  ///< pins the chain
  SolverConfig config;
  SolveRequest request;
};

/// A contiguous run of scenarios sharing one compiled solver: all
/// (measure, epsilon, grid) combinations of one (model, solver) pair.
struct WorkUnit {
  std::uint32_t id = 0;     ///< ordinal in StudyPlan::units
  std::size_t first = 0;    ///< index into StudyPlan::scenarios AND the
                            ///< global index of the unit's first scenario
                            ///< (the plan holds the full expansion)
  std::size_t count = 0;    ///< scenarios in the unit (> 0)
  double cost = 0.0;        ///< scheduling estimate (see plan_unit_cost)
};

/// The planner's output: the full expansion plus its unit partition.
struct StudyPlan {
  std::vector<PlannedScenario> scenarios;  ///< full expansion, global order
  std::vector<WorkUnit> units;  ///< contiguous partition of `scenarios`
  std::vector<std::vector<double>> grids;  ///< the spec's grids (for rows)
  std::uint64_t total_scenarios = 0;
  /// Hash of the expansion's identity; equal fingerprints mean two
  /// processes agree on every unit's meaning (the serve handshake).
  std::uint64_t fingerprint = 0;
};

/// Relative cost estimate of solving `count` scenarios of `model` over
/// `points` total grid points: proportional to the model's stored entries
/// (every method's hot loop is the model-sized SpMV) times the scenario
/// volume. Only the ORDER of unit costs matters (longest-processing-time
/// dispatch); the scale is arbitrary.
[[nodiscard]] double plan_unit_cost(const StudyModel& model,
                                    std::size_t count, std::size_t points);

/// Expand, resolve and partition. Models are loaded through `repository`
/// (each distinct content parsed once) and outlive the plan via the
/// per-scenario shared_ptr. Throws contract_error for an unknown solver
/// name or an unloadable model.
[[nodiscard]] StudyPlan build_study_plan(const StudySpec& spec,
                                         ModelRepository& repository);

}  // namespace rrl
