// Study execution: solve a slice of a StudyPlan through the sweep engine —
// the third stage of the plan / dispatch / execute / reduce pipeline.
//
// A slice is any ascending selection of the plan's scenarios: one work
// unit (the dispatch worker loop), a round-robin shard, or the whole
// expansion (the single-process runner). However the slice was chunked,
// every scenario resolves its solver through the shared SolverCache, so
// scenarios keyed to the same (model, solver, config) drive ONE immutable
// compiled solver and shared-RR scenarios ride the batched V-solve —
// chunking changes scheduling, never the work or the values.
//
// A worker loop executing many slices back to back passes its own pool and
// workspace vector so thread and buffer warm-up survive across units; the
// one-shot callers let the engine build both per call. Either way the
// values are bit-identical (the engine's determinism contract).
#pragma once

#include <cstddef>
#include <vector>

#include "core/sweep_engine.hpp"
#include "study/solver_cache.hpp"
#include "study/study_plan.hpp"
#include "study/study_report.hpp"

namespace rrl {

/// Execution knobs of one slice.
struct ExecOptions {
  /// Worker threads INCLUDING the calling thread; <= 0 selects the
  /// hardware concurrency (only consulted when no pool is passed).
  int jobs = 1;
  /// false = per-scenario fresh solver construction (the pre-cache
  /// behavior; kept for equivalence testing and benchmarking).
  bool use_cache = true;
};

/// A solved slice: metadata + results + provenance, index-aligned.
struct ExecutedSlice {
  std::vector<StudyScenario> scenarios;  ///< the slice, ascending order
  SweepReport sweep;                     ///< results[i] <-> scenarios[i]
  std::vector<CacheTier> tiers;          ///< where solvers[i] came from
  SolverCacheStats cache;  ///< this slice's delta of the cache's counters
  int jobs = 1;
};

/// Solve the plan scenarios at `positions` (ascending indices into
/// plan.scenarios) as ONE sweep batch. Solver-construction failures (e.g.
/// rsd on an absorbing chain) fall back to per-scenario construction
/// inside the sweep, which records the same error in that scenario's slot
/// — per-scenario isolation identical to the uncached path. When `pool`
/// is non-null the sweep runs on it (with `workspaces`, which must then be
/// non-null too); otherwise a fresh pool of options.jobs workers is built.
[[nodiscard]] ExecutedSlice execute_scenarios(
    const StudyPlan& plan, const std::vector<std::size_t>& positions,
    SolverCache& cache, const ExecOptions& options,
    ThreadPool* pool = nullptr,
    std::vector<SolveWorkspace>* workspaces = nullptr);

/// Unit-level entry point: solve one work unit (the dispatch worker's
/// per-assignment call).
[[nodiscard]] ExecutedSlice execute_unit(
    const StudyPlan& plan, const WorkUnit& unit, SolverCache& cache,
    const ExecOptions& options, ThreadPool* pool = nullptr,
    std::vector<SolveWorkspace>* workspaces = nullptr);

/// Report rows of a solved slice in canonical order (one per grid point,
/// or one per failed scenario), including the diagnostic seconds /
/// cache-tier fields (written to CSV only under --timings).
[[nodiscard]] std::vector<ReportRow> report_rows(
    const std::vector<StudyScenario>& scenarios, const SweepReport& sweep,
    const std::vector<CacheTier>& tiers,
    const std::vector<std::vector<double>>& grids);

[[nodiscard]] inline std::vector<ReportRow> slice_rows(
    const ExecutedSlice& slice,
    const std::vector<std::vector<double>>& grids) {
  return report_rows(slice.scenarios, slice.sweep, slice.tiers, grids);
}

}  // namespace rrl
