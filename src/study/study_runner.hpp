// Single-process study runner: the thin composition of the pipeline's
// planner (study_plan.hpp) and executor (study_exec.hpp) that expands a
// StudySpec, optionally slices off one round-robin shard, and solves it as
// one batch. The multi-process face of the same pipeline is the dispatch
// orchestrator (study_dispatch.hpp); both produce byte-identical reports.
//
// Sharding is round-robin: shard k of N (1-based) owns every scenario with
// index % N == k-1. Round-robin (rather than contiguous blocks) spreads a
// study's expensive axis — usually one model or one solver — evenly across
// shards, and the report rows carry global indices so --merge restores the
// unsharded order exactly. (Static sharding remains the zero-coordination
// deployment: any machine can compute its slice alone. The dispatcher
// exists for the workloads where static slicing straggles.)
//
// Solver sharing: scenarios are resolved through the SolverCache serially
// before the sweep, so all scenarios keyed to the same (model, solver,
// config) drive ONE immutable solver (per-worker SolveWorkspaces carry the
// mutable state). The per-scenario epsilon travels in the SolveRequest —
// every method honors the request epsilon over its constructed default —
// so the cache is keyed with one canonical construction epsilon (the
// study's tightest) and epsilon variation costs no extra solvers. Results
// are bit-identical to per-scenario fresh construction (use_cache=false),
// which the tests assert.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep_engine.hpp"
#include "study/model_repository.hpp"
#include "study/solver_cache.hpp"
#include "study/study_exec.hpp"
#include "study/study_format.hpp"
#include "study/study_plan.hpp"
#include "study/study_report.hpp"

namespace rrl {

/// One shard of N (1-based index in [1, count]); {1, 1} = the whole study.
struct ShardSpec {
  int index = 1;
  int count = 1;

  [[nodiscard]] bool valid() const noexcept {
    return count >= 1 && index >= 1 && index <= count;
  }
};

/// Execution knobs beyond the spec.
struct StudyOptions {
  ShardSpec shard;
  /// Worker threads; <= 0 uses the spec's `jobs` line.
  int jobs = 0;
  /// false = per-scenario fresh solver construction (the pre-cache
  /// behavior; kept for equivalence testing and benchmarking).
  bool use_cache = true;
};

/// A solved shard: metadata + results, index-aligned.
struct StudyRun {
  std::vector<StudyScenario> scenarios;  ///< this shard, global order
  SweepReport sweep;                     ///< results[i] <-> scenarios[i]
  std::vector<CacheTier> tiers;  ///< solver provenance, scenario-aligned
  std::vector<std::vector<double>> grids;  ///< the spec's grids (for rows)
  std::uint64_t total_scenarios = 0;     ///< full expansion size
  ShardSpec shard;
  SolverCacheStats cache;  ///< this run's delta of the cache's counters
  int jobs = 1;

  /// Report rows in canonical order (one per grid point, or one per
  /// failed scenario).
  [[nodiscard]] std::vector<ReportRow> rows() const;

  /// Scenarios of this run that failed (partial results remain valid; the
  /// CLI surfaces this as a nonzero exit code).
  [[nodiscard]] std::size_t failed() const noexcept {
    return sweep.failed();
  }
};

/// Plan, slice, resolve solvers through the cache, and solve. Models are
/// loaded through `repository` (each distinct content parsed once) and
/// solvers through `cache`; both outlive the returned run and may be
/// shared across runs — a second study over the same models starts warm.
/// Throws contract_error for an invalid shard, an unknown solver name, or
/// an unloadable model; per-scenario solver failures (e.g. rsd on an
/// absorbing chain) are recorded in the results instead.
[[nodiscard]] StudyRun run_study(const StudySpec& spec,
                                 ModelRepository& repository,
                                 SolverCache& cache,
                                 const StudyOptions& options = {});

}  // namespace rrl
