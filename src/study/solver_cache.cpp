#include "study/solver_cache.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/compiled_artifact.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rrl {
namespace {

// Unified cache-tier namespace: every tier of the two-tier + fetcher
// stack reports under rrl_cache_* so the Prometheus view (and the fleet
// merge) reads as one funnel instead of three ad-hoc stat structs.
struct CacheCounters {
  metrics::Counter& mem_hits = metrics::counter("rrl_cache_memory_hits_total");
  metrics::Counter& mem_misses =
      metrics::counter("rrl_cache_memory_misses_total");
  metrics::Counter& disk_hits = metrics::counter("rrl_cache_disk_hits_total");
  metrics::Counter& disk_misses =
      metrics::counter("rrl_cache_disk_misses_total");
  metrics::Counter& disk_stores =
      metrics::counter("rrl_cache_disk_stores_total");
  metrics::Counter& fetch_hits =
      metrics::counter("rrl_cache_fetch_hits_total");
  metrics::Counter& fetch_misses =
      metrics::counter("rrl_cache_fetch_misses_total");
  metrics::Counter& compiles = metrics::counter("rrl_solver_compiles_total");
};

CacheCounters& cache_counters() {
  static CacheCounters c;
  return c;
}

/// The artifact's (t, eps) schema keys, sorted — the flush-time "is the
/// disk already current" comparison (sr/rsd artifacts compare as empty,
/// which is correct: their DTMC payload is a pure function of the model
/// and config, so an imported copy never needs rewriting).
std::vector<std::pair<double, double>> schema_keys(
    const CompiledArtifact& artifact) {
  std::vector<std::pair<double, double>> keys;
  keys.reserve(artifact.schemas.size());
  for (const ArtifactSchemaEntry& e : artifact.schemas) {
    keys.emplace_back(e.t, e.eps);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::shared_ptr<const TransientSolver> SolverCache::get_or_build(
    const std::shared_ptr<const StudyModel>& model,
    const std::string& solver_name, SolverConfig config, CacheTier* tier) {
  RRL_EXPECTS(model != nullptr);
  // The config is keyed EXACTLY as given — in particular regenerative = -1
  // (auto) stays -1, constructing through the registry's deterministic
  // auto-selection just like the uncached per-scenario path, so cached and
  // fresh results cannot diverge. Callers that mean "use the model file's
  // hint" resolve that sentinel themselves (the study runner and the CLI
  // both do, via the file's hint / io-layer resolved_config), which also
  // makes "hint spelled out" and "hint from the file" key identically.

  SolverCacheKey key;
  key.model_hash = model->hash;
  key.solver = solver_name;
  key.epsilon = config.epsilon;
  key.rate_factor = config.rate_factor;
  key.regenerative = config.regenerative;
  key.step_cap = config.step_cap;

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    cache_counters().mem_hits.add(1);
    if (tier != nullptr) *tier = CacheTier::kMemory;
    return it->second.solver;
  }
  cache_counters().mem_misses.add(1);
  // Memory miss: consult the disk tier first (when attached and not in
  // cold mode) so a verified artifact can warm-start the construction.
  std::optional<CompiledArtifact> artifact;
  CacheTier resolved = CacheTier::kCompiled;
  if (store_ != nullptr && read_disk_) {
    artifact = store_->load(key.model_hash, solver_name, config);
    if (artifact.has_value()) {
      resolved = CacheTier::kDisk;
      ++stats_.disk_hits;
      cache_counters().disk_hits.add(1);
    } else {
      ++stats_.disk_misses;
      cache_counters().disk_misses.add(1);
    }
  }
  // Disk miss (or no disk): the fetcher hook is the last warm source —
  // a remote worker pulling the artifact from its parent's store over
  // the wire. nullopt degrades to a cold compile, never an error.
  if (!artifact.has_value() && fetcher_) {
    artifact = fetcher_(key);
    if (artifact.has_value()) {
      resolved = CacheTier::kFetched;
      ++stats_.fetch_hits;
      cache_counters().fetch_hits.add(1);
    } else {
      ++stats_.fetch_misses;
      cache_counters().fetch_misses.add(1);
    }
  }
  // Build under the lock: construction either throws (nothing cached) or
  // yields the immutable shared instance. The solver borrows the model's
  // chain, which the entry pins alongside it. The artifact import is part
  // of construction — it must precede any sharing across threads.
  std::unique_ptr<TransientSolver> built;
  Entry entry{model, nullptr, false, {}};
  {
    const trace::Span span(artifact.has_value() ? "solver.import"
                                                : "solver.compile");
    built = make_solver(solver_name, model->file.chain, model->file.rewards,
                        model->file.initial, config);
    if (artifact.has_value()) {
      built->import_compiled(*artifact);
      entry.imported = true;
      entry.imported_keys = schema_keys(*artifact);
    } else {
      cache_counters().compiles.add(1);
    }
  }
  std::shared_ptr<const TransientSolver> solver = std::move(built);
  ++stats_.misses;
  if (tier != nullptr) {
    *tier = entry.imported ? resolved : CacheTier::kCompiled;
  }
  entry.solver = solver;
  entries_.emplace(std::move(key), std::move(entry));
  return solver;
}

void SolverCache::attach_store(std::shared_ptr<const ArtifactStore> store,
                               bool read) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = std::move(store);
  read_disk_ = read;
}

void SolverCache::set_fetcher(ArtifactFetcher fetcher) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fetcher_ = std::move(fetcher);
}

std::size_t SolverCache::flush_to_store() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (store_ == nullptr) return 0;
  std::size_t written = 0;
  for (const auto& [key, entry] : entries_) {
    SolverConfig config;
    config.epsilon = key.epsilon;
    config.rate_factor = key.rate_factor;
    config.regenerative = key.regenerative;
    config.step_cap = key.step_cap;
    // Identity under the REGISTRY name from the key (a custom-registered
    // factory may wrap a class whose name() differs), so store and load
    // address the same file.
    CompiledArtifact artifact;
    artifact.solver = key.solver;
    artifact.model_hash = key.model_hash;
    artifact.config = config;
    // Generated-model provenance rides along (informational — identity
    // stays (solver, hash, config); for generated models the hash IS the
    // spec hash, so the stored spec names the blob's content readably).
    artifact.model_spec = entry.model->file.spec_key;
    artifact.pre_lump_states = entry.model->file.pre_lump_states;
    entry.solver->export_compiled(artifact);
    // A warm-started entry whose compiled state holds nothing beyond what
    // the disk already has (schema keys a subset of the imported ones;
    // the series under a key are deterministic) has nothing new to
    // publish — a fully warm N-shard run rewrites nothing. Note subset,
    // not equality: when a solver memoizes more horizons than its
    // SchemaCache retains, each run holds a capacity-limited selection of
    // the disk's keys, and equality would re-publish a shrunken artifact
    // forever.
    const std::vector<std::pair<double, double>> exported_keys =
        schema_keys(artifact);
    if (entry.imported &&
        std::includes(entry.imported_keys.begin(),
                      entry.imported_keys.end(), exported_keys.begin(),
                      exported_keys.end())) {
      continue;
    }
    // Publishing genuinely new schemas: keep the disk's horizons this
    // run's capacity-limited memo no longer holds, so the stored artifact
    // only ever grows toward the study's full horizon set instead of
    // oscillating between subsets.
    if (entry.imported) {
      const auto on_disk =
          store_->load(key.model_hash, key.solver, config);
      if (on_disk.has_value()) {
        for (const ArtifactSchemaEntry& e : on_disk->schemas) {
          const std::pair<double, double> k{e.t, e.eps};
          if (!std::binary_search(exported_keys.begin(),
                                  exported_keys.end(), k)) {
            artifact.schemas.push_back(e);
          }
        }
      }
    }
    if (store_->store(artifact)) {
      ++written;
      ++stats_.disk_stores;
      cache_counters().disk_stores.add(1);
    }
  }
  return written;
}

SolverCacheStats SolverCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolverCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace rrl
