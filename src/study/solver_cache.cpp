#include "study/solver_cache.hpp"

#include <utility>

namespace rrl {

std::shared_ptr<const TransientSolver> SolverCache::get_or_build(
    const std::shared_ptr<const StudyModel>& model,
    const std::string& solver_name, SolverConfig config) {
  RRL_EXPECTS(model != nullptr);
  // The config is keyed EXACTLY as given — in particular regenerative = -1
  // (auto) stays -1, constructing through the registry's deterministic
  // auto-selection just like the uncached per-scenario path, so cached and
  // fresh results cannot diverge. Callers that mean "use the model file's
  // hint" resolve that sentinel themselves (the study runner and the CLI
  // both do, via the file's hint / io-layer resolved_config), which also
  // makes "hint spelled out" and "hint from the file" key identically.

  SolverCacheKey key;
  key.model_hash = model->hash;
  key.solver = solver_name;
  key.epsilon = config.epsilon;
  key.rate_factor = config.rate_factor;
  key.regenerative = config.regenerative;
  key.step_cap = config.step_cap;

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second.solver;
  }
  // Build under the lock: construction either throws (nothing cached) or
  // yields the immutable shared instance. The solver borrows the model's
  // chain, which the entry pins alongside it.
  std::shared_ptr<const TransientSolver> solver =
      make_solver(solver_name, model->file.chain, model->file.rewards,
                  model->file.initial, config);
  ++stats_.misses;
  entries_.emplace(std::move(key), Entry{model, solver});
  return solver;
}

SolverCacheStats SolverCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolverCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace rrl
