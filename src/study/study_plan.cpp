#include "study/study_plan.hpp"

#include <algorithm>

#include "support/fnv.hpp"

namespace rrl {

double plan_unit_cost(const StudyModel& model, std::size_t count,
                      std::size_t points) {
  const double size =
      static_cast<double>(model.file.chain.num_transitions()) +
      2.0 * static_cast<double>(model.file.chain.num_states());
  return size * (static_cast<double>(count) + static_cast<double>(points));
}

StudyPlan build_study_plan(const StudySpec& spec,
                           ModelRepository& repository) {
  // Resolve the solver axis ("all" = registry order) and validate names up
  // front so a typo fails the study, not one scenario per combination.
  std::vector<std::string> solver_names =
      spec.solvers.empty() ? registered_solvers() : spec.solvers;
  for (const std::string& name : solver_names) {
    if (!solver_registered(name)) {
      throw contract_error("study: unknown solver '" + name +
                           "' (registered: " + registered_solver_list() +
                           ")");
    }
  }

  // Load every model once through the repository (content-deduplicated).
  std::vector<std::shared_ptr<const StudyModel>> models;
  models.reserve(spec.models.size());
  for (const std::string& path : spec.models) {
    models.push_back(repository.load(path));
  }

  // One canonical construction epsilon — the study's tightest — so that
  // epsilon variation shares solvers; the per-scenario epsilon travels in
  // the request and overrides it in every method.
  const double construction_eps =
      *std::min_element(spec.epsilons.begin(), spec.epsilons.end());

  StudyPlan plan;
  plan.grids = spec.grids;
  plan.total_scenarios = spec.scenario_count(solver_names.size());
  plan.scenarios.reserve(plan.total_scenarios);

  const std::size_t unit_size =
      spec.measures.size() * spec.epsilons.size() * spec.grids.size();
  std::size_t grid_points = 0;
  for (const std::vector<double>& grid : spec.grids) {
    grid_points += grid.size();
  }
  grid_points *= spec.measures.size() * spec.epsilons.size();

  std::uint64_t index = 0;
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const std::string& solver_name : solver_names) {
      WorkUnit unit;
      unit.id = static_cast<std::uint32_t>(plan.units.size());
      unit.first = plan.scenarios.size();
      unit.count = unit_size;
      unit.cost = plan_unit_cost(*models[m], unit_size, grid_points);
      plan.units.push_back(unit);

      for (const MeasureKind measure : spec.measures) {
        for (const double epsilon : spec.epsilons) {
          for (std::size_t g = 0; g < spec.grids.size(); ++g, ++index) {
            PlannedScenario scenario;
            scenario.meta.index = index;
            scenario.meta.model = m < spec.model_labels.size()
                                      ? spec.model_labels[m]
                                      : spec.models[m];
            scenario.meta.solver = solver_name;
            scenario.meta.measure = measure;
            scenario.meta.epsilon = epsilon;
            scenario.meta.grid = g;
            scenario.model = models[m];
            scenario.config.epsilon = construction_eps;
            scenario.config.regenerative =
                spec.regenerative == kRegenerativeFromModel
                    ? models[m]->file.regenerative
                    : spec.regenerative;
            scenario.request.measure = measure;
            scenario.request.times = spec.grids[g];
            scenario.request.epsilon = epsilon;
            plan.scenarios.push_back(std::move(scenario));
          }
        }
      }
    }
  }

  // Fingerprint: everything that gives a scenario index its meaning. Two
  // processes whose plans fingerprint equal expand the same study into the
  // same units — the serve handshake's agreement check.
  std::uint64_t h = kFnv1aOffset;
  fnv1a_mix(h, &plan.total_scenarios, sizeof(plan.total_scenarios));
  const std::uint64_t unit_count = plan.units.size();
  fnv1a_mix(h, &unit_count, sizeof(unit_count));
  for (const WorkUnit& unit : plan.units) {
    const std::uint64_t first = unit.first;
    const std::uint64_t count = unit.count;
    fnv1a_mix(h, &first, sizeof(first));
    fnv1a_mix(h, &count, sizeof(count));
  }
  for (const PlannedScenario& s : plan.scenarios) {
    fnv1a_mix(h, &s.model->hash, sizeof(s.model->hash));
    fnv1a_mix(h, s.meta.solver.data(), s.meta.solver.size());
    const auto measure = static_cast<std::uint8_t>(s.meta.measure);
    fnv1a_mix(h, &measure, sizeof(measure));
    fnv1a_mix(h, &s.meta.epsilon, sizeof(s.meta.epsilon));
    const std::uint64_t grid = s.meta.grid;
    fnv1a_mix(h, &grid, sizeof(grid));
    fnv1a_mix(h, &s.config.regenerative, sizeof(s.config.regenerative));
    fnv1a_mix(h, &s.config.epsilon, sizeof(s.config.epsilon));
  }
  for (const std::vector<double>& grid : plan.grids) {
    fnv1a_mix(h, grid.data(), grid.size() * sizeof(double));
  }
  plan.fingerprint = h;
  return plan;
}

}  // namespace rrl
