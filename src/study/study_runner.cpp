#include "study/study_runner.hpp"

#include <algorithm>

#include "core/registry.hpp"

namespace rrl {

std::vector<ReportRow> StudyRun::rows() const {
  std::vector<ReportRow> out;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const StudyScenario& scenario = scenarios[s];
    const ScenarioResult& result = sweep.results[s];
    ReportRow base;
    base.scenario = scenario.index;
    base.model = scenario.model;
    base.solver = scenario.solver;
    base.measure = measure_name(scenario.measure);
    base.epsilon = scenario.epsilon;
    if (!result.ok()) {
      base.error = result.error;
      out.push_back(std::move(base));
      continue;
    }
    const std::vector<double>& times = grids[scenario.grid];
    for (std::size_t p = 0; p < result.report.points.size(); ++p) {
      ReportRow row = base;
      row.point = p;
      const TransientValue& point = result.report.points[p];
      row.t = times[p];
      row.value = point.value;
      row.dtmc_steps = point.stats.dtmc_steps;
      out.push_back(std::move(row));
    }
  }
  return out;
}

StudyRun run_study(const StudySpec& spec, ModelRepository& repository,
                   SolverCache& cache, const StudyOptions& options) {
  if (!options.shard.valid()) {
    throw contract_error("invalid shard " +
                         std::to_string(options.shard.index) + "/" +
                         std::to_string(options.shard.count) +
                         " (expected 1 <= k <= N)");
  }

  // Resolve the solver axis ("all" = registry order) and validate names up
  // front so a typo fails the study, not one scenario per combination.
  std::vector<std::string> solver_names =
      spec.solvers.empty() ? registered_solvers() : spec.solvers;
  for (const std::string& name : solver_names) {
    if (!solver_registered(name)) {
      throw contract_error("study: unknown solver '" + name +
                           "' (registered: " + registered_solver_list() +
                           ")");
    }
  }

  // Load every model once through the repository (content-deduplicated).
  std::vector<std::shared_ptr<const StudyModel>> models;
  models.reserve(spec.models.size());
  for (const std::string& path : spec.models) {
    models.push_back(repository.load(path));
  }

  // One canonical construction epsilon — the study's tightest — so that
  // epsilon variation shares solvers; the per-scenario epsilon travels in
  // the request and overrides it in every method.
  const double construction_eps =
      *std::min_element(spec.epsilons.begin(), spec.epsilons.end());

  const SolverCacheStats cache_before = cache.stats();

  StudyRun run;
  run.shard = options.shard;
  run.total_scenarios = spec.scenario_count(solver_names.size());
  run.grids = spec.grids;

  BatchRequest batch;
  const auto shard_count = static_cast<std::uint64_t>(options.shard.count);
  const auto shard_slot = static_cast<std::uint64_t>(options.shard.index - 1);
  std::uint64_t index = 0;
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const std::string& solver_name : solver_names) {
      for (const MeasureKind measure : spec.measures) {
        for (const double epsilon : spec.epsilons) {
          for (std::size_t g = 0; g < spec.grids.size(); ++g, ++index) {
            if (index % shard_count != shard_slot) continue;

            StudyScenario meta;
            meta.index = index;
            meta.model = m < spec.model_labels.size() ? spec.model_labels[m]
                                                      : spec.models[m];
            meta.solver = solver_name;
            meta.measure = measure;
            meta.epsilon = epsilon;
            meta.grid = g;

            SweepScenario scenario;
            scenario.model = meta.model;
            scenario.solver = solver_name;
            scenario.config.epsilon = construction_eps;
            scenario.config.regenerative =
                spec.regenerative == kRegenerativeFromModel
                    ? models[m]->file.regenerative
                    : spec.regenerative;
            scenario.request.measure = measure;
            scenario.request.times = spec.grids[g];
            scenario.request.epsilon = epsilon;
            if (options.use_cache) {
              // Shared compiled solver. A construction failure (structural
              // precondition, e.g. rsd on an absorbing chain) caches
              // nothing and leaves shared_solver null: the fallback below
              // reconstructs per scenario inside the sweep, which records
              // the same error in that scenario's slot — per-scenario
              // isolation identical to the uncached path.
              try {
                scenario.shared_solver = cache.get_or_build(
                    models[m], solver_name, scenario.config);
              } catch (const std::exception&) {
              }
            }
            // The chain is always advertised (the engine's model-size
            // scheduling heuristic reads it); the data vectors are only
            // copied when the sweep must construct the solver itself.
            scenario.chain = &models[m]->file.chain;
            if (scenario.shared_solver == nullptr) {
              scenario.rewards = models[m]->file.rewards;
              scenario.initial = models[m]->file.initial;
            }

            run.scenarios.push_back(std::move(meta));
            batch.scenarios.push_back(std::move(scenario));
          }
        }
      }
    }
  }

  batch.jobs = options.jobs > 0 ? options.jobs : spec.jobs;
  run.sweep = run_sweep(batch);
  run.jobs = run.sweep.jobs;

  const SolverCacheStats cache_after = cache.stats();
  run.cache.hits = cache_after.hits - cache_before.hits;
  run.cache.misses = cache_after.misses - cache_before.misses;
  run.cache.disk_hits = cache_after.disk_hits - cache_before.disk_hits;
  run.cache.disk_misses =
      cache_after.disk_misses - cache_before.disk_misses;
  run.cache.disk_stores =
      cache_after.disk_stores - cache_before.disk_stores;

  // Models must outlive the sweep (scenarios borrow the chains); the
  // repository and the cache entries pin them, and `models` held them
  // through run_sweep above.
  return run;
}

}  // namespace rrl
