#include "study/study_runner.hpp"

namespace rrl {

std::vector<ReportRow> StudyRun::rows() const {
  return report_rows(scenarios, sweep, tiers, grids);
}

StudyRun run_study(const StudySpec& spec, ModelRepository& repository,
                   SolverCache& cache, const StudyOptions& options) {
  if (!options.shard.valid()) {
    throw contract_error("invalid shard " +
                         std::to_string(options.shard.index) + "/" +
                         std::to_string(options.shard.count) +
                         " (expected 1 <= k <= N)");
  }

  const StudyPlan plan = build_study_plan(spec, repository);

  // Round-robin slice: shard k of N owns every index % N == k-1.
  const auto shard_count = static_cast<std::uint64_t>(options.shard.count);
  const auto shard_slot = static_cast<std::uint64_t>(options.shard.index - 1);
  std::vector<std::size_t> positions;
  positions.reserve(plan.scenarios.size() / shard_count + 1);
  for (std::size_t i = shard_slot; i < plan.scenarios.size();
       i += shard_count) {
    positions.push_back(i);
  }

  ExecOptions exec;
  exec.jobs = options.jobs > 0 ? options.jobs : spec.jobs;
  exec.use_cache = options.use_cache;
  ExecutedSlice slice = execute_scenarios(plan, positions, cache, exec);

  StudyRun run;
  run.scenarios = std::move(slice.scenarios);
  run.sweep = std::move(slice.sweep);
  run.tiers = std::move(slice.tiers);
  run.grids = plan.grids;
  run.total_scenarios = plan.total_scenarios;
  run.shard = options.shard;
  run.cache = slice.cache;
  run.jobs = slice.jobs;
  return run;
}

}  // namespace rrl
