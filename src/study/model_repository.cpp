#include "study/model_repository.hpp"

#include <span>
#include <utility>

#include "support/fnv.hpp"

namespace rrl {
namespace {

template <typename T>
void mix_span(std::uint64_t& h, std::span<const T> values) {
  const std::uint64_t count = values.size();
  fnv1a_mix(h, &count, sizeof(count));
  if (!values.empty()) {
    fnv1a_mix(h, values.data(), values.size() * sizeof(T));
  }
}

}  // namespace

std::uint64_t hash_model(const ModelFile& model) {
  std::uint64_t h = kFnv1aOffset;
  // A generated model is named exactly by its canonical spec (expansion
  // and lumping are deterministic — markov/generator.hpp), so hash those
  // few bytes instead of walking a million-state CSR: interning a 10^6
  // state model costs nanoseconds, not a memory sweep. The leading tag
  // keeps the spec-hash stream disjoint from the content-hash stream — a
  // spec string can never alias an explicit model's byte walk.
  if (!model.spec_key.empty()) {
    const char tag = 'S';
    fnv1a_mix(h, &tag, sizeof(tag));
    fnv1a_mix(h, model.spec_key.data(), model.spec_key.size());
    return h;
  }
  const CsrMatrix& rates = model.chain.rates();
  const index_t states = model.chain.num_states();
  fnv1a_mix(h, &states, sizeof(states));
  mix_span(h, rates.row_ptr());
  mix_span(h, rates.col_idx());
  mix_span(h, rates.values());
  mix_span(h, std::span<const double>(model.rewards));
  mix_span(h, std::span<const double>(model.initial));
  fnv1a_mix(h, &model.regenerative, sizeof(model.regenerative));
  return h;
}

std::shared_ptr<const StudyModel> ModelRepository::load(
    const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_path_.find(path);
    if (it != by_path_.end()) return it->second;
  }
  // Parse outside the lock (file I/O); a concurrent load of the same path
  // parses twice but interns once.
  ModelFile parsed = read_model_file(path);
  std::shared_ptr<const StudyModel> model = intern(path, std::move(parsed));
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_path_.emplace(path, std::move(model)).first->second;
}

std::shared_ptr<const StudyModel> ModelRepository::adopt(
    const std::string& label, ModelFile file) {
  return intern(label, std::move(file));
}

std::shared_ptr<const StudyModel> ModelRepository::intern(
    const std::string& label, ModelFile file) {
  const std::uint64_t hash = hash_model(file);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) return it->second;
  auto model = std::make_shared<StudyModel>();
  model->label = label;
  model->file = std::move(file);
  model->hash = hash;
  return by_hash_.emplace(hash, std::move(model)).first->second;
}

std::size_t ModelRepository::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_hash_.size();
}

}  // namespace rrl
