#include "study/study_dispatch.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "io/wire_codec.hpp"
#include "study/study_exec.hpp"
#include "support/stopwatch.hpp"

namespace rrl {
namespace {

// ---- fd helpers shared by both sides of the pipe.

/// write() the whole buffer, riding out EINTR and short writes. False on
/// any hard error (EPIPE after a peer death included — callers treat the
/// peer as lost).
bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One read() into the end of `buffer`, riding out EINTR. Returns the
/// byte count (0 = EOF, -1 = hard error).
ssize_t read_chunk(int fd, std::string& buffer) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) buffer.append(chunk, static_cast<std::size_t>(n));
    return n;
  }
}

/// Writing into a pipe whose reader died raises SIGPIPE, which would kill
/// the parent instead of returning the EPIPE the dispatcher handles.
/// Scoped-ignore around the dispatch (restoring the previous disposition)
/// keeps the library from imposing a process-wide handler.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedIgnoreSigpipe() { ::sigaction(SIGPIPE, &saved_, nullptr); }
  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  struct sigaction saved_ = {};
};

// ---- parent side.

struct Worker {
  pid_t pid = -1;
  int to_fd = -1;        ///< parent -> worker (worker stdin)
  int from_fd = -1;      ///< worker -> parent (worker stdout)
  std::string buffer;    ///< partial-frame accumulation
  bool greeted = false;  ///< hello received and verified
  bool alive = false;
  /// Index into plan.units of the in-flight unit; npos = idle.
  std::size_t busy_unit = kIdle;

  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
};

/// fork/exec one worker with stdio pipes. Parent-held ends are
/// close-on-exec so later workers do not inherit earlier workers' pipes
/// (which would defeat EOF-based death detection). Throws on fork/pipe
/// failure; exec failure surfaces as an immediate EOF (exit 127).
Worker spawn_worker(const std::vector<std::string>& argv_strings) {
  RRL_EXPECTS(!argv_strings.empty());
  int to_child[2];    // parent writes [1], child reads [0]
  int from_child[2];  // child writes [1], parent reads [0]
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw contract_error("dispatch: pipe2 failed");
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw contract_error("dispatch: pipe2 failed");
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    throw contract_error("dispatch: fork failed");
  }
  if (pid == 0) {
    // Child: wire the pipe ends to stdin/stdout (dup2 clears CLOEXEC on
    // the duplicates) and exec the worker command.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const std::string& arg : argv_strings) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "dispatch worker: exec failed: %s\n",
                 argv_strings.front().c_str());
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  Worker worker;
  worker.pid = pid;
  worker.to_fd = to_child[1];
  worker.from_fd = from_child[0];
  worker.alive = true;
  return worker;
}

}  // namespace

DispatchReport dispatch_study(const StudyPlan& plan,
                              const DispatchOptions& options,
                              StudyReducer& reducer) {
  RRL_EXPECTS(options.workers >= 1);
  if (options.worker_command.empty()) {
    throw contract_error("dispatch: empty worker command");
  }
  const Stopwatch watch;
  const ScopedIgnoreSigpipe sigpipe_guard;

  // Longest-processing-time handout order: expensive units first, so the
  // heaviest model starts immediately and the cheap tail back-fills the
  // other workers. Ties break by id for determinism of the SCHEDULE
  // (results are order-independent either way).
  std::vector<std::size_t> order(plan.units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan.units[a].cost > plan.units[b].cost;
                   });
  std::deque<std::size_t> queue(order.begin(), order.end());

  std::vector<Worker> workers;
  workers.reserve(static_cast<std::size_t>(options.workers));

  DispatchReport report;
  report.workers = options.workers;
  std::size_t units_reduced = 0;

  // Bury a worker: close its pipes, reap it, and put any in-flight unit
  // back at the head of the queue (it is the oldest — and statistically
  // the most expensive — outstanding work). The kill covers the one case
  // where the worker is still running — a corrupt frame (something not
  // ours on its stdout) — so the blocking reap below can never stall the
  // fleet behind a live or wedged process; on the usual EOF path the
  // process is already a zombie (its pid cannot be reused before the
  // reap) and the kill is a no-op.
  const auto lose_worker = [&](Worker& worker) {
    if (!worker.alive) return;
    worker.alive = false;
    ::close(worker.to_fd);
    ::close(worker.from_fd);
    ::kill(worker.pid, SIGKILL);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    ++report.workers_lost;
    if (worker.busy_unit != Worker::kIdle) {
      queue.push_front(worker.busy_unit);
      ++report.redispatched;
      worker.busy_unit = Worker::kIdle;
    }
  };

  // Hand the next queued unit to an idle, greeted worker. A failed write
  // means the worker just died: bury it (re-queuing the unit) and report
  // failure so the caller's loop re-examines the fleet.
  const auto assign_next = [&](Worker& worker) -> bool {
    if (queue.empty()) return true;
    const std::size_t unit_index = queue.front();
    const WorkUnit& unit = plan.units[unit_index];
    WireAssign assign;
    assign.unit = unit.id;
    assign.first_scenario = unit.first;
    assign.scenario_count = unit.count;
    if (!write_all(worker.to_fd,
                   encode_frame(WireType::kAssign, encode_assign(assign)))) {
      lose_worker(worker);
      return false;
    }
    queue.pop_front();
    worker.busy_unit = unit_index;
    return true;
  };

  // One worker's incoming frames (hello, results). Returns false when the
  // fleet cannot continue (handshake mismatch — a fatal configuration
  // error, not a recoverable death).
  const auto handle_frames = [&](Worker& worker) {
    std::size_t consumed = 0;
    for (;;) {
      std::optional<WireFrame> frame;
      try {
        frame = decode_frame(worker.buffer, consumed);
      } catch (const std::exception& e) {
        // A corrupt frame means the pipe carries something that is not
        // our protocol (e.g. a worker that printed to stdout): that
        // worker is unusable.
        std::fprintf(stderr, "dispatch: dropping worker %d: %s\n",
                     static_cast<int>(worker.pid), e.what());
        lose_worker(worker);
        return;
      }
      if (!frame.has_value()) return;
      worker.buffer.erase(0, consumed);

      if (frame->type == WireType::kHello) {
        const WireHello hello = decode_hello(frame->payload);
        if (hello.protocol != kWireProtocolVersion ||
            hello.plan_fingerprint != plan.fingerprint ||
            hello.unit_count != plan.units.size() ||
            hello.total_scenarios != plan.total_scenarios) {
          throw contract_error(
              "dispatch: worker plan disagrees with the parent's (did the "
              "study file change, or do the binaries differ?)");
        }
        worker.greeted = true;
        (void)assign_next(worker);
      } else if (frame->type == WireType::kResult) {
        WireResult result = decode_result(frame->payload);
        if (worker.busy_unit == Worker::kIdle ||
            plan.units[worker.busy_unit].id != result.unit) {
          throw contract_error(
              "dispatch: worker returned a unit it was not assigned");
        }
        const WorkUnit& unit = plan.units[worker.busy_unit];
        worker.busy_unit = Worker::kIdle;
        report.worker_seconds += result.seconds;
        reducer.add_unit(unit.first, unit.count, std::move(result.rows));
        ++units_reduced;
        report.scenarios += unit.count;
        (void)assign_next(worker);
      } else {
        throw contract_error("dispatch: unexpected frame from worker");
      }
    }
  };

  try {
    // Spawn INSIDE the teardown scope: a pipe/fork failure partway
    // through a large fleet (EMFILE, EAGAIN) must bury the workers
    // already running, not leak them blocked on their stdin forever.
    for (int i = 0; i < options.workers; ++i) {
      std::vector<std::string> argv = options.worker_command;
      if (static_cast<std::size_t>(i) < options.worker_extra_args.size()) {
        const std::vector<std::string>& extra =
            options.worker_extra_args[i];
        argv.insert(argv.end(), extra.begin(), extra.end());
      }
      workers.push_back(spawn_worker(argv));
    }

    while (units_reduced < plan.units.size()) {
      // Re-arm idle workers BEFORE blocking: a unit re-queued by a worker
      // death must reach a survivor that already went idle (its last
      // frame is long processed, so no event will ever prompt it again) —
      // without this, losing the holder of the final unit would leave the
      // loop polling silent pipes forever.
      for (Worker& worker : workers) {
        if (queue.empty()) break;
        if (worker.alive && worker.greeted &&
            worker.busy_unit == Worker::kIdle) {
          (void)assign_next(worker);
        }
      }

      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_workers;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        if (!workers[i].alive) continue;
        fds.push_back({workers[i].from_fd, POLLIN, 0});
        fd_workers.push_back(i);
      }
      if (fds.empty()) {
        throw contract_error(
            "dispatch: all workers lost with work remaining (" +
            std::to_string(plan.units.size() - units_reduced) +
            " units undone)");
      }
      const int ready = ::poll(fds.data(), fds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw contract_error("dispatch: poll failed");
      }
      for (std::size_t f = 0; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        Worker& worker = workers[fd_workers[f]];
        if (!worker.alive) continue;  // lost while handling a sibling
        if ((fds[f].revents & POLLIN) != 0) {
          const ssize_t n = read_chunk(worker.from_fd, worker.buffer);
          if (n > 0) {
            handle_frames(worker);
            continue;
          }
          lose_worker(worker);  // EOF or hard error
        } else {
          lose_worker(worker);  // POLLHUP/POLLERR with nothing to read
        }
      }
    }
  } catch (...) {
    // Fatal dispatch error: tear the fleet down before propagating so no
    // orphan worker outlives the parent.
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      ::kill(worker.pid, SIGTERM);
      lose_worker(worker);
    }
    throw;
  }

  // Every unit reduced: release the fleet.
  const std::string shutdown = encode_frame(WireType::kShutdown, {});
  for (Worker& worker : workers) {
    if (!worker.alive) continue;
    (void)write_all(worker.to_fd, shutdown);
    ::close(worker.to_fd);
    ::close(worker.from_fd);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.alive = false;
  }

  reducer.finish();
  report.units = units_reduced;
  report.failed_scenarios = reducer.failed_scenarios();
  report.seconds = watch.seconds();
  return report;
}

// ---- worker side.

int run_worker_loop(const StudyPlan& plan, SolverCache& cache,
                    const WorkerOptions& options, int in_fd, int out_fd) {
  // Writing a hello/result after the PARENT died must surface as
  // write_all's error return (clean exit 1), not a SIGPIPE kill that
  // skips destructors — and must not take an in-process caller down.
  const ScopedIgnoreSigpipe sigpipe_guard;
  WireHello hello;
  hello.plan_fingerprint = plan.fingerprint;
  hello.unit_count = plan.units.size();
  hello.total_scenarios = plan.total_scenarios;
  if (!write_all(out_fd,
                 encode_frame(WireType::kHello, encode_hello(hello)))) {
    return 1;
  }

  ExecOptions exec;
  exec.jobs = options.jobs;
  exec.use_cache = options.use_cache;

  // Pool and workspaces persist across units: thread and buffer warm-up
  // is paid once per worker, not once per unit.
  ThreadPool pool(options.jobs);
  std::vector<SolveWorkspace> workspaces;

  int executed = 0;
  std::string buffer;
  for (;;) {
    std::size_t consumed = 0;
    std::optional<WireFrame> frame;
    try {
      frame = decode_frame(buffer, consumed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker: corrupt frame from parent: %s\n",
                   e.what());
      return 1;
    }
    if (!frame.has_value()) {
      const ssize_t n = read_chunk(in_fd, buffer);
      if (n == 0) return 0;  // parent gone: clean exit, nothing in flight
      if (n < 0) return 1;
      continue;
    }
    buffer.erase(0, consumed);

    if (frame->type == WireType::kShutdown) return 0;
    if (frame->type != WireType::kAssign) {
      std::fprintf(stderr, "worker: unexpected frame type\n");
      return 1;
    }
    const WireAssign assign = decode_assign(frame->payload);
    if (assign.unit >= plan.units.size()) {
      std::fprintf(stderr, "worker: unit id out of range\n");
      return 1;
    }
    const WorkUnit& unit = plan.units[assign.unit];
    if (unit.first != assign.first_scenario ||
        unit.count != assign.scenario_count) {
      std::fprintf(stderr, "worker: unit range disagrees with parent\n");
      return 1;
    }
    if (options.die_after_units >= 0 &&
        executed >= options.die_after_units) {
      // Test hook: die mid-unit, after accepting the assignment and
      // before replying — exactly the window death recovery must cover.
      // The optional delay lets the rest of the fleet go idle first.
      if (options.die_delay_ms > 0) {
        ::usleep(static_cast<useconds_t>(options.die_delay_ms) * 1000);
      }
      ::_exit(3);
    }

    const Stopwatch unit_watch;
    const ExecutedSlice slice =
        execute_unit(plan, unit, cache, exec, &pool, &workspaces);
    // Publish freshly compiled artifacts before replying: a fleet peer
    // pointed at the same cache-dir can then warm-start this model while
    // the run is still in progress. No-op without an attached store.
    cache.flush_to_store();

    WireResult result;
    result.unit = unit.id;
    result.seconds = unit_watch.seconds();
    result.rows = slice_rows(slice, plan.grids);
    if (!write_all(out_fd,
                   encode_frame(WireType::kResult,
                                encode_result(result)))) {
      return 1;
    }
    ++executed;
  }
}

}  // namespace rrl
