#include "study/study_dispatch.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiled_artifact.hpp"
#include "io/artifact_codec.hpp"
#include "io/net_transport.hpp"
#include "io/wire_codec.hpp"
#include "study/study_exec.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace rrl {
namespace {

using SteadyClock = std::chrono::steady_clock;

// Parent-side dispatch-loop counters (the worker side reports its own
// process's counters over the wire; these are the orchestrator's).
struct DispatchCounters {
  metrics::Counter& assigned =
      metrics::counter("rrl_dispatch_units_assigned_total");
  metrics::Counter& requeued =
      metrics::counter("rrl_dispatch_units_requeued_total");
  metrics::Counter& heartbeats =
      metrics::counter("rrl_dispatch_heartbeats_total");
  metrics::Counter& stats_frames =
      metrics::counter("rrl_dispatch_stats_frames_total");
};

DispatchCounters& dispatch_counters() {
  static DispatchCounters c;
  return c;
}

// ---- fd helpers for the worker side (the parent side goes through
// FrameChannel, io/net_transport.hpp).

/// write() the whole buffer, riding out EINTR and short writes. False on
/// any hard error (EPIPE after a peer death included — callers treat the
/// peer as lost).
bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // Same funnel as FrameChannel's counter (net_transport.cpp): workers
  // write their half of the wire through raw fds.
  static auto& bytes_out = metrics::counter("rrl_wire_bytes_out_total");
  bytes_out.add(off);
  return true;
}

/// One read() into the end of `buffer`, riding out EINTR. Returns the
/// byte count (0 = EOF, -1 = hard error).
ssize_t read_chunk(int fd, std::string& buffer) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) {
      static auto& bytes_in = metrics::counter("rrl_wire_bytes_in_total");
      bytes_in.add(static_cast<std::uint64_t>(n));
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return n;
  }
}

/// Writing into a pipe or socket whose reader died raises SIGPIPE, which
/// would kill the process instead of returning the EPIPE the dispatcher
/// handles (observed death -> re-dispatch). Scoped-ignore around the
/// dispatch (restoring the previous disposition) keeps the library from
/// imposing a process-wide handler; socket sends additionally pass
/// MSG_NOSIGNAL inside FrameChannel.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedIgnoreSigpipe() { ::sigaction(SIGPIPE, &saved_, nullptr); }
  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  struct sigaction saved_ = {};
};

// ---- parent side.

/// One fleet member: a fork/exec'd local child (pid >= 0, stdio pipes) or
/// a remote `--connect` worker (pid == -1, one TCP socket). Everything
/// after the spawn/accept is transport-agnostic through the channel.
struct Peer {
  pid_t pid = -1;  ///< -1 = remote
  FrameChannel channel;
  bool remote = false;
  bool greeted = false;  ///< hello received and verified
  bool alive = false;
  /// Index into plan.units of the in-flight unit; npos = idle.
  std::size_t busy_unit = kIdle;
  /// Index into DispatchReport::worker_stats; kIdle until the entry is
  /// created (locals at spawn, remotes when their handshake passes).
  std::size_t stats_index = kIdle;
  /// Last byte received (remote liveness; pipes don't use it).
  SteadyClock::time_point last_heard;

  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
};

/// fork/exec one worker with stdio pipes. Parent-held ends are
/// close-on-exec so later workers do not inherit earlier workers' pipes
/// (which would defeat EOF-based death detection), and non-blocking so
/// the dispatch poll loop treats them exactly like sockets (the child's
/// copies of the other ends are separate open file descriptions and stay
/// blocking). Throws on fork/pipe failure; exec failure surfaces as an
/// immediate EOF (exit 127).
Peer spawn_worker(const std::vector<std::string>& argv_strings) {
  RRL_EXPECTS(!argv_strings.empty());
  int to_child[2];    // parent writes [1], child reads [0]
  int from_child[2];  // child writes [1], parent reads [0]
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw contract_error("dispatch: pipe2 failed");
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw contract_error("dispatch: pipe2 failed");
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    throw contract_error("dispatch: fork failed");
  }
  if (pid == 0) {
    // Child: wire the pipe ends to stdin/stdout (dup2 clears CLOEXEC on
    // the duplicates) and exec the worker command.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const std::string& arg : argv_strings) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "dispatch worker: exec failed: %s\n",
                 argv_strings.front().c_str());
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  set_nonblocking(from_child[0]);
  set_nonblocking(to_child[1]);
  Peer peer;
  peer.pid = pid;
  peer.channel = FrameChannel(from_child[0], to_child[1],
                              /*is_socket=*/false);
  peer.alive = true;
  peer.last_heard = SteadyClock::now();
  return peer;
}

}  // namespace

DispatchReport dispatch_study(const StudyPlan& plan,
                              const DispatchOptions& options,
                              StudyReducer& reducer) {
  RRL_EXPECTS(options.workers >= 0);
  RRL_EXPECTS(options.workers >= 1 || options.listen_fd >= 0);
  if (options.workers >= 1 && options.worker_command.empty()) {
    throw contract_error("dispatch: empty worker command");
  }
  const Stopwatch watch;
  const ScopedIgnoreSigpipe sigpipe_guard;
  const trace::Span dispatch_span("dispatch.run", plan.units.size());

  // Longest-processing-time handout order: expensive units first, so the
  // heaviest model starts immediately and the cheap tail back-fills the
  // other workers. Ties break by id for determinism of the SCHEDULE
  // (results are order-independent either way).
  std::vector<std::size_t> order(plan.units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan.units[a].cost > plan.units[b].cost;
                   });
  std::deque<std::size_t> queue(order.begin(), order.end());

  std::deque<Peer> peers;  // deque: stable references as remotes join

  DispatchReport report;
  report.workers = options.workers;
  std::size_t units_reduced = 0;
  bool waiting_noted = false;

  // Observability clock: scenarios/sec and busy fractions in the live
  // stats lines are measured against dispatch start.
  const SteadyClock::time_point started = SteadyClock::now();
  SteadyClock::time_point next_stats =
      options.stats_interval_ms > 0
          ? started + std::chrono::milliseconds(options.stats_interval_ms)
          : SteadyClock::time_point::max();

  const auto new_worker_stats = [&](bool remote) {
    WorkerStats stats;
    stats.remote = remote;
    std::size_t ordinal = 0;
    for (const WorkerStats& w : report.worker_stats) {
      if (w.remote == remote) ++ordinal;
    }
    stats.label = (remote ? "remote-" : "local-") + std::to_string(ordinal);
    report.worker_stats.push_back(std::move(stats));
    return report.worker_stats.size() - 1;
  };

  // One live progress line on stderr (--stats-interval-ms): fleet
  // position, throughput, per-worker busy fractions ("x" marks a lost
  // worker), and the merged cache-tier funnel from the workers' latest
  // snapshots. Purely observational.
  const auto print_stats_line = [&] {
    const double elapsed =
        std::chrono::duration<double>(SteadyClock::now() - started).count();
    std::size_t in_flight = 0;
    for (const Peer& peer : peers) {
      if (peer.alive && peer.busy_unit != Peer::kIdle) ++in_flight;
    }
    std::vector<std::pair<std::string, std::uint64_t>> merged;
    for (const WorkerStats& w : report.worker_stats) {
      metrics::merge_counters(merged, w.counters);
    }
    const auto counter = [&](std::string_view name) -> unsigned long long {
      for (const auto& [n, v] : merged) {
        if (n == name) return static_cast<unsigned long long>(v);
      }
      return 0;
    };
    std::string busy;
    for (const WorkerStats& w : report.worker_stats) {
      if (!busy.empty()) busy += '/';
      if (w.lost) busy += 'x';
      char frac[32];
      std::snprintf(frac, sizeof(frac), "%.0f%%",
                    elapsed > 0.0 ? 100.0 * w.busy_seconds / elapsed : 0.0);
      busy += frac;
    }
    std::fprintf(
        stderr,
        "stats: %zu/%zu units done (%zu queued, %zu in flight), "
        "%llu scenarios, %.1f/sec, busy %s, cache mem %llu disk %llu "
        "fetch %llu cold %llu\n",
        units_reduced, plan.units.size(), queue.size(), in_flight,
        static_cast<unsigned long long>(report.scenarios),
        elapsed > 0.0 ? static_cast<double>(report.scenarios) / elapsed
                      : 0.0,
        busy.empty() ? "-" : busy.c_str(),
        counter("rrl_cache_memory_hits_total"),
        counter("rrl_cache_disk_hits_total"),
        counter("rrl_cache_fetch_hits_total"),
        counter("rrl_solver_compiles_total"));
  };

  // Bury a peer: close its channel, reap it (local), and put any
  // in-flight unit back at the head of the queue (it is the oldest — and
  // statistically the most expensive — outstanding work). For a local
  // child the kill covers the one case where the worker is still running
  // — a corrupt frame (something not ours on its stdout) or a heartbeat
  // timeout — so the blocking reap can never stall the fleet behind a
  // live or wedged process; on the usual EOF path the process is already
  // a zombie (its pid cannot be reused before the reap) and the kill is a
  // no-op. A remote has no pid — closing the socket is the whole burial.
  const auto lose_peer = [&](Peer& peer) {
    if (!peer.alive) return;
    peer.alive = false;
    peer.channel.close();
    if (peer.pid >= 0) {
      ::kill(peer.pid, SIGKILL);
      int status = 0;
      ::waitpid(peer.pid, &status, 0);
    }
    ++report.workers_lost;
    if (peer.stats_index != Peer::kIdle) {
      report.worker_stats[peer.stats_index].lost = true;
    }
    if (peer.busy_unit != Peer::kIdle) {
      queue.push_front(peer.busy_unit);
      ++report.redispatched;
      dispatch_counters().requeued.add(1);
      peer.busy_unit = Peer::kIdle;
    }
  };

  // Refuse a remote whose handshake disagrees: one stray wrong binary
  // must not kill the study (unlike a LOCAL mismatch, which is the
  // parent's own configuration and is fatal). Not counted as lost — it
  // never held work.
  const auto reject_remote = [&](Peer& peer, const char* why) {
    std::fprintf(stderr, "dispatch: rejecting remote worker: %s\n", why);
    peer.alive = false;
    peer.channel.close();
    ++report.remotes_rejected;
  };

  // Hand the next queued unit to an idle, greeted peer. The channel
  // queues what the fd cannot take right now (the poll loop flushes on
  // POLLOUT), so a short write still assigns; only a hard write error
  // means the peer just died — bury it (the unit stays at the queue
  // front) and report failure so the caller's loop re-examines the fleet.
  const auto assign_next = [&](Peer& peer) -> bool {
    if (queue.empty()) return true;
    const std::size_t unit_index = queue.front();
    const WorkUnit& unit = plan.units[unit_index];
    WireAssign assign;
    assign.unit = unit.id;
    assign.first_scenario = unit.first;
    assign.scenario_count = unit.count;
    if (!peer.channel.send(
            encode_frame(WireType::kAssign, encode_assign(assign)))) {
      lose_peer(peer);
      return false;
    }
    queue.pop_front();
    peer.busy_unit = unit_index;
    dispatch_counters().assigned.add(1);
    return true;
  };

  // One peer's incoming frames (hello, results, pings, artifact
  // requests). Throws only on fatal fleet-wide errors (a LOCAL handshake
  // mismatch, a unit the peer was never assigned).
  const auto handle_frames = [&](Peer& peer) {
    std::size_t consumed = 0;
    while (peer.alive) {
      std::optional<WireFrame> frame;
      try {
        frame = decode_frame(peer.channel.inbox(), consumed);
      } catch (const std::exception& e) {
        // A corrupt frame means the channel carries something that is
        // not our protocol (e.g. a worker that printed to stdout, or a
        // stray connection): that peer is unusable.
        if (peer.remote && !peer.greeted) {
          reject_remote(peer, e.what());
        } else {
          std::fprintf(stderr, "dispatch: dropping worker: %s\n", e.what());
          lose_peer(peer);
        }
        return;
      }
      if (!frame.has_value()) return;
      peer.channel.inbox().erase(0, consumed);

      if (frame->type == WireType::kHello) {
        const WireHello hello = decode_hello(frame->payload);
        const bool agrees =
            hello.protocol == kWireProtocolVersion &&
            hello.plan_fingerprint == plan.fingerprint &&
            hello.unit_count == plan.units.size() &&
            hello.total_scenarios == plan.total_scenarios;
        if (!agrees) {
          if (peer.remote) {
            reject_remote(peer,
                          "plan disagrees with the parent's (study file "
                          "or binary version mismatch)");
            return;
          }
          throw contract_error(
              "dispatch: worker plan disagrees with the parent's (did the "
              "study file change, or do the binaries differ?)");
        }
        peer.greeted = true;
        if (peer.remote) {
          ++report.remote_workers;
          peer.stats_index = new_worker_stats(/*remote=*/true);
        }
        (void)assign_next(peer);
      } else if (frame->type == WireType::kResult) {
        const trace::Span span("unit.reduce", frame->payload.size());
        WireResult result = decode_result(frame->payload);
        if (peer.busy_unit == Peer::kIdle ||
            plan.units[peer.busy_unit].id != result.unit) {
          throw contract_error(
              "dispatch: worker returned a unit it was not assigned");
        }
        const WorkUnit& unit = plan.units[peer.busy_unit];
        peer.busy_unit = Peer::kIdle;
        report.worker_seconds += result.seconds;
        if (peer.stats_index != Peer::kIdle) {
          WorkerStats& stats = report.worker_stats[peer.stats_index];
          ++stats.units;
          stats.scenarios += unit.count;
          stats.busy_seconds += result.seconds;
        }
        reducer.add_unit(unit.first, unit.count, std::move(result.rows));
        ++units_reduced;
        report.scenarios += unit.count;
        (void)assign_next(peer);
      } else if (frame->type == WireType::kStatsReport) {
        // The worker's latest process-wide counter snapshot, piggybacked
        // on unit completion. Absolute values: keep the newest only.
        // Observability only — never touches the reducer.
        const WireStatsReport stats = decode_stats_report(frame->payload);
        dispatch_counters().stats_frames.add(1);
        if (peer.stats_index != Peer::kIdle) {
          report.worker_stats[peer.stats_index].counters = stats.counters;
        }
      } else if (frame->type == WireType::kPing) {
        // Liveness only; last_heard was refreshed by the read itself.
        dispatch_counters().heartbeats.add(1);
      } else if (frame->type == WireType::kArtifactRequest) {
        const trace::Span span("artifact.serve");
        const WireArtifactRequest request =
            decode_artifact_request(frame->payload);
        ++report.artifact_requests;
        WireArtifactData data;
        data.model_hash = request.model_hash;
        data.solver = request.solver;
        if (options.artifact_store != nullptr) {
          SolverConfig config;
          config.epsilon = request.epsilon;
          config.rate_factor = request.rate_factor;
          config.regenerative = static_cast<index_t>(request.regenerative);
          config.step_cap = request.step_cap;
          const auto artifact = options.artifact_store->load(
              request.model_hash, request.solver, config);
          if (artifact.has_value()) {
            std::ostringstream blob;
            write_artifact(blob, *artifact);
            data.found = true;
            data.blob = blob.str();
            ++report.artifact_hits;
          }
        }
        if (!peer.channel.send(encode_frame(WireType::kArtifactData,
                                            encode_artifact_data(data)))) {
          lose_peer(peer);
          return;
        }
      } else {
        throw contract_error("dispatch: unexpected frame from worker");
      }
    }
  };

  try {
    // Spawn INSIDE the teardown scope: a pipe/fork failure partway
    // through a large fleet (EMFILE, EAGAIN) must bury the workers
    // already running, not leak them blocked on their stdin forever.
    for (int i = 0; i < options.workers; ++i) {
      std::vector<std::string> argv = options.worker_command;
      if (static_cast<std::size_t>(i) < options.worker_extra_args.size()) {
        const std::vector<std::string>& extra =
            options.worker_extra_args[i];
        argv.insert(argv.end(), extra.begin(), extra.end());
      }
      Peer peer = spawn_worker(argv);
      peer.stats_index = new_worker_stats(/*remote=*/false);
      peers.push_back(std::move(peer));
    }

    while (units_reduced < plan.units.size()) {
      // Re-arm idle workers BEFORE blocking: a unit re-queued by a worker
      // death must reach a survivor that already went idle (its last
      // frame is long processed, so no event will ever prompt it again) —
      // without this, losing the holder of the final unit would leave the
      // loop polling silent channels forever.
      for (Peer& peer : peers) {
        if (queue.empty()) break;
        if (peer.alive && peer.greeted && peer.busy_unit == Peer::kIdle) {
          (void)assign_next(peer);
        }
      }

      constexpr std::size_t kListenerTag = static_cast<std::size_t>(-1);
      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_peers;
      for (std::size_t i = 0; i < peers.size(); ++i) {
        if (!peers[i].alive) continue;
        short events = POLLIN;
        if (peers[i].channel.wants_write()) {
          events = static_cast<short>(events | POLLOUT);
        }
        fds.push_back({peers[i].channel.read_fd(), events, 0});
        fd_peers.push_back(i);
      }
      const bool fleet_empty = fds.empty();
      if (options.listen_fd >= 0) {
        fds.push_back({options.listen_fd, POLLIN, 0});
        fd_peers.push_back(kListenerTag);
      }
      if (fleet_empty) {
        if (options.listen_fd < 0) {
          throw contract_error(
              "dispatch: all workers lost with work remaining (" +
              std::to_string(plan.units.size() - units_reduced) +
              " units undone)");
        }
        // Elastic fleet with a listener armed: work remains and nobody
        // holds it, but the next joiner can — wait instead of failing.
        if (!waiting_noted) {
          std::fprintf(stderr,
                       "dispatch: fleet empty, waiting for remote workers "
                       "to connect (%zu units remaining)\n",
                       plan.units.size() - units_reduced);
          waiting_noted = true;
        }
      }

      // Block until traffic — but never past the earliest remote
      // heartbeat deadline, so a hung machine is noticed even while
      // every channel is silent.
      int timeout_ms = -1;
      if (options.heartbeat_timeout_ms > 0) {
        const SteadyClock::time_point now = SteadyClock::now();
        for (const Peer& peer : peers) {
          if (!peer.alive || !peer.remote) continue;
          const auto deadline =
              peer.last_heard +
              std::chrono::milliseconds(options.heartbeat_timeout_ms);
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now)
                  .count();
          const int clamped =
              remaining < 0 ? 0 : static_cast<int>(remaining) + 1;
          if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
        }
      }
      // ... nor past the next live-stats line.
      if (options.stats_interval_ms > 0) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                next_stats - SteadyClock::now())
                .count();
        const int clamped =
            remaining < 0 ? 0 : static_cast<int>(remaining) + 1;
        if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
      }

      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw contract_error("dispatch: poll failed");
      }
      const SteadyClock::time_point now = SteadyClock::now();

      for (std::size_t f = 0; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        if (fd_peers[f] == kListenerTag) {
          // Accept every pending joiner; each greets (or times out)
          // like any other peer from here on.
          for (;;) {
            const int fd = tcp_accept(options.listen_fd);
            if (fd < 0) break;
            set_nonblocking(fd);
            Peer peer;
            peer.remote = true;
            peer.channel = FrameChannel(fd, fd, /*is_socket=*/true);
            peer.alive = true;
            peer.last_heard = now;
            peers.push_back(std::move(peer));
            waiting_noted = false;
          }
          continue;
        }
        Peer& peer = peers[fd_peers[f]];
        if (!peer.alive) continue;  // lost while handling a sibling
        if ((fds[f].revents & POLLOUT) != 0 && !peer.channel.flush()) {
          lose_peer(peer);
          continue;
        }
        if ((fds[f].revents & POLLIN) != 0) {
          switch (peer.channel.read_some()) {
            case ChannelIo::kOk:
              peer.last_heard = now;
              handle_frames(peer);
              break;
            case ChannelIo::kAgain:
              break;
            case ChannelIo::kEof:
            case ChannelIo::kError:
              lose_peer(peer);
              break;
          }
        } else if ((fds[f].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
          lose_peer(peer);  // hangup/error with nothing left to read
        }
      }

      // Heartbeat sweep: a remote silent past the deadline — no result,
      // no ping — is dead or hung; either way its unit must not wait on
      // it. (A hung-but-live remote that later wakes finds its socket
      // closed and exits; its late result is never double-reduced.)
      if (options.heartbeat_timeout_ms > 0) {
        for (Peer& peer : peers) {
          if (!peer.alive || !peer.remote) continue;
          if (now - peer.last_heard >
              std::chrono::milliseconds(options.heartbeat_timeout_ms)) {
            std::fprintf(stderr,
                         "dispatch: remote worker silent for %d ms, "
                         "declaring it dead\n",
                         options.heartbeat_timeout_ms);
            lose_peer(peer);
          }
        }
      }

      // Live stats line, at most one per interval (a burst of traffic
      // that overshoots several deadlines prints once and re-anchors).
      if (options.stats_interval_ms > 0 && now >= next_stats) {
        print_stats_line();
        const auto interval =
            std::chrono::milliseconds(options.stats_interval_ms);
        while (next_stats <= now) next_stats += interval;
      }
    }
  } catch (...) {
    // Fatal dispatch error: tear the fleet down before propagating so no
    // orphan worker outlives the parent.
    for (Peer& peer : peers) {
      if (!peer.alive) continue;
      if (peer.pid >= 0) ::kill(peer.pid, SIGTERM);
      lose_peer(peer);
    }
    throw;
  }

  // Every unit reduced: release the fleet. The shutdown frame is tiny,
  // but the channels are non-blocking — drain any queued remainder with
  // a short poll loop (best-effort: closing the channel also releases a
  // worker, via EOF).
  const std::string shutdown = encode_frame(WireType::kShutdown, {});
  for (Peer& peer : peers) {
    if (!peer.alive) continue;
    if (!peer.channel.send(shutdown)) continue;
    const SteadyClock::time_point give_up =
        SteadyClock::now() + std::chrono::seconds(5);
    while (peer.channel.wants_write() && SteadyClock::now() < give_up) {
      pollfd pfd{peer.channel.write_fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, 100) < 0 && errno != EINTR) break;
      if (!peer.channel.flush()) break;
    }
  }
  for (Peer& peer : peers) {
    if (!peer.alive) continue;
    peer.channel.close();
    if (peer.pid >= 0) {
      // A healthy worker exits promptly on shutdown/EOF. One that cannot
      // even be told (its pipe already broken) or that is hung must not
      // hang the parent's reap: grace-wait, then SIGKILL.
      int status = 0;
      const SteadyClock::time_point give_up =
          SteadyClock::now() + std::chrono::seconds(2);
      pid_t reaped = ::waitpid(peer.pid, &status, WNOHANG);
      while (reaped == 0 && SteadyClock::now() < give_up) {
        ::usleep(10 * 1000);
        reaped = ::waitpid(peer.pid, &status, WNOHANG);
      }
      if (reaped == 0) {
        ::kill(peer.pid, SIGKILL);
        ::waitpid(peer.pid, &status, 0);
      }
    }
    peer.alive = false;
  }

  reducer.finish();
  report.units = units_reduced;
  report.failed_scenarios = reducer.failed_scenarios();
  report.seconds = watch.seconds();
  // Fleet totals: each worker's counters are absolute for its process, so
  // summing the latest snapshots is the whole fleet's funnel.
  for (const WorkerStats& stats : report.worker_stats) {
    metrics::merge_counters(report.fleet_counters, stats.counters);
  }
  if (options.stats_interval_ms > 0) print_stats_line();
  return report;
}

// ---- worker side.

namespace {

/// The worker's half of the wire: one blocking read stream + one
/// mutex-serialized write stream (the main thread's results and the
/// heartbeat thread's pings interleave safely), plus a stash for frames
/// that arrive while the artifact fetcher is waiting for its reply.
struct WorkerLink {
  int in_fd;
  int out_fd;
  std::mutex write_mutex;
  std::string buffer;
  std::deque<WireFrame> pending;
  bool eof = false;     ///< parent closed the stream
  bool failed = false;  ///< hard read error or corrupt frame

  bool write_frame(const std::string& bytes) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    return write_all(out_fd, bytes);
  }

  /// Next frame straight off the wire (blocking; skips the stash).
  std::optional<WireFrame> read_frame() {
    for (;;) {
      std::size_t consumed = 0;
      try {
        std::optional<WireFrame> frame = decode_frame(buffer, consumed);
        if (frame.has_value()) {
          buffer.erase(0, consumed);
          return frame;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker: corrupt frame from parent: %s\n",
                     e.what());
        failed = true;
        return std::nullopt;
      }
      const ssize_t n = read_chunk(in_fd, buffer);
      if (n == 0) {
        eof = true;
        return std::nullopt;
      }
      if (n < 0) {
        failed = true;
        return std::nullopt;
      }
    }
  }

  /// Next frame for the main loop: stashed frames first, then the wire.
  std::optional<WireFrame> next_frame() {
    if (!pending.empty()) {
      WireFrame frame = std::move(pending.front());
      pending.pop_front();
      return frame;
    }
    return read_frame();
  }
};

/// The remote worker's liveness thread: one ping every interval, sent
/// through the link's write mutex so pings interleave with results, never
/// tear them. The main thread may be deep in a multi-minute solve — this
/// is what lets the parent distinguish that from a hang.
class Heartbeat {
 public:
  Heartbeat(WorkerLink& link, int interval_ms) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, &link, interval_ms] {
      const std::string ping = encode_frame(WireType::kPing, {});
      std::unique_lock<std::mutex> lock(mutex_);
      while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return stop_; })) {
        lock.unlock();
        // A failed ping means the parent is gone; stop — the main loop
        // will see the EOF/EPIPE on its own next wire operation.
        const bool ok = link.write_frame(ping);
        lock.lock();
        if (!ok) break;
      }
    });
  }

  void stop() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  ~Heartbeat() { stop(); }
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

int run_worker_loop(const StudyPlan& plan, SolverCache& cache,
                    const WorkerOptions& options, int in_fd, int out_fd) {
  // Writing a hello/result after the PARENT died must surface as
  // write_all's error return (clean exit 1), not a SIGPIPE kill that
  // skips destructors — and must not take an in-process caller down.
  const ScopedIgnoreSigpipe sigpipe_guard;

  WorkerLink link;
  link.in_fd = in_fd;
  link.out_fd = out_fd;

  if (options.fetch_artifacts) {
    // Last-chance artifact source: ask the parent's store over the wire
    // before compiling cold. Runs on the main thread (the cache resolves
    // scenarios serially before fanning the sweep out), so the blocking
    // read here never races the main loop's reads; frames that are not
    // our reply (there should be none, but the protocol does not forbid
    // them) are stashed for the main loop. Every failure path — write
    // error, EOF, corrupt blob, identity mismatch — degrades to nullopt:
    // a counted miss and a local compile, never a wrong answer.
    cache.set_fetcher([&link](const SolverCacheKey& key)
                          -> std::optional<CompiledArtifact> {
      WireArtifactRequest request;
      request.model_hash = key.model_hash;
      request.solver = key.solver;
      request.epsilon = key.epsilon;
      request.rate_factor = key.rate_factor;
      request.regenerative = key.regenerative;
      request.step_cap = key.step_cap;
      if (!link.write_frame(
              encode_frame(WireType::kArtifactRequest,
                           encode_artifact_request(request)))) {
        return std::nullopt;
      }
      for (;;) {
        std::optional<WireFrame> frame = link.read_frame();
        if (!frame.has_value()) return std::nullopt;
        if (frame->type != WireType::kArtifactData) {
          link.pending.push_back(std::move(*frame));
          continue;
        }
        WireArtifactData data;
        try {
          data = decode_artifact_data(frame->payload);
        } catch (const std::exception&) {
          return std::nullopt;
        }
        if (!data.found) return std::nullopt;
        SolverConfig config;
        config.epsilon = key.epsilon;
        config.rate_factor = key.rate_factor;
        config.regenerative = key.regenerative;
        config.step_cap = key.step_cap;
        try {
          std::istringstream in(data.blob);
          CompiledArtifact artifact = read_artifact(in);
          if (artifact_matches(artifact, key.solver, key.model_hash,
                               config)) {
            return artifact;
          }
        } catch (const std::exception&) {
          // fall through: a corrupt blob is a miss, not an error
        }
        return std::nullopt;
      }
    });
  }

  WireHello hello;
  hello.plan_fingerprint = plan.fingerprint;
  hello.unit_count = plan.units.size();
  hello.total_scenarios = plan.total_scenarios;
  if (!link.write_frame(
          encode_frame(WireType::kHello, encode_hello(hello)))) {
    return 1;
  }

  Heartbeat heartbeat(link, options.heartbeat_ms);

  ExecOptions exec;
  exec.jobs = options.jobs;
  exec.use_cache = options.use_cache;

  // Pool and workspaces persist across units: thread and buffer warm-up
  // is paid once per worker, not once per unit.
  ThreadPool pool(options.jobs);
  std::vector<SolveWorkspace> workspaces;

  int executed = 0;
  double busy_seconds = 0.0;
  for (;;) {
    const std::optional<WireFrame> frame = link.next_frame();
    if (!frame.has_value()) {
      // Parent gone mid-stream: clean exit when nothing was in flight
      // (EOF), error exit on corruption or a hard read failure.
      return link.eof ? 0 : 1;
    }

    if (frame->type == WireType::kShutdown) {
      const SolverCacheStats stats = cache.stats();
      if (stats.fetch_hits > 0 || stats.fetch_misses > 0) {
        std::fprintf(stderr, "worker: artifact fetch %zu hits / %zu misses\n",
                     stats.fetch_hits, stats.fetch_misses);
      }
      return 0;
    }
    if (frame->type != WireType::kAssign) {
      std::fprintf(stderr, "worker: unexpected frame type\n");
      return 1;
    }
    const WireAssign assign = decode_assign(frame->payload);
    if (assign.unit >= plan.units.size()) {
      std::fprintf(stderr, "worker: unit id out of range\n");
      return 1;
    }
    const WorkUnit& unit = plan.units[assign.unit];
    if (unit.first != assign.first_scenario ||
        unit.count != assign.scenario_count) {
      std::fprintf(stderr, "worker: unit range disagrees with parent\n");
      return 1;
    }
    if (options.die_after_units >= 0 &&
        executed >= options.die_after_units) {
      // Test hook: die mid-unit, after accepting the assignment and
      // before replying — exactly the window death recovery must cover.
      // The optional delay lets the rest of the fleet go idle first.
      if (options.die_delay_ms > 0) {
        ::usleep(static_cast<useconds_t>(options.die_delay_ms) * 1000);
      }
      ::_exit(3);
    }
    if (options.mute_after_units >= 0 &&
        executed >= options.mute_after_units) {
      // Test hook: accept the assignment, then go silent WITHOUT dying
      // or closing anything — no result, no pings, socket healthy, the
      // unit held hostage. Only the parent's heartbeat timeout can
      // reclaim it.
      heartbeat.stop();
      for (;;) ::pause();
    }

    const Stopwatch unit_watch;
    const ExecutedSlice slice =
        execute_unit(plan, unit, cache, exec, &pool, &workspaces);
    // Publish freshly compiled artifacts before replying: a fleet peer
    // pointed at the same cache-dir can then warm-start this model while
    // the run is still in progress. No-op without an attached store.
    {
      const trace::Span span("artifact.flush");
      cache.flush_to_store();
    }

    const bool deaf_now = options.deaf_after_units >= 0 &&
                          executed + 1 >= options.deaf_after_units;
    if (deaf_now) {
      // Test hook: stop READING without dying — close our end of the
      // parent->worker stream BEFORE replying, so the parent's next
      // assign write deterministically hits EPIPE (pipes) with the
      // process still alive: the observed-death-on-write path, which
      // must bury us, not crash the parent. (Closing after the reply
      // would race the parent's next assign into the pipe buffer and
      // deadlock the fleet.)
      ::close(in_fd);
    }

    WireResult result;
    result.unit = unit.id;
    result.seconds = unit_watch.seconds();
    result.rows = slice_rows(slice, plan.grids);
    ++executed;
    busy_seconds += result.seconds;

    // Piggyback this process's observability snapshot on the completion,
    // sent BEFORE the result frame: frames arrive in order, so when the
    // parent reduces this unit (possibly the run's last, after which it
    // stops reading us) it has already stored the snapshot that covers
    // it — final fleet totals miss nothing. Counter values are absolute,
    // so a frame lost with its worker only delays the parent's view.
    // Best-effort: a failed write here means the parent is gone, which
    // the result write below surfaces anyway.
    WireStatsReport stats;
    stats.units = static_cast<std::uint64_t>(executed);
    stats.busy_seconds = busy_seconds;
    stats.counters = metrics::snapshot().counters;
    (void)link.write_frame(
        encode_frame(WireType::kStatsReport, encode_stats_report(stats)));

    {
      const trace::Span span("wire.result.send", result.rows.size());
      if (!link.write_frame(encode_frame(WireType::kResult,
                                         encode_result(result)))) {
        return 1;
      }
    }

    if (deaf_now) {
      for (;;) ::pause();
    }
  }
}

}  // namespace rrl
