// Umbrella header of the rrl library.
//
// rrl reproduces Carrasco's "Transient Analysis of Dependability/
// Performability Models by Regenerative Randomization with Laplace Transform
// Inversion" (IPDPS 2000 Workshops): five transient solvers for rewarded
// CTMCs — standard randomization (SR), randomization with steady-state
// detection (RSD), regenerative randomization (RR), the paper's new
// variant RRL, and a uniformized-Krylov backend for large stiff models —
// plus the substrates (sparse kernels, Poisson arithmetic, uniformization,
// Laplace inversion, parametric model generation and exact lumping) and
// the paper's RAID-5 evaluation models.
//
// Quick start (see examples/quickstart.cpp and README.md):
//   rrl::Ctmc chain = ...;                      // your model
//   std::vector<double> rewards = ...;          // r_i >= 0
//   std::vector<double> alpha = ...;            // initial distribution
//   rrl::SolverConfig config;                   // eps, regenerative state
//   auto solver = rrl::make_solver("rrl", chain, rewards, alpha, config);
//   double ua = solver->solve_point(t, rrl::MeasureKind::kTrr).value;
//   // whole time grids amortize the schema / randomization pass:
//   auto report = solver->solve_grid(
//       rrl::SolveRequest::trr(rrl::log_time_grid(1.0, 1e5, 20)));
// The concrete classes (RegenerativeRandomizationLaplace, ...) remain
// available for method-specific tuning and rigorous bounds.
//
// Compile → execute split (core/compiled_artifact.hpp): the expensive
// model-derived state of a solver can be exported, serialized and
// re-imported, so a later process skips the compilation and still answers
// bit-identically:
//   auto artifact = rrl::export_artifact(*solver, model_hash, config);
//   rrl::write_artifact_file("m.rrla", artifact);        // io/artifact_codec
//   ...
//   auto warm = rrl::make_solver("rrl", chain, rewards, alpha, config);
//   warm->import_compiled(rrl::read_artifact_file("m.rrla"));
// The study subsystem automates this: give the SolverCache an
// ArtifactStore (study/artifact_store.hpp) — or `rrl_solve --cache-dir` —
// and repeated studies and all shards of a --shard k/N run start warm.
#pragma once

#include "core/compiled_artifact.hpp"  // IWYU pragma: export
#include "core/grid_sweep.hpp"         // IWYU pragma: export
#include "core/krylov_solver.hpp"      // IWYU pragma: export
#include "core/regenerative.hpp"       // IWYU pragma: export
#include "core/registry.hpp"           // IWYU pragma: export
#include "core/rr_solver.hpp"          // IWYU pragma: export
#include "core/rrl_solver.hpp"         // IWYU pragma: export
#include "core/rrl_transform.hpp"      // IWYU pragma: export
#include "core/solver.hpp"             // IWYU pragma: export
#include "core/standard_randomization.hpp"   // IWYU pragma: export
#include "core/steady_state_detection.hpp"   // IWYU pragma: export
#include "core/sweep_engine.hpp"       // IWYU pragma: export
#include "core/transient_solver.hpp"   // IWYU pragma: export
#include "core/vmodel.hpp"             // IWYU pragma: export
#include "laplace/crump.hpp"           // IWYU pragma: export
#include "laplace/epsilon.hpp"         // IWYU pragma: export
#include "laplace/error_control.hpp"   // IWYU pragma: export
#include "laplace/gaver_stehfest.hpp"  // IWYU pragma: export
#include "markov/builder.hpp"          // IWYU pragma: export
#include "markov/ctmc.hpp"             // IWYU pragma: export
#include "markov/dtmc.hpp"             // IWYU pragma: export
#include "markov/generator.hpp"        // IWYU pragma: export
#include "markov/lumping.hpp"          // IWYU pragma: export
#include "markov/poisson.hpp"          // IWYU pragma: export
#include "markov/scc.hpp"              // IWYU pragma: export
#include "markov/steady_state.hpp"     // IWYU pragma: export
#include "io/artifact_codec.hpp"       // IWYU pragma: export
#include "io/model_format.hpp"         // IWYU pragma: export
#include "io/model_solver.hpp"         // IWYU pragma: export
#include "io/net_transport.hpp"        // IWYU pragma: export
#include "io/wire_codec.hpp"           // IWYU pragma: export
#include "models/multiproc.hpp"        // IWYU pragma: export
#include "models/raid5.hpp"            // IWYU pragma: export
#include "models/simple.hpp"           // IWYU pragma: export
#include "sparse/aligned_alloc.hpp"    // IWYU pragma: export
#include "sparse/csr.hpp"              // IWYU pragma: export
#include "sparse/sell.hpp"             // IWYU pragma: export
#include "sparse/spmv_kernels.hpp"     // IWYU pragma: export
#include "sparse/vector_ops.hpp"       // IWYU pragma: export
#include "sparse/workspace.hpp"        // IWYU pragma: export
#include "study/artifact_store.hpp"    // IWYU pragma: export
#include "study/model_repository.hpp"  // IWYU pragma: export
#include "study/solver_cache.hpp"      // IWYU pragma: export
#include "study/study_dispatch.hpp"    // IWYU pragma: export
#include "study/study_exec.hpp"        // IWYU pragma: export
#include "study/study_format.hpp"      // IWYU pragma: export
#include "study/study_plan.hpp"        // IWYU pragma: export
#include "study/study_reduce.hpp"      // IWYU pragma: export
#include "study/study_report.hpp"      // IWYU pragma: export
#include "study/study_runner.hpp"      // IWYU pragma: export
#include "support/self_exe.hpp"        // IWYU pragma: export
#include "support/thread_pool.hpp"     // IWYU pragma: export
