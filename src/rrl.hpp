// Umbrella header of the rrl library.
//
// rrl reproduces Carrasco's "Transient Analysis of Dependability/
// Performability Models by Regenerative Randomization with Laplace Transform
// Inversion" (IPDPS 2000 Workshops): four transient solvers for rewarded
// CTMCs — standard randomization (SR), randomization with steady-state
// detection (RSD), regenerative randomization (RR) and the paper's new
// variant RRL — plus the substrates (sparse kernels, Poisson arithmetic,
// uniformization, Laplace inversion) and the paper's RAID-5 evaluation
// models.
//
// Quick start (see examples/quickstart.cpp):
//   rrl::Ctmc chain = ...;                      // your model
//   std::vector<double> rewards = ...;          // r_i >= 0
//   std::vector<double> alpha = ...;            // initial distribution
//   rrl::RegenerativeRandomizationLaplace solver(chain, rewards, alpha,
//                                                /*regenerative_state=*/0);
//   double ua = solver.trr(t).value;            // TRR(t)
//   double mu = solver.mrr(t).value;            // MRR(t)
#pragma once

#include "core/regenerative.hpp"       // IWYU pragma: export
#include "core/rr_solver.hpp"          // IWYU pragma: export
#include "core/rrl_solver.hpp"         // IWYU pragma: export
#include "core/rrl_transform.hpp"      // IWYU pragma: export
#include "core/solver.hpp"             // IWYU pragma: export
#include "core/standard_randomization.hpp"   // IWYU pragma: export
#include "core/steady_state_detection.hpp"   // IWYU pragma: export
#include "core/vmodel.hpp"             // IWYU pragma: export
#include "laplace/crump.hpp"           // IWYU pragma: export
#include "laplace/epsilon.hpp"         // IWYU pragma: export
#include "laplace/error_control.hpp"   // IWYU pragma: export
#include "laplace/gaver_stehfest.hpp"  // IWYU pragma: export
#include "markov/builder.hpp"          // IWYU pragma: export
#include "markov/ctmc.hpp"             // IWYU pragma: export
#include "markov/dtmc.hpp"             // IWYU pragma: export
#include "markov/poisson.hpp"          // IWYU pragma: export
#include "markov/scc.hpp"              // IWYU pragma: export
#include "markov/steady_state.hpp"     // IWYU pragma: export
#include "io/model_format.hpp"         // IWYU pragma: export
#include "models/multiproc.hpp"        // IWYU pragma: export
#include "models/raid5.hpp"            // IWYU pragma: export
#include "models/simple.hpp"           // IWYU pragma: export
#include "sparse/csr.hpp"              // IWYU pragma: export
#include "sparse/vector_ops.hpp"       // IWYU pragma: export
