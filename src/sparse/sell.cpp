#include "sparse/sell.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace rrl {

std::shared_ptr<const SellLayout> build_sell_layout(
    index_t rows, std::span<const std::int64_t> row_ptr,
    std::span<const index_t> col_idx, std::span<const double> values,
    bool force) {
  RRL_EXPECTS(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
  RRL_EXPECTS(col_idx.size() == values.size());

  const index_t num_chunks = rows / kSellChunkRows;
  if (num_chunks == 0) return nullptr;
  const index_t covered = num_chunks * kSellChunkRows;
  const std::int64_t covered_nnz = row_ptr[static_cast<std::size_t>(covered)];

  // Row-length histogram pass: per-chunk width (the longest row) gives the
  // padded slot count the layout would need.
  std::int64_t total_slots = 0;
  for (index_t c = 0; c < num_chunks; ++c) {
    std::int64_t width = 0;
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      const std::size_t r = static_cast<std::size_t>(c) * kSellChunkRows +
                            static_cast<std::size_t>(l);
      width = std::max(width, row_ptr[r + 1] - row_ptr[r]);
    }
    total_slots += width;
  }
  if (!force) {
    if (covered_nnz < kMinSellNnz || num_chunks < 2) return nullptr;
    if (static_cast<double>(total_slots) * kSellChunkRows >
        kMaxSellPadding * static_cast<double>(covered_nnz)) {
      return nullptr;
    }
  }

  auto layout = std::make_shared<SellLayout>();
  layout->covered_rows = covered;
  layout->num_chunks = num_chunks;
  layout->chunk_ptr.reserve(static_cast<std::size_t>(num_chunks) + 1);
  layout->chunk_ptr.push_back(0);
  layout->col_idx.assign(
      static_cast<std::size_t>(total_slots) * kSellChunkRows, 0);
  layout->values.assign(
      static_cast<std::size_t>(total_slots) * kSellChunkRows, 0.0);

  std::int64_t base = 0;  // slot offset of the current chunk
  for (index_t c = 0; c < num_chunks; ++c) {
    std::int64_t width = 0;
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      const std::size_t r = static_cast<std::size_t>(c) * kSellChunkRows +
                            static_cast<std::size_t>(l);
      const std::int64_t lo = row_ptr[r];
      const std::int64_t hi = row_ptr[r + 1];
      width = std::max(width, hi - lo);
      for (std::int64_t k = lo; k < hi; ++k) {
        const std::size_t slot = static_cast<std::size_t>(
            (base + (k - lo)) * kSellChunkRows + l);
        layout->col_idx[slot] = col_idx[static_cast<std::size_t>(k)];
        layout->values[slot] = values[static_cast<std::size_t>(k)];
      }
      // Padding slots keep the zero-fill: value 0.0, column 0.
    }
    base += width;
    layout->chunk_ptr.push_back(base);
  }
  RRL_ENSURES(base == total_slots);
  return layout;
}

}  // namespace rrl
