// Compressed-sparse-row matrix substrate.
//
// All solvers in this library reduce to repeated sparse matrix-vector
// products with the (randomized) transition matrix, so this module provides a
// cache-friendly CSR container, a duplicate-summing triplet builder, a
// transpose, gather-style SpMV entry points, and multi-RHS SpMM block
// entry points over column tiles. The products dispatch
// through the runtime-selected vectorized kernels (sparse/spmv_kernels.hpp)
// and, after a specialize() pass, through the blocked SELL-8 layout
// (sparse/sell.hpp) — all bit-identical to the serial scalar reference.
// Matrices are immutable after construction (P.10: prefer immutable data);
// specialize() only attaches derived data and must run before sharing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace rrl {

class ThreadPool;    // support/thread_pool.hpp
struct SellLayout;   // sparse/sell.hpp
struct SpmvKernels;  // sparse/spmv_kernels.hpp

/// Index type for matrix dimensions / state indices. 32-bit indices keep the
/// CSR arrays compact; models in this library are well below 2^31 states.
using index_t = std::int32_t;

/// One (row, col, value) entry used while assembling a sparse matrix.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  double value = 0.0;
};

/// One column tile of a multi-RHS product: `b` and `c` are the input and
/// output tiles in the column-interleaved layout of sparse/block.hpp
/// (element (row r, lane j) at tile[r * width + j]), `width` is the tile
/// stride (kSpmmTileNarrow or kSpmmTileWide), `cols` the live columns
/// <= width (metrics only — kernels compute every lane).
struct SpmmOperand {
  const double* b = nullptr;
  double* c = nullptr;
  index_t width = 0;
  index_t cols = 0;
};

/// Immutable CSR sparse matrix over doubles.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets. Duplicate (row, col) entries are summed; entries
  /// that sum to exactly zero are kept (callers may rely on the pattern).
  /// Preconditions: all indices within [0, rows) x [0, cols).
  static CsrMatrix from_triplets(index_t rows, index_t cols,
                                 std::vector<Triplet> entries);

  /// Re-assemble a matrix from raw CSR arrays — the exact inverse of
  /// reading row_ptr()/col_idx()/values(), used by the artifact codec to
  /// reconstruct a serialized matrix bit-identically (from_triplets would
  /// re-sort and re-sum, an O(nnz log nnz) detour for data that is already
  /// in canonical form). Validates the CSR invariants (monotone row
  /// pointers starting at 0, matching array lengths, column indices in
  /// range and strictly increasing within each row) and throws
  /// contract_error on violation, so a corrupt artifact is rejected rather
  /// than adopted.
  static CsrMatrix from_parts(index_t rows, index_t cols,
                              std::vector<std::int64_t> row_ptr,
                              std::vector<index_t> col_idx,
                              std::vector<double> values);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Row pointer array, size rows()+1.
  [[nodiscard]] std::span<const std::int64_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  /// Column index array, size nnz(), sorted within each row.
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept {
    return col_idx_;
  }
  /// Value array, size nnz().
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  /// Format-specialization pass (run at solver compile() time): analyze
  /// the row-length histogram and derive the blocked SELL-8 layout
  /// (sparse/sell.hpp) alongside the CSR arrays when the heuristic says it
  /// pays (>= kMinSellNnz covered entries, bounded padding);
  /// `force_blocked` bypasses the heuristic (tests, benchmarks). All
  /// products stay bit-identical either way — the layout only changes
  /// which kernel walks the entries, never the per-row accumulation
  /// order. NOT thread-safe: call before the matrix is shared across
  /// threads (the compile phase is single-threaded per matrix); copies
  /// share the derived layout. The layout is derived data and is never
  /// serialized (io/artifact_codec ships the canonical CSR arrays only);
  /// importers re-run this pass.
  void specialize(bool force_blocked = false);

  /// The derived blocked layout, or nullptr when specialize() has not run
  /// or rejected the matrix.
  [[nodiscard]] const SellLayout* sell() const noexcept {
    return sell_.get();
  }

  /// y = A x (gather kernel: one pass per row, sequential writes),
  /// dispatched through the process-wide active SpMV kernels
  /// (sparse/spmv_kernels.hpp).
  /// Preconditions: x.size() == cols(), y.size() == rows(); x and y distinct.
  void mul_vec(std::span<const double> x, std::span<double> y) const;

  /// y = A x with an explicit kernel variant — the testing/benchmark hook
  /// behind mul_vec (which passes active_kernels()). Same preconditions.
  void mul_vec_with(const SpmvKernels& kernels, std::span<const double> x,
                    std::span<double> y) const;

  /// y = A x with the rows partitioned across `pool` (chunks balanced by
  /// stored-entry count, one contiguous row range per worker). Each row is
  /// accumulated in the same order as the serial kernel and every worker
  /// writes a disjoint slice of y, so the result is bit-identical to
  /// mul_vec() regardless of thread count. Preconditions as mul_vec().
  void mul_vec(std::span<const double> x, std::span<double> y,
               ThreadPool& pool) const;

  /// y[0..leading) = (A x)[0..leading): the product restricted to the
  /// leading `leading` rows, each accumulated exactly as in mul_vec (the
  /// batched V-solve steps a block-concatenated matrix whose trailing
  /// blocks retire as their passes complete; restricting the product to
  /// the live prefix skips their work without touching the per-row
  /// arithmetic). Preconditions: x.size() == cols(), y.size() >= leading,
  /// 0 <= leading <= rows(); x and y distinct.
  void mul_vec_leading(std::span<const double> x, std::span<double> y,
                       index_t leading) const;

  /// Leading-rows product with the rows partitioned across `pool`
  /// (nnz-balanced contiguous chunks, bit-identical to the serial form —
  /// same guarantees as the pooled mul_vec).
  void mul_vec_leading(std::span<const double> x, std::span<double> y,
                       index_t leading, ThreadPool& pool) const;

  /// C[0..leading) = (A B)[0..leading) over a set of column tiles — the
  /// multi-RHS product. Each tile's input must cover cols() rows and its
  /// output at least `leading`; per tile the per-row, per-column
  /// accumulation order is exactly mul_vec's, so column j of the result
  /// is bitwise the single-vector product of column j. Dispatches through
  /// the process-wide active kernels.
  /// Preconditions: every operand width is kSpmmTileNarrow or
  /// kSpmmTileWide, 0 < cols <= width, b != c; 0 <= leading <= rows().
  void mul_block(std::span<const SpmmOperand> tiles, index_t leading) const;

  /// Pooled mul_block: rows partitioned across `pool` with the same
  /// nnz-balanced contiguous chunks as the pooled mul_vec (each worker
  /// applies every tile over its row range), bit-identical to the serial
  /// form for any thread count.
  void mul_block(std::span<const SpmmOperand> tiles, index_t leading,
                 ThreadPool& pool) const;

  /// mul_block with an explicit kernel variant — the testing/benchmark
  /// hook behind mul_block (which passes active_kernels()).
  void mul_block_with(const SpmvKernels& kernels,
                      std::span<const SpmmOperand> tiles,
                      index_t leading) const;

  /// y = A^T x (scatter kernel). Preconditions mirror mul_vec.
  void mul_vec_transposed(std::span<const double> x, std::span<double> y) const;

  /// Returns A^T as a new CSR matrix (used to turn row-stochastic P into a
  /// gather-friendly stepping operator for distributions).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Sum of each row's values (e.g. total exit rates of a rate matrix).
  [[nodiscard]] std::vector<double> row_sums() const;

  /// Value at (row, col); zero if the entry is not stored. O(log nnz(row)).
  [[nodiscard]] double coeff(index_t row, index_t col) const;

 private:
  /// Run `kernels` over rows [r_begin, r_end): SELL chunks for the
  /// chunk-aligned blocked span (when specialize() built one), CSR row
  /// kernel for the head/tail fringes. Bit-identical for any split.
  void apply_rows(const SpmvKernels& kernels, std::span<const double> x,
                  std::span<double> y, index_t r_begin, index_t r_end) const;

  /// The SpMM analogue of apply_rows: run the width-matched tile kernels
  /// of `kernels` over rows [r_begin, r_end) for every operand.
  void apply_rows_mm(const SpmvKernels& kernels,
                     std::span<const SpmmOperand> tiles, index_t r_begin,
                     index_t r_end) const;

  /// Boundary of worker chunk `c` when [0, leading) is split across
  /// `workers` nnz-balanced contiguous row ranges (SELL-snapped when a
  /// blocked layout exists) — shared by the pooled mul_vec_leading and
  /// mul_block paths.
  [[nodiscard]] index_t chunk_boundary(index_t leading, int workers,
                                       int c) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_ = {0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
  /// Derived blocked layout (never serialized); shared so copies reuse it.
  std::shared_ptr<const SellLayout> sell_;
};

}  // namespace rrl
