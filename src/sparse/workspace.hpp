// Reusable solve buffers for the randomization hot loops.
//
// Every randomization pass needs the same model-sized vectors: the current
// distribution (or backward reward vector) `pi`, the stepping target `next`,
// and occasional scratch. Allocating them per solve_grid() call is wasted
// work in sweep workloads that push hundreds of scenarios through the same
// process, so the solvers take an explicit SolveWorkspace whose buffers are
// resized (never shrunk below capacity) across calls — after warm-up, the
// vector iterates stepped in the hot loop allocate nothing. (Per-solve
// bookkeeping — Poisson weight windows, per-point accumulators — is sized
// by the request, not the model, and still allocates once per solve.)
//
// Threading contract: a workspace is mutable per-solve state. Solvers are
// immutable after construction and safe to share across threads, but each
// concurrent solve_grid() call must bring its OWN workspace (the sweep
// engine keeps one per worker).
#pragma once

#include <cstddef>
#include <vector>

namespace rrl {

class SolveWorkspace {
 public:
  /// Current-iterate buffer (forward pi or backward w), resized to n;
  /// contents unspecified on return.
  [[nodiscard]] std::vector<double>& pi(std::size_t n) {
    return sized(pi_, n);
  }
  /// Stepping target buffer, resized to n; contents unspecified on return.
  [[nodiscard]] std::vector<double>& next(std::size_t n) {
    return sized(next_, n);
  }
  /// General scratch buffer, resized to n; contents unspecified on return.
  [[nodiscard]] std::vector<double>& scratch(std::size_t n) {
    return sized(scratch_, n);
  }

 private:
  static std::vector<double>& sized(std::vector<double>& v, std::size_t n) {
    v.resize(n);  // capacity is retained across calls
    return v;
  }

  std::vector<double> pi_;
  std::vector<double> next_;
  std::vector<double> scratch_;
};

}  // namespace rrl
