// Reusable solve buffers for the randomization hot loops.
//
// Every randomization pass needs the same model-sized vectors: the current
// distribution (or backward reward vector) `pi`, the stepping target `next`,
// and occasional scratch. Allocating them per solve_grid() call is wasted
// work in sweep workloads that push hundreds of scenarios through the same
// process, so the solvers take an explicit SolveWorkspace whose buffers are
// resized (never shrunk below capacity) across calls — after warm-up, the
// vector iterates stepped in the hot loop allocate nothing. (Per-solve
// bookkeeping — Poisson weight windows, per-point accumulators — is sized
// by the request, not the model, and still allocates once per solve.)
//
// Threading contract: a workspace is mutable per-solve state. Solvers are
// immutable after construction and safe to share across threads, but each
// concurrent solve_grid() call must bring its OWN workspace (the sweep
// engine keeps one per worker).
//
// The workspace also carries the OPTIONAL worker pool for row-partitioned
// SpMV inside the solvers' hot loops (spmv_pool): when a batch has fewer
// scenarios than workers, the sweep engine runs the scenarios serially and
// points the workspace at the pool instead, so the idle workers go to the
// model-sized matrix-vector products. Solvers consult pooled_spmv(), which
// applies the nested-parallelism guard (never partition from inside a
// parallel region — the scenario axis already owns the cores) and a
// matrix-size floor (the per-step pool synchronization only pays for
// itself on large models).
// Buffers are allocated cache-line aligned (sparse/aligned_alloc.hpp): the
// vector operands of the vectorized SpMV kernels then start on a 64-byte
// boundary, so the kernels' (unaligned-instruction) loads and stores never
// split a cache line. Alignment is a throughput property only — kernel
// correctness and bit-identity never depend on it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sparse/aligned_alloc.hpp"
#include "sparse/block.hpp"
#include "support/thread_pool.hpp"

namespace rrl {

class SolveWorkspace {
 public:
  /// Current-iterate buffer (forward pi or backward w), resized to n;
  /// contents unspecified on return.
  [[nodiscard]] AlignedVector<double>& pi(std::size_t n) {
    return sized(pi_, n);
  }
  /// Stepping target buffer, resized to n; contents unspecified on return.
  [[nodiscard]] AlignedVector<double>& next(std::size_t n) {
    return sized(next_, n);
  }
  /// General scratch buffer, resized to n; contents unspecified on return.
  [[nodiscard]] AlignedVector<double>& scratch(std::size_t n) {
    return sized(scratch_, n);
  }

  /// Multi-RHS block buffers for the batched SpMM paths (current block
  /// and stepping target), reshaped to rows x cols and zero-filled;
  /// capacity is retained across batches like the vector buffers.
  [[nodiscard]] DenseBlock& block_x(index_t rows, index_t cols) {
    block_x_.reshape(rows, cols);
    return block_x_;
  }
  [[nodiscard]] DenseBlock& block_y(index_t rows, index_t cols) {
    block_y_.reshape(rows, cols);
    return block_y_;
  }

  /// Stored-entry floor below which the pooled SpMV path is skipped: one
  /// pooled product costs a pool wake-up + join (microseconds), which only
  /// amortizes against models whose serial SpMV is at least comparable.
  static constexpr std::int64_t kMinPooledNnz = 32768;

  /// Borrowed pool for row-partitioned SpMV in solver hot loops; nullptr
  /// (the default) keeps every product serial. Set by the sweep engine's
  /// small-batch path; callers driving solve_grid() directly may set it
  /// too. The pool must outlive the solve.
  ThreadPool* spmv_pool = nullptr;

  /// The pool to row-partition a product over, or nullptr to stay serial:
  /// requires a pool with real workers, a matrix of at least kMinPooledNnz
  /// stored entries, and — the nested-parallelism guard — a calling thread
  /// that is not already inside a parallel_for region (there the cores
  /// belong to the scenario axis, and a nested pooled call would run
  /// inline anyway). The pooled kernel is bit-identical to the serial one,
  /// so consulting this is purely a scheduling decision.
  [[nodiscard]] ThreadPool* pooled_spmv(std::int64_t nnz) const noexcept {
    return (spmv_pool != nullptr && spmv_pool->num_threads() > 1 &&
            nnz >= kMinPooledNnz && !ThreadPool::in_parallel_region())
               ? spmv_pool
               : nullptr;
  }

 private:
  static AlignedVector<double>& sized(AlignedVector<double>& v,
                                      std::size_t n) {
    v.resize(n);  // capacity is retained across calls
    return v;
  }

  AlignedVector<double> pi_;
  AlignedVector<double> next_;
  AlignedVector<double> scratch_;
  DenseBlock block_x_;
  DenseBlock block_y_;
};

}  // namespace rrl
