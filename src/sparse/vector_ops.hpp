// Small dense-vector kernels shared by the solvers: norms, dot products and a
// compensated (Neumaier) summation accumulator. Randomization methods add up
// millions of non-negative terms, so keeping summation error at machine-eps
// level matters for the paper's stringent error target (eps = 1e-12).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <utility>

#include "support/contracts.hpp"

namespace rrl {

/// Neumaier variant of Kahan compensated summation.
class CompensatedSum {
 public:
  constexpr CompensatedSum() = default;
  explicit constexpr CompensatedSum(double initial) : sum_(initial) {}

  constexpr void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      comp_ += (sum_ - t) + value;
    } else {
      comp_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] constexpr double value() const noexcept {
    return sum_ + comp_;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Sum of all elements (compensated).
[[nodiscard]] inline double sum(std::span<const double> x) noexcept {
  CompensatedSum s;
  for (const double v : x) s.add(v);
  return s.value();
}

/// Dot product (compensated).
[[nodiscard]] inline double dot(std::span<const double> x,
                                std::span<const double> y) {
  RRL_EXPECTS(x.size() == y.size());
  CompensatedSum s;
  for (std::size_t i = 0; i < x.size(); ++i) s.add(x[i] * y[i]);
  return s.value();
}

/// Compensated dot product against a strided column — the batched SpMM
/// block layout stores column lanes `stride` doubles apart (y_i at
/// column[i * stride]). Same products, same accumulation order as dot(),
/// so the result is bitwise identical to dot() on the gathered column.
[[nodiscard]] inline double dot_strided(std::span<const double> x,
                                        const double* column,
                                        std::size_t stride) {
  CompensatedSum s;
  for (std::size_t i = 0; i < x.size(); ++i) s.add(x[i] * column[i * stride]);
  return s.value();
}

/// Min and max of a strided column of length n (n >= 1). Order of the scan
/// cannot affect the extrema, so this matches std::minmax_element on the
/// gathered column bit-for-bit.
[[nodiscard]] inline std::pair<double, double> minmax_strided(
    const double* column, std::size_t n, std::size_t stride) {
  double mn = column[0];
  double mx = column[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double v = column[i * stride];
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  return {mn, mx};
}

/// L1 norm.
[[nodiscard]] inline double norm_l1(std::span<const double> x) noexcept {
  CompensatedSum s;
  for (const double v : x) s.add(std::abs(v));
  return s.value();
}

/// L-infinity norm.
[[nodiscard]] inline double norm_linf(std::span<const double> x) noexcept {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

/// L1 distance between two vectors of equal length.
[[nodiscard]] inline double dist_l1(std::span<const double> x,
                                    std::span<const double> y) {
  RRL_EXPECTS(x.size() == y.size());
  CompensatedSum s;
  for (std::size_t i = 0; i < x.size(); ++i) s.add(std::abs(x[i] - y[i]));
  return s.value();
}

}  // namespace rrl
