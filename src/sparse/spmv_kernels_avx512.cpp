// AVX-512F SpMV + SpMM kernels. Compiled with -mavx512f -ffp-contract=off as a
// per-file option (CMakeLists); only called after CPUID reports AVX-512F.
// Same determinism construction as the AVX2 variant, with 8-wide products:
// the CSR kernel reduces the eight lane products sequentially in
// registers, the SELL kernel carries one full chunk (8 rows) per ZMM
// accumulator.
#include "sparse/spmv_kernels.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace rrl {
namespace {

// All-lanes gather via the masked form: the plain _mm512_i32gather_pd
// seeds its pass-through operand with an undefined register, which GCC
// (correctly) flags under -Wmaybe-uninitialized; an explicit zero source
// with a full mask compiles to the same vgatherdpd.
inline __m512d gather8(const double* x, __m256i idx) {
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                  static_cast<__mmask8>(0xFF), idx, x, 8);
}

void csr_rows_avx512(const std::int64_t* row_ptr, const index_t* col_idx,
                     const double* values, const double* x, double* y,
                     index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    double acc = 0.0;
    std::int64_t k = lo;
    for (; k + 8 <= hi; k += 8) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col_idx + k));
      const __m512d xv = gather8(x, idx);
      const __m512d vv = _mm512_loadu_pd(values + k);
      const __m512d p = _mm512_mul_pd(vv, xv);
      // In-register sequential reduction of the lane partials: identical
      // addition order to the scalar reference.
      alignas(64) double lane[8];
      _mm512_store_pd(lane, p);
      acc += lane[0];
      acc += lane[1];
      acc += lane[2];
      acc += lane[3];
      acc += lane[4];
      acc += lane[5];
      acc += lane[6];
      acc += lane[7];
    }
    for (; k < hi; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void sell_chunks_avx512(const std::int64_t* chunk_ptr,
                        const index_t* col_idx, const double* values,
                        const double* x, double* y, index_t c_begin,
                        index_t c_end) {
  static_assert(kSellChunkRows == 8, "one ZMM accumulator per chunk");
  for (index_t c = c_begin; c < c_end; ++c) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(c)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(c) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m512d acc = _mm512_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cp));
      // Each lane is one row's own accumulator: the vector add IS the
      // serial left-to-right step of eight independent rows.
      acc = _mm512_add_pd(
          acc, _mm512_mul_pd(_mm512_loadu_pd(vp), gather8(x, idx)));
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    _mm512_storeu_pd(y + static_cast<std::size_t>(c) * kSellChunkRows, acc);
  }
}

// SpMM tile kernels. No gathers: the tile layout turns the RHS access
// into one contiguous load per nonzero (256-bit for width-4 tiles,
// 512-bit for width-8), each vector lane being one column's own
// sequential accumulator. -mavx512f implies AVX2 codegen for the YMM
// width-4 forms.

void csr_rows_mm4_avx512(const std::int64_t* row_ptr, const index_t* col_idx,
                         const double* values, const double* b, double* c,
                         index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    __m256d acc = _mm256_setzero_pd();
    for (std::int64_t k = lo; k < hi; ++k) {
      const __m256d v = _mm256_set1_pd(values[static_cast<std::size_t>(k)]);
      const double* bt =
          b + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  4;
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
    }
    _mm256_storeu_pd(c + static_cast<std::size_t>(r) * 4, acc);
  }
}

void csr_rows_mm8_avx512(const std::int64_t* row_ptr, const index_t* col_idx,
                         const double* values, const double* b, double* c,
                         index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    __m512d acc = _mm512_setzero_pd();
    for (std::int64_t k = lo; k < hi; ++k) {
      const __m512d v = _mm512_set1_pd(values[static_cast<std::size_t>(k)]);
      const double* bt =
          b + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  8;
      acc = _mm512_add_pd(acc, _mm512_mul_pd(v, _mm512_loadu_pd(bt)));
    }
    _mm512_storeu_pd(c + static_cast<std::size_t>(r) * 8, acc);
  }
}

void sell_chunks_mm4_avx512(const std::int64_t* chunk_ptr,
                            const index_t* col_idx, const double* values,
                            const double* b, double* c, index_t c_begin,
                            index_t c_end) {
  static_assert(kSellChunkRows == 8, "eight YMM row accumulators per chunk");
  for (index_t ch = c_begin; ch < c_end; ++ch) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(ch)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(ch) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m256d acc[kSellChunkRows];
    for (index_t l = 0; l < kSellChunkRows; ++l) acc[l] = _mm256_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        const __m256d v = _mm256_set1_pd(vp[l]);
        const double* bt = b + static_cast<std::size_t>(cp[l]) * 4;
        acc[l] = _mm256_add_pd(acc[l], _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
      }
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = c + static_cast<std::size_t>(ch) * kSellChunkRows * 4;
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      _mm256_storeu_pd(out + static_cast<std::size_t>(l) * 4, acc[l]);
    }
  }
}

void sell_chunks_mm8_avx512(const std::int64_t* chunk_ptr,
                            const index_t* col_idx, const double* values,
                            const double* b, double* c, index_t c_begin,
                            index_t c_end) {
  static_assert(kSellChunkRows == 8, "eight ZMM row accumulators per chunk");
  for (index_t ch = c_begin; ch < c_end; ++ch) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(ch)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(ch) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m512d acc[kSellChunkRows];
    for (index_t l = 0; l < kSellChunkRows; ++l) acc[l] = _mm512_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        const __m512d v = _mm512_set1_pd(vp[l]);
        const double* bt = b + static_cast<std::size_t>(cp[l]) * 8;
        acc[l] = _mm512_add_pd(acc[l], _mm512_mul_pd(v, _mm512_loadu_pd(bt)));
      }
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = c + static_cast<std::size_t>(ch) * kSellChunkRows * 8;
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      _mm512_storeu_pd(out + static_cast<std::size_t>(l) * 8, acc[l]);
    }
  }
}

constexpr SpmvKernels kAvx512Kernels{KernelIsa::kAvx512,
                                     "avx512",
                                     &csr_rows_avx512,
                                     &sell_chunks_avx512,
                                     &csr_rows_mm4_avx512,
                                     &csr_rows_mm8_avx512,
                                     &sell_chunks_mm4_avx512,
                                     &sell_chunks_mm8_avx512};

}  // namespace

namespace detail {
const SpmvKernels* avx512_kernels() noexcept { return &kAvx512Kernels; }
}  // namespace detail

}  // namespace rrl

#else  // !defined(__AVX512F__)

namespace rrl::detail {
const SpmvKernels* avx512_kernels() noexcept { return nullptr; }
}  // namespace rrl::detail

#endif
