// AVX-512F SpMV kernels. Compiled with -mavx512f -ffp-contract=off as a
// per-file option (CMakeLists); only called after CPUID reports AVX-512F.
// Same determinism construction as the AVX2 variant, with 8-wide products:
// the CSR kernel reduces the eight lane products sequentially in
// registers, the SELL kernel carries one full chunk (8 rows) per ZMM
// accumulator.
#include "sparse/spmv_kernels.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace rrl {
namespace {

// All-lanes gather via the masked form: the plain _mm512_i32gather_pd
// seeds its pass-through operand with an undefined register, which GCC
// (correctly) flags under -Wmaybe-uninitialized; an explicit zero source
// with a full mask compiles to the same vgatherdpd.
inline __m512d gather8(const double* x, __m256i idx) {
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                  static_cast<__mmask8>(0xFF), idx, x, 8);
}

void csr_rows_avx512(const std::int64_t* row_ptr, const index_t* col_idx,
                     const double* values, const double* x, double* y,
                     index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    double acc = 0.0;
    std::int64_t k = lo;
    for (; k + 8 <= hi; k += 8) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col_idx + k));
      const __m512d xv = gather8(x, idx);
      const __m512d vv = _mm512_loadu_pd(values + k);
      const __m512d p = _mm512_mul_pd(vv, xv);
      // In-register sequential reduction of the lane partials: identical
      // addition order to the scalar reference.
      alignas(64) double lane[8];
      _mm512_store_pd(lane, p);
      acc += lane[0];
      acc += lane[1];
      acc += lane[2];
      acc += lane[3];
      acc += lane[4];
      acc += lane[5];
      acc += lane[6];
      acc += lane[7];
    }
    for (; k < hi; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void sell_chunks_avx512(const std::int64_t* chunk_ptr,
                        const index_t* col_idx, const double* values,
                        const double* x, double* y, index_t c_begin,
                        index_t c_end) {
  static_assert(kSellChunkRows == 8, "one ZMM accumulator per chunk");
  for (index_t c = c_begin; c < c_end; ++c) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(c)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(c) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m512d acc = _mm512_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cp));
      // Each lane is one row's own accumulator: the vector add IS the
      // serial left-to-right step of eight independent rows.
      acc = _mm512_add_pd(
          acc, _mm512_mul_pd(_mm512_loadu_pd(vp), gather8(x, idx)));
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    _mm512_storeu_pd(y + static_cast<std::size_t>(c) * kSellChunkRows, acc);
  }
}

constexpr SpmvKernels kAvx512Kernels{KernelIsa::kAvx512, "avx512",
                                     &csr_rows_avx512, &sell_chunks_avx512};

}  // namespace

namespace detail {
const SpmvKernels* avx512_kernels() noexcept { return &kAvx512Kernels; }
}  // namespace detail

}  // namespace rrl

#else  // !defined(__AVX512F__)

namespace rrl::detail {
const SpmvKernels* avx512_kernels() noexcept { return nullptr; }
}  // namespace rrl::detail

#endif
