#include "sparse/csr.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace rrl {

CsrMatrix CsrMatrix::from_triplets(index_t rows, index_t cols,
                                   std::vector<Triplet> entries) {
  RRL_EXPECTS(rows >= 0 && cols >= 0);
  for (const Triplet& e : entries) {
    RRL_EXPECTS(e.row >= 0 && e.row < rows);
    RRL_EXPECTS(e.col >= 0 && e.col < cols);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (std::size_t i = 0; i < entries.size();) {
    const index_t r = entries[i].row;
    const index_t c = entries[i].col;
    double sum = 0.0;
    for (; i < entries.size() && entries[i].row == r && entries[i].col == c;
         ++i) {
      sum += entries[i].value;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.values_.size());
  }
  // Rows without entries inherit the running offset.
  for (std::size_t r = 1; r < m.row_ptr_.size(); ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

void CsrMatrix::mul_vec(std::span<const double> x, std::span<double> y) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == cols_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) == rows_);
  RRL_EXPECTS(x.data() != y.data());
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      acc += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void CsrMatrix::mul_vec_transposed(std::span<const double> x,
                                   std::span<double> y) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == rows_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) == cols_);
  RRL_EXPECTS(x.data() != y.data());
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xr;
    }
  }
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());

  // Counting pass: how many entries land in each transposed row.
  for (const index_t c : col_idx_) {
    ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t r = 1; r < t.row_ptr_.size(); ++r) {
    t.row_ptr_[r] += t.row_ptr_[r - 1];
  }
  // Placement pass, using a scratch cursor per transposed row.
  std::vector<std::int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      const index_t c = col_idx_[static_cast<std::size_t>(k)];
      const std::int64_t pos = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx_[static_cast<std::size_t>(pos)] = r;
      t.values_[static_cast<std::size_t>(pos)] =
          values_[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(static_cast<std::size_t>(rows_), 0.0);
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      acc += values_[static_cast<std::size_t>(k)];
    }
    sums[static_cast<std::size_t>(r)] = acc;
  }
  return sums;
}

double CsrMatrix::coeff(index_t row, index_t col) const {
  RRL_EXPECTS(row >= 0 && row < rows_);
  RRL_EXPECTS(col >= 0 && col < cols_);
  const auto lo = row_ptr_[static_cast<std::size_t>(row)];
  const auto hi = row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto first = col_idx_.begin() + lo;
  const auto last = col_idx_.begin() + hi;
  const auto it = std::lower_bound(first, last, col);
  if (it == last || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(lo + (it - first))];
}

}  // namespace rrl
