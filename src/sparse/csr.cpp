#include "sparse/csr.hpp"

#include <algorithm>

#include "sparse/sell.hpp"
#include "sparse/spmv_kernels.hpp"
#include "support/contracts.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

// Work counters for every full product entry point (mul_vec and the
// leading-prefix variants; apply_rows is their shared row walk and is not
// counted again). Three relaxed adds per product — negligible against
// even a few-hundred-state model's row sweep.
struct SpmvCounters {
  metrics::Counter& products = metrics::counter("rrl_spmv_products_total");
  metrics::Counter& rows = metrics::counter("rrl_spmv_rows_total");
  metrics::Counter& nnz = metrics::counter("rrl_spmv_nnz_total");
};

SpmvCounters& spmv_counters() {
  static SpmvCounters c;
  return c;
}

void note_product(const std::vector<std::int64_t>& row_ptr,
                  index_t leading) {
  SpmvCounters& c = spmv_counters();
  c.products.add(1);
  c.rows.add(static_cast<std::uint64_t>(leading));
  c.nnz.add(static_cast<std::uint64_t>(
      row_ptr[static_cast<std::size_t>(leading)]));
}

// Multi-RHS products count separately from SpMV so the scenarios/sec win
// of a batched solve is visible in the fleet stats: one `products` tick
// per mul_block call, `columns` summing the live lanes it advanced.
struct SpmmCounters {
  metrics::Counter& products = metrics::counter("rrl_spmm_products_total");
  metrics::Counter& columns = metrics::counter("rrl_spmm_columns_total");
};

SpmmCounters& spmm_counters() {
  static SpmmCounters c;
  return c;
}

void note_block(std::span<const SpmmOperand> tiles) {
  SpmmCounters& c = spmm_counters();
  c.products.add(1);
  std::uint64_t cols = 0;
  for (const SpmmOperand& t : tiles) {
    cols += static_cast<std::uint64_t>(t.cols);
  }
  c.columns.add(cols);
}

}  // namespace

// The single shared row walk of the serial and the row-partitioned paths:
// SELL chunks for the chunk-aligned blocked span, CSR row kernel for the
// fringes. Every kernel variant preserves the per-row accumulation order,
// so any split of [r_begin, r_end) is bit-identical to the serial scalar
// reference.
void CsrMatrix::apply_rows(const SpmvKernels& kernels,
                           std::span<const double> x, std::span<double> y,
                           index_t r_begin, index_t r_end) const {
  const std::int64_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const double* vals = values_.data();
  if (sell_ != nullptr && r_begin < sell_->covered_rows) {
    constexpr index_t kC = kSellChunkRows;
    const index_t blocked_end = std::min(r_end, sell_->covered_rows);
    // Head fringe up to the first chunk boundary at or after r_begin.
    const index_t head_end =
        std::min(blocked_end, (r_begin + kC - 1) / kC * kC);
    if (r_begin < head_end) {
      kernels.csr_rows(rp, ci, vals, x.data(), y.data(), r_begin, head_end);
    }
    const index_t c_begin = head_end / kC;
    const index_t c_end = blocked_end / kC;
    if (c_begin < c_end) {
      kernels.sell_chunks(sell_->chunk_ptr.data(), sell_->col_idx.data(),
                          sell_->values.data(), x.data(), y.data(), c_begin,
                          c_end);
    }
    // Tail fringe: the rows past the last whole chunk (blocked_end not a
    // chunk multiple only when it equals r_end or covered_rows' end).
    const index_t tail_begin = std::max(head_end, c_end * kC);
    if (tail_begin < r_end) {
      kernels.csr_rows(rp, ci, vals, x.data(), y.data(), tail_begin, r_end);
    }
  } else if (r_begin < r_end) {
    kernels.csr_rows(rp, ci, vals, x.data(), y.data(), r_begin, r_end);
  }
}

// Same fringe split as apply_rows, walked once per column tile: the block
// paths exist to stream the matrix once per TILE instead of once per
// column, so the tile loop stays outermost and the kernels keep whole
// W-wide row groups register-resident.
void CsrMatrix::apply_rows_mm(const SpmvKernels& kernels,
                              std::span<const SpmmOperand> tiles,
                              index_t r_begin, index_t r_end) const {
  const std::int64_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const double* vals = values_.data();
  for (const SpmmOperand& t : tiles) {
    const bool wide = t.width == kSpmmTileWide;
    const CsrRowsMmFn rows_fn =
        wide ? kernels.csr_rows_mm8 : kernels.csr_rows_mm4;
    const SellChunksMmFn chunks_fn =
        wide ? kernels.sell_chunks_mm8 : kernels.sell_chunks_mm4;
    if (sell_ != nullptr && r_begin < sell_->covered_rows) {
      constexpr index_t kC = kSellChunkRows;
      const index_t blocked_end = std::min(r_end, sell_->covered_rows);
      const index_t head_end =
          std::min(blocked_end, (r_begin + kC - 1) / kC * kC);
      if (r_begin < head_end) {
        rows_fn(rp, ci, vals, t.b, t.c, r_begin, head_end);
      }
      const index_t c_begin = head_end / kC;
      const index_t c_end = blocked_end / kC;
      if (c_begin < c_end) {
        chunks_fn(sell_->chunk_ptr.data(), sell_->col_idx.data(),
                  sell_->values.data(), t.b, t.c, c_begin, c_end);
      }
      const index_t tail_begin = std::max(head_end, c_end * kC);
      if (tail_begin < r_end) {
        rows_fn(rp, ci, vals, t.b, t.c, tail_begin, r_end);
      }
    } else if (r_begin < r_end) {
      rows_fn(rp, ci, vals, t.b, t.c, r_begin, r_end);
    }
  }
}

void CsrMatrix::specialize(bool force_blocked) {
  if (sell_ != nullptr) return;
  sell_ = build_sell_layout(rows_, row_ptr_, col_idx_, values_,
                            force_blocked);
}

CsrMatrix CsrMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<std::int64_t> row_ptr,
                                std::vector<index_t> col_idx,
                                std::vector<double> values) {
  RRL_EXPECTS(rows >= 0 && cols >= 0);
  RRL_EXPECTS(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
  RRL_EXPECTS(row_ptr.front() == 0);
  RRL_EXPECTS(row_ptr.back() == static_cast<std::int64_t>(col_idx.size()));
  RRL_EXPECTS(col_idx.size() == values.size());
  for (index_t r = 0; r < rows; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    RRL_EXPECTS(lo <= hi);
    for (std::int64_t k = lo; k < hi; ++k) {
      const index_t c = col_idx[static_cast<std::size_t>(k)];
      RRL_EXPECTS(c >= 0 && c < cols);
      // Strictly increasing within a row: the canonical form every
      // constructor of this class produces.
      RRL_EXPECTS(k == lo || col_idx[static_cast<std::size_t>(k) - 1] < c);
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::from_triplets(index_t rows, index_t cols,
                                   std::vector<Triplet> entries) {
  RRL_EXPECTS(rows >= 0 && cols >= 0);
  for (const Triplet& e : entries) {
    RRL_EXPECTS(e.row >= 0 && e.row < rows);
    RRL_EXPECTS(e.col >= 0 && e.col < cols);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (std::size_t i = 0; i < entries.size();) {
    const index_t r = entries[i].row;
    const index_t c = entries[i].col;
    double sum = 0.0;
    for (; i < entries.size() && entries[i].row == r && entries[i].col == c;
         ++i) {
      sum += entries[i].value;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.values_.size());
  }
  // Rows without entries inherit the running offset.
  for (std::size_t r = 1; r < m.row_ptr_.size(); ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

void CsrMatrix::mul_vec(std::span<const double> x, std::span<double> y) const {
  mul_vec_with(active_kernels(), x, y);
}

void CsrMatrix::mul_vec_with(const SpmvKernels& kernels,
                             std::span<const double> x,
                             std::span<double> y) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == cols_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) == rows_);
  // Aliasing is only a hazard when there is output to write; empty spans
  // may legitimately share data() == nullptr.
  RRL_EXPECTS(y.empty() || x.data() != y.data());
  note_product(row_ptr_, rows_);
  apply_rows(kernels, x, y, 0, rows_);
}

void CsrMatrix::mul_vec(std::span<const double> x, std::span<double> y,
                        ThreadPool& pool) const {
  // Validate both operands here (not just y): the leading == rows_ we
  // delegate with is only meaningful against a correctly sized x, and the
  // caller's error should name this call, not the delegate.
  RRL_EXPECTS(static_cast<index_t>(x.size()) == cols_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) == rows_);
  mul_vec_leading(x, y, rows_, pool);
}

void CsrMatrix::mul_vec_leading(std::span<const double> x,
                                std::span<double> y, index_t leading) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == cols_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) >= leading);
  RRL_EXPECTS(leading >= 0 && leading <= rows_);
  if (leading == 0) return;  // nothing to compute, y untouched
  RRL_EXPECTS(x.data() != y.data());
  note_product(row_ptr_, leading);
  apply_rows(active_kernels(), x, y, 0, leading);
}

void CsrMatrix::mul_vec_leading(std::span<const double> x,
                                std::span<double> y, index_t leading,
                                ThreadPool& pool) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == cols_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) >= leading);
  RRL_EXPECTS(leading >= 0 && leading <= rows_);
  if (leading == 0) return;  // nothing to compute, y untouched
  RRL_EXPECTS(x.data() != y.data());
  note_product(row_ptr_, leading);
  const SpmvKernels& kernels = active_kernels();
  const int workers = pool.num_threads();
  if (workers <= 1 || leading < 2 * workers) {
    apply_rows(kernels, x, y, 0, leading);
    return;
  }
  pool.parallel_for(
      static_cast<std::size_t>(workers), [&](std::size_t chunk, std::size_t) {
        const int c = static_cast<int>(chunk);
        apply_rows(kernels, x, y, chunk_boundary(leading, workers, c),
                   chunk_boundary(leading, workers, c + 1));
      });
}

// Contiguous row chunks balanced by stored-entry count: chunk boundary c
// is the first row whose cumulative nnz (row_ptr_) reaches c/workers of
// the leading rows' total — one binary search on the prefix-sum array.
// Boundaries of monotone targets are monotone, so chunks tile the rows
// disjointly, and the call allocates nothing (this path is meant for hot
// loops on large models). With a blocked layout the boundaries snap to
// SELL chunk multiples (rounding a monotone sequence stays monotone), so
// workers hand whole chunks to the blocked kernel instead of splitting
// them into fringes.
index_t CsrMatrix::chunk_boundary(index_t leading, int workers,
                                  int c) const {
  if (c <= 0) return index_t{0};
  if (c >= workers) return leading;
  const std::int64_t total = row_ptr_[static_cast<std::size_t>(leading)];
  const std::int64_t target = total * static_cast<std::int64_t>(c) / workers;
  const auto last = row_ptr_.begin() + leading + 1;
  const auto it = std::lower_bound(row_ptr_.begin(), last, target);
  index_t b = static_cast<index_t>(it - row_ptr_.begin());
  if (sell_ != nullptr) {
    constexpr index_t kC = kSellChunkRows;
    b = std::min(leading, (b + kC / 2) / kC * kC);
  }
  return b;
}

void CsrMatrix::mul_block(std::span<const SpmmOperand> tiles,
                          index_t leading) const {
  mul_block_with(active_kernels(), tiles, leading);
}

void CsrMatrix::mul_block_with(const SpmvKernels& kernels,
                               std::span<const SpmmOperand> tiles,
                               index_t leading) const {
  RRL_EXPECTS(leading >= 0 && leading <= rows_);
  // An empty product is a no-op before tile validation: a zero-row block
  // legitimately has no storage, so its tile pointers may be null.
  if (leading == 0 || tiles.empty()) return;
  for (const SpmmOperand& t : tiles) {
    RRL_EXPECTS(t.width == kSpmmTileNarrow || t.width == kSpmmTileWide);
    RRL_EXPECTS(t.cols > 0 && t.cols <= t.width);
    RRL_EXPECTS(t.b != nullptr && t.c != nullptr && t.b != t.c);
  }
  note_block(tiles);
  apply_rows_mm(kernels, tiles, 0, leading);
}

void CsrMatrix::mul_block(std::span<const SpmmOperand> tiles, index_t leading,
                          ThreadPool& pool) const {
  RRL_EXPECTS(leading >= 0 && leading <= rows_);
  if (leading == 0 || tiles.empty()) return;
  for (const SpmmOperand& t : tiles) {
    RRL_EXPECTS(t.width == kSpmmTileNarrow || t.width == kSpmmTileWide);
    RRL_EXPECTS(t.cols > 0 && t.cols <= t.width);
    RRL_EXPECTS(t.b != nullptr && t.c != nullptr && t.b != t.c);
  }
  note_block(tiles);
  const SpmvKernels& kernels = active_kernels();
  const int workers = pool.num_threads();
  if (workers <= 1 || leading < 2 * workers) {
    apply_rows_mm(kernels, tiles, 0, leading);
    return;
  }
  pool.parallel_for(
      static_cast<std::size_t>(workers), [&](std::size_t chunk, std::size_t) {
        const int c = static_cast<int>(chunk);
        apply_rows_mm(kernels, tiles, chunk_boundary(leading, workers, c),
                      chunk_boundary(leading, workers, c + 1));
      });
}

void CsrMatrix::mul_vec_transposed(std::span<const double> x,
                                   std::span<double> y) const {
  RRL_EXPECTS(static_cast<index_t>(x.size()) == rows_);
  RRL_EXPECTS(static_cast<index_t>(y.size()) == cols_);
  RRL_EXPECTS(x.data() != y.data());
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xr;
    }
  }
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());

  // Counting pass: how many entries land in each transposed row.
  for (const index_t c : col_idx_) {
    ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t r = 1; r < t.row_ptr_.size(); ++r) {
    t.row_ptr_[r] += t.row_ptr_[r - 1];
  }
  // Placement pass, using a scratch cursor per transposed row.
  std::vector<std::int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      const index_t c = col_idx_[static_cast<std::size_t>(k)];
      const std::int64_t pos = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx_[static_cast<std::size_t>(pos)] = r;
      t.values_[static_cast<std::size_t>(pos)] =
          values_[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(static_cast<std::size_t>(rows_), 0.0);
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const std::int64_t lo = row_ptr_[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      acc += values_[static_cast<std::size_t>(k)];
    }
    sums[static_cast<std::size_t>(r)] = acc;
  }
  return sums;
}

double CsrMatrix::coeff(index_t row, index_t col) const {
  RRL_EXPECTS(row >= 0 && row < rows_);
  RRL_EXPECTS(col >= 0 && col < cols_);
  const auto lo = row_ptr_[static_cast<std::size_t>(row)];
  const auto hi = row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto first = col_idx_.begin() + lo;
  const auto last = col_idx_.begin() + hi;
  const auto it = std::lower_bound(first, last, col);
  if (it == last || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(lo + (it - first))];
}

}  // namespace rrl
