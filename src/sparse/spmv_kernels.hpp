// Vectorized, format-specialized SpMV kernels with runtime dispatch.
//
// Every solver hot loop in this library bottoms out in CsrMatrix::mul_vec
// (SR/RSD stepping, the regenerative schema's excursion passes, the fused
// block-CSR batched V-solve, pooled row-partitioned products), so the row
// kernels live here as a function-pointer table selected ONCE per process:
//
//   scalar   portable reference, baseline x86-64 (always present)
//   avx2     4-lane products, gathers via vgatherdpd (when compiled in
//            and the CPU reports AVX2)
//   avx512   8-lane products (when compiled in and the CPU reports
//            AVX-512F)
//
// Selection is CPUID-based (best supported ISA wins) and overridable with
// RRL_KERNEL=scalar|avx2|avx512 for testing and byte-compare CI runs; an
// unavailable or unknown value falls back to the best supported variant
// with a warning on stderr.
//
// Determinism contract — every variant is BIT-IDENTICAL to the scalar
// reference on finite inputs, because the serial left-to-right
// accumulation order within each row is preserved everywhere:
//  * CSR row kernels compute the per-entry products in vector lanes, then
//    reduce the lane partials sequentially in registers (acc += p0;
//    acc += p1; ...) — same products, same addition order as scalar.
//  * SELL chunk kernels vectorize ACROSS rows (sparse/sell.hpp): each lane
//    is one row's own sequential accumulator, so within-row order never
//    changes; padding contributes 0.0 * x[0] = +-0.0, and adding a signed
//    zero to a finite accumulation that started at +0.0 cannot change its
//    bits ((+0) + (-0) = +0 under round-to-nearest).
//  * The kernel translation units are compiled with -ffp-contract=off, so
//    no FMA contraction can merge a product and an addition into a
//    single differently-rounded operation. There is no --fast-math escape
//    hatch: a kernel that cannot reproduce the scalar bits does not ship.
//
// The contract assumes finite operands (no NaN/Inf in x or the matrix),
// which the solvers' distribution/reward preconditions already guarantee;
// 0.0 * Inf in a padding lane would be the one way to tell the layouts
// apart.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/sell.hpp"

namespace rrl {

/// The instruction sets a kernel variant is implemented with.
enum class KernelIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Short name of an ISA ("scalar", "avx2", "avx512") — the RRL_KERNEL
/// vocabulary.
[[nodiscard]] const char* kernel_isa_name(KernelIsa isa) noexcept;

/// CSR row-range kernel: y[r] = sum_k values[k] * x[col_idx[k]] for each
/// row r in [r_begin, r_end), entries accumulated in stored order.
using CsrRowsFn = void (*)(const std::int64_t* row_ptr,
                           const index_t* col_idx, const double* values,
                           const double* x, double* y, index_t r_begin,
                           index_t r_end);

/// SELL chunk-range kernel over a SellLayout's padded arrays: writes
/// y[8c .. 8c+8) for each chunk c in [c_begin, c_end), each lane
/// accumulated in stored (= CSR) order.
using SellChunksFn = void (*)(const std::int64_t* chunk_ptr,
                              const index_t* col_idx, const double* values,
                              const double* x, double* y, index_t c_begin,
                              index_t c_end);

/// One dispatchable kernel variant.
struct SpmvKernels {
  KernelIsa isa = KernelIsa::kScalar;
  const char* name = "scalar";
  CsrRowsFn csr_rows = nullptr;
  SellChunksFn sell_chunks = nullptr;
};

/// The scalar reference variant (always available).
[[nodiscard]] const SpmvKernels& scalar_kernels() noexcept;

/// The variant for `isa`, or nullptr when it is not compiled into this
/// binary or the running CPU does not support it.
[[nodiscard]] const SpmvKernels* kernels_for(KernelIsa isa) noexcept;

/// Best ISA usable on this host (compiled in AND reported by CPUID).
[[nodiscard]] KernelIsa best_supported_isa() noexcept;

/// Resolve an RRL_KERNEL-style override to a usable variant: nullptr or
/// "auto" picks best_supported_isa(); a known but unavailable or an
/// unknown name falls back to the best variant with a one-line warning on
/// stderr. Pure of process state — active_kernels() feeds it the
/// environment once; tests feed it strings directly.
[[nodiscard]] const SpmvKernels& resolve_kernels(const char* override_name);

/// The process-wide active variant: resolve_kernels(getenv("RRL_KERNEL")),
/// evaluated once on first use. Every CsrMatrix product dispatches through
/// this table.
[[nodiscard]] const SpmvKernels& active_kernels();

}  // namespace rrl
