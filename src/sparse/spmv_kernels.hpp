// Vectorized, format-specialized SpMV kernels with runtime dispatch.
//
// Every solver hot loop in this library bottoms out in CsrMatrix::mul_vec
// (SR/RSD stepping, the regenerative schema's excursion passes, the fused
// block-CSR batched V-solve, pooled row-partitioned products), so the row
// kernels live here as a function-pointer table selected ONCE per process:
//
//   scalar   portable reference, baseline x86-64 (always present)
//   avx2     4-lane products, gathers via vgatherdpd (when compiled in
//            and the CPU reports AVX2)
//   avx512   8-lane products (when compiled in and the CPU reports
//            AVX-512F)
//
// Selection is CPUID-based (best supported ISA wins) and overridable with
// RRL_KERNEL=scalar|avx2|avx512 for testing and byte-compare CI runs; an
// unavailable or unknown value falls back to the best supported variant
// with a warning on stderr.
//
// Determinism contract — every variant is BIT-IDENTICAL to the scalar
// reference on finite inputs, because the serial left-to-right
// accumulation order within each row is preserved everywhere:
//  * CSR row kernels compute the per-entry products in vector lanes, then
//    reduce the lane partials sequentially in registers (acc += p0;
//    acc += p1; ...) — same products, same addition order as scalar.
//  * SELL chunk kernels vectorize ACROSS rows (sparse/sell.hpp): each lane
//    is one row's own sequential accumulator, so within-row order never
//    changes; padding contributes 0.0 * x[0] = +-0.0, and adding a signed
//    zero to a finite accumulation that started at +0.0 cannot change its
//    bits ((+0) + (-0) = +0 under round-to-nearest).
//  * The kernel translation units are compiled with -ffp-contract=off, so
//    no FMA contraction can merge a product and an addition into a
//    single differently-rounded operation. There is no --fast-math escape
//    hatch: a kernel that cannot reproduce the scalar bits does not ship.
//
// The contract assumes finite operands (no NaN/Inf in x or the matrix),
// which the solvers' distribution/reward preconditions already guarantee;
// 0.0 * Inf in a padding lane would be the one way to tell the layouts
// apart.
//
// Multi-RHS (SpMM) kernels live in the same table. A block of right-hand
// sides is stored as column TILES of fixed width W in {4, 8}: element
// (row r, lane j) of a tile lives at tile[r * W + j], so one nonzero
// costs a single broadcast of the matrix value plus one contiguous
// W-element load — the per-column gather of x disappears, which is where
// the arithmetic-intensity win over W separate SpMV passes comes from.
// Each lane j is an independent sequential accumulator walking the row's
// entries in stored order, so every output column is bitwise identical
// to the scalar single-vector SpMV of that column by construction; the
// same signed-zero argument covers SELL padding, and dead lanes of a
// partially filled tile never mix with live ones.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/sell.hpp"

namespace rrl {

/// The instruction sets a kernel variant is implemented with.
enum class KernelIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Short name of an ISA ("scalar", "avx2", "avx512") — the RRL_KERNEL
/// vocabulary.
[[nodiscard]] const char* kernel_isa_name(KernelIsa isa) noexcept;

/// CSR row-range kernel: y[r] = sum_k values[k] * x[col_idx[k]] for each
/// row r in [r_begin, r_end), entries accumulated in stored order.
using CsrRowsFn = void (*)(const std::int64_t* row_ptr,
                           const index_t* col_idx, const double* values,
                           const double* x, double* y, index_t r_begin,
                           index_t r_end);

/// SELL chunk-range kernel over a SellLayout's padded arrays: writes
/// y[8c .. 8c+8) for each chunk c in [c_begin, c_end), each lane
/// accumulated in stored (= CSR) order.
using SellChunksFn = void (*)(const std::int64_t* chunk_ptr,
                              const index_t* col_idx, const double* values,
                              const double* x, double* y, index_t c_begin,
                              index_t c_end);

/// SpMM column-tile widths. A block of N columns is covered by
/// floor(N / 8) wide tiles plus one padded fringe tile: a narrow one when
/// the remainder is 1..4 live columns, a wide one when it is 5..7.
inline constexpr index_t kSpmmTileNarrow = 4;
inline constexpr index_t kSpmmTileWide = 8;

/// CSR row-range SpMM kernel over one column tile of fixed width W (4 for
/// the *_mm4 pointer, 8 for *_mm8): for each row r in [r_begin, r_end)
/// and each lane j < W, c[r*W + j] = sum_k values[k] * b[col_idx[k]*W + j]
/// with the entries of row r accumulated in stored order per lane.
using CsrRowsMmFn = void (*)(const std::int64_t* row_ptr,
                             const index_t* col_idx, const double* values,
                             const double* b, double* c, index_t r_begin,
                             index_t r_end);

/// SELL chunk-range SpMM kernel, same tile layout: writes the 8 x W output
/// sub-block c[(8c)*W .. (8c+8)*W) for each chunk c in [c_begin, c_end),
/// each (row, lane) accumulated in stored (= CSR) order.
using SellChunksMmFn = void (*)(const std::int64_t* chunk_ptr,
                                const index_t* col_idx, const double* values,
                                const double* b, double* c, index_t c_begin,
                                index_t c_end);

/// One dispatchable kernel variant. Every compiled-in variant provides the
/// full set — single-vector and both SpMM tile widths for both formats —
/// so dispatch never needs a per-pointer fallback.
struct SpmvKernels {
  KernelIsa isa = KernelIsa::kScalar;
  const char* name = "scalar";
  CsrRowsFn csr_rows = nullptr;
  SellChunksFn sell_chunks = nullptr;
  CsrRowsMmFn csr_rows_mm4 = nullptr;
  CsrRowsMmFn csr_rows_mm8 = nullptr;
  SellChunksMmFn sell_chunks_mm4 = nullptr;
  SellChunksMmFn sell_chunks_mm8 = nullptr;
};

/// The scalar reference variant (always available).
[[nodiscard]] const SpmvKernels& scalar_kernels() noexcept;

/// The variant for `isa`, or nullptr when it is not compiled into this
/// binary or the running CPU does not support it.
[[nodiscard]] const SpmvKernels* kernels_for(KernelIsa isa) noexcept;

/// Best ISA usable on this host (compiled in AND reported by CPUID).
[[nodiscard]] KernelIsa best_supported_isa() noexcept;

/// Resolve an RRL_KERNEL-style override to a usable variant: nullptr or
/// "auto" picks best_supported_isa(); a known but unavailable or an
/// unknown name falls back to the best variant with a one-line warning on
/// stderr. Pure of process state — active_kernels() feeds it the
/// environment once; tests feed it strings directly.
[[nodiscard]] const SpmvKernels& resolve_kernels(const char* override_name);

/// The process-wide active variant: resolve_kernels(getenv("RRL_KERNEL")),
/// evaluated once on first use. Every CsrMatrix product dispatches through
/// this table.
[[nodiscard]] const SpmvKernels& active_kernels();

/// Whether multi-RHS batched stepping is enabled. RRL_SPMM=off (or =0)
/// routes shared-model batches back through the per-scenario SpMV paths;
/// used by CI byte-compare runs, read from the environment on every call
/// so one process can compare both paths. Both paths are bit-identical by
/// the kernel contract — the toggle exists to prove it.
[[nodiscard]] bool spmm_enabled() noexcept;

}  // namespace rrl
