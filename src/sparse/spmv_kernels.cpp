// Scalar reference kernels + the runtime dispatch table.
//
// This translation unit is compiled with -ffp-contract=off (CMakeLists)
// so the scalar reference can never be FMA-contracted into a
// differently-rounded form, whatever the global optimization flags are.
#include "sparse/spmv_kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/metrics.hpp"

namespace rrl {
namespace detail {

// Defined in spmv_kernels_avx2.cpp / spmv_kernels_avx512.cpp; return
// nullptr when their TU was compiled without the ISA (non-x86 target or a
// compiler without the flag).
const SpmvKernels* avx2_kernels() noexcept;
const SpmvKernels* avx512_kernels() noexcept;

}  // namespace detail

namespace {

void csr_rows_scalar(const std::int64_t* row_ptr, const index_t* col_idx,
                     const double* values, const double* x, double* y,
                     index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    double acc = 0.0;
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void sell_chunks_scalar(const std::int64_t* chunk_ptr, const index_t* col_idx,
                        const double* values, const double* x, double* y,
                        index_t c_begin, index_t c_end) {
  for (index_t c = c_begin; c < c_end; ++c) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(c)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(c) + 1] - base;
    double acc[kSellChunkRows] = {};
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    for (std::int64_t k = 0; k < width; ++k) {
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        acc[l] += vp[l] * x[static_cast<std::size_t>(cp[l])];
      }
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = y + static_cast<std::size_t>(c) * kSellChunkRows;
    for (index_t l = 0; l < kSellChunkRows; ++l) out[l] = acc[l];
  }
}

// Scalar SpMM tile kernels, one instantiation per tile width. Lane j of
// the tile is the j-th column's own sequential accumulator: per nonzero
// the matrix value is read once and multiplied into all W lanes from one
// contiguous W-element load of b — same products, same per-column
// addition order as csr_rows_scalar on that column alone.
template <index_t W>
void csr_rows_mm_scalar(const std::int64_t* row_ptr, const index_t* col_idx,
                        const double* values, const double* b, double* c,
                        index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    double acc[W] = {};
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    for (std::int64_t k = lo; k < hi; ++k) {
      const double v = values[static_cast<std::size_t>(k)];
      const double* bt =
          b + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  static_cast<std::size_t>(W);
      for (index_t j = 0; j < W; ++j) acc[j] += v * bt[j];
    }
    double* ct = c + static_cast<std::size_t>(r) * static_cast<std::size_t>(W);
    for (index_t j = 0; j < W; ++j) ct[j] = acc[j];
  }
}

template <index_t W>
void sell_chunks_mm_scalar(const std::int64_t* chunk_ptr,
                           const index_t* col_idx, const double* values,
                           const double* b, double* c, index_t c_begin,
                           index_t c_end) {
  for (index_t ch = c_begin; ch < c_end; ++ch) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(ch)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(ch) + 1] - base;
    double acc[kSellChunkRows][W] = {};
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    for (std::int64_t k = 0; k < width; ++k) {
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        const double v = vp[l];
        const double* bt = b + static_cast<std::size_t>(cp[l]) *
                                   static_cast<std::size_t>(W);
        for (index_t j = 0; j < W; ++j) acc[l][j] += v * bt[j];
      }
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = c + static_cast<std::size_t>(ch) * kSellChunkRows *
                          static_cast<std::size_t>(W);
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      for (index_t j = 0; j < W; ++j) {
        out[static_cast<std::size_t>(l) * static_cast<std::size_t>(W) + j] =
            acc[l][j];
      }
    }
  }
}

constexpr SpmvKernels kScalarKernels{KernelIsa::kScalar,
                                     "scalar",
                                     &csr_rows_scalar,
                                     &sell_chunks_scalar,
                                     &csr_rows_mm_scalar<kSpmmTileNarrow>,
                                     &csr_rows_mm_scalar<kSpmmTileWide>,
                                     &sell_chunks_mm_scalar<kSpmmTileNarrow>,
                                     &sell_chunks_mm_scalar<kSpmmTileWide>};

bool cpu_supports(KernelIsa isa) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return isa == KernelIsa::kScalar;
#endif
}

}  // namespace

const char* kernel_isa_name(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const SpmvKernels& scalar_kernels() noexcept { return kScalarKernels; }

const SpmvKernels* kernels_for(KernelIsa isa) noexcept {
  if (!cpu_supports(isa)) return nullptr;
  switch (isa) {
    case KernelIsa::kScalar:
      return &kScalarKernels;
    case KernelIsa::kAvx2:
      return detail::avx2_kernels();
    case KernelIsa::kAvx512:
      return detail::avx512_kernels();
  }
  return nullptr;
}

KernelIsa best_supported_isa() noexcept {
  if (kernels_for(KernelIsa::kAvx512) != nullptr) return KernelIsa::kAvx512;
  if (kernels_for(KernelIsa::kAvx2) != nullptr) return KernelIsa::kAvx2;
  return KernelIsa::kScalar;
}

const SpmvKernels& resolve_kernels(const char* override_name) {
  const SpmvKernels& best = *kernels_for(best_supported_isa());
  if (override_name == nullptr || override_name[0] == '\0' ||
      std::strcmp(override_name, "auto") == 0) {
    return best;
  }
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (std::strcmp(override_name, kernel_isa_name(isa)) != 0) continue;
    if (const SpmvKernels* k = kernels_for(isa)) return *k;
    std::fprintf(stderr,
                 "rrl: RRL_KERNEL=%s is not available on this host "
                 "(not compiled in or unsupported CPU); using %s\n",
                 override_name, best.name);
    return best;
  }
  std::fprintf(stderr,
               "rrl: unknown RRL_KERNEL=%s (expected scalar|avx2|avx512); "
               "using %s\n",
               override_name, best.name);
  return best;
}

const SpmvKernels& active_kernels() {
  static const SpmvKernels& active = []() -> const SpmvKernels& {
    const SpmvKernels& k = resolve_kernels(std::getenv("RRL_KERNEL"));
    // 0 = scalar, 1 = avx2, 2 = avx512 — same order as KernelIsa, so the
    // metrics view names the variant the whole process is running with.
    // The SpMM tile kernels ride the same table, so the two gauges can
    // only ever disagree if a future variant ships one side without the
    // other.
    metrics::gauge("rrl_spmv_kernel_isa").set(static_cast<int>(k.isa));
    metrics::gauge("rrl_spmm_kernel_isa").set(static_cast<int>(k.isa));
    return k;
  }();
  return active;
}

bool spmm_enabled() noexcept {
  const char* v = std::getenv("RRL_SPMM");
  return v == nullptr ||
         (std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0);
}

}  // namespace rrl
