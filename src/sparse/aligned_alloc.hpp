// Cache-line-aligned allocation for SpMV operands.
//
// The vectorized kernels (sparse/spmv_kernels.hpp) issue unaligned vector
// loads, so alignment is never a correctness requirement — but a 64-byte
// base keeps every 8-double slot of the blocked SELL layout and every
// workspace iterate on one cache line, which avoids split loads/stores in
// the hot stepping loops. AlignedVector is a drop-in std::vector whose
// storage always starts on a 64-byte boundary.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace rrl {

/// Minimum alignment of kernel operands: one x86 cache line, which also
/// covers the widest vector register in use (64-byte ZMM).
inline constexpr std::size_t kKernelAlignment = 64;

/// std::allocator drop-in whose allocations start on an `Alignment`-byte
/// boundary.
template <class T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T));

  using value_type = T;

  constexpr AlignedAllocator() noexcept = default;
  template <class U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend constexpr bool operator==(const AlignedAllocator&,
                                   const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Contiguous buffer whose data() is 64-byte aligned.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace rrl
