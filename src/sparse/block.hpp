// Column-tile-interleaved dense block: the RHS/result container of the
// multi-vector SpMM paths (sparse/spmv_kernels.hpp).
//
// A block of `cols` vectors of length `rows` is stored as a sequence of
// column tiles: floor(cols / 8) full wide tiles (width 8) plus, when
// columns remain, one padded fringe tile — narrow (width 4) for 1..4 live
// columns, wide for 5..7. Within a tile of width W, element (row r,
// lane j) lives at tile[r * W + j], so a kernel touching row r reads or
// writes one contiguous W-element group per nonzero instead of W strided
// gathers. All tiles share one AlignedVector allocation (64-byte aligned,
// like every kernel-facing buffer), and reshape() retains capacity across
// solves the way SolveWorkspace's vectors do.
//
// Padding lanes (the dead columns of a partially filled fringe tile) are
// zero-initialized and stay finite under stepping; kernels compute them
// like any other lane, but no reader ever looks at them, and lanes never
// mix — so their presence cannot perturb live-column bits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sparse/aligned_alloc.hpp"
#include "sparse/spmv_kernels.hpp"
#include "support/contracts.hpp"

namespace rrl {

class DenseBlock {
 public:
  /// Lay out `rows x cols` (cols >= 0; zero cols means zero tiles) and
  /// zero-fill the storage, retaining capacity from previous shapes.
  void reshape(index_t rows, index_t cols) {
    RRL_EXPECTS(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    tiles_.clear();
    std::int64_t offset = 0;
    for (index_t col = 0; col < cols; col += kSpmmTileWide) {
      const index_t live = std::min(cols - col, kSpmmTileWide);
      const index_t width =
          live <= kSpmmTileNarrow ? kSpmmTileNarrow : kSpmmTileWide;
      tiles_.push_back(Tile{width, col, live, offset});
      offset += static_cast<std::int64_t>(rows) * width;
    }
    data_.assign(static_cast<std::size_t>(offset), 0.0);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t num_tiles() const noexcept {
    return static_cast<index_t>(tiles_.size());
  }

  /// Tile stride (4 or 8); `tile_cols` is the live columns <= width.
  [[nodiscard]] index_t tile_width(index_t t) const {
    return tiles_[checked(t)].width;
  }
  [[nodiscard]] index_t tile_cols(index_t t) const {
    return tiles_[checked(t)].live;
  }
  /// First block-column covered by tile t (always 8 * t).
  [[nodiscard]] index_t tile_col_begin(index_t t) const {
    return tiles_[checked(t)].col_begin;
  }

  [[nodiscard]] double* tile(index_t t) {
    return data_.data() + static_cast<std::size_t>(tiles_[checked(t)].offset);
  }
  [[nodiscard]] const double* tile(index_t t) const {
    return data_.data() + static_cast<std::size_t>(tiles_[checked(t)].offset);
  }

  /// Tile index / lane of a block column. Every tile but the fringe is
  /// wide, so the mapping is a plain division by the wide width.
  [[nodiscard]] static index_t tile_of(index_t col) noexcept {
    return col / kSpmmTileWide;
  }
  [[nodiscard]] static index_t lane_of(index_t col) noexcept {
    return col % kSpmmTileWide;
  }

  [[nodiscard]] double& at(index_t row, index_t col) {
    return tile(tile_of(col))[element(row, col)];
  }
  [[nodiscard]] double at(index_t row, index_t col) const {
    return tile(tile_of(col))[element(row, col)];
  }

  /// Scatter a length-rows vector into column `col`'s lane.
  void fill_column(index_t col, std::span<const double> v) {
    RRL_EXPECTS(static_cast<index_t>(v.size()) == rows_);
    const index_t t = tile_of(col);
    const index_t w = tile_width(t);
    double* base = tile(t) + lane_of(col);
    for (index_t r = 0; r < rows_; ++r) {
      base[static_cast<std::size_t>(r) * static_cast<std::size_t>(w)] =
          v[static_cast<std::size_t>(r)];
    }
  }

  void swap(DenseBlock& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    tiles_.swap(other.tiles_);
    data_.swap(other.data_);
  }

 private:
  struct Tile {
    index_t width = 0;
    index_t col_begin = 0;
    index_t live = 0;
    std::int64_t offset = 0;
  };

  [[nodiscard]] std::size_t checked(index_t t) const {
    RRL_EXPECTS(t >= 0 && t < num_tiles());
    return static_cast<std::size_t>(t);
  }

  [[nodiscard]] std::size_t element(index_t row, index_t col) const {
    RRL_EXPECTS(row >= 0 && row < rows_);
    RRL_EXPECTS(col >= 0 && col < cols_);
    return static_cast<std::size_t>(row) *
               static_cast<std::size_t>(tiles_[tile_of(col)].width) +
           static_cast<std::size_t>(lane_of(col));
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Tile> tiles_;
  AlignedVector<double> data_;
};

}  // namespace rrl
