// SELL-8 blocked sparse layout: the format-specialization target of
// CsrMatrix::specialize().
//
// A strictly sequential per-row accumulation (the library's determinism
// contract) cannot be vectorized *within* a row — the floating-point add
// chain is order-fixed — but rows are independent, so it vectorizes
// *across* rows: pack 8 consecutive rows into a chunk, store their entries
// column-major (slot k holds the k-th entry of each of the 8 rows, shorter
// rows padded with value 0.0), and one vector register then carries 8
// independent left-to-right accumulators. This is SELL-C-sigma with C = 8
// and sigma = 1: no row reordering, so y is written in natural order and
// the result is bit-identical to the CSR kernel row by row (a 0.0-padding
// product contributes +0.0, which never changes a finite accumulation —
// see spmv_kernels.hpp for the full contract).
//
// The layout is DERIVED data: built from the CSR arrays by specialize(),
// rebuilt after artifact import, and never serialized (io/artifact_codec
// ships only the canonical CSR form).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "sparse/aligned_alloc.hpp"
#include "sparse/csr.hpp"

namespace rrl {

/// Rows per SELL chunk. Fixed at 8 (one AVX-512 register, two AVX2
/// registers) so the layout is identical whatever kernel ISA later runs
/// over it — the dispatch decision never changes the stored bytes.
inline constexpr index_t kSellChunkRows = 8;

/// The blocked layout of the leading floor(rows/8)*8 rows of a CSR matrix.
/// The tail rows (rows % 8) always go through the CSR row kernel.
///
/// Chunk c covers rows [8c, 8c+8) and occupies value/column slots
/// [chunk_ptr[c], chunk_ptr[c+1]), where one slot is 8 consecutive lanes:
/// entry (slot k, lane l) belongs to row 8c+l and is that row's k-th
/// stored entry, or padding (value 0.0, column 0) once the row is
/// exhausted. Columns within a lane keep the CSR order, so each lane's
/// accumulation order is exactly the serial kernel's.
struct SellLayout {
  index_t covered_rows = 0;  ///< multiple of kSellChunkRows
  index_t num_chunks = 0;    ///< covered_rows / kSellChunkRows
  /// Slot offsets per chunk, size num_chunks + 1; chunk width (its longest
  /// row's entry count) is chunk_ptr[c+1] - chunk_ptr[c].
  std::vector<std::int64_t> chunk_ptr;
  /// Padded column indices, kSellChunkRows per slot, 64-byte aligned.
  AlignedVector<index_t> col_idx;
  /// Padded values, kSellChunkRows per slot, 64-byte aligned.
  AlignedVector<double> values;

  /// Total slots (padded per-lane entries = slots * 8 lanes).
  [[nodiscard]] std::int64_t slots() const noexcept {
    return chunk_ptr.empty() ? 0 : chunk_ptr.back();
  }
};

/// Heuristic floor: matrices below this stored-entry count never pay for
/// the blocked layout (their whole SpMV is microseconds).
inline constexpr std::int64_t kMinSellNnz = 4096;

/// Heuristic ceiling on padding: the blocked layout is rejected when the
/// padded slot count would exceed this multiple of the covered entries
/// (very skewed row-length histograms — padding work would eat the lane
/// parallelism).
inline constexpr double kMaxSellPadding = 1.5;

/// Analyze the row-length histogram of the given CSR arrays and build the
/// blocked layout, or return nullptr when the heuristic rejects it (too
/// few entries, fewer than two full chunks, or too much padding).
/// `force` bypasses the heuristic (tests, benchmarks) but still returns
/// nullptr when no full chunk exists.
[[nodiscard]] std::shared_ptr<const SellLayout> build_sell_layout(
    index_t rows, std::span<const std::int64_t> row_ptr,
    std::span<const index_t> col_idx, std::span<const double> values,
    bool force = false);

}  // namespace rrl
