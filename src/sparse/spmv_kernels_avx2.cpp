// AVX2 SpMV + SpMM kernels. Compiled with -mavx2 -ffp-contract=off as a per-file
// option (CMakeLists) so the rest of the library stays baseline x86-64 and
// the binary runs anywhere — this variant is only ever *called* after
// CPUID reports AVX2. Without the flag (non-x86 target, compiler lacking
// -mavx2) the TU degrades to a nullptr registration.
//
// Determinism: products are computed in vector lanes, but additions happen
// in the serial order — the CSR kernel reduces the four lane products
// sequentially in registers, the SELL kernel keeps one independent
// sequential accumulator per row lane. -ffp-contract=off forbids the
// compiler from fusing the explicit mul/add intrinsic pairs into FMAs.
#include "sparse/spmv_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rrl {
namespace {

// All-lanes gather via the masked form: the plain _mm256_i32gather_pd
// seeds its pass-through operand with an undefined register, which GCC
// (correctly) flags under -Wmaybe-uninitialized; an explicit zero source
// with an all-ones mask compiles to the same vgatherdpd.
inline __m256d gather4(const double* x, __m128i idx) {
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx, ones, 8);
}

void csr_rows_avx2(const std::int64_t* row_ptr, const index_t* col_idx,
                   const double* values, const double* x, double* y,
                   index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    double acc = 0.0;
    std::int64_t k = lo;
    for (; k + 4 <= hi; k += 4) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(col_idx + k));
      const __m256d xv = gather4(x, idx);
      const __m256d vv = _mm256_loadu_pd(values + k);
      const __m256d p = _mm256_mul_pd(vv, xv);
      // In-register sequential reduction of the lane partials: identical
      // addition order to the scalar reference.
      alignas(32) double lane[4];
      _mm256_store_pd(lane, p);
      acc += lane[0];
      acc += lane[1];
      acc += lane[2];
      acc += lane[3];
    }
    for (; k < hi; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void sell_chunks_avx2(const std::int64_t* chunk_ptr, const index_t* col_idx,
                      const double* values, const double* x, double* y,
                      index_t c_begin, index_t c_end) {
  static_assert(kSellChunkRows == 8, "two 4-lane halves per chunk");
  for (index_t c = c_begin; c < c_end; ++c) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(c)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(c) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cp));
      const __m128i i1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cp + 4));
      // Each lane is one row's own accumulator: the vector add IS the
      // serial left-to-right step of eight independent rows.
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(_mm256_loadu_pd(vp), gather4(x, i0)));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(_mm256_loadu_pd(vp + 4), gather4(x, i1)));
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = y + static_cast<std::size_t>(c) * kSellChunkRows;
    _mm256_storeu_pd(out, acc0);
    _mm256_storeu_pd(out + 4, acc1);
  }
}

// SpMM tile kernels. The tile layout (lane j of row r at tile[r*W + j])
// makes the RHS access a plain contiguous load, so no gathers appear at
// all: per nonzero, one vbroadcastsd + one vmovupd + mul + add advance W
// independent per-column accumulators by exactly the scalar step.

void csr_rows_mm4_avx2(const std::int64_t* row_ptr, const index_t* col_idx,
                       const double* values, const double* b, double* c,
                       index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    __m256d acc = _mm256_setzero_pd();
    for (std::int64_t k = lo; k < hi; ++k) {
      const __m256d v = _mm256_set1_pd(values[static_cast<std::size_t>(k)]);
      const double* bt =
          b + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  4;
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
    }
    _mm256_storeu_pd(c + static_cast<std::size_t>(r) * 4, acc);
  }
}

void csr_rows_mm8_avx2(const std::int64_t* row_ptr, const index_t* col_idx,
                       const double* values, const double* b, double* c,
                       index_t r_begin, index_t r_end) {
  for (index_t r = r_begin; r < r_end; ++r) {
    const std::int64_t lo = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::int64_t k = lo; k < hi; ++k) {
      const __m256d v = _mm256_set1_pd(values[static_cast<std::size_t>(k)]);
      const double* bt =
          b + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]) *
                  8;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v, _mm256_loadu_pd(bt + 4)));
    }
    double* ct = c + static_cast<std::size_t>(r) * 8;
    _mm256_storeu_pd(ct, acc0);
    _mm256_storeu_pd(ct + 4, acc1);
  }
}

void sell_chunks_mm4_avx2(const std::int64_t* chunk_ptr,
                          const index_t* col_idx, const double* values,
                          const double* b, double* c, index_t c_begin,
                          index_t c_end) {
  static_assert(kSellChunkRows == 8, "eight YMM row accumulators per chunk");
  for (index_t ch = c_begin; ch < c_end; ++ch) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(ch)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(ch) + 1] - base;
    const index_t* cp = col_idx + base * kSellChunkRows;
    const double* vp = values + base * kSellChunkRows;
    __m256d acc[kSellChunkRows];
    for (index_t l = 0; l < kSellChunkRows; ++l) acc[l] = _mm256_setzero_pd();
    for (std::int64_t k = 0; k < width; ++k) {
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        const __m256d v = _mm256_set1_pd(vp[l]);
        const double* bt = b + static_cast<std::size_t>(cp[l]) * 4;
        acc[l] = _mm256_add_pd(acc[l], _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
      }
      cp += kSellChunkRows;
      vp += kSellChunkRows;
    }
    double* out = c + static_cast<std::size_t>(ch) * kSellChunkRows * 4;
    for (index_t l = 0; l < kSellChunkRows; ++l) {
      _mm256_storeu_pd(out + static_cast<std::size_t>(l) * 4, acc[l]);
    }
  }
}

void sell_chunks_mm8_avx2(const std::int64_t* chunk_ptr,
                          const index_t* col_idx, const double* values,
                          const double* b, double* c, index_t c_begin,
                          index_t c_end) {
  static_assert(kSellChunkRows == 8, "two width-4 half passes per chunk");
  // 8 rows x 8 columns would need sixteen YMM accumulators — the whole
  // register file, guaranteeing spills. Two half passes over the chunk
  // (column lanes [0,4) then [4,8)) keep eight accumulators live; each
  // lane still walks its row's entries in stored order, so per-column
  // bits are unchanged.
  for (index_t ch = c_begin; ch < c_end; ++ch) {
    const std::int64_t base = chunk_ptr[static_cast<std::size_t>(ch)];
    const std::int64_t width =
        chunk_ptr[static_cast<std::size_t>(ch) + 1] - base;
    double* out = c + static_cast<std::size_t>(ch) * kSellChunkRows * 8;
    for (int h = 0; h < 2; ++h) {
      const index_t* cp = col_idx + base * kSellChunkRows;
      const double* vp = values + base * kSellChunkRows;
      __m256d acc[kSellChunkRows];
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        acc[l] = _mm256_setzero_pd();
      }
      for (std::int64_t k = 0; k < width; ++k) {
        for (index_t l = 0; l < kSellChunkRows; ++l) {
          const __m256d v = _mm256_set1_pd(vp[l]);
          const double* bt = b + static_cast<std::size_t>(cp[l]) * 8 + h * 4;
          acc[l] =
              _mm256_add_pd(acc[l], _mm256_mul_pd(v, _mm256_loadu_pd(bt)));
        }
        cp += kSellChunkRows;
        vp += kSellChunkRows;
      }
      for (index_t l = 0; l < kSellChunkRows; ++l) {
        _mm256_storeu_pd(out + static_cast<std::size_t>(l) * 8 + h * 4,
                         acc[l]);
      }
    }
  }
}

constexpr SpmvKernels kAvx2Kernels{KernelIsa::kAvx2,
                                   "avx2",
                                   &csr_rows_avx2,
                                   &sell_chunks_avx2,
                                   &csr_rows_mm4_avx2,
                                   &csr_rows_mm8_avx2,
                                   &sell_chunks_mm4_avx2,
                                   &sell_chunks_mm8_avx2};

}  // namespace

namespace detail {
const SpmvKernels* avx2_kernels() noexcept { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace rrl

#else  // !defined(__AVX2__)

namespace rrl::detail {
const SpmvKernels* avx2_kernels() noexcept { return nullptr; }
}  // namespace rrl::detail

#endif
