// The serializable compiled artifact of one (model, solver, config) — the
// compile half of the compile → execute split.
//
// Every solver in this library separates into a deterministic COMPILE step
// (model-derived state that is expensive or repeated: the randomized DTMC
// in CSR gather form for SR/RSD, the regenerative schema — and with it the
// V-model and the TRR transform coefficients — for RR/RRL) and a cheap
// EXECUTE step (the per-request sweep over the compiled state). The
// artifact captures exactly the compile half in plain data, so it can be
// handed across process boundaries: serialized by io/artifact_codec,
// persisted by the study subsystem's disk tier (study/artifact_store), and
// re-imported into a freshly constructed solver, which then answers every
// request bit-identically to one that compiled from scratch.
//
// What is stored vs derived: for RR/RRL only the schemas are stored — the
// V_{K,L} model and the transform coefficients are pure deterministic
// functions of a schema (build_vmodel, TrrTransform), so import
// re-materializes them and bit-identity is preserved without shipping the
// redundant bytes. For SR/RSD the randomized DTMC (P transposed in CSR
// gather form, self-loops, Lambda) IS the compiled state and is stored
// whole; RSD's row-form P for the backward pass is re-derived by exact
// transposition.
//
// Identity: `model_hash` (study/model_repository.hpp's content hash),
// `solver` and `config` name the compilation inputs exactly — the disk
// tier refuses artifacts whose identity does not match the requested key,
// so a stale or foreign file degrades to a cache miss, never to a wrong
// answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/regenerative.hpp"
#include "core/registry.hpp"
#include "sparse/csr.hpp"

namespace rrl {

/// One memoized (t, eps) schema of a regenerative solver.
struct ArtifactSchemaEntry {
  double t = 0.0;    ///< time horizon the truncation was chosen for
  double eps = 0.0;  ///< total error budget the truncation met
  RegenerativeSchema schema;
};

/// The compiled state of one solver instance, in plain serializable data.
struct CompiledArtifact {
  /// Registry name of the method the artifact was compiled by ("sr",
  /// "rsd", "rr", "rrl", ...).
  std::string solver;
  /// Content hash of the source model (see hash_model); 0 when the
  /// producer did not know it (direct export outside the study layer).
  std::uint64_t model_hash = 0;
  /// Construction config, exactly as the solver cache keys it.
  SolverConfig config;

  /// Provenance of a GENERATED model (markov/generator.hpp): the
  /// canonical spec the chain was expanded from, empty for explicit
  /// models. Informational — identity is still (solver, model_hash,
  /// config); hash_model derives model_hash from this very spec for
  /// generated models, so the content-addressed cache and remote artifact
  /// fetch work unchanged, and the spec here lets an operator read WHAT a
  /// cached blob solves without re-expanding it.
  std::string model_spec;
  /// State count before the generator's lumping pass
  /// (markov/lumping.hpp); -1 when no lumping was applied. Records that
  /// the artifact's (lumped) state space is an exact quotient of a larger
  /// one.
  index_t pre_lump_states = -1;

  /// SR/RSD: randomization rate Lambda (0 when the artifact carries no
  /// DTMC payload).
  double lambda = 0.0;
  /// SR/RSD: P transposed in CSR gather form (empty otherwise).
  CsrMatrix dtmc_pt;
  /// SR/RSD: per-state self-loop probabilities 1 - exit(i)/Lambda.
  std::vector<double> self_loop;

  /// RR/RRL: the memoized schemas, one per (t, eps) horizon solved.
  std::vector<ArtifactSchemaEntry> schemas;

  /// True if the artifact carries any compiled payload worth persisting.
  [[nodiscard]] bool has_payload() const noexcept {
    return lambda > 0.0 || !schemas.empty();
  }
};

/// Export `solver`'s compiled state stamped with the given identity. The
/// identity fields are carried verbatim; the payload is whatever the
/// solver's export_compiled() fills in (possibly nothing — see
/// CompiledArtifact::has_payload).
[[nodiscard]] CompiledArtifact export_artifact(const TransientSolver& solver,
                                               std::uint64_t model_hash,
                                               const SolverConfig& config);

/// True iff the artifact's identity matches the requested compilation
/// exactly (solver name, model content hash, every config field). The disk
/// tier treats a mismatch as a miss: a stale or foreign artifact is
/// ignored, never adopted.
[[nodiscard]] bool artifact_matches(const CompiledArtifact& artifact,
                                    const std::string& solver,
                                    std::uint64_t model_hash,
                                    const SolverConfig& config);

}  // namespace rrl
