// Memo for the compiled regenerative artifact of RR/RRL.
//
// The dominant one-time cost of the regenerative methods is the schema —
// K (+ L) model-sized DTMC steps — plus the derived execute-side objects
// assembled from it: the explicit V_{K,L} model for RR and the transform
// evaluator for RRL. All of it depends only on (time horizon, epsilon) for
// a fixed (chain, rewards, initial, regenerative state, options), so a
// solver answering many requests over the same horizon (a batch varying
// measure or grid resolution, the study subsystem's shared solvers)
// recomputes an identical artifact per request. SchemaCache memoizes it.
//
// Correctness contract: entries are keyed by the EXACT (t, eps) pair the
// schema was computed for, never by dominance (a schema for a larger t
// over-covers smaller horizons but is not the artifact a fresh solve would
// build, and results must stay bit-identical to fresh-solver runs). The
// builder is deterministic, so a hit returns bit-identical series, and the
// derived V-model/transform are pure functions of the schema — which is
// also why seed() can re-materialize them from a deserialized schema
// (io/artifact_codec) without breaking bit-identity: warm-starting a
// solver is pre-populating this memo.
//
// Threading: the cache is the only mutable state inside RR/RRL solvers and
// is internally synchronized, preserving the solver layer's share-one-
// instance-across-workers contract. A miss computes OUTSIDE the lock (two
// workers missing the same key may both compute; the first insert wins and
// the loser adopts it — identical by determinism), so concurrent misses on
// different keys never serialize. The store is a small clock-stamped pool
// (capacity entries, least recently used evicted) to bound memory: schemas
// are O(K) series and only a handful of horizons are live in any real
// sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/regenerative.hpp"
#include "core/rrl_transform.hpp"
#include "core/vmodel.hpp"

namespace rrl {

/// The compiled artifact: the schema plus the derived execute-side objects
/// its owner asked for. `vmodel` is null for solvers that never asked for
/// one (RRL), `transform` likewise (RR).
struct CompiledSchema {
  RegenerativeSchema schema;
  std::shared_ptr<const VModel> vmodel;
  std::shared_ptr<const TrrTransform> transform;
};

/// Hit/miss accounting (monotone; read under the cache's own lock).
/// `seeded` counts entries imported from a previously exported artifact
/// (the disk tier's warm-start path) rather than computed here.
struct SchemaCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t seeded = 0;
};

class SchemaCache {
 public:
  /// Default number of entries retained; the least recently used entry is
  /// evicted beyond the capacity.
  static constexpr std::size_t kDefaultCapacity = 8;

  /// A cache holding at most `capacity` entries. Capacity 0 is legal and
  /// degenerates to "always compute": get() builds and returns without
  /// retaining anything (every call a miss), seed() is a no-op.
  explicit SchemaCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// The artifact for exactly (t, eps): a memoized copy when one exists,
  /// otherwise build(t, eps) — invoked without the lock held — inserted
  /// under the key. `want_transform` / `want_vmodel` additionally
  /// guarantee the respective derived object is non-null on the returned
  /// artifact (callers of one cache always pass the same values: RR wants
  /// the V-model, RRL wants the transform).
  [[nodiscard]] std::shared_ptr<const CompiledSchema> get(
      double t, double eps, bool want_transform, bool want_vmodel,
      const std::function<RegenerativeSchema()>& build) const;

  /// Pre-populate the (t, eps) entry from an already computed schema (the
  /// artifact import path); the requested derived objects are
  /// re-materialized from it. An existing entry for the key is kept as is
  /// (it is bit-identical by determinism). Counts in stats().seeded, not
  /// as a hit or miss.
  void seed(double t, double eps, RegenerativeSchema schema,
            bool want_transform, bool want_vmodel) const;

  /// One retained entry, for artifact export.
  struct Entry {
    double t = 0.0;
    double eps = 0.0;
    std::shared_ptr<const CompiledSchema> compiled;
  };
  /// The current entries in least-recently-used-first order (the order is
  /// deterministic given the call history, so exported artifacts are
  /// stable across identical runs).
  [[nodiscard]] std::vector<Entry> snapshot() const;

  [[nodiscard]] SchemaCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Slot {
    double t = 0.0;
    double eps = 0.0;
    std::shared_ptr<const CompiledSchema> compiled;
    std::uint64_t last_used = 0;
  };

  /// Materialize the derived objects the caller asked for (outside the
  /// lock; pure function of the schema).
  [[nodiscard]] static std::shared_ptr<CompiledSchema> compile(
      RegenerativeSchema schema, bool want_transform, bool want_vmodel);
  [[nodiscard]] static bool satisfies(const CompiledSchema& compiled,
                                      bool want_transform, bool want_vmodel);
  /// Insert under the lock, evicting the least recently used slot when at
  /// capacity. Caller must hold mutex_.
  void insert(double t, double eps,
              std::shared_ptr<const CompiledSchema> compiled) const;

  std::size_t capacity_ = kDefaultCapacity;
  mutable std::mutex mutex_;
  mutable std::vector<Slot> slots_;
  mutable std::uint64_t clock_ = 0;
  mutable SchemaCacheStats stats_;
};

}  // namespace rrl
