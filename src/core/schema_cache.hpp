// Memo for the compiled regenerative artifact of RR/RRL.
//
// The dominant one-time cost of the regenerative methods is the schema —
// K (+ L) model-sized DTMC steps — plus, for RRL, the transform evaluator
// assembled from it. Both depend only on (time horizon, epsilon) for a
// fixed (chain, rewards, initial, regenerative state, options), so a solver
// answering many requests over the same horizon (a batch varying measure or
// grid resolution, the study subsystem's shared solvers) recomputes an
// identical artifact per request. SchemaCache memoizes it.
//
// Correctness contract: entries are keyed by the EXACT (t, eps) pair the
// schema was computed for, never by dominance (a schema for a larger t
// over-covers smaller horizons but is not the artifact a fresh solve would
// build, and results must stay bit-identical to fresh-solver runs). The
// builder is deterministic, so a hit returns bit-identical series.
//
// Threading: the cache is the only mutable state inside RR/RRL solvers and
// is internally synchronized, preserving the solver layer's share-one-
// instance-across-workers contract. A miss computes OUTSIDE the lock (two
// workers missing the same key may both compute; the first insert wins and
// the loser adopts it — identical by determinism), so concurrent misses on
// different keys never serialize. The store is a small clock-stamped pool
// (kCapacity entries, oldest evicted) to bound memory: schemas are O(K)
// series and only a handful of horizons are live in any real sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/regenerative.hpp"
#include "core/rrl_transform.hpp"

namespace rrl {

/// The compiled artifact: the schema plus (for RRL) its transform
/// evaluator. `transform` is null for solvers that never asked for one.
struct CompiledSchema {
  RegenerativeSchema schema;
  std::shared_ptr<const TrrTransform> transform;
};

/// Hit/miss accounting (monotone; read under the cache's own lock).
struct SchemaCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

class SchemaCache {
 public:
  /// Entries retained; the oldest (by last use) is evicted beyond this.
  static constexpr std::size_t kCapacity = 8;

  /// The artifact for exactly (t, eps): a memoized copy when one exists,
  /// otherwise build(t, eps) — invoked without the lock held — inserted
  /// under the key. `want_transform` additionally guarantees a non-null
  /// transform on the returned artifact (callers of one cache always pass
  /// the same value: RR never wants one, RRL always does).
  [[nodiscard]] std::shared_ptr<const CompiledSchema> get(
      double t, double eps, bool want_transform,
      const std::function<RegenerativeSchema()>& build) const;

  [[nodiscard]] SchemaCacheStats stats() const;

 private:
  struct Entry {
    double t = 0.0;
    double eps = 0.0;
    std::shared_ptr<const CompiledSchema> compiled;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  mutable std::vector<Entry> entries_;
  mutable std::uint64_t clock_ = 0;
  mutable SchemaCacheStats stats_;
};

}  // namespace rrl
