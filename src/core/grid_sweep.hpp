// Shared grid-sweep machinery of the single-pass randomization methods.
//
// SR's forward pass and RSD's backward pass used to duplicate the same
// bookkeeping: one Poisson window per grid point, a per-point truncation
// point n_max (with an optional step cap), and an "active set" scan that
// feeds every step's shared coefficient d(n) into each point's mixture.
// GridSweep owns that machinery once. Points are ordered by truncation
// point, so as the pass advances the active set shrinks from the front and
// the total weight-scan cost is O(sum_i n_max_i) instead of O(m * pass).
//
// Usage (one pass, both methods):
//   GridSweep sweep(lambda, times, measure, truncation, step_cap);
//   for (std::int64_t n = 0;; ++n) {
//     sweep.accumulate(n, d(n));                 // d from the vector pass
//     if (n == sweep.pass_steps()) break;
//     ... advance the vector ...
//   }
//   value_i = sweep.value(i);
// RSD additionally calls fold_steady_state() when the span seminorm
// contracts, folding the remaining Poisson mass of every still-active point
// into the detected midpoint at once.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/transient_solver.hpp"
#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"

namespace rrl {

class GridSweep {
 public:
  /// Builds the per-point Poisson windows for `times` at rate `lambda` and
  /// computes each point's truncation via `truncation` (the methods differ:
  /// SR budgets eps against the measure-specific tail, RSD against the
  /// right truncation point with half the budget). step_cap >= 0 clamps
  /// every n_max and marks the clamped points capped.
  GridSweep(double lambda, std::span<const double> times, MeasureKind measure,
            const std::function<std::int64_t(const PoissonDistribution&)>&
                truncation,
            std::int64_t step_cap);

  [[nodiscard]] std::size_t size() const noexcept { return n_max_.size(); }
  /// The shared pass length: max_i n_max(i).
  [[nodiscard]] std::int64_t pass_steps() const noexcept {
    return pass_steps_;
  }
  /// Truncation point of grid point i (what that point alone would need).
  [[nodiscard]] std::int64_t n_max(std::size_t i) const {
    return n_max_[i];
  }
  [[nodiscard]] bool point_capped(std::size_t i) const {
    return capped_[i] != 0;
  }
  [[nodiscard]] bool any_capped() const noexcept { return any_capped_; }
  [[nodiscard]] const PoissonDistribution& poisson(std::size_t i) const {
    return poisson_[i];
  }

  /// Feeds the shared coefficient d(n) into every point still active at
  /// step n (TRR: pmf weight; MRR: tail weight), retiring points whose
  /// truncation point has passed. Must be called with n = 0, 1, 2, ... in
  /// order.
  void accumulate(std::int64_t n, double d);

  /// Folds the steady-state midpoint d_ss into every point whose truncation
  /// point lies beyond step n (TRR: remaining pmf mass; MRR: remaining
  /// expected excess) — RSD's detection shortcut. on_folded(i) is invoked
  /// for each folded point so the caller can stamp per-point stats.
  void fold_steady_state(std::int64_t n, double d_ss,
                         const std::function<void(std::size_t)>& on_folded);

  /// Final measure value of point i (MRR divides the mixture by E[N]).
  [[nodiscard]] double value(std::size_t i) const;

 private:
  MeasureKind measure_;
  std::vector<PoissonDistribution> poisson_;
  std::vector<std::int64_t> n_max_;
  std::vector<CompensatedSum> acc_;
  std::vector<std::size_t> by_nmax_;  // point indices sorted by n_max
  std::vector<std::uint8_t> capped_;
  std::size_t first_active_ = 0;
  std::int64_t pass_steps_ = 0;
  bool any_capped_ = false;
};

}  // namespace rrl
