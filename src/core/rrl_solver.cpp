#include "core/rrl_solver.hpp"

#include <algorithm>

#include "laplace/error_control.hpp"
#include "markov/poisson.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RegenerativeRandomizationLaplace::RegenerativeRandomizationLaplace(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, index_t regenerative_state,
    RrlOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      regenerative_(regenerative_state),
      options_(options) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(options_.t_multiplier > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  r_max_ = max_reward(rewards_);
}

RegenerativeSchema RegenerativeRandomizationLaplace::schema(double t) const {
  RegenerativeOptions opts;
  opts.epsilon = options_.epsilon;
  opts.rate_factor = options_.rate_factor;
  opts.step_cap = options_.schema_step_cap;
  return compute_regenerative_schema(chain_, rewards_, initial_,
                                     regenerative_, t, opts);
}

TransientValue RegenerativeRandomizationLaplace::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  if (t == 0.0) {
    TransientValue out;
    out.value = sparse_reward_dot(nonzero_reward_states(rewards_), rewards_,
                                  initial_);
    return out;
  }
  return solve(t, Kind::kTrr);
}

TransientValue RegenerativeRandomizationLaplace::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve(t, Kind::kMrr);
}

double RegenerativeRandomizationLaplace::truncation_error_bound(
    const RegenerativeSchema& sch, double t) const {
  // r_max * a(K) * E[(N(Lambda t) - K)^+], plus the primed-chain analogue.
  const PoissonDistribution poisson(sch.lambda * t);
  double bound = sch.r_max * sch.main.a.back() *
                 poisson.expected_excess(sch.K());
  if (sch.has_primed) {
    bound += sch.r_max * sch.primed.a.back() *
             poisson.expected_excess(sch.L());
  }
  return bound;
}

TransientValue RegenerativeRandomizationLaplace::invert(
    const TrrTransform& transform, double t, Kind kind) const {
  TransientValue out;
  const double T = options_.t_multiplier * t;
  CrumpOptions crump;
  crump.t_multiplier = options_.t_multiplier;
  crump.max_terms = options_.max_terms;
  crump.required_hits = options_.required_hits;

  const Stopwatch laplace_watch;
  if (kind == Kind::kTrr) {
    crump.damping = damping_for_bounded(r_max_, options_.epsilon, T);
    crump.tolerance = options_.epsilon / 100.0;
    const CrumpResult res = crump_invert(
        [&](std::complex<double> s) { return transform.trr(s); }, t, crump);
    out.value = res.value;
    out.stats.abscissae = res.abscissae;
    out.stats.inversion_converged = res.converged;
  } else {
    // Invert C~(s) = TRR~(s)/s with the Eq. (2) damping (|C(u)| <= r_max*u),
    // then MRR(t) = C(t)/t. Tolerance t*eps/100 per the paper.
    crump.damping = damping_for_time_linear(r_max_, options_.epsilon, t, T);
    crump.tolerance = t * options_.epsilon / 100.0;
    const CrumpResult res = crump_invert(
        [&](std::complex<double> s) { return transform.cumulative(s); }, t,
        crump);
    out.value = res.value / t;
    out.stats.abscissae = res.abscissae;
    out.stats.inversion_converged = res.converged;
  }
  out.stats.laplace_seconds = laplace_watch.seconds();
  return out;
}

TransientValue RegenerativeRandomizationLaplace::solve(double t,
                                                       Kind kind) const {
  const Stopwatch watch;
  if (r_max_ == 0.0) {
    TransientValue out;
    out.stats.seconds = watch.seconds();
    return out;  // all rewards zero => measure identically zero
  }

  const RegenerativeSchema sch = schema(t);
  const TrrTransform transform(sch);
  TransientValue out = invert(transform, t, kind);
  out.stats.dtmc_steps = sch.dtmc_steps();
  out.stats.lambda = sch.lambda;
  out.stats.capped = sch.capped;
  out.stats.seconds = watch.seconds();
  return out;
}

RegenerativeRandomizationLaplace::Bounds
RegenerativeRandomizationLaplace::trr_bounds(double t) const {
  RRL_EXPECTS(t > 0.0);
  Bounds b;
  if (r_max_ == 0.0) return b;
  const Stopwatch watch;
  const RegenerativeSchema sch = schema(t);
  const TrrTransform transform(sch);
  TransientValue v = invert(transform, t, Kind::kTrr);
  const double trunc = truncation_error_bound(sch, t);
  // The truncation is one-sided (reward is only lost). The inversion's
  // discretization error is rigorously below eps/4, but its series
  // truncation is controlled by a tolerance heuristic (the paper's eps/100
  // with a factor-25 reserve), so the full eps is granted on both sides.
  const double inv_err = options_.epsilon;
  b.value = v.value;
  b.lower = std::max(0.0, v.value - inv_err);
  b.upper = std::min(r_max_, v.value + trunc + inv_err);
  b.stats = v.stats;
  b.stats.dtmc_steps = sch.dtmc_steps();
  b.stats.lambda = sch.lambda;
  b.stats.capped = sch.capped;
  b.stats.seconds = watch.seconds();
  return b;
}

RegenerativeRandomizationLaplace::Bounds
RegenerativeRandomizationLaplace::mrr_bounds(double t) const {
  RRL_EXPECTS(t > 0.0);
  Bounds b;
  if (r_max_ == 0.0) return b;
  const Stopwatch watch;
  const RegenerativeSchema sch = schema(t);
  const TrrTransform transform(sch);
  TransientValue v = invert(transform, t, Kind::kMrr);
  // MRR truncation error is a time average of TRR truncation errors, each
  // below the bound at the horizon (the bound is increasing in t).
  const double trunc = truncation_error_bound(sch, t);
  const double inv_err = options_.epsilon;
  b.value = v.value;
  b.lower = std::max(0.0, v.value - inv_err);
  b.upper = std::min(r_max_, v.value + trunc + inv_err);
  b.stats = v.stats;
  b.stats.dtmc_steps = sch.dtmc_steps();
  b.stats.lambda = sch.lambda;
  b.stats.capped = sch.capped;
  b.stats.seconds = watch.seconds();
  return b;
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::solve_many(
    std::span<const double> ts, Kind kind) const {
  RRL_EXPECTS(!ts.empty());
  for (const double t : ts) RRL_EXPECTS(t > 0.0);
  const Stopwatch watch;
  std::vector<TransientValue> out(ts.size());
  if (r_max_ == 0.0) return out;

  const double t_max = *std::max_element(ts.begin(), ts.end());
  // One schema for the whole sweep: for t < t_max the truncation bound at
  // K(t_max) is only smaller (E[(N(Lambda t) - K)^+] decreases in K), so
  // the longer series remains within budget at every requested time.
  const RegenerativeSchema sch = schema(t_max);
  const TrrTransform transform(sch);
  const double schema_seconds = watch.seconds();

  // The inversions are independent per time point and read the transform
  // through const methods only — an embarrassingly parallel loop.
  const auto n = static_cast<std::int64_t>(ts.size());
#pragma omp parallel for schedule(dynamic) if (n > 2)
  for (std::int64_t i = 0; i < n; ++i) {
    const Stopwatch point_watch;
    out[static_cast<std::size_t>(i)] =
        invert(transform, ts[static_cast<std::size_t>(i)], kind);
    out[static_cast<std::size_t>(i)].stats.lambda = sch.lambda;
    out[static_cast<std::size_t>(i)].stats.capped = sch.capped;
    out[static_cast<std::size_t>(i)].stats.seconds = point_watch.seconds();
  }
  // The shared schema cost is attributed to the first entry (the sweep's
  // dominant cost; callers summing stats.seconds get the true total).
  out.front().stats.dtmc_steps = sch.dtmc_steps();
  out.front().stats.seconds += schema_seconds;
  return out;
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::trr_many(
    std::span<const double> ts) const {
  return solve_many(ts, Kind::kTrr);
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::mrr_many(
    std::span<const double> ts) const {
  return solve_many(ts, Kind::kMrr);
}

}  // namespace rrl
