#include "core/rrl_solver.hpp"

#include <algorithm>

#include "core/compiled_artifact.hpp"
#include "laplace/error_control.hpp"
#include "markov/poisson.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace rrl {

RegenerativeRandomizationLaplace::RegenerativeRandomizationLaplace(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, index_t regenerative_state,
    RrlOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      regenerative_(regenerative_state),
      options_(options) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(options_.t_multiplier > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  r_max_ = max_reward(rewards_);
}

RegenerativeSchema RegenerativeRandomizationLaplace::schema(double t) const {
  return schema_with(t, options_.epsilon);
}

RegenerativeSchema RegenerativeRandomizationLaplace::schema_with(
    double t, double eps) const {
  RegenerativeOptions opts;
  opts.epsilon = eps;
  opts.rate_factor = options_.rate_factor;
  opts.step_cap = options_.schema_step_cap;
  return compute_regenerative_schema(chain_, rewards_, initial_,
                                     regenerative_, t, opts);
}

std::shared_ptr<const CompiledSchema>
RegenerativeRandomizationLaplace::compiled_schema(double t, double eps) const {
  return schema_cache_.get(t, eps, /*want_transform=*/true,
                           /*want_vmodel=*/false,
                           [&] { return schema_with(t, eps); });
}

void RegenerativeRandomizationLaplace::export_compiled(
    CompiledArtifact& artifact) const {
  for (const SchemaCache::Entry& e : schema_cache_.snapshot()) {
    artifact.schemas.push_back(
        ArtifactSchemaEntry{e.t, e.eps, e.compiled->schema});
  }
}

void RegenerativeRandomizationLaplace::import_compiled(
    const CompiledArtifact& artifact) {
  for (const ArtifactSchemaEntry& e : artifact.schemas) {
    if (e.schema.regenerative != regenerative_ || e.schema.main.a.empty()) {
      continue;
    }
    schema_cache_.seed(e.t, e.eps, e.schema, /*want_transform=*/true,
                       /*want_vmodel=*/false);
  }
}

TransientValue RegenerativeRandomizationLaplace::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue RegenerativeRandomizationLaplace::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

double RegenerativeRandomizationLaplace::truncation_error_bound(
    const RegenerativeSchema& sch, double t) const {
  // r_max * a(K) * E[(N(Lambda t) - K)^+], plus the primed-chain analogue.
  const PoissonDistribution poisson(sch.lambda * t);
  double bound = sch.r_max * sch.main.a.back() *
                 poisson.expected_excess(sch.K());
  if (sch.has_primed) {
    bound += sch.r_max * sch.primed.a.back() *
             poisson.expected_excess(sch.L());
  }
  return bound;
}

TransientValue RegenerativeRandomizationLaplace::invert(
    const TrrTransform& transform, double t, MeasureKind kind,
    double eps) const {
  TransientValue out;
  const double T = options_.t_multiplier * t;
  CrumpOptions crump;
  crump.t_multiplier = options_.t_multiplier;
  crump.max_terms = options_.max_terms;
  crump.required_hits = options_.required_hits;

  const Stopwatch laplace_watch;
  if (kind == MeasureKind::kTrr) {
    crump.damping = damping_for_bounded(r_max_, eps, T);
    crump.tolerance = eps / 100.0;
    const CrumpResult res = crump_invert(
        [&](std::complex<double> s) { return transform.trr(s); }, t, crump);
    out.value = res.value;
    out.stats.abscissae = res.abscissae;
    out.stats.inversion_converged = res.converged;
  } else {
    // Invert C~(s) = TRR~(s)/s with the Eq. (2) damping (|C(u)| <= r_max*u),
    // then MRR(t) = C(t)/t. Tolerance t*eps/100 per the paper.
    crump.damping = damping_for_time_linear(r_max_, eps, t, T);
    crump.tolerance = t * eps / 100.0;
    const CrumpResult res = crump_invert(
        [&](std::complex<double> s) { return transform.cumulative(s); }, t,
        crump);
    out.value = res.value / t;
    out.stats.abscissae = res.abscissae;
    out.stats.inversion_converged = res.converged;
  }
  out.stats.laplace_seconds = laplace_watch.seconds();
  return out;
}

RegenerativeRandomizationLaplace::Bounds
RegenerativeRandomizationLaplace::trr_bounds(double t) const {
  RRL_EXPECTS(t > 0.0);
  Bounds b;
  if (r_max_ == 0.0) return b;
  const Stopwatch watch;
  const auto compiled = compiled_schema(t, options_.epsilon);
  const RegenerativeSchema& sch = compiled->schema;
  const TrrTransform& transform = *compiled->transform;
  TransientValue v = invert(transform, t, MeasureKind::kTrr,
                            options_.epsilon);
  const double trunc = truncation_error_bound(sch, t);
  // The truncation is one-sided (reward is only lost). The inversion's
  // discretization error is rigorously below eps/4, but its series
  // truncation is controlled by a tolerance heuristic (the paper's eps/100
  // with a factor-25 reserve), so the full eps is granted on both sides.
  const double inv_err = options_.epsilon;
  b.value = v.value;
  b.lower = std::max(0.0, v.value - inv_err);
  b.upper = std::min(r_max_, v.value + trunc + inv_err);
  b.stats = v.stats;
  b.stats.dtmc_steps = sch.dtmc_steps();
  b.stats.lambda = sch.lambda;
  b.stats.capped = sch.capped;
  b.stats.seconds = watch.seconds();
  return b;
}

RegenerativeRandomizationLaplace::Bounds
RegenerativeRandomizationLaplace::mrr_bounds(double t) const {
  RRL_EXPECTS(t > 0.0);
  Bounds b;
  if (r_max_ == 0.0) return b;
  const Stopwatch watch;
  const auto compiled = compiled_schema(t, options_.epsilon);
  const RegenerativeSchema& sch = compiled->schema;
  const TrrTransform& transform = *compiled->transform;
  TransientValue v = invert(transform, t, MeasureKind::kMrr,
                            options_.epsilon);
  // MRR truncation error is a time average of TRR truncation errors, each
  // below the bound at the horizon (the bound is increasing in t).
  const double trunc = truncation_error_bound(sch, t);
  const double inv_err = options_.epsilon;
  b.value = v.value;
  b.lower = std::max(0.0, v.value - inv_err);
  b.upper = std::min(r_max_, v.value + trunc + inv_err);
  b.stats = v.stats;
  b.stats.dtmc_steps = sch.dtmc_steps();
  b.stats.lambda = sch.lambda;
  b.stats.capped = sch.capped;
  b.stats.seconds = watch.seconds();
  return b;
}

SolveReport RegenerativeRandomizationLaplace::solve_grid(
    const SolveRequest& request, SolveWorkspace& /*workspace*/) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();

  SolveReport report;
  report.points.resize(m);
  if (r_max_ == 0.0) {
    report.total.seconds = watch.seconds();
    return report;  // all rewards zero => measure identically zero
  }

  // TRR(0) needs no transform: it is the initial reward rate.
  const auto reward_idx = nonzero_reward_states(rewards_);
  const double t_max =
      *std::max_element(request.times.begin(), request.times.end());
  if (t_max == 0.0) {
    for (TransientValue& p : report.points) {
      p.value = sparse_reward_dot(reward_idx, rewards_, initial_);
    }
    report.total.seconds = watch.seconds();
    return report;
  }

  // One schema for the whole sweep, computed at the largest time: for
  // t < t_max the truncation bound at K(t_max) is only smaller
  // (E[(N(Lambda t) - K)^+] decreases in K), so the longer series remains
  // within budget at every requested time. The compiled artifact (schema +
  // transform evaluator) is memoized per exact (t_max, eps), so repeated
  // sweeps over the same horizon — the other measure, a different grid
  // resolution, the study subsystem's shared solvers — pay the K model
  // steps once.
  const auto compiled = compiled_schema(t_max, eps);
  const RegenerativeSchema& sch = compiled->schema;
  const TrrTransform& transform = *compiled->transform;

  // The inversions are independent per time point and read the transform
  // through const methods only — an embarrassingly parallel loop. Inside a
  // sweep-engine worker the scenario level already owns the cores, so the
  // loop stays serial there instead of oversubscribing.
  const auto n = static_cast<std::int64_t>(m);
  const bool nested = ThreadPool::in_parallel_region();
  (void)nested;  // only read by the pragma; unused when OpenMP is off
#pragma omp parallel for schedule(dynamic) if (n > 2 && !nested)
  for (std::int64_t j = 0; j < n; ++j) {
    const std::size_t i = static_cast<std::size_t>(j);
    const Stopwatch point_watch;
    const double t = request.times[i];
    if (t == 0.0) {
      report.points[i].value =
          sparse_reward_dot(reward_idx, rewards_, initial_);
    } else {
      report.points[i] = invert(transform, t, request.measure, eps);
    }
    report.points[i].stats.dtmc_steps = sch.dtmc_steps();
    report.points[i].stats.lambda = sch.lambda;
    report.points[i].stats.capped = sch.capped;
    report.points[i].stats.seconds = point_watch.seconds();
  }

  report.total.dtmc_steps = sch.dtmc_steps();
  report.total.lambda = sch.lambda;
  report.total.capped = sch.capped;
  for (const TransientValue& p : report.points) {
    report.total.abscissae += p.stats.abscissae;
    report.total.laplace_seconds += p.stats.laplace_seconds;
    report.total.inversion_converged =
        report.total.inversion_converged && p.stats.inversion_converged;
  }
  report.total.seconds = watch.seconds();
  return report;
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::solve_many(
    std::span<const double> ts, MeasureKind kind) const {
  RRL_EXPECTS(!ts.empty());
  for (const double t : ts) RRL_EXPECTS(t > 0.0);
  SolveRequest request;
  request.measure = kind;
  request.times.assign(ts.begin(), ts.end());
  SolveReport report = solve_grid(request);

  // Legacy attribution: the shared schema cost is carried by the first
  // entry only. The first entry's seconds are raised so the sum over
  // entries reaches the sweep's wall-clock total; under OpenMP the
  // per-point timers overlap and already exceed it, in which case the
  // first entry keeps its own inversion time unchanged.
  double other_seconds = 0.0;
  for (std::size_t i = 1; i < report.points.size(); ++i) {
    other_seconds += report.points[i].stats.seconds;
    report.points[i].stats.dtmc_steps = 0;
  }
  TransientValue& front = report.points.front();
  front.stats.dtmc_steps = report.total.dtmc_steps;
  front.stats.seconds = std::max(front.stats.seconds,
                                 report.total.seconds - other_seconds);
  return std::move(report.points);
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::trr_many(
    std::span<const double> ts) const {
  return solve_many(ts, MeasureKind::kTrr);
}

std::vector<TransientValue> RegenerativeRandomizationLaplace::mrr_many(
    std::span<const double> ts) const {
  return solve_many(ts, MeasureKind::kMrr);
}

}  // namespace rrl
