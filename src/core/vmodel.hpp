// Explicit construction of the truncated transformed CTMC V_{K,L} (V_K when
// alpha_r = 1) from a regenerative schema — the chain of the paper's
// Figure 1.
//
// States: s_0..s_K, then (when alpha_r < 1) s'_0..s'_L, then f_1..f_A, then
// the truncation state `a`. Rates (all multiples of Lambda):
//   s_k  -> s_{k+1} : w_k Lambda      (w_k = a(k+1)/a(k))
//   s_k  -> s_0     : q_k Lambda      (k >= 1; the k = 0 return is a
//                                      self-loop and is dropped, which
//                                      leaves the CTMC unchanged)
//   s_k  -> f_i     : v_k^i Lambda
//   s_K  -> a       : Lambda
//   s'_k -> s'_{k+1}: w'_k Lambda,  s'_k -> s_0 : q'_k Lambda,
//   s'_k -> f_i    : v'^i_k Lambda, s'_L -> a  : Lambda
// Rewards: r(s_k) = b(k), r(s'_k) = b'(k), r(f_i) given, r(a) = 0.
// Initial distribution: alpha_r at s_0, 1 - alpha_r at s'_0.
//
// The original regenerative randomization method (RR) solves this model by
// standard randomization; the test suite also uses it to cross-validate the
// closed-form Laplace transform of Section 2.1.
#pragma once

#include <vector>

#include "core/regenerative.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

struct VModel {
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> initial;
  double lambda = 0.0;

  // State index helpers.
  std::int64_t K = 0;
  std::int64_t L = -1;  ///< -1 when there is no primed chain
  [[nodiscard]] index_t s(std::int64_t k) const {
    return static_cast<index_t>(k);
  }
  [[nodiscard]] index_t s_primed(std::int64_t k) const {
    RRL_EXPECTS(L >= 0);
    return static_cast<index_t>(K + 1 + k);
  }
  [[nodiscard]] index_t f(std::size_t i) const {
    return static_cast<index_t>(K + 1 + (L >= 0 ? L + 1 : 0) +
                                static_cast<std::int64_t>(i));
  }
  [[nodiscard]] index_t truncation_state() const {
    return f(num_absorbing);  // the state right after f_1..f_A
  }
  std::size_t num_absorbing = 0;
};

/// Materialize V_{K,L} from a schema.
[[nodiscard]] VModel build_vmodel(const RegenerativeSchema& schema);

}  // namespace rrl
