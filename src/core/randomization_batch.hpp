// Shared-pass batched SR/RSD solves: scenarios as SpMM columns.
//
// A sweep that varies epsilon or measure over one compiled SR/RSD solver
// used to pay one full randomization pass PER SCENARIO — N passes
// streaming the same matrix through memory N times per step budget. This
// engine steps every scenario of a shared solver instance JOINTLY: each
// scenario is one column of a dense block (sparse/block.hpp), each
// randomization step is one multi-RHS product (CsrMatrix::mul_block), and
// per-column Poisson truncation retires columns as their own passes end —
// the active column set shrinks, tiles drop out of the product, and the
// pass length is the largest scenario's, exactly as in the per-scenario
// path.
//
// Determinism: each column replays its scenario's solve_grid loop
// bit-for-bit — same truncation rule (through the solver's batch_view and
// the shared sr_truncation_point), same per-step reward dot (the strided
// forms preserve arithmetic order), same GridSweep accumulation, and SpMM
// columns bitwise equal to single-vector SpMV by the kernel contract. A
// batched report therefore matches the per-scenario report byte-for-byte
// (timings aside). RSD's span detection is evaluated per column against
// that scenario's own tolerance, folding at exactly the step the solo
// solve would.
//
// RRL_SPMM=off (sparse/spmv_kernels.hpp spmm_enabled()) makes the sweep
// engine skip this routing entirely — the CI determinism gate compares
// the two paths byte-for-byte.
#pragma once

#include <span>
#include <string>

#include "core/transient_solver.hpp"

namespace rrl {

class ThreadPool;

/// One scenario of a shared-model randomization batch. `report` is filled
/// on success; `error` is set instead when this scenario fails (batch
/// siblings are isolated from each other's failures, mirroring
/// solve_rr_batch). All pointers are borrowed and must outlive the call.
struct RandBatchItem {
  const TransientSolver* solver = nullptr;
  const SolveRequest* request = nullptr;
  SolveReport* report = nullptr;
  std::string* error = nullptr;
};

/// Whether `solver` is a type this batch engine can step jointly
/// (StandardRandomization or RandomizationSteadyStateDetection).
[[nodiscard]] bool randomization_batchable(const TransientSolver& solver);

/// Solve every item, grouping by solver instance; each group of >= 2
/// scenarios steps as one SpMM block per randomization step (groups of 1
/// run the plain solve_grid). `pool` (optional) row-partitions the
/// products of large matrices — never the scenario axis, which is why the
/// batch beats scenario-parallel solves: the matrix streams once per tile
/// instead of once per scenario. `workspace` (optional) lends the block
/// and vector buffers; a null pointer uses a call-local workspace.
void solve_randomization_batch(std::span<const RandBatchItem> items,
                               ThreadPool* pool,
                               SolveWorkspace* workspace = nullptr);

}  // namespace rrl
