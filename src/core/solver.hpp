// Common types of the transient-solver layer.
//
// Every method computes the paper's two measures for a rewarded CTMC:
//   TRR(t) = E[r_{X(t)}]            (transient reward rate)
//   MRR(t) = (1/t) Int_0^t TRR      (mean reward rate over [0, t])
// with a user-specified total error bound eps, and reports the work done in
// the units the paper's tables use (DTMC steps of model-sized chains,
// auxiliary-solve steps, Laplace abscissae).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "support/contracts.hpp"

namespace rrl {

/// Work/accuracy accounting attached to every solver answer.
struct SolverStats {
  /// Steps of DTMCs "of about the same size as X^": the randomization steps
  /// of SR/RSD, or K (+ L) for RR/RRL. This is the quantity of the paper's
  /// Tables 1-2.
  std::int64_t dtmc_steps = 0;
  /// RR only: randomization steps spent solving the truncated transformed
  /// model V_{K,L}.
  std::int64_t vmodel_steps = 0;
  /// RRL only: Laplace transform evaluations used by the inversion.
  int abscissae = 0;
  /// Wall-clock seconds of the whole solve (the paper's Figures 3-4).
  double seconds = 0.0;
  /// RRL only: wall-clock seconds inside the numerical inversion (the paper
  /// reports ~1-2% of total RRL time).
  double laplace_seconds = 0.0;
  /// Randomization rate Lambda used.
  double lambda = 0.0;
  /// True if a step cap fired and the reported value may not meet eps.
  bool capped = false;
  /// RSD only: step at which steady-state was detected (-1 if never).
  std::int64_t detection_step = -1;
  /// RRL only: true if the inversion series converged within its term cap.
  bool inversion_converged = true;
};

/// A measure value plus the work that produced it.
struct TransientValue {
  double value = 0.0;
  SolverStats stats;
};

/// Largest reward rate r_max = max_i r_i (enters every error bound).
[[nodiscard]] inline double max_reward(std::span<const double> rewards) {
  double m = 0.0;
  for (const double r : rewards) {
    RRL_EXPECTS(r >= 0.0);
    m = std::max(m, r);
  }
  return m;
}

/// Validate that `dist` is a probability distribution over `n` states.
/// The mass tolerance scales with n: a distribution assembled from many
/// small entries accumulates ~n ulp-level rounding errors, so a fixed
/// 1e-9 bound would reject valid initial distributions on large models.
inline void check_distribution(std::span<const double> dist, index_t n) {
  RRL_EXPECTS(static_cast<index_t>(dist.size()) == n);
  double total = 0.0;
  for (const double p : dist) {
    RRL_EXPECTS(p >= 0.0 && p <= 1.0 + 1e-12);
    total += p;
  }
  const double tol = std::max(1e-9, 1e-12 * static_cast<double>(n));
  RRL_EXPECTS(std::abs(total - 1.0) <= tol);
}

/// Indices of states with non-zero reward (reward vectors of dependability
/// measures are extremely sparse; dot products iterate only these).
[[nodiscard]] inline std::vector<index_t> nonzero_reward_states(
    std::span<const double> rewards) {
  std::vector<index_t> idx;
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    if (rewards[i] != 0.0) idx.push_back(static_cast<index_t>(i));
  }
  return idx;
}

/// Sparse reward dot product over the precomputed index list.
[[nodiscard]] inline double sparse_reward_dot(
    std::span<const index_t> idx, std::span<const double> rewards,
    std::span<const double> pi) {
  double acc = 0.0;
  for (const index_t i : idx) {
    acc += rewards[static_cast<std::size_t>(i)] *
           pi[static_cast<std::size_t>(i)];
  }
  return acc;
}

/// Strided variant for the batched SpMM block layout (pi_i of one column
/// lives at column[i * stride]). Same plain accumulator, same index
/// order — bitwise identical to sparse_reward_dot on the gathered column.
[[nodiscard]] inline double sparse_reward_dot_strided(
    std::span<const index_t> idx, std::span<const double> rewards,
    const double* column, std::size_t stride) {
  double acc = 0.0;
  for (const index_t i : idx) {
    acc += rewards[static_cast<std::size_t>(i)] *
           column[static_cast<std::size_t>(i) * stride];
  }
  return acc;
}

}  // namespace rrl
