#include "core/krylov_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/compiled_artifact.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {
namespace {

// ---- Small dense kernels (matrices of order m+2 <= 32, row-major) ----
//
// Everything here is O(m^3) on a matrix that fits in L1; against the
// n-sized matvecs of the outer iteration it is noise, so clarity beats
// cleverness.

double dense_norm1(const std::vector<double>& a, int d) {
  double best = 0.0;
  for (int c = 0; c < d; ++c) {
    double col = 0.0;
    for (int r = 0; r < d; ++r) col += std::abs(a[static_cast<std::size_t>(r * d + c)]);
    best = std::max(best, col);
  }
  return best;
}

void dense_mul(const std::vector<double>& a, const std::vector<double>& b,
               std::vector<double>& c, int d) {
  for (int r = 0; r < d; ++r) {
    for (int k = 0; k < d; ++k) {
      const double arv = a[static_cast<std::size_t>(r * d + k)];
      if (arv == 0.0) continue;
      for (int col = 0; col < d; ++col) {
        c[static_cast<std::size_t>(r * d + col)] +=
            arv * b[static_cast<std::size_t>(k * d + col)];
      }
    }
  }
}

/// Solve M X = B for X (both d x d, row-major); M is destroyed, B becomes
/// X. Partial-pivoted LU — M = (V - U) of the Pade form is well
/// conditioned after scaling, but pivoting costs nothing at this size.
void dense_solve(std::vector<double>& m, std::vector<double>& b, int d) {
  for (int col = 0; col < d; ++col) {
    int pivot = col;
    double best = std::abs(m[static_cast<std::size_t>(col * d + col)]);
    for (int r = col + 1; r < d; ++r) {
      const double v = std::abs(m[static_cast<std::size_t>(r * d + col)]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    RRL_ENSURES(best > 0.0);  // (V - U) is nonsingular for scaled Pade
    if (pivot != col) {
      for (int c = 0; c < d; ++c) {
        std::swap(m[static_cast<std::size_t>(col * d + c)],
                  m[static_cast<std::size_t>(pivot * d + c)]);
        std::swap(b[static_cast<std::size_t>(col * d + c)],
                  b[static_cast<std::size_t>(pivot * d + c)]);
      }
    }
    const double inv = 1.0 / m[static_cast<std::size_t>(col * d + col)];
    for (int r = col + 1; r < d; ++r) {
      const double f = m[static_cast<std::size_t>(r * d + col)] * inv;
      if (f == 0.0) continue;
      for (int c = col + 1; c < d; ++c) {
        m[static_cast<std::size_t>(r * d + c)] -=
            f * m[static_cast<std::size_t>(col * d + c)];
      }
      for (int c = 0; c < d; ++c) {
        b[static_cast<std::size_t>(r * d + c)] -=
            f * b[static_cast<std::size_t>(col * d + c)];
      }
    }
  }
  for (int r = d - 1; r >= 0; --r) {
    const double inv = 1.0 / m[static_cast<std::size_t>(r * d + r)];
    for (int c = 0; c < d; ++c) {
      double acc = b[static_cast<std::size_t>(r * d + c)];
      for (int k = r + 1; k < d; ++k) {
        acc -= m[static_cast<std::size_t>(r * d + k)] *
               b[static_cast<std::size_t>(k * d + c)];
      }
      b[static_cast<std::size_t>(r * d + c)] = acc * inv;
    }
  }
}

/// In-place exp(A), degree-13 Pade with scaling and squaring (Higham
/// 2005). Exact enough to machine precision for any scaled norm; the
/// projected Hessenberg tau*H can carry a large norm when tau covers a
/// stiff stretch, which scaling absorbs.
void dense_matexp(std::vector<double>& a, int d) {
  static const double kB[14] = {
      64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
      1187353796428800.0,  129060195264000.0,   10559470521600.0,
      670442572800.0,      33522128640.0,       1323241920.0,
      40840800.0,          960960.0,            16380.0,
      182.0,               1.0};
  constexpr double kTheta13 = 5.371920351148152;

  const double nrm = dense_norm1(a, d);
  int squarings = 0;
  if (nrm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(nrm / kTheta13)));
    const double scale = std::ldexp(1.0, -squarings);
    for (double& v : a) v *= scale;
  }

  const std::size_t dd = static_cast<std::size_t>(d) * static_cast<std::size_t>(d);
  std::vector<double> a2(dd, 0.0), a4(dd, 0.0), a6(dd, 0.0);
  dense_mul(a, a, a2, d);
  dense_mul(a2, a2, a4, d);
  dense_mul(a2, a4, a6, d);

  std::vector<double> w(dd, 0.0), u(dd, 0.0), z(dd, 0.0), v(dd, 0.0);
  // w = a6*(b13 a6 + b11 a4 + b9 a2) + b7 a6 + b5 a4 + b3 a2 + b1 I
  for (std::size_t i = 0; i < dd; ++i) {
    z[i] = kB[13] * a6[i] + kB[11] * a4[i] + kB[9] * a2[i];
  }
  dense_mul(a6, z, w, d);
  for (std::size_t i = 0; i < dd; ++i) {
    w[i] += kB[7] * a6[i] + kB[5] * a4[i] + kB[3] * a2[i];
  }
  for (int r = 0; r < d; ++r) w[static_cast<std::size_t>(r * d + r)] += kB[1];
  // u = a * w  (odd part)
  dense_mul(a, w, u, d);
  // v = a6*(b12 a6 + b10 a4 + b8 a2) + b6 a6 + b4 a4 + b2 a2 + b0 I
  for (std::size_t i = 0; i < dd; ++i) {
    z[i] = kB[12] * a6[i] + kB[10] * a4[i] + kB[8] * a2[i];
  }
  dense_mul(a6, z, v, d);
  for (std::size_t i = 0; i < dd; ++i) {
    v[i] += kB[6] * a6[i] + kB[4] * a4[i] + kB[2] * a2[i];
  }
  for (int r = 0; r < d; ++r) v[static_cast<std::size_t>(r * d + r)] += kB[0];

  // (v - u) F = (v + u)
  for (std::size_t i = 0; i < dd; ++i) {
    const double vi = v[i];
    const double ui = u[i];
    v[i] = vi - ui;  // left-hand side
    u[i] = vi + ui;  // right-hand side, becomes F
  }
  dense_solve(v, u, d);

  for (int s = 0; s < squarings; ++s) {
    std::fill(z.begin(), z.end(), 0.0);
    dense_mul(u, u, z, d);
    u.swap(z);
  }
  a = std::move(u);
}

double norm2(std::span<const double> x) {
  double s = 0.0;
  for (const double v : x) s += v * v;
  return std::sqrt(s);
}

}  // namespace

KrylovSolver::KrylovSolver(const Ctmc& chain, std::vector<double> rewards,
                           std::vector<double> initial,
                           KrylovOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(options_.max_dim >= 1);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  reward_idx_ = nonzero_reward_states(rewards_);
  r_max_ = max_reward(rewards_);
}

void KrylovSolver::export_compiled(CompiledArtifact& artifact) const {
  artifact.lambda = dtmc_.lambda();
  artifact.dtmc_pt = dtmc_.transition_transposed();
  const auto loops = dtmc_.self_loops();
  artifact.self_loop.assign(loops.begin(), loops.end());
}

void KrylovSolver::import_compiled(const CompiledArtifact& artifact) {
  if (artifact.lambda <= 0.0 ||
      artifact.dtmc_pt.rows() != chain_.num_states() ||
      artifact.dtmc_pt.cols() != chain_.num_states() ||
      artifact.self_loop.size() !=
          static_cast<std::size_t>(chain_.num_states())) {
    return;
  }
  dtmc_ = RandomizedDtmc::from_parts(artifact.dtmc_pt, artifact.self_loop,
                                     artifact.lambda);
}

SolveReport KrylovSolver::solve_grid(const SolveRequest& request,
                                     SolveWorkspace& workspace) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t num_points = request.times.size();

  SolveReport report;
  report.points.resize(num_points);
  for (TransientValue& p : report.points) p.stats.lambda = dtmc_.lambda();
  report.total.lambda = dtmc_.lambda();

  if (r_max_ == 0.0) {
    report.total.seconds = watch.seconds();
    return report;
  }

  // Grid times in ascending order (original order restored through the
  // permutation); the adaptive pass visits each exactly.
  std::vector<std::size_t> order(num_points);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return request.times[a] < request.times[b];
                   });
  const double t_end = request.times[order.back()];

  const std::size_t n = static_cast<std::size_t>(chain_.num_states());
  const double lambda = dtmc_.lambda();
  const double anorm = 2.0 * lambda;  // ||Q||_inf <= 2 Lambda
  const int m = std::min<int>(options_.max_dim,
                              static_cast<int>(chain_.num_states()));
  const int ld = m + 2;  // leading dimension of the Hessenberg storage

  // Error budget: err_loc per substep <= tau/t_end * eps_vec, with the L1
  // contraction of the semigroup turning the per-step budget into a
  // sweep-wide ~eps_vec bound on the iterate, hence ~eps on the reward
  // (safety factor 0.5 against estimate slack).
  const double eps_vec = 0.5 * eps / std::max(r_max_, 1.0);
  const double tol_rate = t_end > 0.0 ? eps_vec / t_end : eps_vec;
  constexpr double kDelta = 1.2;   // acceptance slack (Expokit)
  constexpr double kGamma = 0.9;   // step-size safety (Expokit)
  constexpr int kMaxReject = 10;

  AlignedVector<double>& w = workspace.pi(n);
  std::copy(initial_.begin(), initial_.end(), w.begin());
  AlignedVector<double>& step_tmp = workspace.next(n);
  AlignedVector<double>& scratch = workspace.scratch(n);

  ThreadPool* const pool =
      workspace.pooled_spmv(dtmc_.transition_transposed().nnz());
  std::int64_t matvecs = 0;
  auto apply_a = [&](const double* in, double* out) {
    const std::span<const double> in_span(in, n);
    if (pool != nullptr) {
      dtmc_.step(in_span, step_tmp, *pool);
    } else {
      dtmc_.step(in_span, step_tmp);
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = lambda * (step_tmp[i] - in[i]);
    }
    ++matvecs;
  };

  std::vector<AlignedVector<double>> basis(static_cast<std::size_t>(m + 1));
  for (auto& v : basis) v.resize(n);
  std::vector<double> hess(static_cast<std::size_t>(ld * ld), 0.0);
  std::vector<double> small;  // per-trial dense exp operand
  std::vector<double> phi;    // per-step phi_1 operand (MRR)

  CompensatedSum integral;  // Int_0^t_now r . w(s) ds  (MRR)
  double t_now = 0.0;
  double tau_suggest = 0.0;
  bool budget_spent = false;  // step cap fired
  bool tolerance_missed = false;

  auto record = [&](std::size_t original, double t, bool point_capped) {
    TransientValue& p = report.points[original];
    p.value = request.measure == MeasureKind::kTrr
                  ? sparse_reward_dot(reward_idx_, rewards_, w)
                  : integral.value() / t;
    p.stats.dtmc_steps = matvecs;
    p.stats.capped = point_capped || tolerance_missed;
  };

  std::size_t next_target = 0;
  while (next_target < num_points) {
    const double t_target = request.times[order[next_target]];
    if (t_target <= t_now) {
      record(order[next_target], t_target, false);
      ++next_target;
      continue;
    }
    if (budget_spent ||
        (options_.step_cap >= 0 && matvecs + m + 1 > options_.step_cap)) {
      // Out of budget: report the value at the last reached time, capped.
      budget_spent = true;
      record(order[next_target], t_target, true);
      ++next_target;
      continue;
    }

    // ---- One adaptive substep from t_now toward t_target ----
    const double beta = norm2(w);
    if (beta == 0.0) {  // zero vector is a fixed point
      t_now = t_target;
      continue;
    }

    // Arnoldi on A = Q^T at w (modified Gram-Schmidt).
    std::fill(hess.begin(), hess.end(), 0.0);
    {
      const double inv_beta = 1.0 / beta;
      for (std::size_t i = 0; i < n; ++i) basis[0][i] = w[i] * inv_beta;
    }
    const double breakdown_tol = 1e-14 * anorm;
    int dim = m;
    bool breakdown = false;
    for (int j = 0; j < m; ++j) {
      apply_a(basis[static_cast<std::size_t>(j)].data(),
              basis[static_cast<std::size_t>(j + 1)].data());
      AlignedVector<double>& cand = basis[static_cast<std::size_t>(j + 1)];
      for (int i = 0; i <= j; ++i) {
        const AlignedVector<double>& vi = basis[static_cast<std::size_t>(i)];
        const double h = dot(vi, cand);
        hess[static_cast<std::size_t>(i * ld + j)] = h;
        for (std::size_t x = 0; x < n; ++x) cand[x] -= h * vi[x];
      }
      const double h_next = norm2(cand);
      if (h_next <= breakdown_tol) {
        dim = j + 1;
        breakdown = true;
        break;
      }
      hess[static_cast<std::size_t>((j + 1) * ld + j)] = h_next;
      const double inv = 1.0 / h_next;
      for (std::size_t x = 0; x < n; ++x) cand[x] *= inv;
    }

    double avnorm = 0.0;
    if (!breakdown) {
      // ||A v_{m+1}||, the weight of the second-order error term.
      apply_a(basis[static_cast<std::size_t>(m)].data(), scratch.data());
      avnorm = norm2(scratch);
      hess[static_cast<std::size_t>((m + 1) * ld + m)] = 1.0;
    }

    // First substep: Expokit's a-priori guess from the series remainder.
    if (tau_suggest <= 0.0) {
      const double xm = 1.0 / static_cast<double>(m);
      const double fact =
          std::pow((m + 1) / std::exp(1.0), m + 1) *
          std::sqrt(2.0 * 3.14159265358979323846 * (m + 1));
      tau_suggest = (1.0 / anorm) *
                    std::pow((fact * std::max(tol_rate * t_end, 1e-300)) /
                                 (4.0 * beta * anorm),
                             xm);
    }

    double tau = std::min(tau_suggest, t_target - t_now);
    // Trial loop: evaluate the projected exponential, estimate the local
    // error, shrink tau until accepted.
    const int mx = breakdown ? dim : m + 2;  // operand order
    double err_loc = 0.0;
    int rejections = 0;
    for (;;) {
      if (breakdown) {
        // The basis is invariant: the projection is EXACT for any tau, so
        // jump straight to the target.
        tau = t_target - t_now;
      }
      small.assign(static_cast<std::size_t>(mx * mx), 0.0);
      for (int r = 0; r < mx; ++r) {
        for (int c = 0; c < mx; ++c) {
          small[static_cast<std::size_t>(r * mx + c)] =
              tau * hess[static_cast<std::size_t>(r * ld + c)];
        }
      }
      dense_matexp(small, mx);
      if (breakdown) {
        err_loc = 0.0;
        break;
      }
      const double p1 =
          std::abs(beta * small[static_cast<std::size_t>(m * mx)]);
      const double p2 =
          std::abs(beta * small[static_cast<std::size_t>((m + 1) * mx)]) *
          avnorm;
      double xm_l;
      if (p1 > 10.0 * p2) {
        err_loc = p2;
        xm_l = 1.0 / static_cast<double>(m);
      } else if (p1 > p2) {
        err_loc = p1 * p2 / (p1 - p2);
        xm_l = 1.0 / static_cast<double>(m);
      } else {
        err_loc = p1;
        xm_l = m > 1 ? 1.0 / static_cast<double>(m - 1) : 1.0;
      }
      if (err_loc <= kDelta * tau * tol_rate) {
        tau_suggest = kGamma * tau *
                      std::pow(tau * tol_rate / std::max(err_loc, 1e-300),
                               xm_l);
        break;
      }
      if (++rejections > kMaxReject) {
        // Give up shrinking: accept and flag every subsequent value as
        // not guaranteed (mirrors the capped semantics of SR's step cap).
        tolerance_missed = true;
        break;
      }
      tau = kGamma * tau *
            std::pow(tau * tol_rate / std::max(err_loc, 1e-300), xm_l);
    }

    const int mk = breakdown ? dim : m + 1;  // basis vectors in the update
    // MRR: accumulate Int_{t_now}^{t_now+tau} r . w(s) ds BEFORE w is
    // overwritten, via the phi_1 block-matrix identity on the projected
    // operator (header comment).
    if (request.measure == MeasureKind::kMrr) {
      const int md = mk + 1;
      phi.assign(static_cast<std::size_t>(md * md), 0.0);
      for (int r = 0; r < mk; ++r) {
        for (int c = 0; c < mk; ++c) {
          phi[static_cast<std::size_t>(r * md + c)] =
              tau * hess[static_cast<std::size_t>(r * ld + c)];
        }
      }
      phi[static_cast<std::size_t>(mk)] = tau;  // e_1 column, row 0
      dense_matexp(phi, md);
      CompensatedSum inc;
      for (int j = 0; j < mk; ++j) {
        const double weight = phi[static_cast<std::size_t>(j * md + mk)];
        if (weight == 0.0) continue;
        inc.add(weight * sparse_reward_dot(reward_idx_, rewards_,
                                           basis[static_cast<std::size_t>(j)]));
      }
      integral.add(beta * inc.value());
    }

    // w <- beta * V_{1..mk} * exp(tau H)(:, 1)
    std::fill(scratch.begin(), scratch.end(), 0.0);
    for (int j = 0; j < mk; ++j) {
      const double f = beta * small[static_cast<std::size_t>(j * mx)];
      if (f == 0.0) continue;
      const AlignedVector<double>& vj = basis[static_cast<std::size_t>(j)];
      for (std::size_t i = 0; i < n; ++i) scratch[i] += f * vj[i];
    }
    std::copy(scratch.begin(), scratch.end(), w.begin());

    t_now = tau >= t_target - t_now ? t_target : t_now + tau;
  }

  report.total.dtmc_steps = matvecs;
  report.total.capped = budget_spent || tolerance_missed;
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
