#include "core/compiled_artifact.hpp"

#include "core/transient_solver.hpp"

namespace rrl {

CompiledArtifact export_artifact(const TransientSolver& solver,
                                 std::uint64_t model_hash,
                                 const SolverConfig& config) {
  CompiledArtifact artifact;
  artifact.solver = std::string(solver.name());
  artifact.model_hash = model_hash;
  artifact.config = config;
  solver.export_compiled(artifact);
  return artifact;
}

bool artifact_matches(const CompiledArtifact& artifact,
                      const std::string& solver, std::uint64_t model_hash,
                      const SolverConfig& config) {
  return artifact.solver == solver && artifact.model_hash == model_hash &&
         artifact.config.epsilon == config.epsilon &&
         artifact.config.rate_factor == config.rate_factor &&
         artifact.config.regenerative == config.regenerative &&
         artifact.config.step_cap == config.step_cap;
}

}  // namespace rrl
