// Standard randomization (uniformization), the paper's SR baseline.
//
// TRR(t) = sum_{n>=0} pois(n; Lambda t) d(n),   d(n) = r . (alpha P^n)
// MRR(t) = (1/(Lambda t)) sum_{n>=0} P[N(Lambda t) >= n+1] d(n)
// truncated so that the neglected tail is below the requested error bound.
// Numerically stable (only additions of positive numbers) but needs ~Lambda*t
// steps: the cost the paper's new variant is designed to avoid.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rrl {

class PoissonDistribution;  // markov/poisson.hpp

/// Smallest step count n whose neglected-tail error bound is below eps:
///   TRR: r_max * P[N > n]            <= eps
///   MRR: r_max * E[(N - n)^+] / mean <= eps
/// (eps_over_rmax = eps / r_max). This is SR's truncation rule, exposed
/// because the batched V-solve path (rr_solver.hpp's solve_rr_batch) must
/// replicate the inner V-model pass truncation exactly to stay
/// bit-identical to the per-scenario solve.
[[nodiscard]] std::int64_t sr_truncation_point(
    const PoissonDistribution& poisson, MeasureKind kind,
    double eps_over_rmax);

struct SrOptions {
  /// Total error bound (the paper's eps; its experiments use 1e-12).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate (1.0 = the paper's choice).
  double rate_factor = 1.0;
  /// Optional step cap (benchmark safety valve); < 0 disables. When the cap
  /// fires the result is flagged `capped` and covers only the mixture mass
  /// seen so far.
  std::int64_t step_cap = -1;
};

/// Standard randomization solver bound to one (chain, rewards, initial
/// distribution) triple; trr/mrr may be called for many time points.
class StandardRandomization : public TransientSolver {
 public:
  StandardRandomization(const Ctmc& chain, std::vector<double> rewards,
                        std::vector<double> initial, SrOptions options = {});

  /// Single-sourced method description (the registry registers built-ins
  /// with this exact text).
  static constexpr std::string_view kDescription =
      "standard randomization (uniformization)";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sr";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// Amortized sweep: ONE randomization pass over the Pi-vector; at every
  /// step the reward coefficient d(n) feeds each grid point's Poisson
  /// mixture, so the whole grid costs the truncation point of the largest
  /// time instead of the sum over points.
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  /// Compile → execute split: SR's compiled state is the randomized DTMC
  /// (P transposed in CSR gather form, self-loops, Lambda).
  void export_compiled(CompiledArtifact& artifact) const override;
  void import_compiled(const CompiledArtifact& artifact) override;

  /// Transient reward rate at time t (t >= 0).
  [[nodiscard]] TransientValue trr(double t) const;

  /// Mean reward rate over [0, t] (t > 0).
  [[nodiscard]] TransientValue mrr(double t) const;

  [[nodiscard]] double lambda() const noexcept { return dtmc_.lambda(); }

  /// Read-only view of the compiled pass state for the shared-pass batch
  /// engine (core/randomization_batch.hpp), which must replicate
  /// solve_grid's loop bit-for-bit per column and therefore needs the same
  /// inputs solve_grid itself consumes. Spans borrow from this solver —
  /// the view must not outlive it (or a subsequent import_compiled()).
  struct BatchView {
    const RandomizedDtmc* dtmc = nullptr;
    std::span<const double> rewards;
    std::span<const double> initial;
    std::span<const index_t> reward_idx;
    double r_max = 0.0;
    double epsilon = 0.0;
    std::int64_t step_cap = -1;
  };
  [[nodiscard]] BatchView batch_view() const noexcept {
    return BatchView{&dtmc_,  rewards_,         initial_,          reward_idx_,
                     r_max_,  options_.epsilon, options_.step_cap};
  }

 private:
  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  std::vector<index_t> reward_idx_;
  double r_max_ = 0.0;
  SrOptions options_;
  RandomizedDtmc dtmc_;
};

}  // namespace rrl
