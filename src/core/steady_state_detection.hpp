// Randomization with steady-state detection (the paper's RSD baseline,
// after Sericola 1999 / Malhotra-Muppala-Trivedi).
//
// The solver uses the backward (adjoint) formulation: with w_0 = r and
// w_{n+1} = P w_n, the mixture coefficients are d(n) = alpha . w_n, and for
// every m >= n the value d(m) = (alpha P^{m-n}) . w_n is a convex
// combination of the entries of w_n. Hence the span seminorm
//   span(w_n) = max_i w_n(i) - min_i w_n(i)
// rigorously brackets all future coefficients: once span(w_n) <= delta, the
// remaining Poisson mass can be folded into the midpoint of [min, max] with
// error <= delta/2 — this is the "steady-state detection which gives error
// bounds" of the paper's reference [14]. The step count therefore saturates
// at the detection step for large t (Table 1's RSD column).
//
// Because the paper randomizes at exactly the maximum output rate, states
// attaining the maximum have no self-loop and the DTMC may be periodic; the
// span then fails to contract and detection simply never fires (the solver
// falls back to the full Poisson truncation). rate_factor > 1 restores
// guaranteed aperiodicity.
#pragma once

#include <span>
#include <vector>

#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rrl {

struct RsdOptions {
  /// Total error bound; eps/2 is allocated to Poisson truncation and eps/2
  /// to the span-detection remainder (Section 3 uses eps = 1e-12).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate.
  double rate_factor = 1.0;
  /// Span-seminorm detection threshold; <= 0 selects eps/2.
  double detection_tol = -1.0;
  /// Optional step cap; < 0 disables.
  std::int64_t step_cap = -1;
};

/// Steady-state-detecting randomization solver for irreducible models.
class RandomizationSteadyStateDetection : public TransientSolver {
 public:
  /// Precondition: `chain` is irreducible (A = 0).
  RandomizationSteadyStateDetection(const Ctmc& chain,
                                    std::vector<double> rewards,
                                    std::vector<double> initial,
                                    RsdOptions options = {});

  /// Single-sourced method description (the registry registers built-ins
  /// with this exact text).
  static constexpr std::string_view kDescription =
      "randomization with steady-state detection";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rsd";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// Amortized sweep: ONE backward pass w_n = P^n r shared by every grid
  /// point (the coefficients d(n) = alpha . w_n are time-independent), and
  /// a single span-seminorm detection folds the remaining Poisson mass of
  /// every still-active point at once.
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  /// Compile → execute split: RSD's compiled state is the randomized DTMC;
  /// the row-form P for the backward pass is re-derived by exact
  /// transposition on import.
  void export_compiled(CompiledArtifact& artifact) const override;
  void import_compiled(const CompiledArtifact& artifact) override;

  [[nodiscard]] TransientValue trr(double t) const;
  [[nodiscard]] TransientValue mrr(double t) const;

  [[nodiscard]] double lambda() const noexcept { return dtmc_.lambda(); }

  /// Read-only view of the compiled pass state for the shared-pass batch
  /// engine (core/randomization_batch.hpp) — same contract as
  /// StandardRandomization::batch_view(): the batch loop replays
  /// solve_grid bit-for-bit per column from exactly these inputs. Spans
  /// borrow from this solver.
  struct BatchView {
    const RandomizedDtmc* dtmc = nullptr;
    const CsrMatrix* p = nullptr;  ///< row-form P, the backward operator
    std::span<const double> rewards;
    std::span<const double> initial;
    double r_max = 0.0;
    double epsilon = 0.0;
    double detection_tol = -1.0;
    std::int64_t step_cap = -1;
  };
  [[nodiscard]] BatchView batch_view() const noexcept {
    return BatchView{&dtmc_,
                     &p_,
                     rewards_,
                     initial_,
                     r_max_,
                     options_.epsilon,
                     options_.detection_tol,
                     options_.step_cap};
  }

 private:
  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  double r_max_ = 0.0;
  RsdOptions options_;
  RandomizedDtmc dtmc_;
  /// P in gather (row) form for the backward product w <- P w. The
  /// randomized DTMC stores P transposed (the forward-stepping layout);
  /// the backward pass used to run the scatter kernel over it, which
  /// cannot be row-partitioned without write conflicts. Materializing P
  /// once per solver (doubling the matrix memory) turns every backward
  /// step into a gather product — the same kernel serial and pooled, so
  /// results are identical for every worker count.
  CsrMatrix p_;
};

}  // namespace rrl
