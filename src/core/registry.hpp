// String-keyed solver registry/factory.
//
// Cross-method scenario studies (the paper's Tables 1-2 and Figures 3-4,
// the CLI tool, the examples and the benches) select a method by name
// instead of hard-coding solver classes:
//
//   auto solver = rrl::make_solver("rrl", chain, rewards, initial);
//   auto report = solver->solve_grid(rrl::SolveRequest::trr(ts));
//
// The four built-in methods are pre-registered under "sr", "rsd", "rr" and
// "rrl"; downstream code can register additional methods (or replace a
// built-in, e.g. with an instrumented wrapper) via register_solver().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

/// Method-agnostic construction parameters. Method-specific tuning beyond
/// these (Durbin period multiplier, detection tolerance, ...) still goes
/// through the concrete solver classes.
struct SolverConfig {
  /// Total error bound (the paper's eps).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate (1.0 = the paper's choice).
  double rate_factor = 1.0;
  /// Regenerative state for rr/rrl; < 0 selects one automatically with
  /// suggest_regenerative_state(). Ignored by sr/rsd.
  index_t regenerative = -1;
  /// Safety step cap; < 0 disables. Applied to the randomization pass of
  /// sr/rsd, to the V-solve of rr, and to the schema of rr/rrl.
  std::int64_t step_cap = -1;
};

/// Factory signature: bind a solver to (chain, rewards, initial).
/// The chain reference must outlive the returned solver.
using SolverFactory = std::function<std::unique_ptr<TransientSolver>(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, const SolverConfig& config)>;

/// Register `factory` under `name` (replaces an existing registration of
/// the same name). An empty `description` keeps the name's existing
/// description, so an instrumented replacement of a built-in inherits the
/// original text unless it supplies its own.
void register_solver(const std::string& name, SolverFactory factory,
                     std::string description = "");

/// True if `name` is registered.
[[nodiscard]] bool solver_registered(const std::string& name);

/// All registered names in registration order; the built-ins come first
/// ("sr", "rsd", "rr", "rrl").
[[nodiscard]] std::vector<std::string> registered_solvers();

/// The registered names as one comma-separated string (for error/usage
/// messages).
[[nodiscard]] std::string registered_solver_list();

/// One-line description of a registered method (empty if it has none).
[[nodiscard]] std::string solver_description(const std::string& name);

/// Construct a solver by name. Throws contract_error for unknown names
/// (the message lists what is registered). The chain reference must outlive
/// the returned solver.
[[nodiscard]] std::unique_ptr<TransientSolver> make_solver(
    const std::string& name, const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, const SolverConfig& config = {});

// The convenience overload for parsed model files lives in
// io/model_solver.hpp, keeping this core layer independent of io.

}  // namespace rrl
