// Uniformized-Krylov transient solver: exp(Qt)-action by Arnoldi
// projection with adaptive time-stepping (the Expokit dgexpv scheme,
// Sidje 1998; see also Masetti & Robol's matrix-function treatment of
// performability measures in PAPERS.md).
//
// Randomization methods pay ~Lambda*t vector iterations: on a stiff
// million-state model with Lambda*t ~ 10^5..10^7 the step counts explode
// (the very effect the paper's Tables 1-2 document for SR). This solver
// instead advances the distribution directly through the matrix
// exponential: per substep tau it builds an m-dimensional Krylov basis
// V_m of A = Q^T at the current iterate w (m ~ 30), projects
// exp(tau A) w ~= beta V_{m+1} exp(tau H_bar) e_1 with a DENSE
// (m+2)-order exponential (Pade scaling-and-squaring — m^3 flops,
// nothing against the n-sized matvecs), and adapts tau from Expokit's
// corrected a-posteriori local error estimate. Cost per substep is m+1
// matvecs regardless of Lambda*t, so total matvecs track the transient's
// intrinsic time scale, not its stiffness.
//
// The matvecs reuse the existing uniformization machinery: A v = Q^T v =
// Lambda * (P^T v - v) with P^T the randomized DTMC's CSR gather matrix,
// so every SpMV dispatches through the vectorized kernels
// (sparse/spmv_kernels.hpp), and the compile -> execute split is shared
// with SR/RSD — export/import carry (Lambda, P^T, self-loops) and an
// imported solver answers bit-identically.
//
// Measures: TRR(t) = r . w(t) is read off whenever a substep lands on a
// grid time (substeps are clipped to grid times, so values are evaluated
// exactly at the requested t, never interpolated). MRR's integral
// Int_0^t r . w is accumulated per accepted substep through the phi_1
// trick: for the block matrix [[H, e_1], [0, 0]],
// exp(tau * [[H, e_1], [0, 0]]) has Int_0^tau exp(sH) e_1 ds as its
// top-right column, so the integral increment is
// beta * (r^T V) Int_0^tau exp(s H) e_1 ds — one more small dense
// exponential per substep, no extra matvecs.
//
// Error control: the local estimate err_loc is held below
// tau/t * (eps / max(r_max, 1)) per substep. Because exp(Q^T s) is an
// L1-contraction on the probability simplex, local vector errors
// accumulate at most additively over substeps, so the sweep-wide reward
// error stays ~eps for the dependability-style rewards this library
// targets. Unlike SR/RR the bound rests on a (robust, Expokit-standard)
// ESTIMATE, not a proof — the cross-validation tests pin it against SR's
// rigorous bound on every built-in model.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rrl {

struct KrylovOptions {
  /// Total error target (per grid point, like every other solver here).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate (shared with SR so artifacts
  /// interchange bit-identically for the same config).
  double rate_factor = 1.0;
  /// Optional cap on TOTAL matvecs of a solve_grid call; < 0 disables.
  /// When it fires the remaining grid points report the value at the
  /// last reached time and are flagged `capped`.
  std::int64_t step_cap = -1;
  /// Krylov subspace dimension per substep (clamped to the state count).
  /// Expokit's default 30 balances basis storage ((m+1) n-vectors)
  /// against substep length.
  int max_dim = 30;
};

class KrylovSolver : public TransientSolver {
 public:
  KrylovSolver(const Ctmc& chain, std::vector<double> rewards,
               std::vector<double> initial, KrylovOptions options = {});

  static constexpr std::string_view kDescription =
      "uniformized-Krylov exp(Qt) action (Arnoldi, adaptive stepping)";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "krylov";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// One adaptive pass from t = 0 to the largest grid time; every grid
  /// point is evaluated exactly when the pass crosses it, so the whole
  /// grid costs one sweep (same amortization contract as SR/RSD).
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  /// Compile -> execute split: the compiled state is the randomized DTMC,
  /// exactly as for SR/RSD (distinct solver name keys the cache).
  void export_compiled(CompiledArtifact& artifact) const override;
  void import_compiled(const CompiledArtifact& artifact) override;

  [[nodiscard]] double lambda() const noexcept { return dtmc_.lambda(); }

 private:
  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  std::vector<index_t> reward_idx_;
  double r_max_ = 0.0;
  KrylovOptions options_;
  RandomizedDtmc dtmc_;
};

}  // namespace rrl
