#include "core/schema_cache.hpp"

#include <algorithm>
#include <utility>

namespace rrl {

std::shared_ptr<const CompiledSchema> SchemaCache::get(
    double t, double eps, bool want_transform,
    const std::function<RegenerativeSchema()>& build) const {
  // Every caller of one cache passes the same want_transform (RR never
  // wants one, RRL always does), so a hit's transform presence matches
  // the request; the guard below merely rebuilds if that ever changed.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& e : entries_) {
      if (e.t == t && e.eps == eps &&
          (!want_transform || e.compiled->transform != nullptr)) {
        ++stats_.hits;
        e.last_used = ++clock_;
        return e.compiled;
      }
    }
  }

  // Miss: compute outside the lock so concurrent misses on different keys
  // proceed in parallel.
  auto fresh = std::make_shared<CompiledSchema>();
  fresh->schema = build();
  if (want_transform) {
    fresh->transform = std::make_shared<const TrrTransform>(fresh->schema);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  for (Entry& e : entries_) {
    if (e.t == t && e.eps == eps) {
      // A racing worker inserted the same key first; both artifacts are
      // bit-identical by determinism of the builder, so adopt whichever
      // satisfies the request.
      if (!want_transform || e.compiled->transform != nullptr) {
        e.last_used = ++clock_;
        return e.compiled;
      }
      e.compiled = fresh;
      e.last_used = ++clock_;
      return fresh;
    }
  }
  if (entries_.size() >= kCapacity) {
    const auto oldest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    entries_.erase(oldest);
  }
  entries_.push_back(Entry{t, eps, fresh, ++clock_});
  return fresh;
}

SchemaCacheStats SchemaCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rrl
