#include "core/schema_cache.hpp"

#include <algorithm>
#include <utility>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rrl {
namespace {

struct SchemaCounters {
  metrics::Counter& hits = metrics::counter("rrl_cache_schema_hits_total");
  metrics::Counter& builds =
      metrics::counter("rrl_cache_schema_builds_total");
  metrics::Counter& seeded =
      metrics::counter("rrl_cache_schema_seeded_total");
};

SchemaCounters& schema_counters() {
  static SchemaCounters c;
  return c;
}

}  // namespace

std::shared_ptr<CompiledSchema> SchemaCache::compile(
    RegenerativeSchema schema, bool want_transform, bool want_vmodel) {
  auto compiled = std::make_shared<CompiledSchema>();
  compiled->schema = std::move(schema);
  if (want_transform) {
    compiled->transform =
        std::make_shared<const TrrTransform>(compiled->schema);
  }
  if (want_vmodel) {
    compiled->vmodel =
        std::make_shared<const VModel>(build_vmodel(compiled->schema));
  }
  return compiled;
}

bool SchemaCache::satisfies(const CompiledSchema& compiled,
                            bool want_transform, bool want_vmodel) {
  return (!want_transform || compiled.transform != nullptr) &&
         (!want_vmodel || compiled.vmodel != nullptr);
}

void SchemaCache::insert(
    double t, double eps,
    std::shared_ptr<const CompiledSchema> compiled) const {
  if (slots_.size() >= capacity_) {
    const auto oldest = std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.last_used < b.last_used; });
    slots_.erase(oldest);
  }
  slots_.push_back(Slot{t, eps, std::move(compiled), ++clock_});
}

std::shared_ptr<const CompiledSchema> SchemaCache::get(
    double t, double eps, bool want_transform, bool want_vmodel,
    const std::function<RegenerativeSchema()>& build) const {
  // Every caller of one cache passes the same wants (RR wants the V-model,
  // RRL wants the transform), so a hit's derived objects match the
  // request; the satisfies() guard below merely rebuilds if that ever
  // changed.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& s : slots_) {
      if (s.t == t && s.eps == eps &&
          satisfies(*s.compiled, want_transform, want_vmodel)) {
        ++stats_.hits;
        schema_counters().hits.add(1);
        s.last_used = ++clock_;
        return s.compiled;
      }
    }
  }

  // Miss: compute outside the lock so concurrent misses on different keys
  // proceed in parallel.
  std::shared_ptr<CompiledSchema> fresh;
  {
    const trace::Span span("schema.build");
    fresh = compile(build(), want_transform, want_vmodel);
  }
  schema_counters().builds.add(1);

  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  for (Slot& s : slots_) {
    if (s.t == t && s.eps == eps) {
      // A racing worker inserted the same key first; both artifacts are
      // bit-identical by determinism of the builder, so adopt whichever
      // satisfies the request.
      if (satisfies(*s.compiled, want_transform, want_vmodel)) {
        s.last_used = ++clock_;
        return s.compiled;
      }
      s.compiled = fresh;
      s.last_used = ++clock_;
      return fresh;
    }
  }
  if (capacity_ == 0) return fresh;  // degenerate cache: never retain
  insert(t, eps, fresh);
  return fresh;
}

void SchemaCache::seed(double t, double eps, RegenerativeSchema schema,
                       bool want_transform, bool want_vmodel) const {
  if (capacity_ == 0) return;
  // Derive outside the lock, like a miss.
  std::shared_ptr<CompiledSchema> compiled =
      compile(std::move(schema), want_transform, want_vmodel);

  const std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& s : slots_) {
    if (s.t == t && s.eps == eps) return;  // identical by determinism
  }
  ++stats_.seeded;
  schema_counters().seeded.add(1);
  insert(t, eps, std::move(compiled));
}

std::vector<SchemaCache::Entry> SchemaCache::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Slot> ordered = slots_;
  std::sort(ordered.begin(), ordered.end(),
            [](const Slot& a, const Slot& b) {
              return a.last_used < b.last_used;
            });
  std::vector<Entry> out;
  out.reserve(ordered.size());
  for (Slot& s : ordered) {
    out.push_back(Entry{s.t, s.eps, std::move(s.compiled)});
  }
  return out;
}

SchemaCacheStats SchemaCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SchemaCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace rrl
