// Regenerative randomization schema (the common core of RR and RRL).
//
// Given the randomized DTMC X^ (rate Lambda) and a regenerative state r, the
// excursion decomposition characterizes X by scalar sequences (Section 2):
// for the chain started at r (mu^(0) = delta_r, masked at r and at the
// absorbing states after every step),
//   a(k)        surviving-excursion mass after k steps (a(0) = 1),
//   c(k)        reward-weighted surviving mass (= a(k) b(k)),
//   qa(k)       mass returning to r at step k+1 (= q_k a(k)),
//   va_i(k)     mass absorbed into f_i at step k+1 (= v_k^i a(k)),
// plus primed sequences for the excursion started from the initial
// distribution restricted to S \ {r} when alpha_r = P[X(0) = r] < 1
// (a'(0) = 1 - alpha_r).
//
// Truncation criterion. Every trajectory of X that keeps all its excursion
// ages <= K is reproduced exactly by the truncated transformed model V_K;
// a trajectory is lost (absorbed into the zero-reward state `a`) as soon as
// one excursion reaches age K and takes one more randomization step. An
// excursion started at step m exceeds age K only if the Poisson count
// N(Lambda t) reaches m + K + 1, so
//   |TRR(t) - TRR_K(t)| <= r_max * a(K) * E[(N(Lambda t) - K)^+],
// and the same bound dominates the MRR error (a time average of TRR errors).
// K is the smallest index meeting eps/2 (eps/4 per chain when alpha_r < 1).
// The bound degenerates to the standard-randomization Poisson tail for small
// t and to a(K) * Lambda * t <= eps for large t, producing the two regimes
// visible in the paper's Tables 1-2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/solver.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rrl {

struct RegenerativeOptions {
  /// Total error budget eps; eps/2 goes to model truncation (split across
  /// the two chains when alpha_r < 1), leaving eps/2 for solving V_{K,L}.
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate.
  double rate_factor = 1.0;
  /// Safety cap on K and on L; < 0 disables. When it fires the schema is
  /// flagged `capped` (the requested accuracy is not guaranteed).
  std::int64_t step_cap = 10'000'000;
};

/// One excursion chain (unprimed or primed).
struct ExcursionSeries {
  /// a(k), k = 0..K. Non-increasing, a(0) = initial mass.
  std::vector<double> a;
  /// c(k) = a(k) b(k) = reward-weighted surviving mass, k = 0..K.
  std::vector<double> c;
  /// qa(k) = q_k a(k) = mass returning to r at step k+1, k = 0..K-1.
  std::vector<double> qa;
  /// va[i][k] = v_k^i a(k) = mass absorbed into absorbing state i at step
  /// k+1; i indexes the chain's absorbing-state list, k = 0..K-1.
  std::vector<std::vector<double>> va;
  /// True if the excursion terminated exactly (a(K) == 0 reached); the
  /// truncation then carries no error at all.
  bool exact = false;

  [[nodiscard]] std::int64_t truncation() const noexcept {
    return static_cast<std::int64_t>(a.size()) - 1;
  }
  /// Sum over absorbing states of va[i][k].
  [[nodiscard]] double va_total(std::size_t k) const;
  /// Sum over absorbing states of reward(f_i) * va[i][k].
  [[nodiscard]] double va_rewarded(std::size_t k,
                                   std::span<const double> f_rewards) const;
};

/// The full schema: everything RR (explicit V_{K,L}) and RRL (closed-form
/// transform) need.
struct RegenerativeSchema {
  double lambda = 0.0;       ///< randomization rate
  double alpha_r = 1.0;      ///< initial probability mass at r
  double r_max = 0.0;        ///< max reward rate
  index_t regenerative = 0;  ///< the regenerative state r
  std::vector<index_t> absorbing;   ///< f_1..f_A (indices into the chain)
  std::vector<double> f_rewards;    ///< rewards of f_1..f_A
  ExcursionSeries main;             ///< excursions from r (K = truncation)
  ExcursionSeries primed;           ///< initial excursion (empty if
                                    ///< alpha_r == 1); L = truncation
  bool has_primed = false;
  bool capped = false;  ///< a step cap fired; eps not guaranteed
  double t = 0.0;       ///< the time horizon the truncation was chosen for

  [[nodiscard]] std::int64_t K() const noexcept { return main.truncation(); }
  [[nodiscard]] std::int64_t L() const noexcept {
    return has_primed ? primed.truncation() : 0;
  }
  /// The paper's step count: K + L DTMC steps of a chain the size of X.
  [[nodiscard]] std::int64_t dtmc_steps() const noexcept {
    return K() + (has_primed ? L() : 0);
  }
};

/// Compute the schema for time horizon t (the truncation criterion depends
/// on t through the Poisson distribution of N(Lambda t)).
/// Preconditions: structure per the paper (S strongly connected, f_i
/// absorbing); r non-absorbing; rewards >= 0; initial a distribution.
[[nodiscard]] RegenerativeSchema compute_regenerative_schema(
    const Ctmc& chain, std::span<const double> rewards,
    std::span<const double> initial, index_t regenerative_state, double t,
    const RegenerativeOptions& options = {});

/// Heuristic choice of the regenerative state: the method "will be good
/// when r is visited often in the randomized DTMC" (Section 2), so pick the
/// non-absorbing state of highest occupancy in a short power iteration of
/// the DTMC restricted to S (absorbing states masked and the vector
/// renormalized each step). For well-behaved dependability models this is
/// the fully-operational state. O(iterations * transitions).
[[nodiscard]] index_t suggest_regenerative_state(const Ctmc& chain,
                                                 int iterations = 64);

}  // namespace rrl
