#include "core/standard_randomization.hpp"

#include <cmath>

#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

StandardRandomization::StandardRandomization(const Ctmc& chain,
                                             std::vector<double> rewards,
                                             std::vector<double> initial,
                                             SrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  reward_idx_ = nonzero_reward_states(rewards_);
  r_max_ = max_reward(rewards_);
}

TransientValue StandardRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve(t, Kind::kTrr);
}

TransientValue StandardRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve(t, Kind::kMrr);
}

TransientValue StandardRandomization::solve(double t, Kind kind) const {
  const Stopwatch watch;
  TransientValue out;
  out.stats.lambda = dtmc_.lambda();

  if (r_max_ == 0.0 || t == 0.0) {
    // Zero rewards give zero measures; t == 0 gives the initial reward rate.
    out.value = t == 0.0 ? sparse_reward_dot(reward_idx_, rewards_, initial_)
                         : 0.0;
    out.stats.seconds = watch.seconds();
    return out;
  }

  const double mean = dtmc_.lambda() * t;
  const PoissonDistribution poisson(mean);

  // Truncation point: neglected mass times r_max must stay below eps.
  std::int64_t n_max = 0;
  if (kind == Kind::kTrr) {
    // error <= r_max * P[N > n_max]
    n_max = poisson.right_truncation_point(options_.epsilon / r_max_);
  } else {
    // error <= r_max * E[(N - n_max)^+] / (Lambda t); find the smallest
    // n with the bound below eps (expected_excess is decreasing in n).
    const double target = options_.epsilon * mean / r_max_;
    std::int64_t lo = 0;
    std::int64_t hi = poisson.window_last() + 1;
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (poisson.expected_excess(mid) <= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    n_max = lo;
  }
  if (options_.step_cap >= 0 && n_max > options_.step_cap) {
    n_max = options_.step_cap;
    out.stats.capped = true;
  }

  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  std::vector<double> pi = initial_;
  std::vector<double> next(n_states, 0.0);
  CompensatedSum acc;

  for (std::int64_t n = 0;; ++n) {
    const double d = sparse_reward_dot(reward_idx_, rewards_, pi);
    const double weight =
        kind == Kind::kTrr ? poisson.pmf(n) : poisson.tail(n + 1);
    if (weight != 0.0) acc.add(weight * d);
    if (n == n_max) break;
    dtmc_.step(pi, next);
    pi.swap(next);
  }

  out.stats.dtmc_steps = n_max;
  out.value = kind == Kind::kTrr ? acc.value() : acc.value() / mean;
  out.stats.seconds = watch.seconds();
  return out;
}

}  // namespace rrl
