#include "core/standard_randomization.hpp"

#include <algorithm>
#include <cmath>

#include "core/compiled_artifact.hpp"
#include "core/grid_sweep.hpp"
#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

// (expected_excess is decreasing in n, hence the binary search.)
std::int64_t sr_truncation_point(const PoissonDistribution& poisson,
                                 MeasureKind kind, double eps_over_rmax) {
  if (kind == MeasureKind::kTrr) {
    return poisson.right_truncation_point(eps_over_rmax);
  }
  const double target = eps_over_rmax * poisson.mean();
  std::int64_t lo = 0;
  std::int64_t hi = poisson.window_last() + 1;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (poisson.expected_excess(mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

StandardRandomization::StandardRandomization(const Ctmc& chain,
                                             std::vector<double> rewards,
                                             std::vector<double> initial,
                                             SrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  reward_idx_ = nonzero_reward_states(rewards_);
  r_max_ = max_reward(rewards_);
}

void StandardRandomization::export_compiled(CompiledArtifact& artifact) const {
  artifact.lambda = dtmc_.lambda();
  artifact.dtmc_pt = dtmc_.transition_transposed();
  const auto loops = dtmc_.self_loops();
  artifact.self_loop.assign(loops.begin(), loops.end());
}

void StandardRandomization::import_compiled(const CompiledArtifact& artifact) {
  // Only adopt a payload that is structurally ours (identity matching is
  // the caller's job — see artifact_matches); anything else is ignored and
  // the construction-time DTMC stands.
  if (artifact.lambda <= 0.0 ||
      artifact.dtmc_pt.rows() != chain_.num_states() ||
      artifact.dtmc_pt.cols() != chain_.num_states() ||
      artifact.self_loop.size() !=
          static_cast<std::size_t>(chain_.num_states())) {
    return;
  }
  dtmc_ = RandomizedDtmc::from_parts(artifact.dtmc_pt, artifact.self_loop,
                                     artifact.lambda);
}

TransientValue StandardRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue StandardRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport StandardRandomization::solve_grid(
    const SolveRequest& request, SolveWorkspace& workspace) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();

  SolveReport report;
  report.points.resize(m);
  for (TransientValue& p : report.points) p.stats.lambda = dtmc_.lambda();
  report.total.lambda = dtmc_.lambda();

  if (r_max_ == 0.0) {
    // All rewards zero: both measures are identically zero.
    report.total.seconds = watch.seconds();
    return report;
  }

  // Per-point Poisson mixtures with active-set retirement (shared with
  // RSD); the single pass runs to the largest truncation point, each point
  // simply stops accumulating at its own.
  GridSweep sweep(
      dtmc_.lambda(), request.times, request.measure,
      [&](const PoissonDistribution& poisson) {
        return sr_truncation_point(poisson, request.measure, eps / r_max_);
      },
      options_.step_cap);
  for (std::size_t i = 0; i < m; ++i) {
    report.points[i].stats.capped = sweep.point_capped(i);
  }
  report.total.capped = sweep.any_capped();

  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  AlignedVector<double>& pi = workspace.pi(n_states);
  AlignedVector<double>& next = workspace.next(n_states);
  std::copy(initial_.begin(), initial_.end(), pi.begin());

  // Row-partitioned stepping when the caller lent us a pool (small batches
  // on big models; bit-identical to the serial kernel).
  ThreadPool* const pool =
      workspace.pooled_spmv(dtmc_.transition_transposed().nnz());
  for (std::int64_t n = 0;; ++n) {
    sweep.accumulate(n, sparse_reward_dot(reward_idx_, rewards_, pi));
    if (n == sweep.pass_steps()) break;
    if (pool != nullptr) {
      dtmc_.step(pi, next, *pool);
    } else {
      dtmc_.step(pi, next);
    }
    pi.swap(next);
  }

  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    p.value = sweep.value(i);
    p.stats.dtmc_steps = sweep.n_max(i);  // what this point alone would need
  }
  report.total.dtmc_steps = sweep.pass_steps();
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
