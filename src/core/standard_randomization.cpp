#include "core/standard_randomization.hpp"

#include <algorithm>
#include <cmath>

#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {
namespace {

// Smallest n whose neglected-tail error bound is below eps:
//   TRR: r_max * P[N > n]            <= eps
//   MRR: r_max * E[(N - n)^+] / mean <= eps
// (expected_excess is decreasing in n, hence the binary search).
std::int64_t truncation_point(const PoissonDistribution& poisson,
                              MeasureKind kind, double eps_over_rmax) {
  if (kind == MeasureKind::kTrr) {
    return poisson.right_truncation_point(eps_over_rmax);
  }
  const double target = eps_over_rmax * poisson.mean();
  std::int64_t lo = 0;
  std::int64_t hi = poisson.window_last() + 1;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (poisson.expected_excess(mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

StandardRandomization::StandardRandomization(const Ctmc& chain,
                                             std::vector<double> rewards,
                                             std::vector<double> initial,
                                             SrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
  reward_idx_ = nonzero_reward_states(rewards_);
  r_max_ = max_reward(rewards_);
}

TransientValue StandardRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue StandardRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport StandardRandomization::solve_grid(
    const SolveRequest& request) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();

  SolveReport report;
  report.points.resize(m);
  for (TransientValue& p : report.points) p.stats.lambda = dtmc_.lambda();
  report.total.lambda = dtmc_.lambda();

  if (r_max_ == 0.0) {
    // All rewards zero: both measures are identically zero.
    report.total.seconds = watch.seconds();
    return report;
  }

  // Per-point Poisson mixtures; the single pass runs to the largest
  // truncation point, each point simply stops accumulating at its own.
  std::vector<PoissonDistribution> poisson;
  poisson.reserve(m);
  std::vector<std::int64_t> n_max(m, 0);
  std::int64_t pass_steps = 0;
  for (std::size_t i = 0; i < m; ++i) {
    poisson.emplace_back(dtmc_.lambda() * request.times[i]);
    n_max[i] = truncation_point(poisson[i], request.measure, eps / r_max_);
    if (options_.step_cap >= 0 && n_max[i] > options_.step_cap) {
      n_max[i] = options_.step_cap;
      report.points[i].stats.capped = true;
      report.total.capped = true;
    }
    pass_steps = std::max(pass_steps, n_max[i]);
  }

  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  std::vector<double> pi = initial_;
  std::vector<double> next(n_states, 0.0);
  std::vector<CompensatedSum> acc(m);

  // Points ordered by truncation point: once the pass moves beyond a
  // point's n_max it is finished, so the active set shrinks from the front
  // and the weight scan totals O(sum_i n_max_i) instead of O(m * pass).
  std::vector<std::size_t> by_nmax(m);
  for (std::size_t i = 0; i < m; ++i) by_nmax[i] = i;
  std::sort(by_nmax.begin(), by_nmax.end(),
            [&](std::size_t a, std::size_t b) { return n_max[a] < n_max[b]; });
  std::size_t first_active = 0;

  for (std::int64_t n = 0;; ++n) {
    const double d = sparse_reward_dot(reward_idx_, rewards_, pi);
    while (first_active < m && n_max[by_nmax[first_active]] < n) {
      ++first_active;
    }
    for (std::size_t k = first_active; k < m; ++k) {
      const std::size_t i = by_nmax[k];
      const double weight = request.measure == MeasureKind::kTrr
                                ? poisson[i].pmf(n)
                                : poisson[i].tail(n + 1);
      if (weight != 0.0) acc[i].add(weight * d);
    }
    if (n == pass_steps) break;
    dtmc_.step(pi, next);
    pi.swap(next);
  }

  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    p.value = request.measure == MeasureKind::kTrr
                  ? acc[i].value()
                  : acc[i].value() / poisson[i].mean();
    p.stats.dtmc_steps = n_max[i];  // what this point alone would need
  }
  report.total.dtmc_steps = pass_steps;
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
