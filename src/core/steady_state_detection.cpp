#include "core/steady_state_detection.hpp"

#include <algorithm>
#include <cmath>

#include "core/compiled_artifact.hpp"
#include "core/grid_sweep.hpp"
#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RandomizationSteadyStateDetection::RandomizationSteadyStateDetection(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, RsdOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor),
      p_(dtmc_.transition_transposed().transposed()) {
  // The backward pass steps p_ as hard as SR steps the gather form:
  // specialize it at compile time too (transposed() returns plain CSR).
  p_.specialize();
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  RRL_EXPECTS(chain.absorbing_states().empty());  // irreducible models only
  check_distribution(initial_, chain.num_states());
  r_max_ = max_reward(rewards_);
}

void RandomizationSteadyStateDetection::export_compiled(
    CompiledArtifact& artifact) const {
  artifact.lambda = dtmc_.lambda();
  artifact.dtmc_pt = dtmc_.transition_transposed();
  const auto loops = dtmc_.self_loops();
  artifact.self_loop.assign(loops.begin(), loops.end());
}

void RandomizationSteadyStateDetection::import_compiled(
    const CompiledArtifact& artifact) {
  if (artifact.lambda <= 0.0 ||
      artifact.dtmc_pt.rows() != chain_.num_states() ||
      artifact.dtmc_pt.cols() != chain_.num_states() ||
      artifact.self_loop.size() !=
          static_cast<std::size_t>(chain_.num_states())) {
    return;
  }
  dtmc_ = RandomizedDtmc::from_parts(artifact.dtmc_pt, artifact.self_loop,
                                     artifact.lambda);
  // The backward-pass P is the exact transpose of the adopted gather form,
  // same as at construction — including the derived kernel layout, which
  // is rebuilt here rather than shipped in the artifact.
  p_ = dtmc_.transition_transposed().transposed();
  p_.specialize();
}

TransientValue RandomizationSteadyStateDetection::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue RandomizationSteadyStateDetection::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport RandomizationSteadyStateDetection::solve_grid(
    const SolveRequest& request, SolveWorkspace& workspace) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();
  const double tol =
      options_.detection_tol > 0.0 ? options_.detection_tol : eps / 2.0;

  SolveReport report;
  report.points.resize(m);
  for (TransientValue& p : report.points) {
    p.stats.lambda = dtmc_.lambda();
    p.stats.detection_step = -1;
  }
  report.total.lambda = dtmc_.lambda();
  report.total.detection_step = -1;

  if (r_max_ == 0.0) {
    report.total.seconds = watch.seconds();
    return report;
  }

  // Poisson truncation with eps/2 per point (the other eps/2 covers
  // detection); the shared backward pass runs to the largest truncation
  // point, with the active-set retirement scan shared with SR.
  GridSweep sweep(
      dtmc_.lambda(), request.times, request.measure,
      [&](const PoissonDistribution& poisson) {
        return poisson.right_truncation_point(eps / (2.0 * r_max_));
      },
      options_.step_cap);
  for (std::size_t i = 0; i < m; ++i) {
    report.points[i].stats.capped = sweep.point_capped(i);
  }
  report.total.capped = sweep.any_capped();

  // Backward iteration: w_0 = r, w_{n+1} = P w_n, d(n) = alpha . w_n is the
  // same coefficient for every grid point.
  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  AlignedVector<double>& w = workspace.pi(n_states);
  AlignedVector<double>& next = workspace.next(n_states);
  std::copy(rewards_.begin(), rewards_.end(), w.begin());

  // Row-partitioned stepping when the caller lent us a pool (small batches
  // on big models; bit-identical to the serial kernel).
  ThreadPool* const pool = workspace.pooled_spmv(p_.nnz());
  std::int64_t n = 0;
  for (;; ++n) {
    sweep.accumulate(n, dot(initial_, w));
    if (n == sweep.pass_steps()) break;

    // span(w_n) brackets every future coefficient d(m), m >= n: one
    // detection finishes every point that still has Poisson mass left.
    const auto [mn, mx] = std::minmax_element(w.begin(), w.end());
    if (*mx - *mn <= tol) {
      sweep.fold_steady_state(n, 0.5 * (*mx + *mn), [&](std::size_t i) {
        report.points[i].stats.detection_step = n;
      });
      report.total.detection_step = n;
      break;
    }

    // w <- P w: gather product over the materialized row-form P.
    if (pool != nullptr) {
      p_.mul_vec(w, next, *pool);
    } else {
      p_.mul_vec(w, next);
    }
    w.swap(next);
  }

  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    p.value = sweep.value(i);
    // What this point alone would have needed: its truncation point, or the
    // detection step if that fired first.
    p.stats.dtmc_steps = std::min(n, sweep.n_max(i));
  }
  report.total.dtmc_steps = n;
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
