#include "core/steady_state_detection.hpp"

#include <algorithm>
#include <cmath>

#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RandomizationSteadyStateDetection::RandomizationSteadyStateDetection(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, RsdOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  RRL_EXPECTS(chain.absorbing_states().empty());  // irreducible models only
  check_distribution(initial_, chain.num_states());
  r_max_ = max_reward(rewards_);
}

TransientValue RandomizationSteadyStateDetection::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue RandomizationSteadyStateDetection::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport RandomizationSteadyStateDetection::solve_grid(
    const SolveRequest& request) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();
  const double tol =
      options_.detection_tol > 0.0 ? options_.detection_tol : eps / 2.0;

  SolveReport report;
  report.points.resize(m);
  for (TransientValue& p : report.points) {
    p.stats.lambda = dtmc_.lambda();
    p.stats.detection_step = -1;
  }
  report.total.lambda = dtmc_.lambda();
  report.total.detection_step = -1;

  if (r_max_ == 0.0) {
    report.total.seconds = watch.seconds();
    return report;
  }

  // Poisson truncation with eps/2 per point (the other eps/2 covers
  // detection); the shared backward pass runs to the largest one.
  std::vector<PoissonDistribution> poisson;
  poisson.reserve(m);
  std::vector<std::int64_t> n_max(m, 0);
  std::int64_t pass_steps = 0;
  for (std::size_t i = 0; i < m; ++i) {
    poisson.emplace_back(dtmc_.lambda() * request.times[i]);
    n_max[i] = poisson[i].right_truncation_point(eps / (2.0 * r_max_));
    if (options_.step_cap >= 0 && n_max[i] > options_.step_cap) {
      n_max[i] = options_.step_cap;
      report.points[i].stats.capped = true;
      report.total.capped = true;
    }
    pass_steps = std::max(pass_steps, n_max[i]);
  }

  // Backward iteration: w_0 = r, w_{n+1} = P w_n, d(n) = alpha . w_n is the
  // same coefficient for every grid point.
  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  std::vector<double> w = rewards_;
  std::vector<double> next(n_states, 0.0);
  std::vector<CompensatedSum> acc(m);

  // Points ordered by truncation point: the active set shrinks from the
  // front, keeping the weight scan at O(sum_i n_max_i) total.
  std::vector<std::size_t> by_nmax(m);
  for (std::size_t i = 0; i < m; ++i) by_nmax[i] = i;
  std::sort(by_nmax.begin(), by_nmax.end(),
            [&](std::size_t a, std::size_t b) { return n_max[a] < n_max[b]; });
  std::size_t first_active = 0;

  std::int64_t n = 0;
  for (;; ++n) {
    const double d = dot(initial_, w);
    while (first_active < m && n_max[by_nmax[first_active]] < n) {
      ++first_active;
    }
    for (std::size_t k = first_active; k < m; ++k) {
      const std::size_t i = by_nmax[k];
      const double weight = request.measure == MeasureKind::kTrr
                                ? poisson[i].pmf(n)
                                : poisson[i].tail(n + 1);
      if (weight != 0.0) acc[i].add(weight * d);
    }
    if (n == pass_steps) break;

    // span(w_n) brackets every future coefficient d(m), m >= n: one
    // detection finishes every point that still has Poisson mass left.
    const auto [mn, mx] = std::minmax_element(w.begin(), w.end());
    if (*mx - *mn <= tol) {
      const double d_ss = 0.5 * (*mx + *mn);
      for (std::size_t i = 0; i < m; ++i) {
        if (n >= n_max[i]) continue;  // this point already completed
        // Remaining terms k = n+1, n+2, ... folded into the midpoint:
        //   TRR: sum_{k>n} pmf(k) d_ss = tail(n+1) d_ss
        //   MRR: sum_{k>n} P[N>=k+1] d_ss = expected_excess(n+1) d_ss.
        if (request.measure == MeasureKind::kTrr) {
          acc[i].add(poisson[i].tail(n + 1) * d_ss);
        } else {
          acc[i].add(poisson[i].expected_excess(n + 1) * d_ss);
        }
        report.points[i].stats.detection_step = n;
      }
      report.total.detection_step = n;
      break;
    }

    // w <- P w: gather product with the stored P^T's transpose.
    dtmc_.transition_transposed().mul_vec_transposed(w, next);
    w.swap(next);
  }

  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    p.value = request.measure == MeasureKind::kTrr
                  ? acc[i].value()
                  : acc[i].value() / poisson[i].mean();
    // What this point alone would have needed: its truncation point, or the
    // detection step if that fired first.
    p.stats.dtmc_steps = std::min(n, n_max[i]);
  }
  report.total.dtmc_steps = n;
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
