#include "core/steady_state_detection.hpp"

#include <algorithm>
#include <cmath>

#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RandomizationSteadyStateDetection::RandomizationSteadyStateDetection(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, RsdOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      options_(options),
      dtmc_(chain, options.rate_factor) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  RRL_EXPECTS(chain.absorbing_states().empty());  // irreducible models only
  check_distribution(initial_, chain.num_states());
  r_max_ = max_reward(rewards_);
}

TransientValue RandomizationSteadyStateDetection::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve(t, Kind::kTrr);
}

TransientValue RandomizationSteadyStateDetection::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve(t, Kind::kMrr);
}

TransientValue RandomizationSteadyStateDetection::solve(double t,
                                                        Kind kind) const {
  const Stopwatch watch;
  TransientValue out;
  out.stats.lambda = dtmc_.lambda();
  if (r_max_ == 0.0 || t == 0.0) {
    out.value = t == 0.0 ? dot(rewards_, initial_) : 0.0;
    out.stats.seconds = watch.seconds();
    return out;
  }

  const double mean = dtmc_.lambda() * t;
  const PoissonDistribution poisson(mean);
  const double tol = options_.detection_tol > 0.0 ? options_.detection_tol
                                                  : options_.epsilon / 2.0;

  // Poisson truncation with eps/2 (the other eps/2 covers detection).
  std::int64_t n_max =
      poisson.right_truncation_point(options_.epsilon / (2.0 * r_max_));
  if (options_.step_cap >= 0 && n_max > options_.step_cap) {
    n_max = options_.step_cap;
    out.stats.capped = true;
  }

  // Backward iteration: w_0 = r, w_{n+1} = P w_n, d(n) = alpha . w_n.
  const std::size_t n_states = static_cast<std::size_t>(chain_.num_states());
  std::vector<double> w = rewards_;
  std::vector<double> next(n_states, 0.0);
  CompensatedSum acc;

  std::int64_t n = 0;
  for (;; ++n) {
    const double d = dot(initial_, w);
    const double weight =
        kind == Kind::kTrr ? poisson.pmf(n) : poisson.tail(n + 1);
    if (weight != 0.0) acc.add(weight * d);
    if (n == n_max) break;

    // span(w_n) brackets every future coefficient d(m), m >= n: detection.
    const auto [mn, mx] = std::minmax_element(w.begin(), w.end());
    if (*mx - *mn <= tol) {
      const double d_ss = 0.5 * (*mx + *mn);
      // Remaining terms m = n+1, n+2, ... folded into the midpoint:
      //   TRR: sum_{m>n} pmf(m) d_ss = tail(n+1) d_ss
      //   MRR: sum_{m>n} P[N>=m+1] d_ss = E[(N-n)^+ excess] via
      //        sum_{j>=n+2} P[N>=j] = expected_excess(n+1).
      if (kind == Kind::kTrr) {
        acc.add(poisson.tail(n + 1) * d_ss);
      } else {
        acc.add(poisson.expected_excess(n + 1) * d_ss);
      }
      out.stats.detection_step = n;
      break;
    }

    // w <- P w: gather product with the stored P^T's transpose.
    dtmc_.transition_transposed().mul_vec_transposed(w, next);
    w.swap(next);
  }

  out.stats.dtmc_steps = n;
  out.value = kind == Kind::kTrr ? acc.value() : acc.value() / mean;
  out.stats.seconds = watch.seconds();
  return out;
}

}  // namespace rrl
