#include "core/randomization_batch.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/grid_sweep.hpp"
#include "core/standard_randomization.hpp"
#include "core/steady_state_detection.hpp"
#include "markov/poisson.hpp"
#include "sparse/block.hpp"
#include "sparse/vector_ops.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

// Base pointer and stride of block column j — recomputed after every
// swap(), since the tiles trade storage.
struct ColumnRef {
  const double* data;
  std::size_t stride;
};

ColumnRef column_ref(const DenseBlock& x, index_t j) {
  const index_t t = DenseBlock::tile_of(j);
  return {x.tile(t) + DenseBlock::lane_of(j),
          static_cast<std::size_t>(x.tile_width(t))};
}

// Operands of every tile that still holds a live column. Retired columns
// inside a live tile keep being stepped — wasted lanes, but lanes never
// mix, so nothing a reader sees changes; a tile leaves the product only
// when all its columns are done.
void build_ops(const DenseBlock& x, DenseBlock& y,
               std::span<const std::uint8_t> live,
               std::vector<SpmmOperand>& ops) {
  ops.clear();
  for (index_t t = 0; t < x.num_tiles(); ++t) {
    const index_t begin = x.tile_col_begin(t);
    const index_t count = x.tile_cols(t);
    index_t n_live = 0;
    for (index_t j = 0; j < count; ++j) {
      n_live += live[static_cast<std::size_t>(begin + j)] != 0 ? 1 : 0;
    }
    if (n_live == 0) continue;
    ops.push_back(SpmmOperand{x.tile(t), y.tile(t), x.tile_width(t), n_live});
  }
}

// The pooled-product gate of SolveWorkspace::pooled_spmv, for a borrowed
// pool: real workers, a matrix past the nnz floor, and no nested
// parallelism.
ThreadPool* pooled(ThreadPool* pool, std::int64_t nnz) {
  return (pool != nullptr && pool->num_threads() > 1 &&
          nnz >= SolveWorkspace::kMinPooledNnz &&
          !ThreadPool::in_parallel_region())
             ? pool
             : nullptr;
}

void fail(const RandBatchItem& item, const char* what) {
  if (item.error != nullptr && item.error->empty()) *item.error = what;
}

// One column of a batched group: the scenario's sweep, its own pass
// length, and the report under construction.
struct Column {
  std::size_t item = 0;
  std::int64_t pass = 0;
  GridSweep sweep;
  SolveReport rep;
};

// Stamp the GridSweep-derived per-point flags exactly as the solo solves
// do right after constructing the sweep.
void stamp_capped(Column& col) {
  for (std::size_t i = 0; i < col.sweep.size(); ++i) {
    col.rep.points[i].stats.capped = col.sweep.point_capped(i);
  }
  col.rep.total.capped = col.sweep.any_capped();
}

SolveReport empty_report(std::size_t m, double lambda) {
  SolveReport rep;
  rep.points.resize(m);
  for (TransientValue& p : rep.points) p.stats.lambda = lambda;
  rep.total.lambda = lambda;
  return rep;
}

void run_sr_group(const StandardRandomization& solver,
                  std::span<const RandBatchItem> items,
                  std::span<const std::size_t> members, ThreadPool* pool,
                  SolveWorkspace& ws) {
  const Stopwatch watch;
  const StandardRandomization::BatchView view = solver.batch_view();
  const double lambda = view.dtmc->lambda();

  std::vector<Column> cols;
  cols.reserve(members.size());
  std::vector<std::size_t> direct;  // members reported without a column
  for (const std::size_t mi : members) {
    const RandBatchItem& item = items[mi];
    try {
      const double eps =
          TransientSolver::validated_epsilon(*item.request, view.epsilon);
      SolveReport rep = empty_report(item.request->times.size(), lambda);
      if (view.r_max == 0.0) {
        // All rewards zero: both measures are identically zero.
        *item.report = std::move(rep);
        direct.push_back(mi);
        continue;
      }
      Column col{
          mi, 0,
          GridSweep(
              lambda, item.request->times, item.request->measure,
              [&](const PoissonDistribution& poisson) {
                return sr_truncation_point(poisson, item.request->measure,
                                           eps / view.r_max);
              },
              view.step_cap),
          std::move(rep)};
      col.pass = col.sweep.pass_steps();
      stamp_capped(col);
      cols.push_back(std::move(col));
    } catch (const std::exception& e) {
      fail(item, e.what());
    }
  }

  try {
    if (!cols.empty()) {
      // Longest pass first: the live column set shrinks from the back and
      // whole tiles retire as their last column finishes.
      std::stable_sort(cols.begin(), cols.end(),
                       [](const Column& a, const Column& b) {
                         return a.pass > b.pass;
                       });
      const index_t n_states = view.dtmc->num_states();
      const index_t n_cols = static_cast<index_t>(cols.size());
      DenseBlock& x = ws.block_x(n_states, n_cols);
      DenseBlock& y = ws.block_y(n_states, n_cols);
      for (index_t j = 0; j < n_cols; ++j) {
        x.fill_column(j, view.initial);
      }

      const CsrMatrix& pt = view.dtmc->transition_transposed();
      ThreadPool* const prod_pool = pooled(pool, pt.nnz());
      std::vector<std::uint8_t> live(cols.size(), 1);
      std::vector<SpmmOperand> ops;
      std::size_t reading = cols.size();
      for (std::int64_t n = 0;; ++n) {
        while (reading > 0 && cols[reading - 1].pass < n) --reading;
        for (std::size_t j = 0; j < reading; ++j) {
          const ColumnRef c = column_ref(x, static_cast<index_t>(j));
          cols[j].sweep.accumulate(
              n, sparse_reward_dot_strided(view.reward_idx, view.rewards,
                                           c.data, c.stride));
        }
        std::size_t stepping = reading;
        while (stepping > 0 && cols[stepping - 1].pass <= n) {
          live[--stepping] = 0;
        }
        if (stepping == 0) break;
        build_ops(x, y, live, ops);
        if (prod_pool != nullptr) {
          pt.mul_block(ops, n_states, *prod_pool);
        } else {
          pt.mul_block(ops, n_states);
        }
        x.swap(y);
      }
    }
    for (Column& col : cols) {
      for (std::size_t i = 0; i < col.sweep.size(); ++i) {
        TransientValue& p = col.rep.points[i];
        p.value = col.sweep.value(i);
        p.stats.dtmc_steps = col.sweep.n_max(i);
      }
      col.rep.total.dtmc_steps = col.sweep.pass_steps();
      col.rep.total.seconds = watch.seconds();
      *items[col.item].report = std::move(col.rep);
    }
    for (const std::size_t mi : direct) {
      items[mi].report->total.seconds = watch.seconds();
    }
  } catch (const std::exception& e) {
    for (const Column& col : cols) fail(items[col.item], e.what());
  }
}

void run_rsd_group(const RandomizationSteadyStateDetection& solver,
                   std::span<const RandBatchItem> items,
                   std::span<const std::size_t> members, ThreadPool* pool,
                   SolveWorkspace& ws) {
  const Stopwatch watch;
  const RandomizationSteadyStateDetection::BatchView view =
      solver.batch_view();
  const double lambda = view.dtmc->lambda();

  // RSD columns carry per-scenario detection state on top of the sweep:
  // the scenario's own span tolerance, a done flag, and the step it
  // actually exited at (truncation or detection, whichever came first).
  struct RsdColumn : Column {
    double tol = 0.0;
    bool done = false;
    std::int64_t exit_step = 0;
  };

  std::vector<RsdColumn> cols;
  cols.reserve(members.size());
  std::vector<std::size_t> direct;
  for (const std::size_t mi : members) {
    const RandBatchItem& item = items[mi];
    try {
      const double eps =
          TransientSolver::validated_epsilon(*item.request, view.epsilon);
      SolveReport rep = empty_report(item.request->times.size(), lambda);
      for (TransientValue& p : rep.points) p.stats.detection_step = -1;
      rep.total.detection_step = -1;
      if (view.r_max == 0.0) {
        *item.report = std::move(rep);
        direct.push_back(mi);
        continue;
      }
      RsdColumn col{
          Column{mi, 0,
                 GridSweep(
                     lambda, item.request->times, item.request->measure,
                     [&](const PoissonDistribution& poisson) {
                       return poisson.right_truncation_point(
                           eps / (2.0 * view.r_max));
                     },
                     view.step_cap),
                 std::move(rep)},
          view.detection_tol > 0.0 ? view.detection_tol : eps / 2.0, false,
          0};
      col.pass = col.sweep.pass_steps();
      stamp_capped(col);
      cols.push_back(std::move(col));
    } catch (const std::exception& e) {
      fail(item, e.what());
    }
  }

  try {
    if (!cols.empty()) {
      std::stable_sort(cols.begin(), cols.end(),
                       [](const RsdColumn& a, const RsdColumn& b) {
                         return a.pass > b.pass;
                       });
      const index_t n_states = view.dtmc->num_states();
      const index_t n_cols = static_cast<index_t>(cols.size());
      DenseBlock& x = ws.block_x(n_states, n_cols);
      DenseBlock& y = ws.block_y(n_states, n_cols);
      // Backward iteration per column: w_0 = r, w_{n+1} = P w_n.
      for (index_t j = 0; j < n_cols; ++j) {
        x.fill_column(j, view.rewards);
      }

      ThreadPool* const prod_pool = pooled(pool, view.p->nnz());
      std::vector<std::uint8_t> live(cols.size(), 1);
      std::vector<SpmmOperand> ops;
      for (std::int64_t n = 0;; ++n) {
        bool any_live = false;
        for (std::size_t j = 0; j < cols.size(); ++j) {
          RsdColumn& col = cols[j];
          if (col.done) continue;
          const ColumnRef c = column_ref(x, static_cast<index_t>(j));
          col.sweep.accumulate(
              n, dot_strided(view.initial, c.data, c.stride));
          if (n == col.pass) {
            col.done = true;
            col.exit_step = n;
            live[j] = 0;
            continue;
          }
          // span(w_n) brackets every future coefficient of THIS column's
          // scenario; detection folds it at exactly the solo step (the
          // column's iterates are bitwise the solo iterates).
          const auto [mn, mx] =
              minmax_strided(c.data, static_cast<std::size_t>(n_states),
                             c.stride);
          if (mx - mn <= col.tol) {
            col.sweep.fold_steady_state(n, 0.5 * (mx + mn),
                                        [&](std::size_t i) {
                                          col.rep.points[i]
                                              .stats.detection_step = n;
                                        });
            col.rep.total.detection_step = n;
            col.done = true;
            col.exit_step = n;
            live[j] = 0;
            continue;
          }
          any_live = true;
        }
        if (!any_live) break;
        build_ops(x, y, live, ops);
        if (prod_pool != nullptr) {
          view.p->mul_block(ops, n_states, *prod_pool);
        } else {
          view.p->mul_block(ops, n_states);
        }
        x.swap(y);
      }
    }
    for (RsdColumn& col : cols) {
      for (std::size_t i = 0; i < col.sweep.size(); ++i) {
        TransientValue& p = col.rep.points[i];
        p.value = col.sweep.value(i);
        p.stats.dtmc_steps = std::min(col.exit_step, col.sweep.n_max(i));
      }
      col.rep.total.dtmc_steps = col.exit_step;
      col.rep.total.seconds = watch.seconds();
      *items[col.item].report = std::move(col.rep);
    }
    for (const std::size_t mi : direct) {
      items[mi].report->total.seconds = watch.seconds();
    }
  } catch (const std::exception& e) {
    for (const RsdColumn& col : cols) fail(items[col.item], e.what());
  }
}

}  // namespace

bool randomization_batchable(const TransientSolver& solver) {
  return dynamic_cast<const StandardRandomization*>(&solver) != nullptr ||
         dynamic_cast<const RandomizationSteadyStateDetection*>(&solver) !=
             nullptr;
}

void solve_randomization_batch(std::span<const RandBatchItem> items,
                               ThreadPool* pool, SolveWorkspace* workspace) {
  SolveWorkspace local;
  SolveWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Group by solver instance, preserving first-seen order.
  struct Group {
    const TransientSolver* solver;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const Group& g) { return g.solver == items[i].solver; });
    if (it == groups.end()) {
      groups.push_back(Group{items[i].solver, {i}});
    } else {
      it->members.push_back(i);
    }
  }

  for (const Group& g : groups) {
    if (g.members.size() == 1) {
      // No columns to share — run the scenario's own amortized sweep,
      // lending the pool for row-partitioned products as the sweep
      // engine's small-batch path does.
      const RandBatchItem& item = items[g.members.front()];
      ThreadPool* const saved = ws.spmv_pool;
      ws.spmv_pool = pool != nullptr ? pool : saved;
      try {
        *item.report = item.solver->solve_grid(*item.request, ws);
      } catch (const std::exception& e) {
        fail(item, e.what());
      }
      ws.spmv_pool = saved;
      continue;
    }
    if (const auto* sr =
            dynamic_cast<const StandardRandomization*>(g.solver)) {
      run_sr_group(*sr, items, g.members, pool, ws);
    } else if (const auto* rsd =
                   dynamic_cast<const RandomizationSteadyStateDetection*>(
                       g.solver)) {
      run_rsd_group(*rsd, items, g.members, pool, ws);
    } else {
      for (const std::size_t mi : g.members) {
        fail(items[mi], "not a shared-pass randomization solver");
      }
    }
  }
}

}  // namespace rrl
