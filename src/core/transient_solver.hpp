// Uniform interface over the transient solvers (SR, RSD, RR, RRL).
//
// The paper's whole evaluation (Tables 1-2, Figures 3-4) runs the *same*
// rewarded CTMC through every method over a *sweep* of time points. This
// header gives that workload one contract: a SolveRequest (measure kind,
// time grid, error bound) answered by a SolveReport (one value + per-point
// stats per time, plus the aggregate work of the sweep), implemented by
// every solver behind the abstract TransientSolver base.
//
// The grid entry point solve_grid() is a first-class *amortized* hot path,
// not a loop over single solves:
//   SR   one randomization pass; every step's d(n) = r . (alpha P^n) feeds
//        the Poisson mixtures of all grid points at once;
//   RSD  one backward pass w_n = P^n r shared by all points, with a single
//        steady-state detection serving every remaining time;
//   RR   one schema + one V_{K,L} randomization pass for the whole grid;
//   RRL  one schema, one numerical inversion per point (the former
//        trr_many/mrr_many).
// For SR/RSD/RR this makes an m-point sweep cost essentially one solve at
// the largest time instead of m solves.
#pragma once

#include <cmath>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "sparse/workspace.hpp"

namespace rrl {

struct CompiledArtifact;  // core/compiled_artifact.hpp

/// The paper's two measures for a rewarded CTMC.
enum class MeasureKind {
  kTrr,  ///< transient reward rate  TRR(t) = E[r_{X(t)}]
  kMrr,  ///< mean reward rate       MRR(t) = (1/t) Int_0^t TRR
};

/// Canonical short name ("trr" / "mrr") — the spelling used by CLI flags,
/// .study files and report rows alike.
[[nodiscard]] constexpr const char* measure_name(MeasureKind kind) noexcept {
  return kind == MeasureKind::kTrr ? "trr" : "mrr";
}

/// A method-agnostic solve request.
struct SolveRequest {
  MeasureKind measure = MeasureKind::kTrr;
  /// Time grid; need not be sorted or distinct. Every t must be >= 0 for
  /// TRR and > 0 for MRR.
  std::vector<double> times;
  /// Total error bound applied to EVERY point of the grid individually
  /// (each returned value is within epsilon of the true measure; the bound
  /// is not split across points). <= 0 selects the epsilon the solver was
  /// constructed with.
  double epsilon = -1.0;

  [[nodiscard]] static SolveRequest trr(std::vector<double> ts,
                                        double eps = -1.0) {
    return {MeasureKind::kTrr, std::move(ts), eps};
  }
  [[nodiscard]] static SolveRequest mrr(std::vector<double> ts,
                                        double eps = -1.0) {
    return {MeasureKind::kMrr, std::move(ts), eps};
  }
};

/// The answer to a SolveRequest.
///
/// `points[i]` matches `request.times[i]`. In the amortized grid paths the
/// aggregate `total` is NOT the sum of the per-point stats: work shared by
/// the sweep (the single randomization pass of SR/RSD, the single schema and
/// V-pass of RR/RRL) is counted once in `total`, while each point's stats
/// report what that point alone would have needed (SR/RSD: its own
/// truncation/detection step; RR/RRL: the shared schema plus its own
/// V-steps/abscissae). total.dtmc_steps <~ the cost of one solve at the
/// largest time is exactly the amortization guarantee. Per-point `seconds`
/// are populated only where a point has separable work of its own (RRL's
/// inversions); for the single-pass methods only `total.seconds` is
/// meaningful.
struct SolveReport {
  std::vector<TransientValue> points;
  SolverStats total;

  /// The bare values, in request order.
  [[nodiscard]] std::vector<double> values() const {
    std::vector<double> v;
    v.reserve(points.size());
    for (const TransientValue& p : points) v.push_back(p.value);
    return v;
  }
};

/// Abstract transient solver: one rewarded CTMC + initial distribution,
/// many (measure, time grid, epsilon) queries. Implementations are bound to
/// their model at construction (see the registry for by-name construction).
///
/// Threading contract: solvers are immutable after construction, so ONE
/// solver instance may serve concurrent solve_grid() calls — provided every
/// calling thread brings its own SolveWorkspace (the per-solve mutable
/// state). The sweep engine relies on exactly this.
class TransientSolver {
 public:
  virtual ~TransientSolver() = default;

  /// Registry name of the method ("sr", "rsd", "rr", "rrl").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line human-readable description of the method.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Solve the whole request with the method's amortized sweep, using the
  /// caller's reusable buffers for the model-sized vector iterates. Safe to
  /// call concurrently on one solver with distinct workspaces.
  [[nodiscard]] virtual SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const = 0;

  /// Convenience overload with a throwaway workspace. (Derived classes
  /// re-expose it with `using TransientSolver::solve_grid;`.)
  [[nodiscard]] SolveReport solve_grid(const SolveRequest& request) const {
    SolveWorkspace workspace;
    return solve_grid(request, workspace);
  }

  /// Compile → execute split (core/compiled_artifact.hpp). Append this
  /// solver's compiled state — the deterministic model-derived part of the
  /// work, re-usable across processes — to `artifact` (identity fields are
  /// the caller's job; see export_artifact). The base default exports
  /// nothing: a method without a separable compile step round-trips as an
  /// empty artifact.
  virtual void export_compiled(CompiledArtifact& /*artifact*/) const {}

  /// Adopt compiled state previously exported from an identically
  /// constructed solver (same model, method and config — callers verify
  /// with artifact_matches; entries a solver cannot use are ignored).
  /// Because compilation is deterministic, an imported solver answers
  /// every request bit-identically to one that compiled from scratch.
  /// Must be called before the solver is shared across threads: the
  /// artifact handoff is part of construction, not of the (concurrent)
  /// execute phase.
  virtual void import_compiled(const CompiledArtifact& /*artifact*/) {}

  /// Single-point convenience on top of solve_grid; the returned stats are
  /// the full solve cost (the report's aggregate).
  [[nodiscard]] TransientValue solve_point(double t, MeasureKind kind,
                                           double epsilon = -1.0) const {
    SolveRequest request;
    request.measure = kind;
    request.times = {t};
    request.epsilon = epsilon;
    SolveReport report = solve_grid(request);
    TransientValue out = report.points.front();
    out.stats = report.total;
    return out;
  }

  /// Shared solve_grid() entry validation: non-empty grid, per-point time
  /// sign per measure (t >= 0 for TRR, t > 0 for MRR), and resolution of
  /// the request epsilon against the solver's constructed one. Returns the
  /// effective epsilon. Public so batch front ends (the batched V-solve)
  /// validate requests through the SAME rule as the per-scenario path —
  /// the two must never drift.
  [[nodiscard]] static double validated_epsilon(const SolveRequest& request,
                                                double constructed_epsilon) {
    RRL_EXPECTS(!request.times.empty());
    for (const double t : request.times) {
      RRL_EXPECTS(request.measure == MeasureKind::kTrr ? t >= 0.0 : t > 0.0);
    }
    const double eps =
        request.epsilon > 0.0 ? request.epsilon : constructed_epsilon;
    RRL_EXPECTS(eps > 0.0);
    return eps;
  }
};

/// `count` log-spaced time points covering [lo, hi] inclusive (count >= 1;
/// count == 1 returns {hi}). Preconditions: 0 < lo <= hi.
[[nodiscard]] inline std::vector<double> log_time_grid(double lo, double hi,
                                                       int count) {
  RRL_EXPECTS(lo > 0.0 && hi >= lo && count >= 1);
  std::vector<double> ts;
  ts.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    ts.push_back(hi);
    return ts;
  }
  const double step = (std::log(hi) - std::log(lo)) /
                      static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    ts.push_back(std::exp(std::log(lo) + step * static_cast<double>(i)));
  }
  ts.front() = lo;
  ts.back() = hi;
  return ts;
}

}  // namespace rrl
