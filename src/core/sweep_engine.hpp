// Parallel scenario-sweep engine: many (model x solver x measure x grid x
// epsilon) jobs fanned across a worker pool, reduced into one deterministic
// report.
//
// The paper's whole evaluation is a sweep — the same rewarded CTMC pushed
// through SR/RSD/RR/RRL over grids of times and error targets — and batch
// performability studies multiply that by families of parameterized models.
// The engine turns such a batch into data-parallel work: each scenario is
// solved entirely by one worker (solvers are immutable after construction;
// each worker owns a SolveWorkspace for the mutable vector iterates), and
// scenarios are scheduled dynamically so an expensive SR pass next to a
// cheap RRL inversion still load-balances. A batch with (2x) fewer
// scenarios than workers flips to the orthogonal axis instead: scenarios
// run serially and the pool row-partitions the solvers' model-sized SpMVs
// (see SolveWorkspace::pooled_spmv) — both paths produce identical values.
// Either way every product dispatches through the runtime-selected
// vectorized kernels (sparse/spmv_kernels.hpp), which are bit-identical
// to the scalar reference, so neither the host's SIMD level nor
// RRL_KERNEL overrides can change a report.
// Scenarios may carry pre-built solvers (shared_solver) so one compiled
// solver serves every scenario with the same (model, solver, config); the
// study subsystem's solver cache builds on exactly this. Scenarios sharing
// RR solvers are additionally routed through the batched V-solve
// (rr_solver.hpp's solve_rr_batch): items with the same compiled schema
// share one ~Lambda*t V-pass, and the distinct small V-models advance
// jointly through one pooled block-concatenated stepping loop — again
// bit-identical to per-scenario solves. Scenarios sharing an SR/RSD
// solver are likewise routed through the shared-pass SpMM batch
// (core/randomization_batch.hpp): each scenario becomes one column of a
// dense block and every randomization step is one multi-RHS product,
// streaming the shared matrix once per step instead of once per scenario
// (disable with BatchRequest::spmm = false or RRL_SPMM=off).
//
// Determinism: results[i] always corresponds to scenarios[i] — workers
// write only their own slot and the reduction is by index, so the report's
// VALUES are identical for every worker count (only the timing fields
// vary). A scenario that throws (unknown solver, precondition violation
// such as RSD on an absorbing chain) records its error string in its slot
// and the rest of the batch completes normally.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"
#include "support/thread_pool.hpp"

namespace rrl {

/// One scenario: a rewarded CTMC pushed through one registered solver for
/// one (measure, time grid, epsilon) request.
///
/// Two ways to name the solver: by registry name (`solver` + the model
/// fields, constructed fresh inside the sweep — the default), or by
/// handing a pre-built instance in `shared_solver`. The latter is how the
/// study subsystem's solver cache shares ONE immutable compiled solver
/// across every scenario keyed to the same (model, solver, config):
/// solvers are safe to drive from concurrent workers as long as each
/// worker brings its own workspace, which the engine already guarantees.
struct SweepScenario {
  std::string model;   ///< model label for reporting (file name, generator)
  std::string solver;  ///< registry name ("sr", "rsd", "rr", "rrl", ...)
  const Ctmc* chain = nullptr;  ///< borrowed; must outlive the sweep
  std::vector<double> rewards;
  std::vector<double> initial;
  SolverConfig config;
  SolveRequest request;
  /// Pre-built solver shared with other scenarios (and with the caller,
  /// who keeps whatever the solver borrows — e.g. its chain — alive).
  /// When set, no solver is constructed; `solver`/`rewards`/`initial`/
  /// `config` are reporting metadata only, and `chain` (recommended even
  /// here) feeds the engine's model-size scheduling heuristic.
  std::shared_ptr<const TransientSolver> shared_solver;
};

/// A batch of scenarios plus the worker budget.
struct BatchRequest {
  std::vector<SweepScenario> scenarios;
  /// Worker threads INCLUDING the calling thread; <= 0 selects the
  /// hardware concurrency. Ignored by the pool-taking overload.
  int jobs = 1;
  /// Route scenarios sharing one SR/RSD solver instance through the
  /// shared-pass SpMM batch (core/randomization_batch.hpp) instead of
  /// per-scenario solves. Values are bit-identical either way; this knob
  /// (and the RRL_SPMM=off environment override) exists so benches and the
  /// CI determinism gate can compare the two paths in one process.
  bool spmm = true;
};

/// Outcome of one scenario: either a report or an error message.
struct ScenarioResult {
  SolveReport report;  ///< valid iff error is empty
  std::string error;   ///< non-empty if the scenario failed
  /// Wall-clock of THIS scenario's solve (diagnostic, non-deterministic —
  /// never part of byte-compared report output). Scenarios solved jointly
  /// by the batched V-solve share one pass, so each member reports the
  /// pass's wall-clock divided evenly across the members.
  double seconds = 0.0;
  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// The deterministic reduction of a batch: results[i] <-> scenarios[i].
struct SweepReport {
  std::vector<ScenarioResult> results;
  int jobs = 1;          ///< worker count actually used
  double seconds = 0.0;  ///< wall-clock of the whole batch

  [[nodiscard]] std::size_t failed() const noexcept {
    std::size_t n = 0;
    for (const ScenarioResult& r : results) n += r.ok() ? 0 : 1;
    return n;
  }
  [[nodiscard]] double scenarios_per_second() const noexcept {
    return seconds > 0.0 ? static_cast<double>(results.size()) / seconds
                         : 0.0;
  }
};

/// Run the batch on a caller-provided pool (reusable across batches).
[[nodiscard]] SweepReport run_sweep(const BatchRequest& batch,
                                    ThreadPool& pool);

/// Unit-level entry point: run the batch on a caller-provided pool AND
/// caller-owned per-worker workspaces (grown to pool.num_threads() if
/// smaller, never shrunk). A worker loop executing many small work units
/// back to back — the dispatch executor — keeps its warmed-up buffers
/// across units this way, so after the first unit the model-sized vector
/// iterates allocate nothing. Identical values to the other overloads.
[[nodiscard]] SweepReport run_sweep(const BatchRequest& batch,
                                    ThreadPool& pool,
                                    std::vector<SolveWorkspace>& workspaces);

/// Run the batch on a fresh pool of batch.jobs workers.
[[nodiscard]] SweepReport run_sweep(const BatchRequest& batch);

}  // namespace rrl
