#include "core/rrl_transform.hpp"

namespace rrl {

TrrTransform::ChainSeries TrrTransform::flatten(
    const ExcursionSeries& series, std::span<const double> f_rewards) {
  ChainSeries out;
  out.a = series.a;
  out.c = series.c;
  const std::size_t steps = series.qa.size();  // = K (may be 0)
  out.vat.resize(steps);
  out.rv.resize(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    out.vat[k] = series.va_total(k);
    out.rv[k] = series.va_rewarded(k, f_rewards);
  }
  return out;
}

TrrTransform::TrrTransform(const RegenerativeSchema& schema)
    : lambda_(schema.lambda),
      alpha_r_(schema.alpha_r),
      has_primed_(schema.has_primed),
      main_(flatten(schema.main, schema.f_rewards)) {
  if (has_primed_) {
    primed_ = flatten(schema.primed, schema.f_rewards);
  }
}

TrrTransform::ChainSums TrrTransform::accumulate(
    const ChainSeries& series, std::complex<long double> theta) {
  ChainSums sums;
  std::complex<long double> power(1.0L, 0.0L);
  const std::size_t kmax = series.a.size() - 1;
  for (std::size_t k = 0; k <= kmax; ++k) {
    sums.a += static_cast<long double>(series.a[k]) * power;
    sums.c += static_cast<long double>(series.c[k]) * power;
    if (k < kmax) {
      sums.va += static_cast<long double>(series.vat[k]) * power;
      sums.rv += static_cast<long double>(series.rv[k]) * power;
      power *= theta;
    }
  }
  sums.top_power = power;  // theta^K
  return sums;
}

std::complex<double> TrrTransform::trr(std::complex<double> s) const {
  using cld = std::complex<long double>;
  const cld sl(static_cast<long double>(s.real()),
               static_cast<long double>(s.imag()));
  const long double lambda = static_cast<long double>(lambda_);
  const cld s_plus_lambda = sl + lambda;
  const cld theta = lambda / s_plus_lambda;

  const ChainSums m = accumulate(main_, theta);
  const long double aK = static_cast<long double>(main_.a.back());

  // B(s) = s * Sa + Lambda * Sva + a(K) * Lambda * theta^K.
  const cld B = sl * m.a + lambda * m.va + aK * lambda * m.top_power;

  // A(s) (1 when alpha_r = 1).
  cld A(1.0L, 0.0L);
  cld primed_terms(0.0L, 0.0L);
  if (has_primed_) {
    const ChainSums p = accumulate(primed_, theta);
    const long double apL = static_cast<long double>(primed_.a.back());
    A = cld(1.0L, 0.0L) - (sl / s_plus_lambda) * p.a -
        (lambda / s_plus_lambda) * p.va - apL * p.top_power * theta;
    // (1/(s+Lambda)) * Sc' + (theta/s) * Srv'.
    primed_terms = p.c / s_plus_lambda + theta / sl * p.rv;
  }

  const cld p0 = A / B;
  const cld value = (m.c + lambda / sl * m.rv) * p0 + primed_terms;
  return {static_cast<double>(value.real()),
          static_cast<double>(value.imag())};
}

}  // namespace rrl
