#include "core/vmodel.hpp"

namespace rrl {

namespace {

/// Emit the transitions and rewards of one excursion chain.
/// `base(k)` maps chain position k to a V-model state index.
template <class BaseFn>
void emit_chain(const ExcursionSeries& series, double lambda, index_t s0,
                const VModel& model, const BaseFn& base,
                std::vector<Triplet>& rates, std::vector<double>& rewards) {
  const std::int64_t kmax = series.truncation();
  for (std::int64_t k = 0; k <= kmax; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    const double ak = series.a[uk];
    const index_t from = base(k);
    rewards[static_cast<std::size_t>(from)] =
        ak > 0.0 ? series.c[uk] / ak : 0.0;
    if (k == kmax) {
      // Truncation: the whole step flow of the last state goes to `a`.
      rates.push_back({from, model.truncation_state(), lambda});
      continue;
    }
    if (ak == 0.0) continue;  // unreachable tail (exact termination)
    const double w = series.a[uk + 1] / ak;
    if (w > 0.0) rates.push_back({from, base(k + 1), w * lambda});
    const double q = series.qa[uk] / ak;
    // The k = 0 return of the main chain is a self-loop (from == s0).
    if (q > 0.0 && from != s0) rates.push_back({from, s0, q * lambda});
    for (std::size_t i = 0; i < series.va.size(); ++i) {
      const double v = series.va[i][uk] / ak;
      if (v > 0.0) {
        rates.push_back({from, model.f(i), v * lambda});
      }
    }
  }
}

}  // namespace

VModel build_vmodel(const RegenerativeSchema& schema) {
  VModel model;
  model.lambda = schema.lambda;
  model.K = schema.K();
  model.L = schema.has_primed ? schema.L() : -1;
  model.num_absorbing = schema.absorbing.size();

  const std::int64_t n = (model.K + 1) + (model.L >= 0 ? model.L + 1 : 0) +
                         static_cast<std::int64_t>(model.num_absorbing) + 1;
  model.rewards.assign(static_cast<std::size_t>(n), 0.0);
  model.initial.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<Triplet> rates;
  const index_t s0 = model.s(0);
  emit_chain(schema.main, schema.lambda, s0, model,
             [&](std::int64_t k) { return model.s(k); }, rates,
             model.rewards);
  if (model.L >= 0) {
    emit_chain(schema.primed, schema.lambda, s0, model,
               [&](std::int64_t k) { return model.s_primed(k); }, rates,
               model.rewards);
  }
  for (std::size_t i = 0; i < model.num_absorbing; ++i) {
    model.rewards[static_cast<std::size_t>(model.f(i))] =
        schema.f_rewards[i];
  }

  model.initial[static_cast<std::size_t>(s0)] = schema.alpha_r;
  if (model.L >= 0) {
    model.initial[static_cast<std::size_t>(model.s_primed(0))] =
        1.0 - schema.alpha_r;
  }

  model.chain =
      Ctmc::from_transitions(static_cast<index_t>(n), std::move(rates));
  return model;
}

}  // namespace rrl
