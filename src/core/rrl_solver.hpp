// Regenerative randomization with Laplace transform inversion (RRL) — the
// method proposed by the paper.
//
// Pipeline per time point t:
//  1. compute the regenerative schema (K + L DTMC steps of a chain the size
//     of X; eps/2 model-truncation budget);
//  2. assemble the closed-form transform TRR~(s) / C~(s) of Section 2.1;
//  3. invert numerically with the Durbin/Crump series: period T = 8t,
//     damping a chosen so the discretization error is <= eps/4 (Section 2.2,
//     with the TRR bound r_max or the C bound r_max*t via Eq. (2)), series
//     truncation tolerance eps/100 (t*eps/100 for C), epsilon-algorithm
//     acceleration.
// The inversion needs only ~100-300 transform evaluations of O(K + L) work
// each, so for large t RRL does essentially schema work only — the paper's
// headline speedup over RR (which steps V_{K,L} ~ Lambda*t times) and SR.
#pragma once

#include <vector>

#include "core/regenerative.hpp"
#include "core/rrl_transform.hpp"
#include "core/schema_cache.hpp"
#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "laplace/crump.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

struct RrlOptions {
  /// Total error bound (the paper's experiments use 1e-12).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate of X.
  double rate_factor = 1.0;
  /// Durbin period multiplier: T = t_multiplier * t. The paper settles on 8
  /// (1 = Crump's fast/unstable, 16 = Piessens-Huysmans' stable/slow).
  double t_multiplier = 8.0;
  /// Forwarded to CrumpOptions.
  int max_terms = 20000;
  int required_hits = 1;
  /// Schema step cap; < 0 disables.
  std::int64_t schema_step_cap = 10'000'000;
};

/// RRL solver bound to one model + measure.
class RegenerativeRandomizationLaplace : public TransientSolver {
 public:
  /// Preconditions: same as RegenerativeRandomization.
  RegenerativeRandomizationLaplace(const Ctmc& chain,
                                   std::vector<double> rewards,
                                   std::vector<double> initial,
                                   index_t regenerative_state,
                                   RrlOptions options = {});

  /// Single-sourced method description (the registry registers built-ins
  /// with this exact text).
  static constexpr std::string_view kDescription =
      "regenerative randomization with Laplace transform inversion";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rrl";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// Amortized sweep: ONE schema computed at the largest grid time plus one
  /// numerical inversion per point (the dominant K model-sized DTMC steps
  /// are paid once for the whole grid). Valid because the truncation bound
  /// is decreasing in K for every fixed t, so the K(t_max) series
  /// over-covers smaller t. (The inversions work on schema-sized series,
  /// not model-sized vectors, so RRL has no use for the workspace buffers;
  /// the parameter exists for the uniform concurrent-sweep contract.)
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  /// Compile → execute split: RRL's compiled state is the memoized
  /// (t, eps)-keyed schemas; the transform evaluator is re-derived
  /// deterministically on import.
  void export_compiled(CompiledArtifact& artifact) const override;
  void import_compiled(const CompiledArtifact& artifact) override;

  [[nodiscard]] TransientValue trr(double t) const;
  [[nodiscard]] TransientValue mrr(double t) const;

  /// Rigorous bracketing of the measure (the bounds flavour of the paper's
  /// reference [2]). The V_K truncation only discards non-negative reward
  /// (trajectories rerouted to the zero-reward state `a`), so
  ///   TRR^a(t) <= TRR(t) <= TRR^a(t) + r_max a(K) E[(N - K)^+] (+ primed),
  /// and the inversion contributes +-eps/2 on each side.
  struct Bounds {
    double value = 0.0;  ///< the point estimate (as trr()/mrr())
    double lower = 0.0;  ///< rigorous lower bound
    double upper = 0.0;  ///< rigorous upper bound
    SolverStats stats;
  };
  [[nodiscard]] Bounds trr_bounds(double t) const;
  [[nodiscard]] Bounds mrr_bounds(double t) const;

  /// Legacy batch entry points, now thin wrappers over solve_grid(). They
  /// keep the historical stats attribution: the shared schema cost (steps
  /// and seconds) is carried by the FIRST entry only, so callers summing
  /// stats across entries get the true total. (When the inversions run
  /// under OpenMP the per-point timers overlap, so the summed seconds may
  /// overstate the sweep's wall-clock time; the first entry still absorbs
  /// at least the schema share.) Precondition: ts non-empty, all > 0.
  [[nodiscard]] std::vector<TransientValue> trr_many(
      std::span<const double> ts) const;
  [[nodiscard]] std::vector<TransientValue> mrr_many(
      std::span<const double> ts) const;

  /// The schema computed for time horizon t (exposed for analysis and for
  /// the ablation benches).
  [[nodiscard]] RegenerativeSchema schema(double t) const;

  /// Hit/miss accounting of the memoized schema+transform artifact (one
  /// compilation is shared by every solve over the same (t_max, eps); see
  /// core/schema_cache.hpp).
  [[nodiscard]] SchemaCacheStats schema_cache_stats() const {
    return schema_cache_.stats();
  }

 private:
  [[nodiscard]] RegenerativeSchema schema_with(double t, double eps) const;
  [[nodiscard]] std::shared_ptr<const CompiledSchema> compiled_schema(
      double t, double eps) const;
  [[nodiscard]] TransientValue invert(const TrrTransform& transform, double t,
                                      MeasureKind kind, double eps) const;
  [[nodiscard]] std::vector<TransientValue> solve_many(
      std::span<const double> ts, MeasureKind kind) const;
  [[nodiscard]] double truncation_error_bound(const RegenerativeSchema& sch,
                                              double t) const;

  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  index_t regenerative_;
  double r_max_ = 0.0;
  RrlOptions options_;
  // Memoized compiled artifact; internally synchronized, so the solver
  // remains shareable across concurrent solve_grid() calls.
  SchemaCache schema_cache_;
};

}  // namespace rrl
