#include "core/rr_solver.hpp"

#include "core/standard_randomization.hpp"
#include "core/vmodel.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RegenerativeRandomization::RegenerativeRandomization(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, index_t regenerative_state,
    RrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      regenerative_(regenerative_state),
      options_(options) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
}

RegenerativeSchema RegenerativeRandomization::schema(double t) const {
  RegenerativeOptions opts;
  opts.epsilon = options_.epsilon;
  opts.rate_factor = options_.rate_factor;
  opts.step_cap = options_.schema_step_cap;
  return compute_regenerative_schema(chain_, rewards_, initial_,
                                     regenerative_, t, opts);
}

TransientValue RegenerativeRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve(t, Kind::kTrr);
}

TransientValue RegenerativeRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve(t, Kind::kMrr);
}

TransientValue RegenerativeRandomization::solve(double t, Kind kind) const {
  const Stopwatch watch;
  const RegenerativeSchema sch = schema(t);
  const VModel vmodel = build_vmodel(sch);

  // Solve V_{K,L} by standard randomization with the remaining eps/2.
  SrOptions sr;
  sr.epsilon = options_.epsilon / 2.0;
  sr.rate_factor = 1.0;
  sr.step_cap = options_.vmodel_step_cap;
  const StandardRandomization inner(vmodel.chain, vmodel.rewards,
                                    vmodel.initial, sr);
  const TransientValue v =
      kind == Kind::kTrr ? inner.trr(t) : inner.mrr(t);

  TransientValue out;
  out.value = v.value;
  out.stats.dtmc_steps = sch.dtmc_steps();
  out.stats.vmodel_steps = v.stats.dtmc_steps;
  out.stats.lambda = sch.lambda;
  out.stats.capped = sch.capped || v.stats.capped;
  out.stats.seconds = watch.seconds();
  return out;
}

}  // namespace rrl
