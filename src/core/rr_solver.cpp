#include "core/rr_solver.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include <cstring>

#include "core/compiled_artifact.hpp"
#include "core/grid_sweep.hpp"
#include "core/standard_randomization.hpp"
#include "core/vmodel.hpp"
#include "markov/dtmc.hpp"
#include "sparse/aligned_alloc.hpp"
#include "sparse/block.hpp"
#include "sparse/spmv_kernels.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace rrl {

RegenerativeRandomization::RegenerativeRandomization(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, index_t regenerative_state,
    RrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      regenerative_(regenerative_state),
      options_(options) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
}

RegenerativeSchema RegenerativeRandomization::schema(double t) const {
  return schema_with(t, options_.epsilon);
}

RegenerativeSchema RegenerativeRandomization::schema_with(double t,
                                                          double eps) const {
  RegenerativeOptions opts;
  opts.epsilon = eps;
  opts.rate_factor = options_.rate_factor;
  opts.step_cap = options_.schema_step_cap;
  return compute_regenerative_schema(chain_, rewards_, initial_,
                                     regenerative_, t, opts);
}

std::shared_ptr<const CompiledSchema> RegenerativeRandomization::compiled_for(
    double t, double eps) const {
  return schema_cache_.get(t, eps, /*want_transform=*/false,
                           /*want_vmodel=*/true,
                           [&] { return schema_with(t, eps); });
}

void RegenerativeRandomization::export_compiled(
    CompiledArtifact& artifact) const {
  for (const SchemaCache::Entry& e : schema_cache_.snapshot()) {
    artifact.schemas.push_back(
        ArtifactSchemaEntry{e.t, e.eps, e.compiled->schema});
  }
}

void RegenerativeRandomization::import_compiled(
    const CompiledArtifact& artifact) {
  for (const ArtifactSchemaEntry& e : artifact.schemas) {
    // Structural sanity only (identity matching is the caller's job): a
    // schema for another regenerative state or with an empty series can
    // never be ours.
    if (e.schema.regenerative != regenerative_ || e.schema.main.a.empty()) {
      continue;
    }
    schema_cache_.seed(e.t, e.eps, e.schema, /*want_transform=*/false,
                       /*want_vmodel=*/true);
  }
}

TransientValue RegenerativeRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue RegenerativeRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport RegenerativeRandomization::solve_grid(
    const SolveRequest& request, SolveWorkspace& workspace) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();

  // One schema for the whole sweep, computed at the largest time: for
  // t < t_max the truncation bound at K(t_max) is only smaller
  // (E[(N(Lambda t) - K)^+] decreases in K), so the longer series stays
  // within budget at every requested time. The compiled artifact (schema +
  // materialized V_{K,L}) is memoized per exact (t_max, eps) — repeated
  // sweeps over the same horizon (the other measure, another grid
  // resolution, the study subsystem's shared solvers) pay the K model-sized
  // steps and the V-model assembly once.
  const double t_max =
      *std::max_element(request.times.begin(), request.times.end());
  const auto compiled = compiled_for(t_max, eps);
  const RegenerativeSchema& sch = compiled->schema;
  const VModel& vmodel = *compiled->vmodel;

  // One standard-randomization pass of V_{K,L} serves every grid point,
  // with the remaining eps/2 budget.
  SrOptions sr;
  sr.epsilon = eps / 2.0;
  sr.rate_factor = 1.0;
  sr.step_cap = options_.vmodel_step_cap;
  const StandardRandomization inner(vmodel.chain, vmodel.rewards,
                                    vmodel.initial, sr);
  SolveRequest inner_request = request;
  inner_request.epsilon = eps / 2.0;
  // The V-model is (much) smaller than X, so reusing the caller's buffers
  // just resizes them down for the inner pass.
  const SolveReport inner_report = inner.solve_grid(inner_request, workspace);

  SolveReport report;
  report.points.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    const TransientValue& v = inner_report.points[i];
    p.value = v.value;
    p.stats.dtmc_steps = sch.dtmc_steps();
    p.stats.vmodel_steps = v.stats.dtmc_steps;
    p.stats.lambda = sch.lambda;
    p.stats.capped = sch.capped || v.stats.capped;
  }
  report.total.dtmc_steps = sch.dtmc_steps();
  report.total.vmodel_steps = inner_report.total.dtmc_steps;
  report.total.lambda = sch.lambda;
  report.total.capped = sch.capped || inner_report.total.capped;
  report.total.seconds = watch.seconds();
  return report;
}

// ---------------------------------------------------------------------------
// Batched V-solve.

namespace {

/// All items of one distinct compiled schema: ONE V-model, ONE d(n)
/// stream, one Poisson-mixture sweep per item.
struct VGroup {
  const RegenerativeRandomization* solver = nullptr;
  double t_max = 0.0;
  double eps = 0.0;
  std::vector<std::size_t> members;  ///< indices into `items`

  std::shared_ptr<const CompiledSchema> compiled;
  std::optional<RandomizedDtmc> dtmc;  // built once the group compiles
  std::vector<index_t> reward_idx;
  double r_max = 0.0;
  /// One sweep per member, same order as `members`.
  std::vector<std::unique_ptr<GridSweep>> sweeps;
  std::int64_t pass_steps = 0;
  bool zero_rewards = false;  ///< V-model rewards all zero: values are 0
  double compile_seconds = 0.0;  ///< this group's own compile phase
};

}  // namespace

void solve_rr_batch(std::span<const RrBatchItem> items, ThreadPool* pool) {
  const bool pool_usable = pool != nullptr && pool->num_threads() > 1 &&
                           !ThreadPool::in_parallel_region();

  // --- Group the items by compiled schema (solver, t_max, effective eps),
  // validating each request exactly as solve_grid() would (same
  // preconditions, same contract_error on violation — recorded in the
  // item's error slot, per-scenario isolation).
  std::vector<VGroup> groups;
  std::map<std::tuple<const void*, double, double>, std::size_t> index;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const RrBatchItem& item = items[i];
    RRL_EXPECTS(item.solver != nullptr && item.request != nullptr &&
                item.report != nullptr && item.error != nullptr);
    try {
      const SolveRequest& request = *item.request;
      // The canonical entry validation — the same call solve_grid makes,
      // so batched and per-scenario behavior cannot drift.
      const double eps = TransientSolver::validated_epsilon(
          request, item.solver->options().epsilon);
      const double t_max =
          *std::max_element(request.times.begin(), request.times.end());
      const auto key = std::make_tuple(
          static_cast<const void*>(item.solver), t_max, eps);
      const auto [it, inserted] = index.emplace(key, groups.size());
      if (inserted) {
        VGroup g;
        g.solver = item.solver;
        g.t_max = t_max;
        g.eps = eps;
        groups.push_back(std::move(g));
      }
      groups[it->second].members.push_back(i);
    } catch (const std::exception& e) {
      *item.error = e.what()[0] != '\0' ? e.what() : "unknown error";
    }
  }

  // --- Compile each group once (memoized in the solver, so a group whose
  // schema another sweep already built pays nothing) and build the
  // members' Poisson-mixture sweeps with the inner pass's exact truncation
  // rule. A compile failure fails every member of the group — identical to
  // what each per-scenario solve would have reported. Distinct groups
  // compile concurrently on the pool (the schema memo builds outside its
  // lock for exactly this; groups touch disjoint member slots), so a cold
  // multi-schema batch keeps the compile-phase parallelism the scenario
  // axis used to provide.
  const auto compile_group = [&items](VGroup& g) {
    const Stopwatch compile_watch;
    try {
      g.compiled = g.solver->compiled_for(g.t_max, g.eps);
      const VModel& vmodel = *g.compiled->vmodel;
      g.r_max = max_reward(vmodel.rewards);
      g.zero_rewards = g.r_max == 0.0;
      if (!g.zero_rewards) {
        g.dtmc.emplace(vmodel.chain, 1.0);
        g.reward_idx = nonzero_reward_states(vmodel.rewards);
        g.sweeps.reserve(g.members.size());
        for (const std::size_t i : g.members) {
          const SolveRequest& request = *items[i].request;
          const double inner_eps = g.eps / 2.0;
          auto sweep = std::make_unique<GridSweep>(
              g.dtmc->lambda(), request.times, request.measure,
              [&](const PoissonDistribution& poisson) {
                return sr_truncation_point(poisson, request.measure,
                                           inner_eps / g.r_max);
              },
              g.solver->options().vmodel_step_cap);
          g.pass_steps = std::max(g.pass_steps, sweep->pass_steps());
          g.sweeps.push_back(std::move(sweep));
        }
      }
    } catch (const std::exception& e) {
      const std::string message =
          e.what()[0] != '\0' ? e.what() : "unknown error";
      for (const std::size_t i : g.members) *items[i].error = message;
      g.members.clear();
      g.sweeps.clear();
    }
    g.compile_seconds = compile_watch.seconds();
  };
  if (pool_usable && groups.size() > 1) {
    pool->parallel_for(groups.size(), [&](std::size_t b, std::size_t) {
      compile_group(groups[b]);
    });
  } else {
    for (VGroup& g : groups) compile_group(g);
  }

  // Drop groups with nothing to step (compile failures, zero-reward
  // V-models — the latter keep their members, whose values are zero).
  std::vector<VGroup*> live;
  for (VGroup& g : groups) {
    if (!g.members.empty() && !g.zero_rewards) live.push_back(&g);
  }

  // --- Execute phase. Starts here: the SpMM classes below are execute
  // work, timed into the same phase as the fused/parallel/serial
  // schedules.
  const Stopwatch execute_watch;

  // Per-scenario isolation extends into the execute phase: a group whose
  // pass fails (allocation failure on a huge V-model, a contract
  // violation) fails ITS members and the rest of the batch — including
  // the unrelated scenarios still queued behind run_sweep — completes,
  // exactly as the per-scenario path's per-slot catch would have
  // arranged.
  const auto fail_members = [&items](const VGroup& g,
                                     const std::exception& e) {
    const std::string message =
        e.what()[0] != '\0' ? e.what() : "unknown error";
    for (const std::size_t i : g.members) *items[i].error = message;
  };

  // --- SpMM classes: distinct groups whose V stepping matrices are
  // bitwise EQUAL step jointly, each group one column of a dense block,
  // each step one multi-RHS product (sparse/block.hpp). Equal V matrices
  // arise naturally from exactly-terminating excursion processes (a(k)
  // hits 0, so K saturates): the same solver queried at different t_max
  // compiles distinct groups with the identical truncated V_{K,L}. Unlike
  // the fused block-diagonal path below — which streams every group's
  // matrix once per step — the class streams ONE matrix for all its
  // groups. Equality is bitwise (memcmp of the CSR arrays), so each
  // column's products are exactly the products its own matrix would have
  // produced and the kernel contract keeps the pass bit-identical to the
  // group's serial pass. Classes with a single member fall through to the
  // fused/group-parallel/serial schedules unchanged.
  if (spmm_enabled() && live.size() > 1) {
    const auto same_matrix = [](const CsrMatrix& a, const CsrMatrix& b) {
      if (a.rows() != b.rows() || a.cols() != b.cols() ||
          a.nnz() != b.nnz()) {
        return false;
      }
      const auto bytes_equal = [](const auto& x, const auto& y) {
        return std::memcmp(x.data(), y.data(), x.size_bytes()) == 0;
      };
      return bytes_equal(a.row_ptr(), b.row_ptr()) &&
             bytes_equal(a.col_idx(), b.col_idx()) &&
             bytes_equal(a.values(), b.values());
    };
    std::vector<std::vector<VGroup*>> classes;
    for (VGroup* g : live) {
      const CsrMatrix& pt = g->dtmc->transition_transposed();
      auto it = std::find_if(
          classes.begin(), classes.end(), [&](const auto& cls) {
            return same_matrix(
                cls.front()->dtmc->transition_transposed(), pt);
          });
      if (it == classes.end()) {
        classes.push_back({g});
      } else {
        it->push_back(g);
      }
    }
    const auto run_class_spmm = [&](std::vector<VGroup*>& cls) {
      try {
        // Longest pass first: retired columns form a suffix and whole
        // tiles drop out of the product.
        std::stable_sort(cls.begin(), cls.end(),
                         [](const VGroup* a, const VGroup* b) {
                           return a->pass_steps > b->pass_steps;
                         });
        const CsrMatrix& pt = cls.front()->dtmc->transition_transposed();
        const index_t n_states = pt.rows();
        DenseBlock x;
        DenseBlock y;
        x.reshape(n_states, static_cast<index_t>(cls.size()));
        y.reshape(n_states, static_cast<index_t>(cls.size()));
        for (std::size_t j = 0; j < cls.size(); ++j) {
          x.fill_column(static_cast<index_t>(j),
                        cls[j]->compiled->vmodel->initial);
        }
        ThreadPool* const prod_pool =
            (pool_usable && pt.nnz() >= SolveWorkspace::kMinPooledNnz)
                ? pool
                : nullptr;
        std::vector<SpmmOperand> ops;
        std::size_t live_cols = cls.size();
        for (std::int64_t n = 0;; ++n) {
          for (std::size_t j = 0; j < live_cols; ++j) {
            VGroup& g = *cls[j];
            const index_t t =
                DenseBlock::tile_of(static_cast<index_t>(j));
            const double d = sparse_reward_dot_strided(
                g.reward_idx, g.compiled->vmodel->rewards,
                x.tile(t) + DenseBlock::lane_of(static_cast<index_t>(j)),
                static_cast<std::size_t>(x.tile_width(t)));
            for (auto& sweep : g.sweeps) sweep->accumulate(n, d);
          }
          while (live_cols > 0 && cls[live_cols - 1]->pass_steps == n) {
            --live_cols;
          }
          if (live_cols == 0) break;
          ops.clear();
          for (index_t t = 0; t < x.num_tiles(); ++t) {
            if (static_cast<std::size_t>(x.tile_col_begin(t)) >=
                live_cols) {
              break;
            }
            const index_t in_tile = std::min<index_t>(
                x.tile_cols(t),
                static_cast<index_t>(live_cols) - x.tile_col_begin(t));
            ops.push_back(
                SpmmOperand{x.tile(t), y.tile(t), x.tile_width(t),
                            in_tile});
          }
          if (prod_pool != nullptr) {
            pt.mul_block(ops, n_states, *prod_pool);
          } else {
            pt.mul_block(ops, n_states);
          }
          x.swap(y);
        }
      } catch (const std::exception& e) {
        for (VGroup* g : cls) fail_members(*g, e);
      }
    };
    bool any_class = false;
    for (std::vector<VGroup*>& cls : classes) {
      if (cls.size() < 2) continue;
      run_class_spmm(cls);
      any_class = true;
    }
    if (any_class) {
      // Only singleton classes remain for the schedules below.
      std::vector<VGroup*> rest;
      for (const std::vector<VGroup*>& cls : classes) {
        if (cls.size() < 2) rest.push_back(cls.front());
      }
      live = std::move(rest);
    }
  }

  // --- The remaining V-passes: one d(n) stream per group, every member's
  // mixtures fed from it. Three schedules, all bit-identical:
  //  * fused: all groups' gather matrices concatenated block-diagonally
  //    and stepped as ONE row-partitioned product per step — the pool
  //    engages on the combined stored-entry count even though each
  //    V-model alone is far below the floor; groups are ordered by
  //    descending pass length so retired blocks shrink the live prefix
  //    (mul_vec_leading) instead of being stepped to the global horizon;
  //  * group-parallel: each group's serial pass on its own worker;
  //  * serial: group after group on the calling thread.
  const auto run_group_serial = [&fail_members](VGroup& g) {
    try {
      const VModel& vmodel = *g.compiled->vmodel;
      const std::size_t n_states =
          static_cast<std::size_t>(vmodel.chain.num_states());
      AlignedVector<double> pi(vmodel.initial.begin(), vmodel.initial.end());
      AlignedVector<double> next(n_states);
      for (std::int64_t n = 0;; ++n) {
        const double d =
            sparse_reward_dot(g.reward_idx, vmodel.rewards, pi);
        for (auto& sweep : g.sweeps) sweep->accumulate(n, d);
        if (n == g.pass_steps) break;
        g.dtmc->step(pi, next);
        pi.swap(next);
      }
    } catch (const std::exception& e) {
      fail_members(g, e);
    }
  };

  if (live.size() > 1 && pool_usable) {
    // Order by descending pass length (ties by first appearance, so the
    // layout is deterministic).
    std::stable_sort(live.begin(), live.end(),
                     [](const VGroup* a, const VGroup* b) {
                       return a->pass_steps > b->pass_steps;
                     });
    std::int64_t combined_nnz = 0;
    index_t combined_states = 0;
    for (const VGroup* g : live) {
      combined_nnz += g->dtmc->transition_transposed().nnz();
      combined_states += g->compiled->vmodel->chain.num_states();
    }
    if (combined_nnz >= SolveWorkspace::kMinPooledNnz) {
      // Fused: block-concatenate the gather matrices (rows and columns of
      // block b offset by the states before it) by direct CSR splicing —
      // every block row keeps its exact stored order, so each slice of
      // the product is bit-identical to the small matrix's own kernel.
      const auto run_fused = [&] {
        std::vector<std::int64_t> row_ptr;
        std::vector<index_t> col_idx;
        std::vector<double> values;
        row_ptr.reserve(static_cast<std::size_t>(combined_states) + 1);
        col_idx.reserve(static_cast<std::size_t>(combined_nnz));
        values.reserve(static_cast<std::size_t>(combined_nnz));
        row_ptr.push_back(0);
        std::vector<index_t> offsets;
        offsets.reserve(live.size());
        index_t offset = 0;
        for (const VGroup* g : live) {
          const CsrMatrix& pt = g->dtmc->transition_transposed();
          offsets.push_back(offset);
          const std::int64_t base = row_ptr.back();
          for (std::size_t r = 1; r <= static_cast<std::size_t>(pt.rows());
               ++r) {
            row_ptr.push_back(base + pt.row_ptr()[r]);
          }
          for (const index_t c : pt.col_idx()) {
            col_idx.push_back(c + offset);
          }
          values.insert(values.end(), pt.values().begin(),
                        pt.values().end());
          offset += pt.rows();
        }
        CsrMatrix combined = CsrMatrix::from_parts(
            combined_states, combined_states, std::move(row_ptr),
            std::move(col_idx), std::move(values));
        // The fused block matrix is stepped to the longest pass's horizon:
        // derive the blocked kernel layout for it like any other compiled
        // matrix (bit-identical; the V-blocks' own layouts don't carry
        // over through the CSR splice).
        combined.specialize();

        AlignedVector<double> x(static_cast<std::size_t>(combined_states),
                                0.0);
        AlignedVector<double> y(static_cast<std::size_t>(combined_states),
                                0.0);
        for (std::size_t b = 0; b < live.size(); ++b) {
          const std::vector<double>& init =
              live[b]->compiled->vmodel->initial;
          std::copy(init.begin(), init.end(), x.begin() + offsets[b]);
        }

        std::size_t live_blocks = live.size();
        for (std::int64_t n = 0;; ++n) {
          for (std::size_t b = 0; b < live_blocks; ++b) {
            VGroup& g = *live[b];
            const VModel& vmodel = *g.compiled->vmodel;
            const std::span<const double> slice(
                x.data() + offsets[b],
                static_cast<std::size_t>(vmodel.chain.num_states()));
            const double d =
                sparse_reward_dot(g.reward_idx, vmodel.rewards, slice);
            for (auto& sweep : g.sweeps) sweep->accumulate(n, d);
          }
          // Retire completed blocks: passes are sorted descending, so the
          // live set is always a prefix and the product shrinks with it.
          while (live_blocks > 0 &&
                 live[live_blocks - 1]->pass_steps == n) {
            --live_blocks;
          }
          if (live_blocks == 0) break;
          const index_t leading =
              offsets[live_blocks - 1] +
              live[live_blocks - 1]->compiled->vmodel->chain.num_states();
          // Retirement can shrink the live prefix back below the floor
          // the fusion was gated on; the serial kernel (bit-identical)
          // then beats paying the per-step pool synchronization for a
          // tail of a few small blocks.
          const std::int64_t live_nnz =
              combined.row_ptr()[static_cast<std::size_t>(leading)];
          if (live_nnz >= SolveWorkspace::kMinPooledNnz) {
            combined.mul_vec_leading(x, y, leading, *pool);
          } else {
            combined.mul_vec_leading(x, y, leading);
          }
          x.swap(y);
        }
      };
      try {
        run_fused();
      } catch (const std::exception& e) {
        // The joint pass is shared state (sweeps may be mid-accumulation),
        // so the whole fused set fails together; everything outside it —
        // validation-failed items, zero-reward groups, the rest of the
        // sweep — is unaffected.
        for (VGroup* g : live) fail_members(*g, e);
      }
    } else {
      // Too small to pay the per-step pool synchronization as one block:
      // give each group's whole serial pass to a worker instead (the
      // passes are independent; per-group arithmetic unchanged).
      pool->parallel_for(live.size(), [&](std::size_t b, std::size_t) {
        run_group_serial(*live[b]);
      });
    }
  } else {
    for (VGroup* g : live) run_group_serial(*g);
  }

  // --- Reports, mirroring solve_grid()'s step attribution exactly: the
  // shared schema cost on every point, each point's own V-truncation as
  // its vmodel_steps, the member's own pass length (not the group's) as
  // the aggregate. Seconds are necessarily phase-level, not per-member —
  // the execute phase is shared work (that is the point of batching) — so
  // a member reports its group's compile time plus the joint execute
  // elapsed; summing seconds across members of a batch over-counts, just
  // as summing the per-point seconds of one OpenMP RRL sweep does.
  const double execute_seconds = execute_watch.seconds();
  for (VGroup& g : groups) {
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      const std::size_t i = g.members[k];
      const RrBatchItem& item = items[i];
      if (!item.error->empty()) continue;
      const RegenerativeSchema& sch = g.compiled->schema;
      const std::size_t m = item.request->times.size();
      SolveReport report;
      report.points.resize(m);
      const GridSweep* sweep =
          g.zero_rewards ? nullptr : g.sweeps[k].get();
      for (std::size_t p = 0; p < m; ++p) {
        TransientValue& point = report.points[p];
        point.value = sweep != nullptr ? sweep->value(p) : 0.0;
        point.stats.dtmc_steps = sch.dtmc_steps();
        point.stats.vmodel_steps = sweep != nullptr ? sweep->n_max(p) : 0;
        point.stats.lambda = sch.lambda;
        point.stats.capped =
            sch.capped || (sweep != nullptr && sweep->point_capped(p));
      }
      report.total.dtmc_steps = sch.dtmc_steps();
      report.total.vmodel_steps =
          sweep != nullptr ? sweep->pass_steps() : 0;
      report.total.lambda = sch.lambda;
      report.total.capped =
          sch.capped || (sweep != nullptr && sweep->any_capped());
      report.total.seconds = g.compile_seconds + execute_seconds;
      *item.report = std::move(report);
    }
  }
}

}  // namespace rrl
