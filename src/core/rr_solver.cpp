#include "core/rr_solver.hpp"

#include <algorithm>

#include "core/standard_randomization.hpp"
#include "core/vmodel.hpp"
#include "support/stopwatch.hpp"

namespace rrl {

RegenerativeRandomization::RegenerativeRandomization(
    const Ctmc& chain, std::vector<double> rewards,
    std::vector<double> initial, index_t regenerative_state,
    RrOptions options)
    : chain_(chain),
      rewards_(std::move(rewards)),
      initial_(std::move(initial)),
      regenerative_(regenerative_state),
      options_(options) {
  RRL_EXPECTS(options_.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards_.size()) == chain.num_states());
  check_distribution(initial_, chain.num_states());
}

RegenerativeSchema RegenerativeRandomization::schema(double t) const {
  return schema_with(t, options_.epsilon);
}

RegenerativeSchema RegenerativeRandomization::schema_with(double t,
                                                          double eps) const {
  RegenerativeOptions opts;
  opts.epsilon = eps;
  opts.rate_factor = options_.rate_factor;
  opts.step_cap = options_.schema_step_cap;
  return compute_regenerative_schema(chain_, rewards_, initial_,
                                     regenerative_, t, opts);
}

TransientValue RegenerativeRandomization::trr(double t) const {
  RRL_EXPECTS(t >= 0.0);
  return solve_point(t, MeasureKind::kTrr);
}

TransientValue RegenerativeRandomization::mrr(double t) const {
  RRL_EXPECTS(t > 0.0);
  return solve_point(t, MeasureKind::kMrr);
}

SolveReport RegenerativeRandomization::solve_grid(
    const SolveRequest& request, SolveWorkspace& workspace) const {
  const Stopwatch watch;
  const double eps = validated_epsilon(request, options_.epsilon);
  const std::size_t m = request.times.size();

  // One schema for the whole sweep, computed at the largest time: for
  // t < t_max the truncation bound at K(t_max) is only smaller
  // (E[(N(Lambda t) - K)^+] decreases in K), so the longer series stays
  // within budget at every requested time. The schema is memoized per
  // exact (t_max, eps) — repeated sweeps over the same horizon (the other
  // measure, another grid resolution, the study subsystem's shared
  // solvers) pay the K model-sized steps once.
  const double t_max =
      *std::max_element(request.times.begin(), request.times.end());
  const auto compiled = schema_cache_.get(
      t_max, eps, /*want_transform=*/false,
      [&] { return schema_with(t_max, eps); });
  const RegenerativeSchema& sch = compiled->schema;
  const VModel vmodel = build_vmodel(sch);

  // One standard-randomization pass of V_{K,L} serves every grid point,
  // with the remaining eps/2 budget.
  SrOptions sr;
  sr.epsilon = eps / 2.0;
  sr.rate_factor = 1.0;
  sr.step_cap = options_.vmodel_step_cap;
  const StandardRandomization inner(vmodel.chain, vmodel.rewards,
                                    vmodel.initial, sr);
  SolveRequest inner_request = request;
  inner_request.epsilon = eps / 2.0;
  // The V-model is (much) smaller than X, so reusing the caller's buffers
  // just resizes them down for the inner pass.
  const SolveReport inner_report = inner.solve_grid(inner_request, workspace);

  SolveReport report;
  report.points.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    TransientValue& p = report.points[i];
    const TransientValue& v = inner_report.points[i];
    p.value = v.value;
    p.stats.dtmc_steps = sch.dtmc_steps();
    p.stats.vmodel_steps = v.stats.dtmc_steps;
    p.stats.lambda = sch.lambda;
    p.stats.capped = sch.capped || v.stats.capped;
  }
  report.total.dtmc_steps = sch.dtmc_steps();
  report.total.vmodel_steps = inner_report.total.dtmc_steps;
  report.total.lambda = sch.lambda;
  report.total.capped = sch.capped || inner_report.total.capped;
  report.total.seconds = watch.seconds();
  return report;
}

}  // namespace rrl
