#include "core/grid_sweep.hpp"

#include <algorithm>

namespace rrl {

GridSweep::GridSweep(
    double lambda, std::span<const double> times, MeasureKind measure,
    const std::function<std::int64_t(const PoissonDistribution&)>& truncation,
    std::int64_t step_cap)
    : measure_(measure) {
  const std::size_t m = times.size();
  poisson_.reserve(m);
  n_max_.assign(m, 0);
  acc_.assign(m, CompensatedSum());
  capped_.assign(m, 0);
  by_nmax_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    poisson_.emplace_back(lambda * times[i]);
    n_max_[i] = truncation(poisson_[i]);
    if (step_cap >= 0 && n_max_[i] > step_cap) {
      n_max_[i] = step_cap;
      capped_[i] = 1;
      any_capped_ = true;
    }
    pass_steps_ = std::max(pass_steps_, n_max_[i]);
    by_nmax_[i] = i;
  }
  std::sort(by_nmax_.begin(), by_nmax_.end(), [this](std::size_t a,
                                                     std::size_t b) {
    return n_max_[a] < n_max_[b];
  });
}

void GridSweep::accumulate(std::int64_t n, double d) {
  const std::size_t m = by_nmax_.size();
  while (first_active_ < m && n_max_[by_nmax_[first_active_]] < n) {
    ++first_active_;
  }
  for (std::size_t k = first_active_; k < m; ++k) {
    const std::size_t i = by_nmax_[k];
    const double weight = measure_ == MeasureKind::kTrr
                              ? poisson_[i].pmf(n)
                              : poisson_[i].tail(n + 1);
    if (weight != 0.0) acc_[i].add(weight * d);
  }
}

void GridSweep::fold_steady_state(
    std::int64_t n, double d_ss,
    const std::function<void(std::size_t)>& on_folded) {
  const std::size_t m = by_nmax_.size();
  for (std::size_t k = first_active_; k < m; ++k) {
    const std::size_t i = by_nmax_[k];
    if (n_max_[i] <= n) continue;  // this point already completed at step n
    // Remaining terms k = n+1, n+2, ... folded into the midpoint:
    //   TRR: sum_{k>n} pmf(k) d_ss = tail(n+1) d_ss
    //   MRR: sum_{k>n} P[N>=k+1] d_ss = expected_excess(n+1) d_ss.
    if (measure_ == MeasureKind::kTrr) {
      acc_[i].add(poisson_[i].tail(n + 1) * d_ss);
    } else {
      acc_[i].add(poisson_[i].expected_excess(n + 1) * d_ss);
    }
    on_folded(i);
  }
}

double GridSweep::value(std::size_t i) const {
  return measure_ == MeasureKind::kTrr ? acc_[i].value()
                                       : acc_[i].value() / poisson_[i].mean();
}

}  // namespace rrl
