// Closed-form Laplace transforms of TRR^a_{K,L}(t) and C_{K,L}(t) =
// t * MRR^a_{K,L}(t) — the paper's Section 2.1 contribution.
//
// With theta = Lambda/(s + Lambda), c(k) = a(k) b(k), and the schema's
// flattened series (va_total = sum_i v_k^i a(k), rv = sum_i r_{f_i} v_k^i
// a(k), primed analogues), the transform of the truncated transformed model
// is evaluated as
//   B(s)   = s * sum_{k<=K} a(k) th^k + Lambda * sum_{k<K} va_total(k) th^k
//            + a(K) Lambda th^K
//   A(s)   = 1 - s/(s+Lambda) * sum_{k<=L} a'(k) th^k
//            - Lambda/(s+Lambda) * sum_{k<L} va'_total(k) th^k
//            - a'(L) th^{L+1}                      (A(s) = 1 if alpha_r = 1)
//   p~0(s) = A(s)/B(s)
//   TRR~(s) = [sum_{k<=K} c(k) th^k + (Lambda/s) sum_{k<K} rv(k) th^k] p~0(s)
//             + (1/(s+Lambda)) sum_{k<=L} c'(k) th^k
//             + (th/s) sum_{k<L} rv'(k) th^k
//   C~(s)  = TRR~(s)/s.
// One pass per chain with an incrementally updated theta power evaluates all
// sums; accumulation is done in complex<long double> so that the ~14 digits
// the paper demands of the inversion survive series of ~10^4 terms.
#pragma once

#include <complex>
#include <vector>

#include "core/regenerative.hpp"

namespace rrl {

/// Transform evaluator built from a schema; usable for Re(s) > 0 (below the
/// rightmost singularity at s = 0 the transforms are not needed).
class TrrTransform {
 public:
  explicit TrrTransform(const RegenerativeSchema& schema);

  /// Laplace transform of the truncated transient reward rate TRR^a(t).
  [[nodiscard]] std::complex<double> trr(std::complex<double> s) const;

  /// Laplace transform of C(t) = t * MRR^a(t): TRR~(s)/s.
  [[nodiscard]] std::complex<double> cumulative(std::complex<double> s) const {
    return trr(s) / s;
  }

  [[nodiscard]] double lambda() const noexcept { return lambda_; }

 private:
  struct ChainSums {
    std::complex<long double> a;   // sum a(k) th^k,  k = 0..K
    std::complex<long double> c;   // sum c(k) th^k,  k = 0..K
    std::complex<long double> va;  // sum va_total(k) th^k, k = 0..K-1
    std::complex<long double> rv;  // sum rv(k) th^k, k = 0..K-1
    std::complex<long double> top_power;  // th^K
  };

  struct ChainSeries {
    std::vector<double> a;    // k = 0..K
    std::vector<double> c;    // k = 0..K
    std::vector<double> vat;  // k = 0..K-1
    std::vector<double> rv;   // k = 0..K-1
  };

  static ChainSeries flatten(const ExcursionSeries& series,
                             std::span<const double> f_rewards);
  static ChainSums accumulate(const ChainSeries& series,
                              std::complex<long double> theta);

  double lambda_ = 0.0;
  double alpha_r_ = 1.0;
  bool has_primed_ = false;
  ChainSeries main_;
  ChainSeries primed_;
};

}  // namespace rrl
