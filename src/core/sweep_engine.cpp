#include "core/sweep_engine.hpp"

#include <algorithm>
#include <exception>
#include <string_view>

#include "support/stopwatch.hpp"

namespace rrl {

namespace {

void solve_one(const SweepScenario& scenario, ScenarioResult& slot,
               SolveWorkspace& workspace) {
  try {
    if (scenario.shared_solver != nullptr) {
      slot.report =
          scenario.shared_solver->solve_grid(scenario.request, workspace);
      return;
    }
    RRL_EXPECTS(scenario.chain != nullptr);
    const auto solver =
        make_solver(scenario.solver, *scenario.chain, scenario.rewards,
                    scenario.initial, scenario.config);
    slot.report = solver->solve_grid(scenario.request, workspace);
  } catch (const std::exception& e) {
    slot.error = e.what();
    if (slot.error.empty()) slot.error = "unknown error";
  }
}

}  // namespace

SweepReport run_sweep(const BatchRequest& batch, ThreadPool& pool) {
  const Stopwatch watch;
  SweepReport out;
  out.jobs = pool.num_threads();
  out.results.resize(batch.scenarios.size());

  // A batch too small to occupy the pool on the scenario axis (fewer
  // scenarios than workers, with at least 2x slack so the switch is
  // clearly a win) runs the scenarios serially and lends the pool to the
  // solvers' SpMV layer instead: the idle workers go to row-partitioned
  // model-sized products (SolveWorkspace::pooled_spmv applies the
  // nested-parallelism guard and a matrix-size floor). Only worth it when
  // some scenario would actually drive the pooled kernel — a model above
  // the size floor AND a solver whose hot loop steps the full model (the
  // single-pass randomization methods; rr's V-solve and rrl's inversions
  // never touch model-sized SpMVs) — otherwise serializing the scenarios
  // loses parallelism for nothing. Scenarios advertise their chain for
  // this check (a shared_solver scenario without one counts as small).
  // The pooled kernel is bit-identical to the serial one, so the report's
  // values stay independent of the worker count either way.
  const auto drives_pooled_spmv = [](const SweepScenario& scenario) {
    if (scenario.chain == nullptr ||
        scenario.chain->num_transitions() < SolveWorkspace::kMinPooledNnz) {
      return false;
    }
    const std::string_view name = scenario.shared_solver != nullptr
                                      ? scenario.shared_solver->name()
                                      : std::string_view(scenario.solver);
    return name == "sr" || name == "rsd";
  };
  const bool model_parallel =
      pool.num_threads() > 1 &&
      batch.scenarios.size() * 2 <=
          static_cast<std::size_t>(pool.num_threads()) &&
      std::any_of(batch.scenarios.begin(), batch.scenarios.end(),
                  drives_pooled_spmv);
  if (model_parallel) {
    SolveWorkspace workspace;
    workspace.spmv_pool = &pool;
    for (std::size_t i = 0; i < batch.scenarios.size(); ++i) {
      solve_one(batch.scenarios[i], out.results[i], workspace);
    }
    out.seconds = watch.seconds();
    return out;
  }

  // One workspace per worker slot: the solvers' mutable per-solve state.
  // Everything else a worker touches is either immutable shared input
  // (scenarios, chains, shared solvers) or its own result slot.
  std::vector<SolveWorkspace> workspaces(
      static_cast<std::size_t>(pool.num_threads()));

  pool.parallel_for(
      batch.scenarios.size(), [&](std::size_t i, std::size_t worker) {
        solve_one(batch.scenarios[i], out.results[i], workspaces[worker]);
      });

  out.seconds = watch.seconds();
  return out;
}

SweepReport run_sweep(const BatchRequest& batch) {
  ThreadPool pool(batch.jobs);
  return run_sweep(batch, pool);
}

}  // namespace rrl
