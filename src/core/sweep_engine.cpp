#include "core/sweep_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <string_view>

#include "core/randomization_batch.hpp"
#include "core/rr_solver.hpp"
#include "sparse/spmv_kernels.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace rrl {

namespace {

// Per-solve accounting in the paper's own units (Tables 1–2 compare the
// methods by DTMC steps / truncation points / abscissae).
struct SolveCounters {
  metrics::Counter& solved = metrics::counter("rrl_scenarios_solved_total");
  metrics::Counter& failed = metrics::counter("rrl_scenarios_failed_total");
  metrics::Counter& dtmc_steps =
      metrics::counter("rrl_solve_dtmc_steps_total");
  metrics::Counter& vmodel_steps =
      metrics::counter("rrl_solve_vmodel_steps_total");
  metrics::Counter& abscissae = metrics::counter("rrl_solve_abscissae_total");
  metrics::Counter& capped = metrics::counter("rrl_solve_capped_total");
  metrics::Histogram& truncation =
      metrics::histogram("rrl_solve_truncation_steps");
};

SolveCounters& solve_counters() {
  static SolveCounters c;
  return c;
}

void note_result(const ScenarioResult& slot) {
  SolveCounters& c = solve_counters();
  if (!slot.error.empty()) {
    c.failed.add(1);
    return;
  }
  c.solved.add(1);
  const SolverStats& total = slot.report.total;
  c.dtmc_steps.add(static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, total.dtmc_steps)));
  c.vmodel_steps.add(static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, total.vmodel_steps)));
  c.abscissae.add(
      static_cast<std::uint64_t>(std::max(0, total.abscissae)));
  if (total.capped) c.capped.add(1);
  c.truncation.observe(static_cast<double>(total.dtmc_steps));
}

void solve_one(const SweepScenario& scenario, ScenarioResult& slot,
               SolveWorkspace& workspace) {
  const trace::Span span("scenario.solve");
  const Stopwatch watch;
  try {
    if (scenario.shared_solver != nullptr) {
      slot.report =
          scenario.shared_solver->solve_grid(scenario.request, workspace);
    } else {
      RRL_EXPECTS(scenario.chain != nullptr);
      const auto solver =
          make_solver(scenario.solver, *scenario.chain, scenario.rewards,
                      scenario.initial, scenario.config);
      slot.report = solver->solve_grid(scenario.request, workspace);
    }
  } catch (const std::exception& e) {
    slot.error = e.what();
    if (slot.error.empty()) slot.error = "unknown error";
  }
  slot.seconds = watch.seconds();
  note_result(slot);
}

}  // namespace

SweepReport run_sweep(const BatchRequest& batch, ThreadPool& pool,
                      std::vector<SolveWorkspace>& workspaces) {
  const Stopwatch watch;
  SweepReport out;
  out.jobs = pool.num_threads();
  out.results.resize(batch.scenarios.size());

  // Batched V-solve routing: scenarios driving a SHARED RR solver go
  // through solve_rr_batch together, so items with the same compiled
  // schema share ONE ~Lambda*t V-pass (measure/grid variation reuses the
  // d(n) stream) and the distinct V-models step jointly through a pooled
  // block product — the only way the pool ever engages for the small
  // V-models, see rr_solver.hpp. Bit-identical to per-scenario
  // solve_grid(), so the routing is invisible in the report's values.
  // Per-scenario construction (no shared_solver) stays on the scenario
  // axis: those scenarios gain nothing from grouping (each would compile
  // its own schema) and would lose their worker-level parallelism.
  std::vector<std::size_t> batched;
  for (std::size_t i = 0; i < batch.scenarios.size(); ++i) {
    const SweepScenario& scenario = batch.scenarios[i];
    if (scenario.shared_solver != nullptr &&
        dynamic_cast<const RegenerativeRandomization*>(
            scenario.shared_solver.get()) != nullptr) {
      batched.push_back(i);
    }
  }
  std::vector<std::uint8_t> taken(batch.scenarios.size(), 0);
  if (batched.size() >= 2) {
    std::vector<RrBatchItem> items;
    items.reserve(batched.size());
    for (const std::size_t i : batched) {
      RrBatchItem item;
      item.solver = static_cast<const RegenerativeRandomization*>(
          batch.scenarios[i].shared_solver.get());
      item.request = &batch.scenarios[i].request;
      item.report = &out.results[i].report;
      item.error = &out.results[i].error;
      items.push_back(item);
      taken[i] = 1;
    }
    const Stopwatch batch_watch;
    {
      const trace::Span span("scenario.solve_batch", batched.size());
      solve_rr_batch(items, &pool);
    }
    // The members shared one pass; attribute its wall-clock evenly.
    const double each =
        batch_watch.seconds() / static_cast<double>(batched.size());
    for (const std::size_t i : batched) {
      out.results[i].seconds = each;
      note_result(out.results[i]);
    }
  }

  // Shared-pass SR/RSD batching (core/randomization_batch.hpp): scenarios
  // driving the SAME shared SR/RSD solver instance become columns of one
  // SpMM block, so each randomization step streams the shared matrix once
  // instead of once per scenario. Only instances with >= 2 scenarios are
  // routed — a singleton gains nothing from a one-column block and would
  // lose its worker-level parallelism. Bit-identical to per-scenario
  // solve_grid() (the engine's determinism contract), so BatchRequest::spmm
  // and RRL_SPMM=off only ever change timings, never values.
  if (batch.spmm && spmm_enabled()) {
    std::vector<std::size_t> rand_batched;
    for (std::size_t i = 0; i < batch.scenarios.size(); ++i) {
      const SweepScenario& scenario = batch.scenarios[i];
      if (taken[i] == 0 && scenario.shared_solver != nullptr &&
          randomization_batchable(*scenario.shared_solver)) {
        rand_batched.push_back(i);
      }
    }
    // Keep only instances shared by >= 2 scenarios.
    const auto shared_twice = [&](std::size_t i) {
      const TransientSolver* s = batch.scenarios[i].shared_solver.get();
      std::size_t n = 0;
      for (const std::size_t j : rand_batched) {
        n += batch.scenarios[j].shared_solver.get() == s ? 1 : 0;
      }
      return n >= 2;
    };
    std::erase_if(rand_batched,
                  [&](std::size_t i) { return !shared_twice(i); });
    if (!rand_batched.empty()) {
      if (workspaces.empty()) workspaces.resize(1);
      std::vector<RandBatchItem> items;
      items.reserve(rand_batched.size());
      for (const std::size_t i : rand_batched) {
        RandBatchItem item;
        item.solver = batch.scenarios[i].shared_solver.get();
        item.request = &batch.scenarios[i].request;
        item.report = &out.results[i].report;
        item.error = &out.results[i].error;
        items.push_back(item);
        taken[i] = 1;
      }
      const Stopwatch batch_watch;
      {
        const trace::Span span("scenario.solve_rand_batch",
                               rand_batched.size());
        solve_randomization_batch(items, &pool, &workspaces.front());
      }
      const double each =
          batch_watch.seconds() / static_cast<double>(rand_batched.size());
      for (const std::size_t i : rand_batched) {
        out.results[i].seconds = each;
        note_result(out.results[i]);
      }
    }
  }

  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < batch.scenarios.size(); ++i) {
    if (taken[i] == 0) rest.push_back(i);
  }
  if (rest.empty()) {
    out.seconds = watch.seconds();
    return out;
  }

  // A batch too small to occupy the pool on the scenario axis (fewer
  // scenarios than workers, with at least 2x slack so the switch is
  // clearly a win) runs the scenarios serially and lends the pool to the
  // solvers' SpMV layer instead: the idle workers go to row-partitioned
  // model-sized products (SolveWorkspace::pooled_spmv applies the
  // nested-parallelism guard and a matrix-size floor). Only worth it when
  // some scenario would actually drive the pooled kernel — a model above
  // the size floor AND a solver whose hot loop steps the full model (the
  // single-pass randomization methods; rr's V-solve and rrl's inversions
  // never touch model-sized SpMVs) — otherwise serializing the scenarios
  // loses parallelism for nothing. Scenarios advertise their chain for
  // this check (a shared_solver scenario without one counts as small).
  // The pooled kernel is bit-identical to the serial one, so the report's
  // values stay independent of the worker count either way.
  const auto drives_pooled_spmv = [](const SweepScenario& scenario) {
    if (scenario.chain == nullptr ||
        scenario.chain->num_transitions() < SolveWorkspace::kMinPooledNnz) {
      return false;
    }
    const std::string_view name = scenario.shared_solver != nullptr
                                      ? scenario.shared_solver->name()
                                      : std::string_view(scenario.solver);
    return name == "sr" || name == "rsd";
  };
  const bool model_parallel =
      pool.num_threads() > 1 &&
      rest.size() * 2 <= static_cast<std::size_t>(pool.num_threads()) &&
      std::any_of(rest.begin(), rest.end(), [&](std::size_t i) {
        return drives_pooled_spmv(batch.scenarios[i]);
      });
  // One workspace per worker slot: the solvers' mutable per-solve state.
  // Everything else a worker touches is either immutable shared input
  // (scenarios, chains, shared solvers) or its own result slot. The
  // caller's vector is grown (never shrunk) so a worker loop reuses its
  // warmed-up buffers across units.
  if (workspaces.size() < static_cast<std::size_t>(pool.num_threads())) {
    workspaces.resize(static_cast<std::size_t>(pool.num_threads()));
  }

  if (model_parallel) {
    SolveWorkspace& workspace = workspaces.front();
    ThreadPool* const saved_pool = workspace.spmv_pool;
    workspace.spmv_pool = &pool;
    for (const std::size_t i : rest) {
      solve_one(batch.scenarios[i], out.results[i], workspace);
    }
    workspace.spmv_pool = saved_pool;
    out.seconds = watch.seconds();
    return out;
  }

  pool.parallel_for(rest.size(), [&](std::size_t k, std::size_t worker) {
    const std::size_t i = rest[k];
    solve_one(batch.scenarios[i], out.results[i], workspaces[worker]);
  });

  out.seconds = watch.seconds();
  return out;
}

SweepReport run_sweep(const BatchRequest& batch, ThreadPool& pool) {
  std::vector<SolveWorkspace> workspaces;
  return run_sweep(batch, pool, workspaces);
}

SweepReport run_sweep(const BatchRequest& batch) {
  ThreadPool pool(batch.jobs);
  return run_sweep(batch, pool);
}

}  // namespace rrl
