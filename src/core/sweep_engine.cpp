#include "core/sweep_engine.hpp"

#include <exception>

#include "support/stopwatch.hpp"

namespace rrl {

SweepReport run_sweep(const BatchRequest& batch, ThreadPool& pool) {
  const Stopwatch watch;
  SweepReport out;
  out.jobs = pool.num_threads();
  out.results.resize(batch.scenarios.size());

  // One workspace per worker slot: the solvers' mutable per-solve state.
  // Everything else a worker touches is either immutable shared input
  // (scenarios, chains) or its own result slot.
  std::vector<SolveWorkspace> workspaces(
      static_cast<std::size_t>(pool.num_threads()));

  pool.parallel_for(
      batch.scenarios.size(), [&](std::size_t i, std::size_t worker) {
        const SweepScenario& scenario = batch.scenarios[i];
        ScenarioResult& slot = out.results[i];
        try {
          RRL_EXPECTS(scenario.chain != nullptr);
          const auto solver =
              make_solver(scenario.solver, *scenario.chain, scenario.rewards,
                          scenario.initial, scenario.config);
          slot.report = solver->solve_grid(scenario.request,
                                           workspaces[worker]);
        } catch (const std::exception& e) {
          slot.error = e.what();
          if (slot.error.empty()) slot.error = "unknown error";
        }
      });

  out.seconds = watch.seconds();
  return out;
}

SweepReport run_sweep(const BatchRequest& batch) {
  ThreadPool pool(batch.jobs);
  return run_sweep(batch, pool);
}

}  // namespace rrl
