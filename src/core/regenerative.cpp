#include "core/regenerative.hpp"

#include <cmath>

#include "markov/poisson.hpp"
#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {

double ExcursionSeries::va_total(std::size_t k) const {
  double total = 0.0;
  for (const auto& series : va) total += series[k];
  return total;
}

double ExcursionSeries::va_rewarded(std::size_t k,
                                    std::span<const double> f_rewards) const {
  RRL_EXPECTS(f_rewards.size() == va.size());
  double total = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    total += f_rewards[i] * va[i][k];
  }
  return total;
}

namespace {

/// Step one excursion chain until the truncation bound drops below
/// `eps_budget`. `mu` is the initial sub-distribution (mass at r for the
/// main chain, the initial distribution restricted to S \ {r} for the primed
/// chain).
ExcursionSeries run_excursion(const RandomizedDtmc& dtmc,
                              std::span<const double> rewards,
                              std::span<const index_t> reward_idx,
                              std::span<const index_t> absorbing,
                              index_t regenerative, std::vector<double> mu,
                              const PoissonDistribution& poisson,
                              double r_max, double eps_budget,
                              std::int64_t step_cap, bool& capped) {
  ExcursionSeries series;
  series.va.resize(absorbing.size());
  const std::size_t n = mu.size();
  std::vector<double> next(n, 0.0);

  double mass = sum(mu);
  for (std::int64_t k = 0;; ++k) {
    series.a.push_back(mass);
    series.c.push_back(sparse_reward_dot(reward_idx, rewards, mu));

    // Truncation bound: r_max * a(k) * E[(N(Lambda t) - k)^+]. r_max == 0
    // means every reward is zero and the measure is trivially exact.
    const double bound =
        r_max == 0.0 ? 0.0 : r_max * mass * poisson.expected_excess(k);
    if (bound <= eps_budget) {
      series.exact = (mass == 0.0);
      break;
    }
    if (step_cap >= 0 && k >= step_cap) {
      capped = true;
      break;
    }

    dtmc.step(mu, next);
    mu.swap(next);
    // Collect regeneration and absorption mass, then mask those states so
    // mu keeps tracking only the surviving excursion.
    const auto ur = static_cast<std::size_t>(regenerative);
    series.qa.push_back(mu[ur]);
    mu[ur] = 0.0;
    for (std::size_t i = 0; i < absorbing.size(); ++i) {
      const auto uf = static_cast<std::size_t>(absorbing[i]);
      series.va[i].push_back(mu[uf]);
      mu[uf] = 0.0;
    }
    // Recompute the surviving mass from the vector itself: maintaining it
    // incrementally (mass -= returned - absorbed) leaves a constant rounding
    // residue ~1e-17 that would put a floor under a(k) and stall the
    // truncation criterion for large t.
    mass = sum(mu);
  }
  return series;
}

}  // namespace

RegenerativeSchema compute_regenerative_schema(
    const Ctmc& chain, std::span<const double> rewards,
    std::span<const double> initial, index_t regenerative_state, double t,
    const RegenerativeOptions& options) {
  RRL_EXPECTS(t >= 0.0);
  RRL_EXPECTS(options.epsilon > 0.0);
  RRL_EXPECTS(static_cast<index_t>(rewards.size()) == chain.num_states());
  RRL_EXPECTS(regenerative_state >= 0 &&
              regenerative_state < chain.num_states());
  RRL_EXPECTS(!chain.is_absorbing(regenerative_state));
  check_distribution(initial, chain.num_states());

  RegenerativeSchema schema;
  schema.t = t;
  schema.regenerative = regenerative_state;
  schema.absorbing = chain.absorbing_states();
  schema.r_max = max_reward(rewards);
  for (const index_t f : schema.absorbing) {
    // The paper assumes P[X(0) = f_i] = 0.
    RRL_EXPECTS(initial[static_cast<std::size_t>(f)] == 0.0);
    schema.f_rewards.push_back(rewards[static_cast<std::size_t>(f)]);
  }

  const RandomizedDtmc dtmc(chain, options.rate_factor);
  schema.lambda = dtmc.lambda();
  const PoissonDistribution poisson(dtmc.lambda() * t);
  const std::vector<index_t> reward_idx = nonzero_reward_states(rewards);

  schema.alpha_r = initial[static_cast<std::size_t>(regenerative_state)];
  schema.has_primed = schema.alpha_r < 1.0;
  // eps/2 for model truncation, split in half again when both chains exist.
  const double eps_model =
      options.epsilon / (schema.has_primed ? 4.0 : 2.0);

  {
    std::vector<double> mu(static_cast<std::size_t>(chain.num_states()), 0.0);
    mu[static_cast<std::size_t>(regenerative_state)] = 1.0;
    schema.main = run_excursion(dtmc, rewards, reward_idx, schema.absorbing,
                                regenerative_state, std::move(mu), poisson,
                                schema.r_max, eps_model, options.step_cap,
                                schema.capped);
  }
  if (schema.has_primed) {
    std::vector<double> mu(initial.begin(), initial.end());
    mu[static_cast<std::size_t>(regenerative_state)] = 0.0;
    schema.primed = run_excursion(dtmc, rewards, reward_idx, schema.absorbing,
                                  regenerative_state, std::move(mu), poisson,
                                  schema.r_max, eps_model, options.step_cap,
                                  schema.capped);
  }
  return schema;
}

index_t suggest_regenerative_state(const Ctmc& chain, int iterations) {
  RRL_EXPECTS(iterations >= 1);
  RRL_EXPECTS(chain.max_exit_rate() > 0.0);
  const RandomizedDtmc dtmc(chain);
  const std::vector<index_t> absorbing = chain.absorbing_states();
  const std::size_t n = static_cast<std::size_t>(chain.num_states());
  RRL_EXPECTS(absorbing.size() < n);

  std::vector<double> mu(n, 1.0 / static_cast<double>(n));
  for (const index_t f : absorbing) mu[static_cast<std::size_t>(f)] = 0.0;
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    dtmc.step(mu, next);
    mu.swap(next);
    // Mask absorbed mass and renormalize: the iteration then tracks the
    // occupancy of the chain conditioned on staying in S.
    for (const index_t f : absorbing) mu[static_cast<std::size_t>(f)] = 0.0;
    const double total = sum(mu);
    RRL_ENSURES(total > 0.0);
    for (double& p : mu) p /= total;
  }
  index_t best = -1;
  double best_mass = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (chain.is_absorbing(static_cast<index_t>(i))) continue;
    if (mu[i] > best_mass) {
      best_mass = mu[i];
      best = static_cast<index_t>(i);
    }
  }
  RRL_ENSURES(best >= 0);
  return best;
}

}  // namespace rrl
