#include "core/registry.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "core/krylov_solver.hpp"
#include "core/regenerative.hpp"
#include "core/rr_solver.hpp"
#include "core/rrl_solver.hpp"
#include "core/standard_randomization.hpp"
#include "core/steady_state_detection.hpp"

namespace rrl {
namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, SolverFactory> factories;
  std::map<std::string, std::string> descriptions;
  std::vector<std::string> order;  // registration order

  void add(const std::string& name, std::string description,
           SolverFactory factory) {
    if (factories.insert_or_assign(name, std::move(factory)).second) {
      order.push_back(name);
    }
    // An empty description keeps whatever the name already had (so a
    // replacement factory inherits the original text unless it brings its
    // own).
    if (!description.empty() || descriptions.count(name) == 0) {
      descriptions[name] = std::move(description);
    }
  }
};

// Caller must hold reg.mutex.
std::string joined_names(const Registry& reg) {
  std::string known;
  for (const std::string& n : reg.order) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return known;
}

index_t regenerative_or_suggest(const Ctmc& chain,
                                const SolverConfig& config) {
  return config.regenerative >= 0 ? config.regenerative
                                  : suggest_regenerative_state(chain);
}

Registry& registry() {
  static Registry reg;
  static const bool initialized = [] {
    Registry& r = reg;
    // Built-in descriptions come from the classes' own description()
    // constants, so registry listings and solver->description() can never
    // drift apart.
    r.add("sr", std::string(StandardRandomization::kDescription),
          [](const Ctmc& chain, std::vector<double> rewards,
             std::vector<double> initial, const SolverConfig& config)
              -> std::unique_ptr<TransientSolver> {
            SrOptions opt;
            opt.epsilon = config.epsilon;
            opt.rate_factor = config.rate_factor;
            opt.step_cap = config.step_cap;
            return std::make_unique<StandardRandomization>(
                chain, std::move(rewards), std::move(initial), opt);
          });
    r.add("rsd", std::string(RandomizationSteadyStateDetection::kDescription),
          [](const Ctmc& chain, std::vector<double> rewards,
             std::vector<double> initial, const SolverConfig& config)
              -> std::unique_ptr<TransientSolver> {
            RsdOptions opt;
            opt.epsilon = config.epsilon;
            opt.rate_factor = config.rate_factor;
            opt.step_cap = config.step_cap;
            return std::make_unique<RandomizationSteadyStateDetection>(
                chain, std::move(rewards), std::move(initial), opt);
          });
    r.add("rr", std::string(RegenerativeRandomization::kDescription),
          [](const Ctmc& chain, std::vector<double> rewards,
             std::vector<double> initial, const SolverConfig& config)
              -> std::unique_ptr<TransientSolver> {
            RrOptions opt;
            opt.epsilon = config.epsilon;
            opt.rate_factor = config.rate_factor;
            opt.vmodel_step_cap = config.step_cap;
            if (config.step_cap >= 0) opt.schema_step_cap = config.step_cap;
            return std::make_unique<RegenerativeRandomization>(
                chain, std::move(rewards), std::move(initial),
                regenerative_or_suggest(chain, config), opt);
          });
    r.add("rrl", std::string(RegenerativeRandomizationLaplace::kDescription),
          [](const Ctmc& chain, std::vector<double> rewards,
             std::vector<double> initial, const SolverConfig& config)
              -> std::unique_ptr<TransientSolver> {
            RrlOptions opt;
            opt.epsilon = config.epsilon;
            opt.rate_factor = config.rate_factor;
            if (config.step_cap >= 0) opt.schema_step_cap = config.step_cap;
            return std::make_unique<RegenerativeRandomizationLaplace>(
                chain, std::move(rewards), std::move(initial),
                regenerative_or_suggest(chain, config), opt);
          });
    r.add("krylov", std::string(KrylovSolver::kDescription),
          [](const Ctmc& chain, std::vector<double> rewards,
             std::vector<double> initial, const SolverConfig& config)
              -> std::unique_ptr<TransientSolver> {
            KrylovOptions opt;
            opt.epsilon = config.epsilon;
            opt.rate_factor = config.rate_factor;
            opt.step_cap = config.step_cap;
            return std::make_unique<KrylovSolver>(
                chain, std::move(rewards), std::move(initial), opt);
          });
    return true;
  }();
  (void)initialized;
  return reg;
}

}  // namespace

void register_solver(const std::string& name, SolverFactory factory,
                     std::string description) {
  RRL_EXPECTS(!name.empty());
  RRL_EXPECTS(factory != nullptr);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.add(name, std::move(description), std::move(factory));
}

bool solver_registered(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.count(name) != 0;
}

std::vector<std::string> registered_solvers() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.order;
}

std::string registered_solver_list() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return joined_names(reg);
}

std::string solver_description(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.descriptions.find(name);
  return it == reg.descriptions.end() ? std::string() : it->second;
}

std::unique_ptr<TransientSolver> make_solver(const std::string& name,
                                             const Ctmc& chain,
                                             std::vector<double> rewards,
                                             std::vector<double> initial,
                                             const SolverConfig& config) {
  SolverFactory factory;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
      throw contract_error("unknown solver '" + name + "' (registered: " +
                           joined_names(reg) + ")");
    }
    factory = it->second;
  }
  return factory(chain, std::move(rewards), std::move(initial), config);
}

}  // namespace rrl
