// The original regenerative randomization method (RR, the paper's refs
// [1, 2]): compute the schema, materialize the truncated transformed model
// V_{K,L}, and solve it by standard randomization with the remaining eps/2
// budget. Kept as a baseline: for large t the V-solve still needs ~Lambda*t
// randomization steps (of a much smaller chain), which is precisely the cost
// the paper's new variant (RRL) eliminates.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/regenerative.hpp"
#include "core/schema_cache.hpp"
#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

struct RrOptions {
  /// Total error bound (eps/2 model truncation + eps/2 V-solve).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate of X.
  double rate_factor = 1.0;
  /// Step caps forwarded to the schema computation and to the V-solve.
  std::int64_t schema_step_cap = 10'000'000;
  std::int64_t vmodel_step_cap = -1;
};

/// Regenerative randomization solver bound to one model + measure.
class RegenerativeRandomization : public TransientSolver {
 public:
  /// Preconditions: paper structure (S strongly connected, f_i absorbing);
  /// `regenerative_state` in S; rewards >= 0; `initial` a distribution with
  /// no mass on absorbing states.
  RegenerativeRandomization(const Ctmc& chain, std::vector<double> rewards,
                            std::vector<double> initial,
                            index_t regenerative_state, RrOptions options = {});

  /// Single-sourced method description (the registry registers built-ins
  /// with this exact text).
  static constexpr std::string_view kDescription =
      "regenerative randomization (explicit V_{K,L} model)";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rr";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// Amortized sweep: ONE schema computed at the largest grid time (valid
  /// for the smaller times because the truncation bound decreases in K for
  /// every fixed t) and ONE standard-randomization pass of V_{K,L} feeding
  /// all grid points — the dominant K model-sized DTMC steps and the
  /// ~Lambda*t_max V-steps are both paid once for the whole grid. The
  /// workspace buffers carry the V-model solve's vector iterates.
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  /// Compile → execute split: RR's compiled state is the memoized
  /// (t, eps)-keyed schemas; the V_{K,L} model is re-derived
  /// deterministically on import.
  void export_compiled(CompiledArtifact& artifact) const override;
  void import_compiled(const CompiledArtifact& artifact) override;

  [[nodiscard]] TransientValue trr(double t) const;
  [[nodiscard]] TransientValue mrr(double t) const;

  /// The schema computed for time horizon t (exposed for analysis).
  [[nodiscard]] RegenerativeSchema schema(double t) const;

  /// The compiled artifact (schema + materialized V-model) for horizon t
  /// at error budget eps, through the memo — the compile step of both
  /// solve_grid() and the batched V-solve below.
  [[nodiscard]] std::shared_ptr<const CompiledSchema> compiled_for(
      double t, double eps) const;

  [[nodiscard]] const RrOptions& options() const noexcept {
    return options_;
  }

  /// Hit/miss accounting of the memoized schema artifact (see
  /// core/schema_cache.hpp).
  [[nodiscard]] SchemaCacheStats schema_cache_stats() const {
    return schema_cache_.stats();
  }

 private:
  [[nodiscard]] RegenerativeSchema schema_with(double t, double eps) const;

  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  index_t regenerative_;
  RrOptions options_;
  // Memoized compiled artifact; internally synchronized, so the solver
  // remains shareable across concurrent solve_grid() calls.
  SchemaCache schema_cache_;
};

/// One scenario of a batched RR execute: a solver (typically shared by
/// many items), its request, and the output slots. On failure `*error` is
/// set and `*report` is untouched — the sweep engine's per-scenario
/// isolation.
struct RrBatchItem {
  const RegenerativeRandomization* solver = nullptr;
  const SolveRequest* request = nullptr;
  SolveReport* report = nullptr;
  std::string* error = nullptr;
};

/// Batched V-solve (the execute half of many RR scenarios at once).
///
/// Items are grouped by compiled schema — (solver, largest grid time,
/// effective epsilon) — and each distinct V_{K,L} is stepped through its
/// ~Lambda*t randomization pass exactly ONCE: every item of a group feeds
/// its Poisson mixtures from the group's single d(n) stream instead of
/// re-running the pass per scenario (measure and grid resolution do not
/// change the stream). When `pool` has idle workers, the distinct V-models
/// are additionally advanced TOGETHER: their gather matrices are
/// concatenated block-diagonally into one CSR whose combined stored-entry
/// count clears the pooled-SpMV floor even though each V-model alone is
/// far below it, and one row-partitioned stepping loop advances all the
/// V-vectors jointly (groups retire from the block as their passes
/// complete). Both layers are bit-identical to item-by-item
/// solver->solve_grid(): the schema/V-model compile is shared through the
/// same memo, the d(n) stream of a group is the stream each member would
/// have computed, and the block rows accumulate in exactly the per-model
/// kernel order.
///
/// `pool` may be null (serial per-group passes, still deduplicated).
void solve_rr_batch(std::span<const RrBatchItem> items, ThreadPool* pool);

}  // namespace rrl
