// The original regenerative randomization method (RR, the paper's refs
// [1, 2]): compute the schema, materialize the truncated transformed model
// V_{K,L}, and solve it by standard randomization with the remaining eps/2
// budget. Kept as a baseline: for large t the V-solve still needs ~Lambda*t
// randomization steps (of a much smaller chain), which is precisely the cost
// the paper's new variant (RRL) eliminates.
#pragma once

#include <vector>

#include "core/regenerative.hpp"
#include "core/schema_cache.hpp"
#include "core/solver.hpp"
#include "core/transient_solver.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

struct RrOptions {
  /// Total error bound (eps/2 model truncation + eps/2 V-solve).
  double epsilon = 1e-12;
  /// Lambda = rate_factor * max exit rate of X.
  double rate_factor = 1.0;
  /// Step caps forwarded to the schema computation and to the V-solve.
  std::int64_t schema_step_cap = 10'000'000;
  std::int64_t vmodel_step_cap = -1;
};

/// Regenerative randomization solver bound to one model + measure.
class RegenerativeRandomization : public TransientSolver {
 public:
  /// Preconditions: paper structure (S strongly connected, f_i absorbing);
  /// `regenerative_state` in S; rewards >= 0; `initial` a distribution with
  /// no mass on absorbing states.
  RegenerativeRandomization(const Ctmc& chain, std::vector<double> rewards,
                            std::vector<double> initial,
                            index_t regenerative_state, RrOptions options = {});

  /// Single-sourced method description (the registry registers built-ins
  /// with this exact text).
  static constexpr std::string_view kDescription =
      "regenerative randomization (explicit V_{K,L} model)";

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rr";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return kDescription;
  }

  /// Amortized sweep: ONE schema computed at the largest grid time (valid
  /// for the smaller times because the truncation bound decreases in K for
  /// every fixed t) and ONE standard-randomization pass of V_{K,L} feeding
  /// all grid points — the dominant K model-sized DTMC steps and the
  /// ~Lambda*t_max V-steps are both paid once for the whole grid. The
  /// workspace buffers carry the V-model solve's vector iterates.
  using TransientSolver::solve_grid;
  [[nodiscard]] SolveReport solve_grid(
      const SolveRequest& request, SolveWorkspace& workspace) const override;

  [[nodiscard]] TransientValue trr(double t) const;
  [[nodiscard]] TransientValue mrr(double t) const;

  /// The schema computed for time horizon t (exposed for analysis).
  [[nodiscard]] RegenerativeSchema schema(double t) const;

  /// Hit/miss accounting of the memoized schema artifact (see
  /// core/schema_cache.hpp).
  [[nodiscard]] SchemaCacheStats schema_cache_stats() const {
    return schema_cache_.stats();
  }

 private:
  [[nodiscard]] RegenerativeSchema schema_with(double t, double eps) const;

  const Ctmc& chain_;
  std::vector<double> rewards_;
  std::vector<double> initial_;
  index_t regenerative_;
  RrOptions options_;
  // Memoized compiled artifact; internally synchronized, so the solver
  // remains shareable across concurrent solve_grid() calls.
  SchemaCache schema_cache_;
};

}  // namespace rrl
