#include "laplace/epsilon.hpp"

#include <cmath>
#include <limits>

#include "support/contracts.hpp"

namespace rrl {

void EpsilonAccelerator::push(double partial_sum) {
  if (locked_) return;  // exact convergence already detected
  // Recurrence: eps_{j}^{(m)} = eps_{j-2}^{(m+1)} + 1/(eps_{j-1}^{(m+1)} -
  // eps_{j-1}^{(m)}), built along anti-diagonals. `diagonal_` holds the
  // previous anti-diagonal (for sums up to S_{n-1}); `scratch_` receives the
  // new one (for sums up to S_n).
  scratch_.assign(diagonal_.size() + 1, 0.0);
  scratch_[0] = partial_sum;
  for (std::size_t j = 1; j < scratch_.size(); ++j) {
    const double prev_jm1 = diagonal_[j - 1];
    const double prev_jm2 = j >= 2 ? diagonal_[j - 2] : 0.0;
    const double denom = scratch_[j - 1] - prev_jm1;
    if (denom == 0.0) {
      if ((j - 1) % 2 == 0) {
        // Two consecutive entries of an even (extrapolating) column agree
        // exactly: the limit has been reached. Lock the estimate; further
        // table-building would divide by zero.
        locked_ = scratch_[j - 1];
        diagonal_.swap(scratch_);
        return;
      }
      // Equal entries in an odd (auxiliary) column: apply the singular rule
      // by propagating the converged even-column value.
      scratch_[j] = prev_jm2;
      continue;
    }
    const double value = prev_jm2 + 1.0 / denom;
    scratch_[j] = std::isfinite(value)
                      ? value
                      : std::numeric_limits<double>::max();
  }
  diagonal_.swap(scratch_);
}

double EpsilonAccelerator::estimate() const {
  RRL_EXPECTS(!diagonal_.empty());
  if (locked_) return *locked_;
  // Even columns carry the extrapolated estimates; odd columns are
  // auxiliary. The last diagonal has entries eps_j for j = 0..n.
  const std::size_t n = diagonal_.size() - 1;
  const std::size_t top_even = n % 2 == 0 ? n : n - 1;
  return diagonal_[top_even];
}

}  // namespace rrl
