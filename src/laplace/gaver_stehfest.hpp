// Gaver-Stehfest Laplace inversion on the real axis.
//
// An *independent* inversion algorithm used to cross-check the Durbin/Crump
// method the paper adopts. Gaver-Stehfest needs only real abscissae
//   f(t) ~ (ln 2 / t) * sum_{k=1..n} zeta_k F(k ln 2 / t)
// with the classical Salzer weights zeta_k, but the weights alternate in
// sign and grow like 10^{n/2}: in double precision the usable order is
// n ~ 12-16, limiting the attainable accuracy to ~1e-8 — which is exactly
// why methods of the Durbin family (complex abscissae, epsilon
// acceleration) are preferred for the paper's eps = 1e-12 requirement. The
// ablation bench quantifies this trade-off.
#pragma once

#include <functional>

namespace rrl {

/// A Laplace transform evaluable on the positive real axis.
using RealLaplaceTransform = std::function<double(double)>;

struct GaverStehfestResult {
  double value = 0.0;
  int abscissae = 0;  ///< = order n (one real evaluation per term)
};

/// Invert `transform` at time t > 0 with Stehfest order n (even, typically
/// 10..16 in double precision). Preconditions: t > 0, n even, 2 <= n <= 20.
[[nodiscard]] GaverStehfestResult gaver_stehfest_invert(
    const RealLaplaceTransform& transform, double t, int order = 14);

/// The Salzer/Stehfest weight zeta_k for a given (k, order); exposed for
/// tests (weights must sum to 0 and alternate appropriately).
[[nodiscard]] double stehfest_weight(int k, int order);

}  // namespace rrl
