#include "laplace/crump.hpp"

#include <cmath>

#include "laplace/epsilon.hpp"
#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {

CrumpResult crump_invert(const LaplaceTransform& transform, double t,
                         const CrumpOptions& options) {
  RRL_EXPECTS(t > 0.0);
  RRL_EXPECTS(options.t_multiplier > 0.0);
  RRL_EXPECTS(options.damping > 0.0);
  RRL_EXPECTS(options.tolerance > 0.0);
  RRL_EXPECTS(options.max_terms > options.min_terms && options.min_terms >= 1);

  const double T = options.t_multiplier * t;
  const double a = options.damping;
  const double scale = std::exp(a * t) / T;

  CrumpResult result;
  result.period = T;
  result.damping = a;

  // k = 0 term: F(a)/2 (real by conjugate symmetry of real-valued f).
  CompensatedSum partial(transform(std::complex<double>(a, 0.0)).real() / 2.0);
  int abscissae = 1;

  // Incremental rotation e^{ik pi t / T}.
  const std::complex<double> step = std::polar(1.0, M_PI * t / T);
  std::complex<double> rotation(1.0, 0.0);

  EpsilonAccelerator accel;
  accel.push(scale * partial.value());
  double previous = accel.estimate();
  int hits = 0;

  for (int k = 1; k <= options.max_terms; ++k) {
    rotation *= step;
    const std::complex<double> s(a, static_cast<double>(k) * M_PI / T);
    partial.add((transform(s) * rotation).real());
    ++abscissae;
    accel.push(scale * partial.value());
    const double current = accel.estimate();
    const double delta = std::abs(current - previous);
    previous = current;
    result.final_delta = delta;
    if (accel.count() >= options.min_terms && delta <= options.tolerance) {
      if (++hits >= options.required_hits) {
        result.converged = true;
        break;
      }
    } else {
      hits = 0;
    }
  }
  result.abscissae = abscissae;
  result.value = previous;
  return result;
}

}  // namespace rrl
