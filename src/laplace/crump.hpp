// Numerical Laplace transform inversion by Durbin's trigonometric series
// with epsilon-algorithm acceleration (Crump's method, paper Section 2.2).
//
// Durbin's approximation on the interval [0, 2T) with damping a:
//   f_a(t) = (e^{at}/T) [ F(a)/2 + sum_{k>=1} Re( F(a + ik pi/T) e^{ik pi t/T} ) ].
// The paper uses T = m*t with m in [1, 16]; m = 1 reproduces Crump's fast but
// occasionally unstable choice, m = 16 Piessens-Huysmans' very stable but
// slow one, and the paper settles on m = 8. Partial sums are accelerated with
// Wynn's epsilon algorithm; convergence is declared when consecutive
// accelerated values differ by at most `tolerance` (the paper's eps/100 rule,
// leaving a factor 25 of margin for the true truncation error).
#pragma once

#include <complex>
#include <functional>

namespace rrl {

/// A Laplace transform evaluable at complex abscissae with Re(s) > 0.
using LaplaceTransform =
    std::function<std::complex<double>(std::complex<double>)>;

struct CrumpOptions {
  /// T = t_multiplier * t. The paper experiments with 1..16 and uses 8.
  double t_multiplier = 8.0;
  /// Damping parameter a (choose with damping_for_bounded /
  /// damping_for_time_linear so the discretization error is bounded).
  double damping = 0.0;
  /// Convergence tolerance on consecutive accelerated values (absolute).
  double tolerance = 1e-14;
  /// Number of consecutive within-tolerance differences required (1
  /// reproduces the paper; 2 adds cheap robustness).
  int required_hits = 1;
  /// Hard cap on series terms (abscissae); exceeded => converged == false.
  int max_terms = 20000;
  /// Minimum number of terms before convergence may be declared (lets the
  /// epsilon table build up).
  int min_terms = 8;
};

struct CrumpResult {
  double value = 0.0;      ///< f_a(t) estimate
  int abscissae = 0;       ///< transform evaluations used (k = 0..n)
  bool converged = false;  ///< tolerance met before max_terms
  double final_delta = 0.0;  ///< last |accelerated difference|
  double period = 0.0;       ///< T used
  double damping = 0.0;      ///< a used
};

/// Invert `transform` at time t > 0. The caller provides the damping through
/// CrumpOptions (see error_control.hpp); tolerance is interpreted on the
/// scale of f(t).
[[nodiscard]] CrumpResult crump_invert(const LaplaceTransform& transform,
                                       double t, const CrumpOptions& options);

}  // namespace rrl
