#include "laplace/gaver_stehfest.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace rrl {

double stehfest_weight(int k, int order) {
  RRL_EXPECTS(order >= 2 && order <= 20 && order % 2 == 0);
  RRL_EXPECTS(k >= 1 && k <= order);
  const int half = order / 2;
  // zeta_k = (-1)^{k + n/2} * sum_{j = floor((k+1)/2)}^{min(k, n/2)}
  //          j^{n/2} (2j)! / ((n/2 - j)! j! (j-1)! (k-j)! (2j-k)!)
  // Evaluated in long double through log-factorials to postpone overflow.
  long double sum = 0.0L;
  const int j_lo = (k + 1) / 2;
  const int j_hi = std::min(k, half);
  auto lfact = [](int m) {
    // lgammal_r, not std::lgamma: the latter stores the gamma sign in the
    // global signgam (a data race under concurrent sweep workers). Not on
    // Darwin: its libm ships lgamma_r but no long double variant.
#if defined(_GNU_SOURCE) || defined(__USE_MISC)
    int sign = 0;
    return lgammal_r(static_cast<long double>(m) + 1.0L, &sign);
#else
    return std::lgamma(static_cast<long double>(m) + 1.0L);
#endif
  };
  for (int j = j_lo; j <= j_hi; ++j) {
    const long double log_term =
        static_cast<long double>(half) *
            std::log(static_cast<long double>(j)) +
        lfact(2 * j) - lfact(half - j) - lfact(j) - lfact(j - 1) -
        lfact(k - j) - lfact(2 * j - k);
    sum += std::exp(log_term);
  }
  const bool negative = (k + half) % 2 != 0;
  return static_cast<double>(negative ? -sum : sum);
}

GaverStehfestResult gaver_stehfest_invert(
    const RealLaplaceTransform& transform, double t, int order) {
  RRL_EXPECTS(t > 0.0);
  RRL_EXPECTS(order >= 2 && order <= 20 && order % 2 == 0);
  const double ln2_over_t = M_LN2 / t;
  // Accumulate in long double: the weights alternate with magnitudes up to
  // ~10^{order/2}, so cancellation is the algorithm's intrinsic limit.
  long double acc = 0.0L;
  for (int k = 1; k <= order; ++k) {
    acc += static_cast<long double>(stehfest_weight(k, order)) *
           static_cast<long double>(
               transform(static_cast<double>(k) * ln2_over_t));
  }
  GaverStehfestResult result;
  result.value = static_cast<double>(acc * ln2_over_t);
  result.abscissae = order;
  return result;
}

}  // namespace rrl
