// Damping-parameter selection for Durbin-series Laplace inversion
// (paper Section 2.2).
//
// Durbin's approximation with period 2T and damping a has discretization
// error f*(t) = sum_{k>=1} f(2kT + t) e^{-2akT}. The paper bounds it using an
// a-priori bound on f and solves for the damping parameter a that makes the
// bound equal eps/4:
//   * |f| <= M            (TRR: M = r_max)       => geometric series bound;
//   * |f(u)| <= M u       (C(t) = t MRR: M = r_max) => Eq. (2), which the
//     paper notes suffers severe cancellation and patches with a Taylor
//     branch. We use the algebraically equivalent conjugate form
//     x = eps / (2 (B + sqrt(B^2 - C eps))), which is cancellation-free for
//     all parameter values and agrees with Eq. (2) and its Taylor branch.
#pragma once

namespace rrl {

/// Damping parameter for a transform of a function bounded by `bound`
/// (|f| <= bound): solves bound * e^{-2aT}/(1 - e^{-2aT}) = eps/4, i.e.
/// a = (1/2T) log(1 + 4*bound/eps)  [paper, TRR case].
/// Preconditions: bound >= 0, eps > 0, period_T > 0.
[[nodiscard]] double damping_for_bounded(double bound, double eps,
                                         double period_T);

/// Damping parameter for a transform of a function with a linear-in-time
/// bound (|f(u)| <= bound * u): solves the paper's Eq. (2) for
/// x = e^{-2aT} in the cancellation-free conjugate form and returns
/// a = log(1/x)/(2T). The truncated time-domain error is then <= eps/4.
/// Preconditions: bound > 0, eps > 0, t > 0, period_T > 0.
[[nodiscard]] double damping_for_time_linear(double bound, double eps,
                                             double t, double period_T);

}  // namespace rrl
