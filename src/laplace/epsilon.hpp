// Wynn's epsilon algorithm for accelerating slowly convergent series.
//
// Crump's Laplace-inversion method (paper Section 2.2, ref [4]) evaluates a
// trigonometric series whose terms decay slowly; the epsilon algorithm turns
// the sequence of partial sums S_0, S_1, ... into the even-column diagonal of
// the epsilon table, which converges dramatically faster for the rational
// transforms arising from the truncated transformed model.
#pragma once

#include <optional>
#include <vector>

namespace rrl {

/// Streaming Wynn epsilon-table: push partial sums, read the accelerated
/// estimate. Maintains the most recent table anti-diagonal in O(n) memory.
class EpsilonAccelerator {
 public:
  /// Append the next partial sum S_n and update the table diagonal.
  void push(double partial_sum);

  /// Number of partial sums seen so far.
  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(diagonal_.size());
  }

  /// Current accelerated estimate: the highest even-column entry of the last
  /// diagonal (falls back to the raw partial sum before acceleration kicks
  /// in). Precondition: count() >= 1.
  [[nodiscard]] double estimate() const;

 private:
  std::vector<double> diagonal_;  // diagonal_[j] = eps_j^{(n-j)}
  std::vector<double> scratch_;
  std::optional<double> locked_;  // set on exact mid-stream convergence
};

}  // namespace rrl
