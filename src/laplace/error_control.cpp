#include "laplace/error_control.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace rrl {

double damping_for_bounded(double bound, double eps, double period_T) {
  RRL_EXPECTS(bound >= 0.0 && eps > 0.0 && period_T > 0.0);
  // bound * x / (1 - x) = eps/4 with x = e^{-2aT}
  //   => x = 1 / (1 + 4*bound/eps)  =>  a = log(1 + 4*bound/eps) / (2T).
  return std::log1p(4.0 * bound / eps) / (2.0 * period_T);
}

double damping_for_time_linear(double bound, double eps, double t,
                               double period_T) {
  RRL_EXPECTS(bound > 0.0 && eps > 0.0 && t > 0.0 && period_T > 0.0);
  // Discretization error of C (with |C(u)| <= M u, M = bound):
  //   sum_{k>=1} M (2kT + t) x^k = M ((t + 2T) x - t x^2) / (1-x)^2,
  // set equal to eps/4 and solve the quadratic
  //   (eps/4 + M t) x^2 - (eps/2 + (t + 2T) M) x + eps/4 = 0
  // for the root in (0, 1). The paper's Eq. (2) writes the explicit root and
  // patches its catastrophic cancellation with a Taylor branch for small
  //   y = sqrt((eps/4 + t M)/(eps/2 + (t+2T) M));
  // multiplying by the conjugate gives the equivalent, uniformly stable
  //   x = eps / (2 (B + sqrt(B^2 - C eps))),
  // B = eps/2 + (t + 2T) M, C = eps/4 + t M.
  const double M = bound;
  const double B = eps / 2.0 + (t + 2.0 * period_T) * M;
  const double C = eps / 4.0 + t * M;
  const double disc = B * B - C * eps;
  RRL_ENSURES(disc >= 0.0);  // B^2 >= C*eps holds for all valid inputs
  const double x = eps / (2.0 * (B + std::sqrt(disc)));
  RRL_ENSURES(x > 0.0 && x < 1.0);
  return std::log(1.0 / x) / (2.0 * period_T);
}

}  // namespace rrl
