#include "models/simple.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "support/contracts.hpp"

namespace rrl {

double TwoStateModel::unavailability(double t) const {
  const double s = lambda + mu;
  return lambda / s * (1.0 - std::exp(-s * t));
}

double TwoStateModel::interval_unavailability(double t) const {
  RRL_EXPECTS(t > 0.0);
  const double s = lambda + mu;
  // Integral of UA over [0,t] = (lambda/s) * (t - (1 - e^{-st})/s).
  return lambda / s * (1.0 - (1.0 - std::exp(-s * t)) / (s * t));
}

TwoStateModel make_two_state(double lambda, double mu) {
  RRL_EXPECTS(lambda > 0.0 && mu > 0.0);
  TwoStateModel m;
  m.lambda = lambda;
  m.mu = mu;
  m.chain = Ctmc::from_transitions(2, {{0, 1, lambda}, {1, 0, mu}});
  return m;
}

double ErlangModel::unreliability(double t) const {
  // 1 - sum_{k<n} e^{-lt}(lt)^k/k!; stages are small in tests so the direct
  // sum is exact enough.
  const double x = lambda * t;
  double term = std::exp(-x);
  double cum = 0.0;
  for (int k = 0; k < stages; ++k) {
    cum += term;
    term *= x / static_cast<double>(k + 1);
  }
  return 1.0 - cum;
}

double ErlangModel::interval_unreliability(double t) const {
  RRL_EXPECTS(t > 0.0);
  // (1/t) Int_0^t UR = 1 - (1/(lambda t)) sum_{k<n} P[N(lambda t) >= k+1].
  const double x = lambda * t;
  // P[N >= j] computed by downward recursion on the pmf.
  double pmf = std::exp(-x);  // P[N = 0]
  double cdf = pmf;           // P[N <= 0]
  double acc = 0.0;
  for (int k = 0; k < stages; ++k) {
    // P[N >= k+1] = 1 - P[N <= k]
    acc += 1.0 - cdf;
    pmf *= x / static_cast<double>(k + 1);
    cdf += pmf;
  }
  return 1.0 - acc / x;
}

ErlangModel make_erlang(int stages, double lambda) {
  RRL_EXPECTS(stages >= 1 && lambda > 0.0);
  ErlangModel m;
  m.stages = stages;
  m.lambda = lambda;
  std::vector<Triplet> rates;
  for (int i = 0; i < stages; ++i) {
    rates.push_back({i, i + 1, lambda});
  }
  m.chain = Ctmc::from_transitions(stages + 1, std::move(rates));
  return m;
}

Ctmc make_birth_death(const std::vector<double>& birth,
                      const std::vector<double>& death) {
  RRL_EXPECTS(!birth.empty());
  RRL_EXPECTS(birth.size() == death.size());
  const index_t n = static_cast<index_t>(birth.size()) + 1;
  std::vector<Triplet> rates;
  for (index_t i = 0; i + 1 < n; ++i) {
    rates.push_back({i, i + 1, birth[static_cast<std::size_t>(i)]});
    rates.push_back({i + 1, i, death[static_cast<std::size_t>(i)]});
  }
  return Ctmc::from_transitions(n, std::move(rates));
}

double Mm1kModel::stationary(int i) const {
  RRL_EXPECTS(i >= 0 && i <= capacity);
  const double rho = lambda / mu;
  if (rho == 1.0) return 1.0 / static_cast<double>(capacity + 1);
  const double norm =
      (1.0 - std::pow(rho, capacity + 1)) / (1.0 - rho);
  return std::pow(rho, i) / norm;
}

double Mm1kModel::stationary_mean_length() const {
  double mean = 0.0;
  for (int i = 0; i <= capacity; ++i) {
    mean += static_cast<double>(i) * stationary(i);
  }
  return mean;
}

Mm1kModel make_mm1k(double lambda, double mu, int capacity) {
  RRL_EXPECTS(lambda > 0.0 && mu > 0.0 && capacity >= 1);
  Mm1kModel m;
  m.lambda = lambda;
  m.mu = mu;
  m.capacity = capacity;
  m.chain = make_birth_death(std::vector<double>(capacity, lambda),
                             std::vector<double>(capacity, mu));
  return m;
}

Ctmc make_cycle(int length, double rate) {
  RRL_EXPECTS(length >= 2 && rate > 0.0);
  std::vector<Triplet> rates;
  for (int i = 0; i < length; ++i) {
    rates.push_back({i, (i + 1) % length, rate});
  }
  return Ctmc::from_transitions(length, std::move(rates));
}

Ctmc make_random_ctmc(const RandomCtmcOptions& options) {
  RRL_EXPECTS(options.num_states >= 2);
  RRL_EXPECTS(options.num_absorbing >= 0 &&
              options.num_absorbing < options.num_states - 1);
  const index_t n_trans = options.num_states - options.num_absorbing;
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> rate_dist(options.min_rate,
                                                   options.max_rate);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<Triplet> rates;
  // Random Hamiltonian cycle over the transient part: guarantees one SCC.
  std::vector<index_t> order(static_cast<std::size_t>(n_trans));
  for (index_t i = 0; i < n_trans; ++i) order[static_cast<std::size_t>(i)] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (index_t i = 0; i < n_trans; ++i) {
    const index_t from = order[static_cast<std::size_t>(i)];
    const index_t to =
        order[static_cast<std::size_t>((i + 1) % n_trans)];
    rates.push_back({from, to, rate_dist(rng)});
  }
  // Extra random edges within the transient part.
  for (index_t i = 0; i < n_trans; ++i) {
    for (index_t j = 0; j < n_trans; ++j) {
      if (i == j) continue;
      if (coin(rng) < options.extra_edge_prob) {
        rates.push_back({i, j, rate_dist(rng)});
      }
    }
  }
  // Every transient state must have a path to each absorbing state; give a
  // random subset direct arcs and guarantee at least one.
  for (index_t a = 0; a < options.num_absorbing; ++a) {
    const index_t f = n_trans + a;
    bool any = false;
    for (index_t i = 0; i < n_trans; ++i) {
      if (coin(rng) < options.extra_edge_prob) {
        rates.push_back({i, f, options.absorb_rate_scale * rate_dist(rng)});
        any = true;
      }
    }
    if (!any) {
      const index_t i =
          static_cast<index_t>(rng() % static_cast<std::uint64_t>(n_trans));
      rates.push_back({i, f, options.absorb_rate_scale * rate_dist(rng)});
    }
  }
  return Ctmc::from_transitions(options.num_states, std::move(rates));
}

}  // namespace rrl
