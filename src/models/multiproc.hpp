// Fault-tolerant multiprocessor dependability model with imperfect
// coverage — the second classic workload family of the regenerative-
// randomization literature (repairable fault-tolerant systems, cf. the
// paper's introduction and refs. [1, 7]).
//
// The system has P processors, M shared-memory modules and B buses. It is
// operational while at least min_procs processors, min_mems memories and
// one bus are up. Component failures are *covered* with probability
// `coverage` (the component is isolated and the system keeps running
// degraded); an uncovered failure crashes the system immediately — the
// dominant failure path of well-maintained systems. A single repairman
// fixes one component at a time with processor > memory > bus priority;
// a crashed or exhausted system is restored by a global repair (rate mu_g)
// in the availability variant and absorbs in the reliability variant.
//
// The state is (failed processors, failed memories, failed buses) plus a
// distinguished failed state; exhaustion (too few resources left) and
// uncovered failures both lead to it.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/ctmc.hpp"

namespace rrl {

struct MultiprocParams {
  int processors = 8;       ///< P
  int memories = 4;         ///< M
  int buses = 2;            ///< B
  int min_procs = 2;        ///< operational threshold
  int min_mems = 1;
  double lambda_p = 5e-5;   ///< processor failure rate (1/h)
  double lambda_m = 2e-5;   ///< memory failure rate
  double lambda_b = 1e-5;   ///< bus failure rate
  double coverage = 0.995;  ///< P[failure is covered]
  double mu_p = 0.5;        ///< repair rates (single repairman)
  double mu_m = 0.5;
  double mu_b = 0.5;
  double mu_g = 0.2;        ///< global repair (availability variant)
};

struct MultiprocState {
  std::int16_t fp = 0;   ///< failed processors
  std::int16_t fm = 0;   ///< failed memories
  std::int16_t fb = 0;   ///< failed buses
  bool failed = false;   ///< system crashed / exhausted

  friend bool operator==(const MultiprocState&,
                         const MultiprocState&) = default;
};

struct MultiprocStateHash {
  std::size_t operator()(const MultiprocState& s) const noexcept;
};

struct MultiprocModel {
  Ctmc chain;
  std::vector<MultiprocState> states;
  index_t initial_state = 0;
  index_t failed_state = 0;
  MultiprocParams params;
  bool absorbing_failure = false;

  /// Reward 1 on the failed state (UA/UR measure).
  [[nodiscard]] std::vector<double> failure_rewards() const;

  /// Performability reward: delivered compute capacity, (P - fp)/P for
  /// operational states, 0 when failed.
  [[nodiscard]] std::vector<double> capacity_rewards() const;

  [[nodiscard]] std::vector<double> initial_distribution() const;
};

/// Availability variant (global repair from the failed state; irreducible).
[[nodiscard]] MultiprocModel build_multiproc_availability(
    const MultiprocParams& params);

/// Reliability variant (failed state absorbing).
[[nodiscard]] MultiprocModel build_multiproc_reliability(
    const MultiprocParams& params);

}  // namespace rrl
