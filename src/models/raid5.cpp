// Event/rate table of the approximated RAID-5 model. States below are
// operational unless marked F. G = groups, N = disks per group, NU = number
// of unavailable disk slots tracked by counts (nfd + nwd + ndr).
//
// NFC == 0 (no controller down; invariant NWD == 0):
//  E1 safe disk failure          rate N*(G-NU)*lambda_d
//       -> nfd+1; aligned' = (NU == 0)   [pessimistic: a failure outside the
//          affected groups is assumed to land in a different string]
//  E2 collision disk failure     rate (N-1)*(ndr*lambda_s + nfd*lambda_d)
//       -> F   [a partner of a degraded group fails: two unavailable disks
//          in one group; partners of reconstructing groups are overloaded]
//  E3a aligned-controller fail   rate lambda_c          (only if NU>=1, AL)
//       -> nfc=1, reconstructions stall: nwd' = ndr, ndr' = 0
//  E3b other-controller fail     rate (N-1)*lambda_c if NU>=1 and AL,
//                                rate N*lambda_c     if NU>=1 and !AL -> F
//       [the new string intersects the group of every unavailable disk]
//  E3c any-controller fail       rate N*lambda_c         (if NU == 0)
//       -> nfc=1 (trivially aligned)
//  E4 reconstruction success     rate ndr*mu_drc*p_r
//       -> ndr-1; aligned' = aligned || (NU-1 <= 1)   [paper's rule:
//          unaligned persists while >= 2 unavailable disks remain]
//  E5 reconstruction failure     rate ndr*mu_drc*(1-p_r) -> F
//  E6 repairman disk replace     rate mu_drp   (if nfd>=1 and nsd>=1)
//       -> nfd-1, nsd-1, ndr+1   [group has no other unavailable disk, so
//          reconstruction starts immediately]
//  E7 direct disk repair         rate max(0, nfd-nsd)*mu_sr
//       -> nfd-1, ndr+1          [failed disks beyond the spare pool]
//
// NFC == 1 (whole string unavailable; invariants AL, NDR == 0):
//  E8  disk fail off-string      rate (N-1)*G*lambda_d -> F
//       [every group already has its string disk unavailable; disks behind
//        the failed controller are powered off and do not fail]
//  E9  second controller fail    rate (N-1)*lambda_c -> F
//  E10 controller replace        rate mu_crp  (if nsc >= 1)
//       -> nfc=0, nsc-1, ndr' = G - nfd, nwd' = 0
//       [the string's healthy disks and the waiting replaced disks all start
//        reconstruction, per the paper: "the reconstruction process also
//        starts when a disk ... becomes available due to the replacement of
//        the failed controller"]
//  E11 controller direct repair  rate mu_sr   (if nsc == 0); same effect
//  E12 repairman disk replace    rate mu_drp  (if nsc == 0, nfd>=1, nsd>=1)
//       -> nfd-1, nsd-1, nwd+1   [replaced disk sits behind the failed
//          controller; repairman is free because no ctrl spare is available]
//  E13 direct disk repair        rate max(0, nfd-nsd)*mu_sr -> nfd-1, nwd+1
//
// Always (operational states):
//  E14 disk spare replenishment  rate (D_H - nsd)*mu_sr -> nsd+1
//  E15 ctrl spare replenishment  rate (C_H - nsc)*mu_sr -> nsc+1
//
// Failed state:
//  E16 global repair             rate mu_g -> initial state
//      (availability model only; the reliability model absorbs here)
#include "models/raid5.hpp"

#include <sstream>

#include "markov/builder.hpp"
#include "support/contracts.hpp"

namespace rrl {

std::string Raid5State::to_string() const {
  std::ostringstream os;
  if (failed) return "FAILED";
  os << "nfd=" << nfd << " nwd=" << nwd << " ndr=" << ndr << " nsd=" << nsd
     << " nfc=" << nfc << " nsc=" << nsc << " al=" << (aligned ? 'Y' : 'N');
  return os.str();
}

std::size_t Raid5StateHash::operator()(const Raid5State& s) const noexcept {
  // Pack the small counters into one 64-bit word; each fits in 8 bits.
  std::uint64_t key = 0;
  key = key << 8 | static_cast<std::uint8_t>(s.nfd);
  key = key << 8 | static_cast<std::uint8_t>(s.nwd);
  key = key << 8 | static_cast<std::uint8_t>(s.ndr);
  key = key << 8 | static_cast<std::uint8_t>(s.nsd);
  key = key << 8 | static_cast<std::uint8_t>(s.nfc);
  key = key << 8 | static_cast<std::uint8_t>(s.nsc);
  key = key << 1 | static_cast<std::uint64_t>(s.aligned);
  key = key << 1 | static_cast<std::uint64_t>(s.failed);
  return std::hash<std::uint64_t>{}(key);
}

namespace {

Raid5State initial_state(const Raid5Params& p) {
  Raid5State s;
  s.nsd = static_cast<std::int16_t>(p.disk_spares);
  s.nsc = static_cast<std::int16_t>(p.ctrl_spares);
  return s;
}

Raid5State failed_state() {
  Raid5State s;
  s.failed = true;
  return s;
}

/// Canonicalize the alignment flag: <= 1 unavailable disk is trivially
/// aligned, and a down controller implies alignment by reachability.
Raid5State canonical(Raid5State s) {
  if (s.unavailable() <= 1 || s.nfc >= 1) s.aligned = true;
  return s;
}

Raid5Model build(const Raid5Params& p, bool absorbing_failure) {
  RRL_EXPECTS(p.groups >= 1 && p.disks_per_group >= 2);
  RRL_EXPECTS(p.ctrl_spares >= 0 && p.disk_spares >= 0);
  RRL_EXPECTS(p.p_r >= 0.0 && p.p_r <= 1.0);
  const int G = p.groups;
  const int N = p.disks_per_group;
  const Raid5State init = initial_state(p);

  using Builder = StateSpaceBuilder<Raid5State, Raid5StateHash>;
  const auto expand = [&](const Raid5State& s, const Builder::EmitFn& emit) {
    if (s.failed) {
      if (!absorbing_failure) emit(init, p.mu_g);  // E16
      return;
    }
    const int nu = s.unavailable();

    if (s.nfc == 0) {
      // E1: safe disk failure (lands in a group with no unavailable disk).
      if (nu < G) {
        Raid5State n = s;
        n.nfd = static_cast<std::int16_t>(n.nfd + 1);
        n.aligned = (nu == 0);
        emit(canonical(n), static_cast<double>(N * (G - nu)) * p.lambda_d);
      }
      // E2: collision failure of a partner disk -> system failure.
      {
        const double rate =
            static_cast<double>(N - 1) *
            (static_cast<double>(s.ndr) * p.lambda_s +
             static_cast<double>(s.nfd) * p.lambda_d);
        if (rate > 0.0) emit(failed_state(), rate);
      }
      // E3: controller failures.
      if (nu == 0) {
        Raid5State n = s;  // E3c
        n.nfc = 1;
        emit(canonical(n), static_cast<double>(N) * p.lambda_c);
      } else if (s.aligned) {
        Raid5State n = s;  // E3a: the aligned string's controller fails
        n.nfc = 1;
        n.nwd = n.ndr;  // reconstructions stall behind the dead controller
        n.ndr = 0;
        emit(canonical(n), p.lambda_c);
        emit(failed_state(), static_cast<double>(N - 1) * p.lambda_c);  // E3b
      } else {
        emit(failed_state(), static_cast<double>(N) * p.lambda_c);  // E3b
      }
      // E4/E5: reconstruction completion.
      if (s.ndr >= 1) {
        const double total = static_cast<double>(s.ndr) * p.mu_drc;
        Raid5State n = s;
        n.ndr = static_cast<std::int16_t>(n.ndr - 1);
        emit(canonical(n), total * p.p_r);
        if (p.p_r < 1.0) emit(failed_state(), total * (1.0 - p.p_r));
      }
      // E6: repairman installs a disk spare (no controller work pending).
      if (s.nfd >= 1 && s.nsd >= 1) {
        Raid5State n = s;
        n.nfd = static_cast<std::int16_t>(n.nfd - 1);
        n.nsd = static_cast<std::int16_t>(n.nsd - 1);
        n.ndr = static_cast<std::int16_t>(n.ndr + 1);
        emit(canonical(n), p.mu_drp);
      }
      // E7: direct repair of failed disks beyond the spare pool.
      if (s.nfd > s.nsd) {
        Raid5State n = s;
        n.nfd = static_cast<std::int16_t>(n.nfd - 1);
        n.ndr = static_cast<std::int16_t>(n.ndr + 1);
        emit(canonical(n), static_cast<double>(s.nfd - s.nsd) * p.mu_sr);
      }
    } else {  // nfc == 1
      // E8: any available disk outside the failed string collides.
      emit(failed_state(), static_cast<double>((N - 1) * G) * p.lambda_d);
      // E9: losing a second controller is fatal.
      emit(failed_state(), static_cast<double>(N - 1) * p.lambda_c);
      // E10/E11: controller replacement or direct repair; both restart the
      // whole string's reconstruction.
      {
        Raid5State n = s;
        n.nfc = 0;
        n.nwd = 0;
        n.ndr = static_cast<std::int16_t>(G - s.nfd);
        if (s.nsc >= 1) {
          Raid5State via_spare = n;
          via_spare.nsc = static_cast<std::int16_t>(via_spare.nsc - 1);
          emit(canonical(via_spare), p.mu_crp);  // E10
        } else {
          emit(canonical(n), p.mu_sr);  // E11
        }
      }
      // E12: repairman free (no controller spare) installs disk spares.
      if (s.nsc == 0 && s.nfd >= 1 && s.nsd >= 1) {
        Raid5State n = s;
        n.nfd = static_cast<std::int16_t>(n.nfd - 1);
        n.nsd = static_cast<std::int16_t>(n.nsd - 1);
        n.nwd = static_cast<std::int16_t>(n.nwd + 1);
        emit(canonical(n), p.mu_drp);
      }
      // E13: direct repair of failed disks beyond the spare pool.
      if (s.nfd > s.nsd) {
        Raid5State n = s;
        n.nfd = static_cast<std::int16_t>(n.nfd - 1);
        n.nwd = static_cast<std::int16_t>(n.nwd + 1);
        emit(canonical(n), static_cast<double>(s.nfd - s.nsd) * p.mu_sr);
      }
    }

    // E14/E15: spare replenishment (unlimited repairmen).
    if (s.nsd < p.disk_spares) {
      Raid5State n = s;
      n.nsd = static_cast<std::int16_t>(n.nsd + 1);
      emit(canonical(n),
           static_cast<double>(p.disk_spares - s.nsd) * p.mu_sr);
    }
    if (s.nsc < p.ctrl_spares) {
      Raid5State n = s;
      n.nsc = static_cast<std::int16_t>(n.nsc + 1);
      emit(canonical(n),
           static_cast<double>(p.ctrl_spares - s.nsc) * p.mu_sr);
    }
  };

  auto result = Builder::explore({init, failed_state()}, expand);

  Raid5Model model;
  model.params = p;
  model.absorbing_failure = absorbing_failure;
  model.initial_state = result.index_of.at(init);
  model.failed_state = result.index_of.at(failed_state());
  model.chain = std::move(result.chain);
  model.states = std::move(result.states);
  return model;
}

}  // namespace

std::vector<double> Raid5Model::failure_rewards() const {
  std::vector<double> r(static_cast<std::size_t>(chain.num_states()), 0.0);
  r[static_cast<std::size_t>(failed_state)] = 1.0;
  return r;
}

std::vector<double> Raid5Model::throughput_rewards(
    double degraded_throughput) const {
  RRL_EXPECTS(degraded_throughput >= 0.0 && degraded_throughput <= 1.0);
  const double G = static_cast<double>(params.groups);
  std::vector<double> r(static_cast<std::size_t>(chain.num_states()), 0.0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    const Raid5State& s = states[i];
    if (s.failed) continue;
    // A group is degraded when one of its disks is unavailable; with a
    // controller down every group is degraded.
    const double degraded =
        s.nfc >= 1 ? G : static_cast<double>(s.unavailable());
    r[i] = (G - degraded + degraded_throughput * degraded) / G;
  }
  return r;
}

std::vector<double> Raid5Model::initial_distribution() const {
  std::vector<double> alpha(static_cast<std::size_t>(chain.num_states()),
                            0.0);
  alpha[static_cast<std::size_t>(initial_state)] = 1.0;
  return alpha;
}

Raid5Model build_raid5_availability(const Raid5Params& params) {
  return build(params, /*absorbing_failure=*/false);
}

Raid5Model build_raid5_reliability(const Raid5Params& params) {
  return build(params, /*absorbing_failure=*/true);
}

}  // namespace rrl
