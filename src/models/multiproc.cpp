#include "models/multiproc.hpp"

#include "markov/builder.hpp"
#include "support/contracts.hpp"

namespace rrl {

std::size_t MultiprocStateHash::operator()(
    const MultiprocState& s) const noexcept {
  std::uint64_t key = 0;
  key = key << 16 | static_cast<std::uint16_t>(s.fp);
  key = key << 16 | static_cast<std::uint16_t>(s.fm);
  key = key << 16 | static_cast<std::uint16_t>(s.fb);
  key = key << 1 | static_cast<std::uint64_t>(s.failed);
  return std::hash<std::uint64_t>{}(key);
}

namespace {

MultiprocModel build(const MultiprocParams& p, bool absorbing_failure) {
  RRL_EXPECTS(p.processors >= 1 && p.memories >= 1 && p.buses >= 1);
  RRL_EXPECTS(p.min_procs >= 1 && p.min_procs <= p.processors);
  RRL_EXPECTS(p.min_mems >= 1 && p.min_mems <= p.memories);
  RRL_EXPECTS(p.coverage >= 0.0 && p.coverage <= 1.0);

  const MultiprocState init{};
  const MultiprocState crashed{0, 0, 0, true};

  using Builder = StateSpaceBuilder<MultiprocState, MultiprocStateHash>;
  const auto expand = [&](const MultiprocState& s,
                          const Builder::EmitFn& emit) {
    if (s.failed) {
      if (!absorbing_failure) emit(init, p.mu_g);
      return;
    }
    const int up_p = p.processors - s.fp;
    const int up_m = p.memories - s.fm;
    const int up_b = p.buses - s.fb;

    // Component failures. A covered failure that would drop a resource
    // below its operational threshold is also a system failure (no spare
    // capacity left to reconfigure into).
    auto emit_failure = [&](double rate, MultiprocState next,
                            bool still_operational) {
      if (rate <= 0.0) return;
      // Uncovered fraction always crashes; covered fraction crashes too
      // when the resource is exhausted.
      if (still_operational) {
        emit(next, rate * p.coverage);
        if (p.coverage < 1.0) emit(crashed, rate * (1.0 - p.coverage));
      } else {
        emit(crashed, rate);
      }
    };
    {
      MultiprocState n = s;
      n.fp = static_cast<std::int16_t>(n.fp + 1);
      emit_failure(static_cast<double>(up_p) * p.lambda_p, n,
                   up_p - 1 >= p.min_procs);
    }
    {
      MultiprocState n = s;
      n.fm = static_cast<std::int16_t>(n.fm + 1);
      emit_failure(static_cast<double>(up_m) * p.lambda_m, n,
                   up_m - 1 >= p.min_mems);
    }
    {
      MultiprocState n = s;
      n.fb = static_cast<std::int16_t>(n.fb + 1);
      emit_failure(static_cast<double>(up_b) * p.lambda_b, n, up_b - 1 >= 1);
    }

    // Single repairman with processor > memory > bus priority.
    if (s.fp > 0) {
      MultiprocState n = s;
      n.fp = static_cast<std::int16_t>(n.fp - 1);
      emit(n, p.mu_p);
    } else if (s.fm > 0) {
      MultiprocState n = s;
      n.fm = static_cast<std::int16_t>(n.fm - 1);
      emit(n, p.mu_m);
    } else if (s.fb > 0) {
      MultiprocState n = s;
      n.fb = static_cast<std::int16_t>(n.fb - 1);
      emit(n, p.mu_b);
    }
  };

  auto result = Builder::explore({init, crashed}, expand);

  MultiprocModel model;
  model.params = p;
  model.absorbing_failure = absorbing_failure;
  model.initial_state = result.index_of.at(init);
  model.failed_state = result.index_of.at(crashed);
  model.chain = std::move(result.chain);
  model.states = std::move(result.states);
  return model;
}

}  // namespace

std::vector<double> MultiprocModel::failure_rewards() const {
  std::vector<double> r(static_cast<std::size_t>(chain.num_states()), 0.0);
  r[static_cast<std::size_t>(failed_state)] = 1.0;
  return r;
}

std::vector<double> MultiprocModel::capacity_rewards() const {
  std::vector<double> r(static_cast<std::size_t>(chain.num_states()), 0.0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].failed) continue;
    r[i] = static_cast<double>(params.processors - states[i].fp) /
           static_cast<double>(params.processors);
  }
  return r;
}

std::vector<double> MultiprocModel::initial_distribution() const {
  std::vector<double> alpha(static_cast<std::size_t>(chain.num_states()),
                            0.0);
  alpha[static_cast<std::size_t>(initial_state)] = 1.0;
  return alpha;
}

MultiprocModel build_multiproc_availability(const MultiprocParams& params) {
  return build(params, /*absorbing_failure=*/false);
}

MultiprocModel build_multiproc_reliability(const MultiprocParams& params) {
  return build(params, /*absorbing_failure=*/true);
}

}  // namespace rrl
