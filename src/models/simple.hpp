// Small reference models with known closed-form transient solutions, used by
// the test suite as analytic ground truth and by the examples. Also provides
// a seeded random-CTMC generator for property-based cross-solver tests.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/ctmc.hpp"

namespace rrl {

/// Two-state availability model: state 0 = up (fails with rate lambda),
/// state 1 = down (repaired with rate mu). Irreducible.
struct TwoStateModel {
  Ctmc chain;
  double lambda = 0.0;
  double mu = 0.0;

  /// P[X(t) = down | X(0) = up] = lambda/(lambda+mu) * (1 - exp(-(l+m)t)).
  [[nodiscard]] double unavailability(double t) const;

  /// (1/t) * Integral of unavailability over [0, t] (closed form).
  [[nodiscard]] double interval_unavailability(double t) const;
};
[[nodiscard]] TwoStateModel make_two_state(double lambda, double mu);

/// Erlang absorption chain: 0 -> 1 -> ... -> n (absorbing), all rates lambda.
/// Time to absorption is Erlang(n, lambda).
struct ErlangModel {
  Ctmc chain;
  int stages = 0;
  double lambda = 0.0;

  /// P[absorbed by t] = P[Erlang(n, lambda) <= t].
  [[nodiscard]] double unreliability(double t) const;

  /// (1/t) * Integral of unreliability over [0, t] (closed form via Poisson
  /// tails).
  [[nodiscard]] double interval_unreliability(double t) const;
};
[[nodiscard]] ErlangModel make_erlang(int stages, double lambda);

/// General birth-death chain on {0..n}: state i goes up with birth[i]
/// (i < n) and down with death[i-1] (i > 0). Irreducible when all rates > 0.
[[nodiscard]] Ctmc make_birth_death(const std::vector<double>& birth,
                                    const std::vector<double>& death);

/// M/M/1/K queue (arrival lambda, service mu, capacity K): birth-death with
/// constant rates. Stationary distribution is geometric in rho = lambda/mu.
struct Mm1kModel {
  Ctmc chain;
  double lambda = 0.0;
  double mu = 0.0;
  int capacity = 0;

  /// Stationary probability of queue length i.
  [[nodiscard]] double stationary(int i) const;

  /// Stationary mean queue length.
  [[nodiscard]] double stationary_mean_length() const;
};
[[nodiscard]] Mm1kModel make_mm1k(double lambda, double mu, int capacity);

/// Unidirectional cycle 0 -> 1 -> ... -> n-1 -> 0 with uniform rate; the
/// randomized DTMC at Lambda = max exit rate is periodic, exercising the
/// aperiodicity safeguards of steady-state detection.
[[nodiscard]] Ctmc make_cycle(int length, double rate);

/// Options for the seeded random-CTMC generator used in property tests.
struct RandomCtmcOptions {
  index_t num_states = 20;
  index_t num_absorbing = 0;   // appended after the strongly connected part
  double extra_edge_prob = 0.3;  // density beyond the guaranteed cycle
  double min_rate = 0.1;
  double max_rate = 10.0;
  double absorb_rate_scale = 0.05;  // rates into absorbing states are scaled
                                    // down so chains are not instantly killed
  std::uint64_t seed = 1;
};

/// Random CTMC satisfying the paper's structure: the first
/// (num_states - num_absorbing) states are strongly connected (a random cycle
/// guarantees it) and every one of them reaches each absorbing state.
[[nodiscard]] Ctmc make_random_ctmc(const RandomCtmcOptions& options);

}  // namespace rrl
