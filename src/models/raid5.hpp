// Level-5 RAID dependability model (paper, Section 3).
//
// The system has G parity groups of N disks plus N controllers; controller c
// controls the "string" of the c-th disk of every group. C_H / D_H hot spare
// controllers / disks are available. The system is operational iff every
// parity group has at most one unavailable disk (unavailable = failed,
// replaced-but-not-reconstructed, under reconstruction, or behind a failed
// controller). Replaced disks are reconstructed (rate mu_drc) when the rest
// of their group is available; during a reconstruction the other N-1 disks of
// the group are overloaded and fail with lambda_s > lambda_d. A single
// repairman installs hot spares with priority to controllers (mu_crp over
// mu_drp); consumed spares and failed components without spares are handled
// by unlimited rate-mu_sr repairmen. A reconstruction succeeds with
// probability p_r; failure is a system failure. A failed system is globally
// repaired with rate mu_g (availability model) or absorbs (reliability
// model).
//
// Following the paper, the exact model is replaced by a pessimistic
// approximation whose state tracks only counts plus an alignment flag:
//   NFD  failed disks awaiting a spare        NSD  available spare disks
//   NWD  replaced disks waiting to rebuild    NFC  failed controllers
//   NDR  disks under reconstruction           NSC  available spare ctrl.
//   AL   all unavailable disks in one string  F    system failed
// The paper's approximation rule is applied verbatim: once unavailable disks
// are unaligned they stay unaligned while >= 2 of them remain. Pessimistic
// choices (documented per event in raid5.cpp): a new failure outside the
// affected groups unaligns the state, and any controller failure other than
// the aligned string's controller is fatal.
//
// Reachable-state invariants (tested in tests/test_raid5.cpp):
//   operational => NFC <= 1;
//   NFC == 1 => AL, NDR == 0, NFD + NWD <= G;
//   NFC == 0 => NWD == 0, NFD + NDR <= G;
//   AL == false => NFD + NDR >= 2.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "markov/ctmc.hpp"

namespace rrl {

/// Model parameters; defaults are the paper's fixed values (rates in 1/h).
/// p_r is not specified in the paper and defaults to the value that
/// reproduces the reported UR(1e5 h) magnitudes (see DESIGN.md).
struct Raid5Params {
  int groups = 20;          ///< G: parity groups (paper: 20 / 40)
  int disks_per_group = 5;  ///< N: disks per group = number of controllers
  int ctrl_spares = 1;      ///< C_H hot spare controllers
  int disk_spares = 3;      ///< D_H hot spare disks
  double lambda_d = 1e-5;   ///< non-overloaded disk failure rate
  double lambda_s = 2e-5;   ///< overloaded disk failure rate
  double lambda_c = 5e-5;   ///< controller failure rate
  double mu_drc = 1.0;      ///< reconstruction rate per disk
  double mu_drp = 4.0;      ///< repairman disk replacement rate
  double mu_crp = 4.0;      ///< repairman controller replacement rate
  double mu_sr = 0.25;      ///< spare replenishment / direct repair rate
  double mu_g = 0.25;       ///< global repair rate (availability model)
  double p_r = 0.999;       ///< reconstruction success probability
};

/// Structured state of the approximated model.
struct Raid5State {
  std::int16_t nfd = 0;  ///< failed disks awaiting a spare
  std::int16_t nwd = 0;  ///< replaced disks waiting for reconstruction
  std::int16_t ndr = 0;  ///< disks under reconstruction
  std::int16_t nsd = 0;  ///< available hot spare disks
  std::int16_t nfc = 0;  ///< failed controllers
  std::int16_t nsc = 0;  ///< available hot spare controllers
  bool aligned = true;   ///< unavailable disks all in one string
  bool failed = false;   ///< system failed

  friend bool operator==(const Raid5State&, const Raid5State&) = default;

  /// Number of unavailable *disk slots* counted by the group-collision
  /// logic when no controller is down (NFC == 1 makes it the whole string).
  [[nodiscard]] int unavailable() const noexcept { return nfd + nwd + ndr; }

  [[nodiscard]] std::string to_string() const;
};

struct Raid5StateHash {
  std::size_t operator()(const Raid5State& s) const noexcept;
};

/// Assembled model: CTMC + state decoding + distinguished states.
struct Raid5Model {
  Ctmc chain;
  std::vector<Raid5State> states;
  index_t initial_state = 0;  ///< all components good, spares full
  index_t failed_state = 0;   ///< the system-failed state
  Raid5Params params;
  bool absorbing_failure = false;  ///< true for the reliability variant

  /// Reward: 1 on the failed state, 0 elsewhere. TRR(t) under this reward is
  /// UA(t) in the availability model and UR(t) in the reliability model.
  [[nodiscard]] std::vector<double> failure_rewards() const;

  /// Performability reward: delivered throughput fraction, where each
  /// degraded parity group serves at `degraded_throughput` of nominal and a
  /// failed system serves nothing.
  [[nodiscard]] std::vector<double> throughput_rewards(
      double degraded_throughput = 0.5) const;

  /// Initial distribution: unit mass on initial_state.
  [[nodiscard]] std::vector<double> initial_distribution() const;
};

/// Availability model: global repair arc F -> initial (irreducible CTMC).
[[nodiscard]] Raid5Model build_raid5_availability(const Raid5Params& params);

/// Reliability model: F absorbing (one transition less than availability,
/// exactly as the paper notes).
[[nodiscard]] Raid5Model build_raid5_reliability(const Raid5Params& params);

}  // namespace rrl
