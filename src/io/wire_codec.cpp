#include "io/wire_codec.hpp"

#include <cstring>
#include <type_traits>

#include "support/contracts.hpp"
#include "support/fnv.hpp"

namespace rrl {
namespace {

constexpr char kMagic[8] = {'R', 'R', 'L', 'W', 'I', 'R', '\n', '\0'};
constexpr std::uint16_t kEndianTag = 0x0102;
// magic + version + endian + type + length.
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 2 * sizeof(std::uint16_t) +
    sizeof(std::uint64_t);
// Result frames carry whole row sets; anything beyond this is corruption,
// not a workload (a million-row unit is ~100 MB of CSV — re-plan the
// study before re-tuning this).
constexpr std::uint64_t kMaxPayload = 1ULL << 32;

[[noreturn]] void corrupt(const std::string& what) {
  throw contract_error("wire codec: " + what);
}

// Byte-buffer writer/reader mirroring the artifact codec's: native-order
// scalars, u64-counted strings, every count bounds-checked before use.

class Writer {
 public:
  template <typename T>
  void scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const char*>(&value);
    buffer_.append(bytes, sizeof(T));
  }

  void string(const std::string& s) {
    scalar<std::uint64_t>(s.size());
    buffer_.append(s);
  }

  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) corrupt("truncated payload");
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::string string() {
    const auto count = scalar<std::uint64_t>();
    if (count > remaining()) corrupt("oversized string");
    std::string s(bytes_.data() + cursor_, static_cast<std::size_t>(count));
    cursor_ += static_cast<std::size_t>(count);
    return s;
  }

  void expect_exhausted() const {
    if (cursor_ != bytes_.size()) corrupt("trailing bytes");
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - cursor_;
  }

 private:
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::string encode_frame(WireType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + sizeof(std::uint64_t));
  out.append(kMagic, sizeof(kMagic));
  const std::uint32_t version = kWireProtocolVersion;
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint16_t endian = kEndianTag;
  out.append(reinterpret_cast<const char*>(&endian), sizeof(endian));
  const auto type_tag = static_cast<std::uint16_t>(type);
  out.append(reinterpret_cast<const char*>(&type_tag), sizeof(type_tag));
  const std::uint64_t length = payload.size();
  out.append(reinterpret_cast<const char*>(&length), sizeof(length));
  out.append(payload);
  const std::uint64_t checksum =
      fnv1a({payload.data(), payload.size()});
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return out;
}

std::optional<WireFrame> decode_frame(std::string_view buffer,
                                      std::size_t& consumed) {
  consumed = 0;
  if (buffer.size() < kHeaderBytes) return std::nullopt;

  std::size_t cursor = 0;
  const auto read = [&](void* into, std::size_t n) {
    std::memcpy(into, buffer.data() + cursor, n);
    cursor += n;
  };
  char magic[sizeof(kMagic)];
  read(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    corrupt("bad magic (not a wire frame)");
  }
  std::uint32_t version = 0;
  read(&version, sizeof(version));
  if (version != kWireProtocolVersion) corrupt("unsupported protocol");
  std::uint16_t endian = 0;
  read(&endian, sizeof(endian));
  if (endian != kEndianTag) corrupt("foreign endianness");
  std::uint16_t type_tag = 0;
  read(&type_tag, sizeof(type_tag));
  if (type_tag < static_cast<std::uint16_t>(WireType::kHello) ||
      type_tag > static_cast<std::uint16_t>(WireType::kStatsReport)) {
    corrupt("unknown frame type");
  }
  std::uint64_t length = 0;
  read(&length, sizeof(length));
  if (length > kMaxPayload) corrupt("oversized payload");

  const std::size_t total =
      kHeaderBytes + static_cast<std::size_t>(length) +
      sizeof(std::uint64_t);
  if (buffer.size() < total) return std::nullopt;

  WireFrame frame;
  frame.type = static_cast<WireType>(type_tag);
  frame.payload.assign(buffer.data() + cursor,
                       static_cast<std::size_t>(length));
  cursor += static_cast<std::size_t>(length);
  std::uint64_t checksum = 0;
  read(&checksum, sizeof(checksum));
  if (checksum != fnv1a({frame.payload.data(), frame.payload.size()})) {
    corrupt("checksum mismatch");
  }
  consumed = total;
  return frame;
}

std::string encode_hello(const WireHello& hello) {
  Writer w;
  w.scalar<std::uint32_t>(hello.protocol);
  w.scalar<std::uint64_t>(hello.plan_fingerprint);
  w.scalar<std::uint64_t>(hello.unit_count);
  w.scalar<std::uint64_t>(hello.total_scenarios);
  return w.take();
}

WireHello decode_hello(std::string_view payload) {
  Reader r(payload);
  WireHello hello;
  hello.protocol = r.scalar<std::uint32_t>();
  hello.plan_fingerprint = r.scalar<std::uint64_t>();
  hello.unit_count = r.scalar<std::uint64_t>();
  hello.total_scenarios = r.scalar<std::uint64_t>();
  r.expect_exhausted();
  return hello;
}

std::string encode_assign(const WireAssign& assign) {
  Writer w;
  w.scalar<std::uint64_t>(assign.unit);
  w.scalar<std::uint64_t>(assign.first_scenario);
  w.scalar<std::uint64_t>(assign.scenario_count);
  return w.take();
}

WireAssign decode_assign(std::string_view payload) {
  Reader r(payload);
  WireAssign assign;
  assign.unit = r.scalar<std::uint64_t>();
  assign.first_scenario = r.scalar<std::uint64_t>();
  assign.scenario_count = r.scalar<std::uint64_t>();
  r.expect_exhausted();
  return assign;
}

std::string encode_result(const WireResult& result) {
  Writer w;
  w.scalar<std::uint64_t>(result.unit);
  w.scalar<double>(result.seconds);
  w.scalar<std::uint64_t>(result.rows.size());
  for (const ReportRow& row : result.rows) {
    w.scalar<std::uint64_t>(row.scenario);
    w.scalar<std::uint64_t>(row.point);
    w.string(row.model);
    w.string(row.solver);
    w.string(row.measure);
    w.scalar<double>(row.epsilon);
    w.scalar<double>(row.t);
    w.scalar<double>(row.value);
    w.scalar<std::int64_t>(row.dtmc_steps);
    w.string(row.error);
    w.scalar<double>(row.seconds);
    w.string(row.tier);
  }
  return w.take();
}

WireResult decode_result(std::string_view payload) {
  Reader r(payload);
  WireResult result;
  result.unit = r.scalar<std::uint64_t>();
  result.seconds = r.scalar<double>();
  const auto count = r.scalar<std::uint64_t>();
  // A row occupies far more than 8 payload bytes; a count beyond this can
  // only come from corruption — refuse before allocating.
  if (count > r.remaining() / 8) corrupt("oversized row count");
  result.rows.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ReportRow row;
    row.scenario = r.scalar<std::uint64_t>();
    row.point = r.scalar<std::uint64_t>();
    row.model = r.string();
    row.solver = r.string();
    row.measure = r.string();
    row.epsilon = r.scalar<double>();
    row.t = r.scalar<double>();
    row.value = r.scalar<double>();
    row.dtmc_steps = r.scalar<std::int64_t>();
    row.error = r.string();
    row.seconds = r.scalar<double>();
    row.tier = r.string();
    result.rows.push_back(std::move(row));
  }
  r.expect_exhausted();
  return result;
}

std::string encode_artifact_request(const WireArtifactRequest& request) {
  Writer w;
  w.scalar<std::uint64_t>(request.model_hash);
  w.string(request.solver);
  w.scalar<double>(request.epsilon);
  w.scalar<double>(request.rate_factor);
  w.scalar<std::int64_t>(request.regenerative);
  w.scalar<std::int64_t>(request.step_cap);
  return w.take();
}

WireArtifactRequest decode_artifact_request(std::string_view payload) {
  Reader r(payload);
  WireArtifactRequest request;
  request.model_hash = r.scalar<std::uint64_t>();
  request.solver = r.string();
  request.epsilon = r.scalar<double>();
  request.rate_factor = r.scalar<double>();
  request.regenerative = r.scalar<std::int64_t>();
  request.step_cap = r.scalar<std::int64_t>();
  r.expect_exhausted();
  return request;
}

std::string encode_artifact_data(const WireArtifactData& data) {
  Writer w;
  w.scalar<std::uint64_t>(data.model_hash);
  w.string(data.solver);
  w.scalar<std::uint8_t>(data.found ? 1 : 0);
  w.string(data.blob);
  return w.take();
}

WireArtifactData decode_artifact_data(std::string_view payload) {
  Reader r(payload);
  WireArtifactData data;
  data.model_hash = r.scalar<std::uint64_t>();
  data.solver = r.string();
  const auto found = r.scalar<std::uint8_t>();
  if (found > 1) corrupt("bad artifact_data found flag");
  data.found = found == 1;
  data.blob = r.string();
  r.expect_exhausted();
  return data;
}

std::string encode_stats_report(const WireStatsReport& stats) {
  Writer w;
  w.scalar<std::uint64_t>(stats.units);
  w.scalar<double>(stats.busy_seconds);
  w.scalar<std::uint64_t>(stats.counters.size());
  for (const auto& [name, value] : stats.counters) {
    w.string(name);
    w.scalar<std::uint64_t>(value);
  }
  return w.take();
}

WireStatsReport decode_stats_report(std::string_view payload) {
  Reader r(payload);
  WireStatsReport stats;
  stats.units = r.scalar<std::uint64_t>();
  stats.busy_seconds = r.scalar<double>();
  const auto count = r.scalar<std::uint64_t>();
  // Each counter needs at least its name length (8) + value (8); a count
  // beyond the payload can only be corruption — refuse before allocating.
  if (count > r.remaining() / 16) corrupt("oversized counter count");
  stats.counters.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = r.string();
    const auto value = r.scalar<std::uint64_t>();
    stats.counters.emplace_back(std::move(name), value);
  }
  r.expect_exhausted();
  return stats;
}

}  // namespace rrl
