#include "io/model_solver.hpp"

namespace rrl {

SolverConfig resolved_config(const ModelFile& model, SolverConfig config) {
  if (config.regenerative < 0) config.regenerative = model.regenerative;
  return config;
}

std::unique_ptr<TransientSolver> make_solver(const std::string& name,
                                             const ModelFile& model,
                                             SolverConfig config) {
  config = resolved_config(model, config);
  return make_solver(name, model.chain, model.rewards, model.initial, config);
}

}  // namespace rrl
