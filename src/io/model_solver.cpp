#include "io/model_solver.hpp"

namespace rrl {

std::unique_ptr<TransientSolver> make_solver(const std::string& name,
                                             const ModelFile& model,
                                             SolverConfig config) {
  if (config.regenerative < 0) config.regenerative = model.regenerative;
  return make_solver(name, model.chain, model.rewards, model.initial, config);
}

}  // namespace rrl
