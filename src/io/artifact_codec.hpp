// Binary serialization of CompiledArtifact — the wire format of the
// compile → execute split (core/compiled_artifact.hpp) and of the study
// subsystem's on-disk artifact tier (study/artifact_store.hpp).
//
// Layout (all integers and doubles in the writer's native byte order):
//
//   magic     "RRLART\n\0"   8 bytes
//   version   u32            format revision (kArtifactFormatVersion)
//   endian    u16 0x0102     read back as 0x0201 on a foreign-endian
//                            machine, where the file is rejected rather
//                            than byte-swapped: artifacts are a CACHE —
//                            the reader recomputes, it never guesses
//   length    u64            payload byte count
//   payload   length bytes   solver name, model hash, config, DTMC CSR
//                            arrays, schema series (raw IEEE-754 bits, so
//                            a round trip is bit-exact — the foundation of
//                            the "imported solver answers bit-identically"
//                            guarantee)
//   checksum  u64            FNV-1a over the payload
//
// Matrices travel as their canonical CSR arrays ONLY: the specialized
// kernel layout (sparse/sell.hpp) is derived data and is never
// serialized — importers re-run CsrMatrix::specialize(), so a blob stays
// portable across hosts with different SIMD capabilities and a
// layout-heuristic change never invalidates a cached artifact.
//
// Every validation failure — bad magic, unknown version, foreign
// endianness, short read, checksum mismatch, malformed CSR/schema
// structure — throws contract_error. Callers that treat artifacts as a
// cache (the artifact store) catch it and fall back to a cold compile;
// nothing is ever adopted from a file that does not prove itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/compiled_artifact.hpp"

namespace rrl {

/// Current format revision; bumped on any layout change so older builds
/// reject newer files (and vice versa) instead of misreading them.
/// History: 1 = initial layout; 2 = generated-model provenance
/// (model_spec, pre_lump_states) after the config block. A version-1 blob
/// under a version-2 reader degrades to a cache miss (cold compile),
/// never to a misread.
inline constexpr std::uint32_t kArtifactFormatVersion = 2;

/// Serialize `artifact` to `out`. Throws contract_error if the stream
/// fails.
void write_artifact(std::ostream& out, const CompiledArtifact& artifact);

/// Parse an artifact written by write_artifact on a same-endianness
/// machine with the same format version. Throws contract_error on any
/// corruption or incompatibility (see the header comment).
[[nodiscard]] CompiledArtifact read_artifact(std::istream& in);

/// File-path conveniences (throw contract_error, including on open
/// failure).
void write_artifact_file(const std::string& path,
                         const CompiledArtifact& artifact);
[[nodiscard]] CompiledArtifact read_artifact_file(const std::string& path);

}  // namespace rrl
