#include "io/artifact_codec.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/contracts.hpp"
#include "support/fnv.hpp"

namespace rrl {
namespace {

constexpr char kMagic[8] = {'R', 'R', 'L', 'A', 'R', 'T', '\n', '\0'};
constexpr std::uint16_t kEndianTag = 0x0102;

[[noreturn]] void corrupt(const std::string& what) {
  throw contract_error("artifact codec: " + what);
}

// --- Payload writer: appends native-byte-order scalars/arrays to a
// buffer, which is checksummed and framed by write_artifact.

class Writer {
 public:
  template <typename T>
  void scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const char*>(&value);
    buffer_.append(bytes, sizeof(T));
  }

  template <typename T>
  void array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    scalar<std::uint64_t>(values.size());
    if (!values.empty()) {
      buffer_.append(reinterpret_cast<const char*>(values.data()),
                     values.size() * sizeof(T));
    }
  }

  void string(const std::string& s) {
    scalar<std::uint64_t>(s.size());
    buffer_.append(s);
  }

  void csr(const CsrMatrix& m) {
    scalar<index_t>(m.rows());
    scalar<index_t>(m.cols());
    array(m.row_ptr());
    array(m.col_idx());
    array(m.values());
  }

  void series(const ExcursionSeries& s) {
    array(std::span<const double>(s.a));
    array(std::span<const double>(s.c));
    array(std::span<const double>(s.qa));
    scalar<std::uint64_t>(s.va.size());
    for (const std::vector<double>& v : s.va) {
      array(std::span<const double>(v));
    }
    scalar<std::uint8_t>(s.exact ? 1 : 0);
  }

  [[nodiscard]] const std::string& buffer() const noexcept {
    return buffer_;
  }

 private:
  std::string buffer_;
};

// --- Payload reader: bounds-checked mirror of Writer. Every count is
// validated against the remaining bytes BEFORE allocating, so a corrupt
// length cannot trigger a huge allocation.

class Reader {
 public:
  explicit Reader(std::span<const char> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) corrupt("truncated payload");
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = scalar<std::uint64_t>();
    if (count > remaining() / sizeof(T)) corrupt("oversized array");
    std::vector<T> values(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(values.data(), bytes_.data() + cursor_,
                  static_cast<std::size_t>(count) * sizeof(T));
      cursor_ += static_cast<std::size_t>(count) * sizeof(T);
    }
    return values;
  }

  [[nodiscard]] std::string string() {
    const auto count = scalar<std::uint64_t>();
    if (count > remaining()) corrupt("oversized string");
    std::string s(bytes_.data() + cursor_,
                  static_cast<std::size_t>(count));
    cursor_ += static_cast<std::size_t>(count);
    return s;
  }

  [[nodiscard]] CsrMatrix csr() {
    const auto rows = scalar<index_t>();
    const auto cols = scalar<index_t>();
    auto row_ptr = array<std::int64_t>();
    auto col_idx = array<index_t>();
    auto values = array<double>();
    if (rows < 0 || cols < 0) corrupt("negative matrix dimension");
    // from_parts re-validates the CSR invariants and throws contract_error
    // itself on violation. The returned matrix is unspecialized — the
    // blocked kernel layout is derived, not wire, data; the adopting
    // solver re-runs specialize() in import_compiled().
    return CsrMatrix::from_parts(rows, cols, std::move(row_ptr),
                                 std::move(col_idx), std::move(values));
  }

  [[nodiscard]] ExcursionSeries series(std::size_t num_absorbing) {
    ExcursionSeries s;
    s.a = array<double>();
    s.c = array<double>();
    s.qa = array<double>();
    const auto va_count = scalar<std::uint64_t>();
    if (va_count != num_absorbing) corrupt("absorbing-series mismatch");
    s.va.reserve(static_cast<std::size_t>(va_count));
    for (std::uint64_t i = 0; i < va_count; ++i) {
      s.va.push_back(array<double>());
    }
    s.exact = scalar<std::uint8_t>() != 0;
    // Structural invariants (regenerative.hpp): a spans k = 0..K, c the
    // same, qa and every va[i] span k = 0..K-1.
    if (s.a.empty() || s.c.size() != s.a.size() ||
        s.qa.size() + 1 != s.a.size()) {
      corrupt("malformed excursion series");
    }
    for (const std::vector<double>& v : s.va) {
      if (v.size() + 1 != s.a.size()) corrupt("malformed excursion series");
    }
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == bytes_.size();
  }

 private:
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - cursor_;
  }

  std::span<const char> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace

void write_artifact(std::ostream& out, const CompiledArtifact& artifact) {
  Writer payload;
  payload.string(artifact.solver);
  payload.scalar<std::uint64_t>(artifact.model_hash);
  payload.scalar<double>(artifact.config.epsilon);
  payload.scalar<double>(artifact.config.rate_factor);
  payload.scalar<index_t>(artifact.config.regenerative);
  payload.scalar<std::int64_t>(artifact.config.step_cap);
  payload.string(artifact.model_spec);
  payload.scalar<index_t>(artifact.pre_lump_states);

  payload.scalar<double>(artifact.lambda);
  payload.csr(artifact.dtmc_pt);
  payload.array(std::span<const double>(artifact.self_loop));

  payload.scalar<std::uint64_t>(artifact.schemas.size());
  for (const ArtifactSchemaEntry& entry : artifact.schemas) {
    payload.scalar<double>(entry.t);
    payload.scalar<double>(entry.eps);
    const RegenerativeSchema& sch = entry.schema;
    payload.scalar<double>(sch.lambda);
    payload.scalar<double>(sch.alpha_r);
    payload.scalar<double>(sch.r_max);
    payload.scalar<index_t>(sch.regenerative);
    payload.scalar<double>(sch.t);
    payload.array(std::span<const index_t>(sch.absorbing));
    payload.array(std::span<const double>(sch.f_rewards));
    payload.series(sch.main);
    payload.scalar<std::uint8_t>(sch.has_primed ? 1 : 0);
    if (sch.has_primed) payload.series(sch.primed);
    payload.scalar<std::uint8_t>(sch.capped ? 1 : 0);
  }

  const std::string& bytes = payload.buffer();
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kArtifactFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint16_t endian = kEndianTag;
  out.write(reinterpret_cast<const char*>(&endian), sizeof(endian));
  const std::uint64_t length = bytes.size();
  out.write(reinterpret_cast<const char*>(&length), sizeof(length));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  const std::uint64_t checksum = fnv1a(bytes);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) corrupt("stream write failed");
}

CompiledArtifact read_artifact(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    corrupt("bad magic (not an artifact file)");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kArtifactFormatVersion) {
    corrupt("unsupported format version");
  }
  std::uint16_t endian = 0;
  in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
  if (!in || endian != kEndianTag) {
    corrupt("foreign endianness");
  }
  std::uint64_t length = 0;
  in.read(reinterpret_cast<char*>(&length), sizeof(length));
  if (!in) corrupt("truncated header");
  // A corrupt length field must be refused BEFORE the allocation it
  // sizes: a bit-flipped u64 can demand terabytes, and on an overcommit
  // system the zero-fill would invite the OOM killer rather than a
  // catchable bad_alloc. For seekable streams (files, string streams —
  // every cache-tier read) the declared payload cannot exceed the bytes
  // actually present; the absolute cap stays as a backstop for
  // non-seekable sources.
  constexpr std::uint64_t kMaxPayload = 1ULL << 32;
  if (length > kMaxPayload) corrupt("oversized payload");
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (!in || end == std::istream::pos_type(-1) ||
        static_cast<std::uint64_t>(end - here) < length) {
      corrupt("truncated payload");
    }
  }
  std::vector<char> bytes(static_cast<std::size_t>(length));
  in.read(bytes.data(), static_cast<std::streamsize>(length));
  if (!in) corrupt("truncated payload");
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in || checksum != fnv1a(bytes)) corrupt("checksum mismatch");

  Reader payload{std::span<const char>(bytes)};
  CompiledArtifact artifact;
  artifact.solver = payload.string();
  artifact.model_hash = payload.scalar<std::uint64_t>();
  artifact.config.epsilon = payload.scalar<double>();
  artifact.config.rate_factor = payload.scalar<double>();
  artifact.config.regenerative = payload.scalar<index_t>();
  artifact.config.step_cap = payload.scalar<std::int64_t>();
  artifact.model_spec = payload.string();
  artifact.pre_lump_states = payload.scalar<index_t>();

  artifact.lambda = payload.scalar<double>();
  artifact.dtmc_pt = payload.csr();
  artifact.self_loop = payload.array<double>();

  const auto schema_count = payload.scalar<std::uint64_t>();
  // Same before-allocating bound every other count gets: a schema entry
  // occupies far more than 64 payload bytes, so a count beyond this can
  // only come from corruption.
  if (schema_count > bytes.size() / 64) corrupt("oversized array");
  artifact.schemas.reserve(static_cast<std::size_t>(schema_count));
  for (std::uint64_t i = 0; i < schema_count; ++i) {
    ArtifactSchemaEntry entry;
    entry.t = payload.scalar<double>();
    entry.eps = payload.scalar<double>();
    RegenerativeSchema& sch = entry.schema;
    sch.lambda = payload.scalar<double>();
    sch.alpha_r = payload.scalar<double>();
    sch.r_max = payload.scalar<double>();
    sch.regenerative = payload.scalar<index_t>();
    sch.t = payload.scalar<double>();
    sch.absorbing = payload.array<index_t>();
    sch.f_rewards = payload.array<double>();
    if (sch.f_rewards.size() != sch.absorbing.size()) {
      corrupt("absorbing-reward mismatch");
    }
    sch.main = payload.series(sch.absorbing.size());
    sch.has_primed = payload.scalar<std::uint8_t>() != 0;
    if (sch.has_primed) sch.primed = payload.series(sch.absorbing.size());
    sch.capped = payload.scalar<std::uint8_t>() != 0;
    artifact.schemas.push_back(std::move(entry));
  }
  if (!payload.exhausted()) corrupt("trailing bytes");
  return artifact;
}

void write_artifact_file(const std::string& path,
                         const CompiledArtifact& artifact) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw contract_error("artifact codec: cannot open for writing: " + path);
  }
  write_artifact(out, artifact);
}

CompiledArtifact read_artifact_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw contract_error("artifact codec: cannot open for reading: " + path);
  }
  return read_artifact(in);
}

}  // namespace rrl
