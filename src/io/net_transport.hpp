// TCP transport + framed-channel plumbing of the dispatch orchestrator —
// what turns the single-host `--serve --workers N` fleet into an elastic
// multi-machine one.
//
// The wire protocol (io/wire_codec.hpp) was deliberately written against
// byte streams, not pipes: the dispatcher only ever needs "give me the
// next complete frame" and "queue these frame bytes for the peer". This
// header supplies both halves for any fd:
//
//   * tcp_listen / tcp_accept / tcp_connect — minimal IPv4/IPv6 socket
//     primitives (close-on-exec, TCP_NODELAY so tiny assign/result frames
//     are not Nagle-delayed). tcp_listen(0) binds an ephemeral port and
//     reports the actual one, which the tests and benches use to run
//     loopback fleets without port collisions.
//
//   * FrameChannel — one peer's buffered, non-blocking framed byte stream.
//     Writes append to an outbox and flush opportunistically; a short
//     write (a full socket buffer, a full pipe) leaves the REMAINDER
//     queued, never a torn frame — the dispatcher polls POLLOUT while
//     wants_write() and calls flush() to resume. Reads accumulate into an
//     inbox the caller drains with decode_frame. Every raw read/write
//     rides out EINTR, and socket writes use MSG_NOSIGNAL so a peer dying
//     mid-write surfaces as an error return (an observed death the
//     dispatcher re-dispatches around), never a SIGPIPE kill.
//
// The same FrameChannel fronts a fork/exec'd worker's stdio pipes (two
// fds) and a remote worker's TCP socket (one fd), which is what makes the
// dispatch poll loop transport-agnostic.
//
// Security note: the transport is a trusted-network protocol — no
// authentication, no encryption (frames are checksummed against
// corruption, not tampering). Bind listeners on trusted interfaces only;
// see README's "Remote fleet" section.
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace rrl {

/// A listening TCP socket (close-on-exec, SO_REUSEADDR) plus the port it
/// actually bound — the requested one, or the kernel's pick for port 0.
struct TcpListener {
  int fd = -1;
  int port = 0;
};

/// Listen on `port` (0 = ephemeral, reported back) on every interface.
/// The fd is non-blocking so an accept sweep in a poll loop never stalls.
/// Throws contract_error on socket/bind/listen failure.
[[nodiscard]] TcpListener tcp_listen(int port, int backlog = 32);

/// Accept one pending connection: a connected fd (close-on-exec,
/// TCP_NODELAY), or -1 when none is pending or the accept transiently
/// failed — callers just poll again.
[[nodiscard]] int tcp_accept(int listen_fd) noexcept;

/// Connect to host:port (numeric or DNS, IPv4 or IPv6). The fd is
/// blocking (a worker talks to exactly one parent), close-on-exec, with
/// TCP_NODELAY set. Throws contract_error when resolution or connection
/// fails.
[[nodiscard]] int tcp_connect(const std::string& host, int port);

/// A "host:port" spec ("10.0.0.7:7411", "[::1]:7411", "solve.lan:7411").
struct HostPort {
  std::string host;
  int port = 0;
};

/// Split "host:port" (the last ':' separates the port; brackets around an
/// IPv6 host are stripped). Throws contract_error on a malformed spec or
/// a port outside [1, 65535].
[[nodiscard]] HostPort parse_host_port(const std::string& spec);

/// Set O_NONBLOCK on `fd` (throws contract_error on fcntl failure).
void set_nonblocking(int fd);

/// Result of one FrameChannel::read_some() call.
enum class ChannelIo {
  kOk,     ///< appended at least one byte to the inbox
  kAgain,  ///< nothing available right now (non-blocking fd)
  kEof,    ///< peer closed its end
  kError,  ///< hard error; the peer is unusable
};

/// One peer's buffered framed byte stream over non-blocking fds — a TCP
/// socket (read fd == write fd) or a stdio pipe pair. Owns the fds it is
/// given: close() releases them, and exactly-once (a socket's single fd is
/// never closed twice).
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Wrap fds the caller already set non-blocking (see set_nonblocking).
  /// `is_socket` selects send(MSG_NOSIGNAL) over write() so a dead peer
  /// cannot raise SIGPIPE even outside a scoped-ignore region.
  FrameChannel(int read_fd, int write_fd, bool is_socket);

  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  [[nodiscard]] bool open() const noexcept { return read_fd_ >= 0; }
  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  [[nodiscard]] int write_fd() const noexcept { return write_fd_; }
  /// True when queued output remains — the caller polls POLLOUT and calls
  /// flush() when it fires.
  [[nodiscard]] bool wants_write() const noexcept {
    return !outbox_.empty();
  }

  /// Queue `bytes` (one or more complete frames) and flush as much as the
  /// fd accepts right now. A short write keeps the remainder queued — the
  /// stream never carries a torn frame. Returns false on a hard error
  /// (EPIPE included): the peer is lost.
  [[nodiscard]] bool send(const std::string& bytes);

  /// Resume flushing the outbox (POLLOUT fired). False on hard error.
  [[nodiscard]] bool flush();

  /// One read into the inbox (rides out EINTR).
  [[nodiscard]] ChannelIo read_some();

  /// Accumulated unconsumed input; the caller decodes frames from the
  /// front and erases what decode_frame consumed.
  [[nodiscard]] std::string& inbox() noexcept { return inbox_; }

  /// Close both fds (idempotent; a socket's shared fd closes once).
  void close();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  bool is_socket_ = false;
  std::string outbox_;
  std::size_t out_off_ = 0;  ///< sent prefix of outbox_ (compacted lazily)
  std::string inbox_;
};

}  // namespace rrl
