#include "io/net_transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "support/contracts.hpp"
#include "support/metrics.hpp"

namespace rrl {

namespace {

// Wire-level byte accounting, shared with the worker-side raw-fd helpers
// in study_dispatch.cpp (same metric names: one fleet-wide funnel).
metrics::Counter& wire_bytes_in() {
  static auto& c = metrics::counter("rrl_wire_bytes_in_total");
  return c;
}

metrics::Counter& wire_bytes_out() {
  static auto& c = metrics::counter("rrl_wire_bytes_out_total");
  return c;
}

void set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw contract_error(what + ": " + std::strerror(errno));
}

}  // namespace

TcpListener tcp_listen(int port, int backlog) {
  if (port < 0 || port > 65535) {
    throw contract_error("tcp_listen: port out of range");
  }
  int fd = ::socket(AF_INET6, SOCK_STREAM | SOCK_CLOEXEC, 0);
  bool v6 = fd >= 0;
  if (!v6) fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("tcp_listen: socket");

  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  int rc = -1;
  if (v6) {
    // Dual-stack: accept IPv4 peers as mapped addresses on the v6 socket.
    int zero = 0;
    (void)::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &zero, sizeof(zero));
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_addr = in6addr_any;
    addr.sin6_port = htons(static_cast<std::uint16_t>(port));
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("tcp_listen: bind");
  }
  if (::listen(fd, backlog) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("tcp_listen: listen");
  }

  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("tcp_listen: getsockname");
  }
  int actual = 0;
  if (bound.ss_family == AF_INET6) {
    actual = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
  } else {
    actual = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  }

  set_nonblocking(fd);
  return TcpListener{fd, actual};
}

int tcp_accept(int listen_fd) noexcept {
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

int tcp_connect(const std::string& host, int port) {
  if (port < 1 || port > 65535) {
    throw contract_error("tcp_connect: port out of range");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  const std::string port_str = std::to_string(port);

  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &results);
  if (rc != 0) {
    throw contract_error("tcp_connect: cannot resolve '" + host +
                         "': " + ::gai_strerror(rc));
  }

  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int crc;
    do {
      crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (crc != 0 && errno == EINTR);
    if (crc == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    errno = last_errno;
    throw_errno("tcp_connect: cannot connect to " + host + ":" + port_str);
  }
  set_nodelay(fd);
  set_cloexec(fd);
  return fd;
}

HostPort parse_host_port(const std::string& spec) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw contract_error("expected host:port, got '" + spec + "'");
  }
  std::string host = spec.substr(0, colon);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    host = host.substr(1, host.size() - 2);
  }
  if (host.empty()) {
    throw contract_error("expected host:port, got '" + spec + "'");
  }
  const std::string port_str = spec.substr(colon + 1);
  int port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      throw contract_error("bad port in '" + spec + "': not a number");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      throw contract_error("bad port in '" + spec + "': out of range");
    }
  }
  if (port < 1) {
    throw contract_error("bad port in '" + spec + "': out of range");
  }
  return HostPort{std::move(host), port};
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

FrameChannel::FrameChannel(int read_fd, int write_fd, bool is_socket)
    : read_fd_(read_fd), write_fd_(write_fd), is_socket_(is_socket) {}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      is_socket_(other.is_socket_),
      outbox_(std::move(other.outbox_)),
      out_off_(other.out_off_),
      inbox_(std::move(other.inbox_)) {}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    close();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    is_socket_ = other.is_socket_;
    outbox_ = std::move(other.outbox_);
    out_off_ = other.out_off_;
    inbox_ = std::move(other.inbox_);
  }
  return *this;
}

FrameChannel::~FrameChannel() { close(); }

bool FrameChannel::send(const std::string& bytes) {
  if (write_fd_ < 0) return false;
  outbox_.append(bytes);
  return flush();
}

bool FrameChannel::flush() {
  if (write_fd_ < 0) return false;
  while (out_off_ < outbox_.size()) {
    ssize_t n;
    if (is_socket_) {
      n = ::send(write_fd_, outbox_.data() + out_off_,
                 outbox_.size() - out_off_, MSG_NOSIGNAL);
    } else {
      n = ::write(write_fd_, outbox_.data() + out_off_,
                  outbox_.size() - out_off_);
    }
    if (n > 0) {
      wire_bytes_out().add(static_cast<std::uint64_t>(n));
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // EPIPE, ECONNRESET, ...: the peer is gone
  }
  if (out_off_ == outbox_.size()) {
    outbox_.clear();
    out_off_ = 0;
  } else if (out_off_ > (64u << 10)) {
    // Reclaim the sent prefix once it is large enough to matter.
    outbox_.erase(0, out_off_);
    out_off_ = 0;
  }
  return true;
}

ChannelIo FrameChannel::read_some() {
  if (read_fd_ < 0) return ChannelIo::kError;
  char chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n > 0) {
      wire_bytes_in().add(static_cast<std::uint64_t>(n));
      inbox_.append(chunk, static_cast<std::size_t>(n));
      return ChannelIo::kOk;
    }
    if (n == 0) return ChannelIo::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ChannelIo::kAgain;
    if (errno == ECONNRESET) return ChannelIo::kEof;
    return ChannelIo::kError;
  }
}

void FrameChannel::close() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

}  // namespace rrl
