// Solver construction from parsed model files.
//
// This is the io-layer face of the solver registry: the overload lives here
// (not in core/registry.hpp) so the core solver layer carries no dependency
// on the io layer — core knows nothing about ModelFile, and io composes the
// two.
#pragma once

#include <memory>
#include <string>

#include "core/registry.hpp"
#include "io/model_format.hpp"

namespace rrl {

/// The construction config actually used for `model`: a negative
/// regenerative index falls back to the file's hint (a still-negative
/// result means auto-selection inside the registry). Exposed so callers
/// that pre-resolve configs — e.g. before keying the study subsystem's
/// solver cache, which deliberately keys configs exactly as given — apply
/// the same rule as make_solver(ModelFile).
[[nodiscard]] SolverConfig resolved_config(const ModelFile& model,
                                           SolverConfig config);

/// Convenience overload for parsed model files: uses the file's rewards,
/// initial distribution and regenerative-state hint (when the config does
/// not specify one). The ModelFile must outlive the returned solver.
[[nodiscard]] std::unique_ptr<TransientSolver> make_solver(
    const std::string& name, const ModelFile& model, SolverConfig config = {});

}  // namespace rrl
