// Solver construction from parsed model files.
//
// This is the io-layer face of the solver registry: the overload lives here
// (not in core/registry.hpp) so the core solver layer carries no dependency
// on the io layer — core knows nothing about ModelFile, and io composes the
// two.
#pragma once

#include <memory>
#include <string>

#include "core/registry.hpp"
#include "io/model_format.hpp"

namespace rrl {

/// Convenience overload for parsed model files: uses the file's rewards,
/// initial distribution and regenerative-state hint (when the config does
/// not specify one). The ModelFile must outlive the returned solver.
[[nodiscard]] std::unique_ptr<TransientSolver> make_solver(
    const std::string& name, const ModelFile& model, SolverConfig config = {});

}  // namespace rrl
