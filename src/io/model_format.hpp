// Plain-text model interchange format.
//
// Lets downstream users bring their own rewarded CTMCs to the solvers (and
// lets the CLI tool export the built-in generators). Line-oriented format,
// whitespace-separated, '#' comments:
//
//   states <N>                # required, first non-comment line
//   transition <from> <to> <rate>
//   reward <state> <value>    # default 0
//   initial <state> <prob>    # default: unit mass on state 0
//   regenerative <state>      # optional solver hint
//
// Indices are 0-based. Duplicate `transition` lines are summed (consistent
// with the in-memory builder); duplicate `reward`/`initial` lines overwrite.
//
// Alternatively a file may hold a single GENERATOR line instead of an
// explicit state space (markov/generator.hpp expands it on read):
//
//   generator <family> <key>=<value> ...
//
// e.g. `generator k_of_n n=9 k=8 groups=6 lambda=1e-3 mu=1 lump=1`. A
// generator line must be the only content line of the file: the expansion
// IS the model, and mixing it with explicit transitions would make the
// spec key (below) a lie.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "markov/ctmc.hpp"

namespace rrl {

/// A parsed model file: chain + measure data + optional solver hint.
struct ModelFile {
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> initial;
  index_t regenerative = -1;  ///< -1 = not specified
  /// Canonical generator spec ("k_of_n groups=6 k=8 ..." — family plus
  /// sorted key=value params) when the model was expanded from a
  /// `generator` line; empty for explicit models. Because expansion is
  /// deterministic, the spec names the content exactly, so the study
  /// layer's hash_model() hashes these few bytes instead of walking a
  /// million-state CSR.
  std::string spec_key;
  /// State count before the lumping pass when the generator applied one
  /// (`lump=1`); -1 when no lumping happened. Provenance only — the chain
  /// above is already the lumped one.
  index_t pre_lump_states = -1;
};

/// Parse a model from a stream. Throws contract_error with a line-numbered
/// message on malformed input.
[[nodiscard]] ModelFile read_model(std::istream& in);

/// Parse a model from a file path (throws if the file cannot be opened).
[[nodiscard]] ModelFile read_model_file(const std::string& path);

/// Serialize a model (only non-zero rewards / initial entries are written).
void write_model(std::ostream& out, const Ctmc& chain,
                 std::span<const double> rewards,
                 std::span<const double> initial, index_t regenerative = -1);

/// Serialize to a file path (throws if the file cannot be opened).
void write_model_file(const std::string& path, const Ctmc& chain,
                      std::span<const double> rewards,
                      std::span<const double> initial,
                      index_t regenerative = -1);

}  // namespace rrl
