// Binary wire codec of the dispatch orchestrator (study_dispatch.hpp):
// the framed messages a `rrl_solve --serve` parent and its `--worker`
// processes exchange over stdio pipes.
//
// Frame layout reuses the artifact codec's discipline (io/artifact_codec):
//
//   magic     "RRLWIR\n\0"   8 bytes
//   version   u32            protocol revision (kWireProtocolVersion)
//   endian    u16 0x0102     foreign-endian peers are rejected, never
//                            byte-swapped (parent and workers are the
//                            same binary on the same machine — a mismatch
//                            means the pipe is not what we think it is)
//   type      u16            WireType discriminator
//   length    u64            payload byte count
//   payload   length bytes   message-specific (below)
//   checksum  u64            FNV-1a over the payload
//
// Messages (parent -> worker: assign, shutdown; worker -> parent: hello,
// result):
//
//   hello     protocol version + the worker's plan fingerprint, unit
//             count and total scenario count — the handshake that proves
//             parent and worker expanded the SAME study into the SAME
//             units before any work is handed out
//   assign    one work-unit id (echoed with its range for cross-checking)
//   result    the unit's report rows (the full row set of its scenarios,
//             including the diagnostic seconds / cache-tier fields) plus
//             the worker-side wall-clock
//   shutdown  no payload; the worker drains and exits cleanly
//
// decode_frame is incremental: pipes deliver byte streams, not messages,
// so the caller accumulates reads in a buffer and asks after each read
// whether a whole frame has arrived (nullopt = not yet). Corruption of a
// COMPLETE frame — bad magic, foreign version/endianness, checksum
// mismatch, malformed payload — throws contract_error: the dispatcher
// treats the worker as lost rather than guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "study/study_report.hpp"

namespace rrl {

/// Bumped on any frame or payload layout change so mismatched binaries
/// refuse to talk instead of misreading each other.
inline constexpr std::uint32_t kWireProtocolVersion = 1;

enum class WireType : std::uint16_t {
  kHello = 1,     ///< worker -> parent: handshake
  kAssign = 2,    ///< parent -> worker: one work unit
  kResult = 3,    ///< worker -> parent: one finished unit
  kShutdown = 4,  ///< parent -> worker: drain and exit
};

struct WireFrame {
  WireType type = WireType::kHello;
  std::string payload;
};

/// Serialize one frame (header + payload + checksum) to a byte string.
[[nodiscard]] std::string encode_frame(WireType type,
                                       std::string_view payload);

/// Incremental decode: if `buffer` starts with a complete frame, return it
/// and set `consumed` to its total byte length (the caller erases that
/// prefix); an incomplete frame returns nullopt with consumed == 0. A
/// malformed complete prefix throws contract_error.
[[nodiscard]] std::optional<WireFrame> decode_frame(std::string_view buffer,
                                                    std::size_t& consumed);

/// Handshake: the worker's view of the plan. The parent verifies protocol
/// and fingerprint agreement before assigning anything.
struct WireHello {
  std::uint32_t protocol = kWireProtocolVersion;
  std::uint64_t plan_fingerprint = 0;
  std::uint64_t unit_count = 0;
  std::uint64_t total_scenarios = 0;
};

/// One work-unit assignment; the range rides along so a worker can verify
/// the id means the same scenarios on its side.
struct WireAssign {
  std::uint64_t unit = 0;
  std::uint64_t first_scenario = 0;
  std::uint64_t scenario_count = 0;
};

/// One finished unit: the full row set of its scenarios plus the
/// worker-side wall-clock of the solve.
struct WireResult {
  std::uint64_t unit = 0;
  double seconds = 0.0;
  std::vector<ReportRow> rows;
};

/// Payload codecs (decoders throw contract_error on malformed payloads).
[[nodiscard]] std::string encode_hello(const WireHello& hello);
[[nodiscard]] WireHello decode_hello(std::string_view payload);
[[nodiscard]] std::string encode_assign(const WireAssign& assign);
[[nodiscard]] WireAssign decode_assign(std::string_view payload);
[[nodiscard]] std::string encode_result(const WireResult& result);
[[nodiscard]] WireResult decode_result(std::string_view payload);

}  // namespace rrl
