// Binary wire codec of the dispatch orchestrator (study_dispatch.hpp):
// the framed messages a `rrl_solve --serve` parent and its `--worker`
// processes exchange over stdio pipes.
//
// Frame layout reuses the artifact codec's discipline (io/artifact_codec):
//
//   magic     "RRLWIR\n\0"   8 bytes
//   version   u32            protocol revision (kWireProtocolVersion)
//   endian    u16 0x0102     foreign-endian peers are rejected, never
//                            byte-swapped (parent and workers are the
//                            same binary on the same machine — a mismatch
//                            means the pipe is not what we think it is)
//   type      u16            WireType discriminator
//   length    u64            payload byte count
//   payload   length bytes   message-specific (below)
//   checksum  u64            FNV-1a over the payload
//
// Messages (parent -> worker: assign, shutdown, artifact_data;
// worker -> parent: hello, result, ping, artifact_request):
//
//   hello     protocol version + the worker's plan fingerprint, unit
//             count and total scenario count — the handshake that proves
//             parent and worker expanded the SAME study into the SAME
//             units before any work is handed out
//   assign    one work-unit id (echoed with its range for cross-checking)
//   result    the unit's report rows (the full row set of its scenarios,
//             including the diagnostic seconds / cache-tier fields) plus
//             the worker-side wall-clock
//   shutdown  no payload; the worker drains and exits cleanly
//   ping      no payload; a remote worker's heartbeat. Sent from a
//             background thread while the main thread solves, so the
//             parent can tell "busy for minutes" from "hung/dead" and
//             re-queue the in-flight unit on timeout. Pipes don't carry
//             pings — a local child's death is already an EOF.
//   artifact_request
//             worker -> parent: a solver-cache key (model hash + solver +
//             config). The remote worker asks the parent's artifact store
//             before cold-compiling — `--cache-dir` does not cross
//             machines, but the wire does.
//   artifact_data
//             parent -> worker: the echoed key, a found flag, and (when
//             found) an artifact blob in the artifact codec's format
//             (io/artifact_codec.hpp). found=false means the worker
//             compiles locally — a counted miss, never an error.
//
// decode_frame is incremental: pipes deliver byte streams, not messages,
// so the caller accumulates reads in a buffer and asks after each read
// whether a whole frame has arrived (nullopt = not yet). Corruption of a
// COMPLETE frame — bad magic, foreign version/endianness, checksum
// mismatch, malformed payload — throws contract_error: the dispatcher
// treats the worker as lost rather than guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "study/study_report.hpp"

namespace rrl {

/// Bumped on any frame or payload layout change so mismatched binaries
/// refuse to talk instead of misreading each other. v2: TCP fleet —
/// ping/artifact_request/artifact_data frames. v3: stats_report frames
/// (fleet-wide observability aggregation).
inline constexpr std::uint32_t kWireProtocolVersion = 3;

enum class WireType : std::uint16_t {
  kHello = 1,     ///< worker -> parent: handshake
  kAssign = 2,    ///< parent -> worker: one work unit
  kResult = 3,    ///< worker -> parent: one finished unit
  kShutdown = 4,  ///< parent -> worker: drain and exit
  kPing = 5,      ///< worker -> parent: remote heartbeat (empty payload)
  kArtifactRequest = 6,  ///< worker -> parent: solver-cache key lookup
  kArtifactData = 7,     ///< parent -> worker: artifact blob or not-found
  kStatsReport = 8,      ///< worker -> parent: metrics snapshot
};

struct WireFrame {
  WireType type = WireType::kHello;
  std::string payload;
};

/// Serialize one frame (header + payload + checksum) to a byte string.
[[nodiscard]] std::string encode_frame(WireType type,
                                       std::string_view payload);

/// Incremental decode: if `buffer` starts with a complete frame, return it
/// and set `consumed` to its total byte length (the caller erases that
/// prefix); an incomplete frame returns nullopt with consumed == 0. A
/// malformed complete prefix throws contract_error.
[[nodiscard]] std::optional<WireFrame> decode_frame(std::string_view buffer,
                                                    std::size_t& consumed);

/// Handshake: the worker's view of the plan. The parent verifies protocol
/// and fingerprint agreement before assigning anything.
struct WireHello {
  std::uint32_t protocol = kWireProtocolVersion;
  std::uint64_t plan_fingerprint = 0;
  std::uint64_t unit_count = 0;
  std::uint64_t total_scenarios = 0;
};

/// One work-unit assignment; the range rides along so a worker can verify
/// the id means the same scenarios on its side.
struct WireAssign {
  std::uint64_t unit = 0;
  std::uint64_t first_scenario = 0;
  std::uint64_t scenario_count = 0;
};

/// One finished unit: the full row set of its scenarios plus the
/// worker-side wall-clock of the solve.
struct WireResult {
  std::uint64_t unit = 0;
  double seconds = 0.0;
  std::vector<ReportRow> rows;
};

/// A remote worker's solver-cache lookup: the full cache key (every
/// SolverConfig field participates, exactly as study/solver_cache.hpp keys
/// entries), asked of the parent's artifact store before cold-compiling.
struct WireArtifactRequest {
  std::uint64_t model_hash = 0;
  std::string solver;
  double epsilon = 0.0;
  double rate_factor = 0.0;
  std::int64_t regenerative = -1;
  std::int64_t step_cap = -1;
};

/// The parent's answer: the echoed identity, whether the store had it,
/// and (when found) the artifact serialized by io/artifact_codec — the
/// same bytes the disk tier would hold, so a fetched warm start is
/// bit-identical to a local one.
struct WireArtifactData {
  std::uint64_t model_hash = 0;
  std::string solver;
  bool found = false;
  std::string blob;  ///< artifact-codec bytes; empty when !found
};

/// A worker's observability snapshot, piggybacked on unit completion
/// (sent right BEFORE each kResult, so the parent's view of a worker is
/// current by the time it reduces the unit — including the run's last
/// one). Counter values are ABSOLUTE for the
/// worker process — the parent keeps the latest snapshot per worker and
/// sums across workers for fleet totals — so a lost frame only delays
/// the view, it never skews it. Stats frames feed DispatchReport and the
/// `--json` / `--stats-interval-ms` views only; the reduced report never
/// reads them (byte-identity with observability on or off).
struct WireStatsReport {
  std::uint64_t units = 0;       ///< units this worker has completed
  double busy_seconds = 0.0;     ///< summed wall-clock of its unit solves
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Payload codecs (decoders throw contract_error on malformed payloads).
[[nodiscard]] std::string encode_hello(const WireHello& hello);
[[nodiscard]] WireHello decode_hello(std::string_view payload);
[[nodiscard]] std::string encode_assign(const WireAssign& assign);
[[nodiscard]] WireAssign decode_assign(std::string_view payload);
[[nodiscard]] std::string encode_result(const WireResult& result);
[[nodiscard]] WireResult decode_result(std::string_view payload);
[[nodiscard]] std::string encode_artifact_request(
    const WireArtifactRequest& request);
[[nodiscard]] WireArtifactRequest decode_artifact_request(
    std::string_view payload);
[[nodiscard]] std::string encode_artifact_data(const WireArtifactData& data);
[[nodiscard]] WireArtifactData decode_artifact_data(std::string_view payload);
[[nodiscard]] std::string encode_stats_report(const WireStatsReport& stats);
[[nodiscard]] WireStatsReport decode_stats_report(std::string_view payload);

}  // namespace rrl
