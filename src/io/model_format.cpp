#include "io/model_format.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "markov/generator.hpp"
#include "support/contracts.hpp"

namespace rrl {

namespace {

[[noreturn]] void parse_fail(int line, const std::string& message) {
  throw contract_error("model file, line " + std::to_string(line) + ": " +
                       message);
}

}  // namespace

ModelFile read_model(std::istream& in) {
  ModelFile model;
  index_t num_states = -1;
  std::vector<Triplet> transitions;
  std::vector<std::pair<index_t, double>> rewards;
  std::vector<std::pair<index_t, double>> initial;
  bool has_initial = false;
  bool has_explicit = false;  // any states/transition/... line seen
  std::string generator_family;
  GeneratorParams generator_params;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    if (keyword == "generator") {
      if (!generator_family.empty()) {
        parse_fail(line_no, "duplicate 'generator' line");
      }
      if (has_explicit) {
        parse_fail(line_no,
                   "'generator' cannot be mixed with explicit model lines");
      }
      if (!(line >> generator_family)) {
        parse_fail(line_no, "'generator' needs a family name");
      }
      std::string token;
      while (line >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == token.size() ||
            token.find('=', eq + 1) != std::string::npos) {
          parse_fail(line_no, "generator parameters must be key=value, got '" +
                                  token + "'");
        }
        generator_params.emplace_back(token.substr(0, eq),
                                      token.substr(eq + 1));
      }
      continue;
    }
    if (!generator_family.empty()) {
      parse_fail(line_no,
                 "'generator' must be the only content line, found '" +
                     keyword + "'");
    }
    has_explicit = true;

    auto need_states = [&] {
      if (num_states < 0) {
        parse_fail(line_no, "'states <N>' must come before '" + keyword +
                                "'");
      }
    };
    auto read_state = [&](const char* what) {
      long s = -1;
      if (!(line >> s) || s < 0 || s >= num_states) {
        parse_fail(line_no, std::string("bad ") + what + " state index");
      }
      return static_cast<index_t>(s);
    };

    if (keyword == "states") {
      long n = 0;
      if (num_states >= 0) parse_fail(line_no, "duplicate 'states' line");
      if (!(line >> n) || n <= 0) {
        parse_fail(line_no, "'states' needs a positive count");
      }
      num_states = static_cast<index_t>(n);
    } else if (keyword == "transition") {
      need_states();
      const index_t from = read_state("source");
      const index_t to = read_state("target");
      double rate = -1.0;
      if (!(line >> rate) || rate < 0.0) {
        parse_fail(line_no, "'transition' needs a non-negative rate");
      }
      if (from == to) parse_fail(line_no, "self-loop transitions not allowed");
      transitions.push_back({from, to, rate});
    } else if (keyword == "reward") {
      need_states();
      const index_t s = read_state("reward");
      double value = -1.0;
      if (!(line >> value) || value < 0.0) {
        parse_fail(line_no, "'reward' needs a non-negative value");
      }
      rewards.emplace_back(s, value);
    } else if (keyword == "initial") {
      need_states();
      const index_t s = read_state("initial");
      double p = -1.0;
      if (!(line >> p) || p < 0.0 || p > 1.0) {
        parse_fail(line_no, "'initial' needs a probability in [0, 1]");
      }
      initial.emplace_back(s, p);
      has_initial = true;
    } else if (keyword == "regenerative") {
      need_states();
      model.regenerative = read_state("regenerative");
    } else {
      parse_fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!generator_family.empty()) {
    // A generator file IS its spec: expansion (markov/generator.hpp) is
    // deterministic, validates the parameters, and stamps spec_key.
    return generate_model(generator_family, generator_params);
  }
  if (num_states < 0) {
    throw contract_error("model file: missing 'states' line");
  }

  model.chain = Ctmc::from_transitions(num_states, std::move(transitions));
  model.rewards.assign(static_cast<std::size_t>(num_states), 0.0);
  for (const auto& [s, v] : rewards) {
    model.rewards[static_cast<std::size_t>(s)] = v;
  }
  model.initial.assign(static_cast<std::size_t>(num_states), 0.0);
  if (has_initial) {
    for (const auto& [s, p] : initial) {
      model.initial[static_cast<std::size_t>(s)] = p;
    }
    double total = 0.0;
    for (const double p : model.initial) total += p;
    if (std::abs(total - 1.0) > 1e-9) {
      throw contract_error(
          "model file: initial distribution sums to " +
          std::to_string(total) + ", expected 1");
    }
  } else {
    model.initial[0] = 1.0;
  }
  return model;
}

ModelFile read_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw contract_error("cannot open model file: " + path);
  return read_model(in);
}

void write_model(std::ostream& out, const Ctmc& chain,
                 std::span<const double> rewards,
                 std::span<const double> initial, index_t regenerative) {
  RRL_EXPECTS(static_cast<index_t>(rewards.size()) == chain.num_states());
  RRL_EXPECTS(static_cast<index_t>(initial.size()) == chain.num_states());
  out << "# rrl model file\n";
  out << "states " << chain.num_states() << "\n";
  if (regenerative >= 0) out << "regenerative " << regenerative << "\n";
  out.precision(17);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != 0.0) {
      out << "initial " << i << " " << initial[i] << "\n";
    }
  }
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    if (rewards[i] != 0.0) {
      out << "reward " << i << " " << rewards[i] << "\n";
    }
  }
  const CsrMatrix& r = chain.rates();
  const auto row_ptr = r.row_ptr();
  const auto col_idx = r.col_idx();
  const auto values = r.values();
  for (index_t i = 0; i < chain.num_states(); ++i) {
    for (std::int64_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      out << "transition " << i << " "
          << col_idx[static_cast<std::size_t>(k)] << " "
          << values[static_cast<std::size_t>(k)] << "\n";
    }
  }
}

void write_model_file(const std::string& path, const Ctmc& chain,
                      std::span<const double> rewards,
                      std::span<const double> initial,
                      index_t regenerative) {
  std::ofstream out(path);
  if (!out) throw contract_error("cannot open output file: " + path);
  write_model(out, chain, rewards, initial, regenerative);
}

}  // namespace rrl
