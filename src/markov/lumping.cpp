#include "markov/lumping.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "support/contracts.hpp"
#include "support/fnv.hpp"

namespace rrl {
namespace {

// A state's refinement signature: its current block plus its aggregate
// rates into every OTHER current block (ordinary lumpability places no
// condition on intra-block rates, so excluding them yields a coarser —
// more reduction — and still exact partition). Aggregates are summed over
// the (block, rate) pairs sorted by block THEN rate, so two states whose
// outgoing rates into a block form the same multiset of doubles produce
// bit-identical sums — block membership must never hinge on summation
// order.
struct Signature {
  index_t own = 0;
  std::vector<std::pair<index_t, double>> rates;  // (target block, sum)

  bool operator==(const Signature& other) const {
    return own == other.own && rates == other.rates;
  }
};

struct SignatureHash {
  std::size_t operator()(const Signature& s) const {
    std::uint64_t h = kFnv1aOffset;
    fnv1a_mix(h, &s.own, sizeof(s.own));
    for (const auto& [block, rate] : s.rates) {
      fnv1a_mix(h, &block, sizeof(block));
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(rate);
      fnv1a_mix(h, &bits, sizeof(bits));
    }
    return static_cast<std::size_t>(h);
  }
};

// Aggregate `pairs` ((target block, rate), unsorted, possibly duplicated
// blocks) into sorted per-block sums, dropping `own`.
void aggregate(std::vector<std::pair<index_t, double>>& pairs, index_t own,
               std::vector<std::pair<index_t, double>>& out) {
  std::sort(pairs.begin(), pairs.end());
  out.clear();
  for (std::size_t i = 0; i < pairs.size();) {
    const index_t block = pairs[i].first;
    double sum = 0.0;
    for (; i < pairs.size() && pairs[i].first == block; ++i) {
      sum += pairs[i].second;
    }
    if (block != own) out.emplace_back(block, sum);
  }
}

}  // namespace

LumpResult lump_model(const ModelFile& model) {
  const index_t n = model.chain.num_states();
  RRL_EXPECTS(static_cast<index_t>(model.rewards.size()) == n);
  RRL_EXPECTS(static_cast<index_t>(model.initial.size()) == n);
  const CsrMatrix& rates = model.chain.rates();
  const auto row_ptr = rates.row_ptr();
  const auto col_idx = rates.col_idx();
  const auto values = rates.values();

  LumpResult result;
  result.original_states = n;
  result.block_of.assign(static_cast<std::size_t>(n), 0);

  // Initial partition: states of bit-identical reward, blocks numbered by
  // first occurrence (the reward vector is part of the measure, so it must
  // be constant on every block from the start).
  index_t num_blocks = 0;
  {
    std::unordered_map<std::uint64_t, index_t> by_reward;
    for (index_t s = 0; s < n; ++s) {
      const std::uint64_t key = std::bit_cast<std::uint64_t>(
          model.rewards[static_cast<std::size_t>(s)]);
      const auto [it, inserted] = by_reward.emplace(key, num_blocks);
      if (inserted) ++num_blocks;
      result.block_of[static_cast<std::size_t>(s)] = it->second;
    }
  }

  // Refinement: split blocks by the aggregate-rate signature until stable.
  // Each new block is a subset of an old one (the signature includes the
  // old block id), so an unchanged block count means an unchanged
  // partition. Terminates after at most n rounds; each round is
  // O(n + nnz log deg).
  std::vector<index_t> next_block(static_cast<std::size_t>(n));
  std::vector<std::pair<index_t, double>> scratch;
  for (;;) {
    std::unordered_map<Signature, index_t, SignatureHash> by_signature;
    by_signature.reserve(static_cast<std::size_t>(num_blocks) * 2);
    index_t next_count = 0;
    for (index_t s = 0; s < n; ++s) {
      Signature sig;
      sig.own = result.block_of[static_cast<std::size_t>(s)];
      scratch.clear();
      for (std::int64_t k = row_ptr[static_cast<std::size_t>(s)];
           k < row_ptr[static_cast<std::size_t>(s) + 1]; ++k) {
        scratch.emplace_back(
            result.block_of[static_cast<std::size_t>(
                col_idx[static_cast<std::size_t>(k)])],
            values[static_cast<std::size_t>(k)]);
      }
      aggregate(scratch, sig.own, sig.rates);
      const auto [it, inserted] =
          by_signature.emplace(std::move(sig), next_count);
      if (inserted) ++next_count;
      next_block[static_cast<std::size_t>(s)] = it->second;
    }
    if (next_count == num_blocks) break;
    result.block_of.swap(next_block);
    num_blocks = next_count;
  }

  // Assemble the lumped chain from one representative per block (the
  // block's smallest state — numbering by first occurrence makes that the
  // first state that named the block). The fixpoint guarantees every
  // member would produce the same aggregates, bit for bit.
  std::vector<index_t> representative(static_cast<std::size_t>(num_blocks),
                                      -1);
  for (index_t s = 0; s < n; ++s) {
    const index_t b = result.block_of[static_cast<std::size_t>(s)];
    if (representative[static_cast<std::size_t>(b)] < 0) {
      representative[static_cast<std::size_t>(b)] = s;
    }
  }

  std::vector<Triplet> lumped_rates;
  std::vector<std::pair<index_t, double>> out;
  for (index_t b = 0; b < num_blocks; ++b) {
    const index_t rep = representative[static_cast<std::size_t>(b)];
    scratch.clear();
    for (std::int64_t k = row_ptr[static_cast<std::size_t>(rep)];
         k < row_ptr[static_cast<std::size_t>(rep) + 1]; ++k) {
      scratch.emplace_back(
          result.block_of[static_cast<std::size_t>(
              col_idx[static_cast<std::size_t>(k)])],
          values[static_cast<std::size_t>(k)]);
    }
    aggregate(scratch, b, out);
    for (const auto& [target, sum] : out) {
      lumped_rates.push_back({b, target, sum});
    }
  }

  ModelFile& lumped = result.lumped;
  lumped.chain = Ctmc::from_transitions(num_blocks, std::move(lumped_rates));
  lumped.rewards.resize(static_cast<std::size_t>(num_blocks));
  for (index_t b = 0; b < num_blocks; ++b) {
    lumped.rewards[static_cast<std::size_t>(b)] =
        model.rewards[static_cast<std::size_t>(
            representative[static_cast<std::size_t>(b)])];
  }
  lumped.initial.assign(static_cast<std::size_t>(num_blocks), 0.0);
  for (index_t s = 0; s < n; ++s) {
    lumped.initial[static_cast<std::size_t>(
        result.block_of[static_cast<std::size_t>(s)])] +=
        model.initial[static_cast<std::size_t>(s)];
  }
  if (model.regenerative >= 0) {
    lumped.regenerative =
        result.block_of[static_cast<std::size_t>(model.regenerative)];
  }
  lumped.pre_lump_states = n;
  return result;
}

}  // namespace rrl
