#include "markov/scc.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace rrl {

SccResult strongly_connected_components(const CsrMatrix& adjacency) {
  RRL_EXPECTS(adjacency.rows() == adjacency.cols());
  const index_t n = adjacency.rows();
  const auto row_ptr = adjacency.row_ptr();
  const auto col_idx = adjacency.col_idx();

  constexpr index_t kUnvisited = -1;
  std::vector<index_t> low(static_cast<std::size_t>(n), 0);
  std::vector<index_t> num(static_cast<std::size_t>(n), kUnvisited);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<index_t> stack;
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), kUnvisited);

  // Explicit DFS frame: vertex + next out-edge cursor.
  struct Frame {
    index_t v;
    std::int64_t edge;
  };
  std::vector<Frame> dfs;
  index_t next_num = 0;

  for (index_t root = 0; root < n; ++root) {
    if (num[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.push_back({root, row_ptr[static_cast<std::size_t>(root)]});
    num[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] =
        next_num++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const index_t v = frame.v;
      if (frame.edge < row_ptr[static_cast<std::size_t>(v) + 1]) {
        const index_t w = col_idx[static_cast<std::size_t>(frame.edge++)];
        if (num[static_cast<std::size_t>(w)] == kUnvisited) {
          num[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = next_num++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          dfs.push_back({w, row_ptr[static_cast<std::size_t>(w)]});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)],
                       num[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      // All edges of v explored: close the frame.
      if (low[static_cast<std::size_t>(v)] ==
          num[static_cast<std::size_t>(v)]) {
        index_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          result.component[static_cast<std::size_t>(w)] = result.count;
        } while (w != v);
        ++result.count;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const index_t parent = dfs.back().v;
        low[static_cast<std::size_t>(parent)] =
            std::min(low[static_cast<std::size_t>(parent)],
                     low[static_cast<std::size_t>(v)]);
      }
    }
  }
  return result;
}

}  // namespace rrl
