// Stable Poisson arithmetic for randomization (uniformization) methods.
//
// Randomization expresses transient CTMC quantities as Poisson mixtures
//   TRR(t) = sum_n  pois(n; Lambda*t) * d(n),
// so every solver needs Poisson pmf values, left/right tails, truncation
// points, and the partial expectation E[(N-k)^+] used by the regenerative
// truncation criterion. This module follows the Fox-Glynn idea: compute the
// pmf by outward recursion from the mode (where it is representable), keep
// only the numerically significant window, normalize, and precompute prefix
// and suffix sums so that both tails are available without 1-x cancellation.
// Means up to ~1e7 (the paper's largest is Lambda*t ~ 4.4e6) are handled with
// absolute tail accuracy near machine epsilon.
#pragma once

#include <cstdint>
#include <vector>

namespace rrl {

/// Precomputed Poisson distribution with mean `mean` (= Lambda * t).
class PoissonDistribution {
 public:
  /// Precondition: mean >= 0 and finite. mean == 0 degenerates to N == 0.
  explicit PoissonDistribution(double mean);

  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// First / last index of the numerically significant pmf window.
  [[nodiscard]] std::int64_t window_first() const noexcept { return first_; }
  [[nodiscard]] std::int64_t window_last() const noexcept { return last_; }

  /// P[N == n]; exactly zero outside the significant window (mass outside is
  /// below ~1e-30 relative and is accounted to the adjacent tail).
  [[nodiscard]] double pmf(std::int64_t n) const noexcept;

  /// P[N <= n], computed from prefix sums (no cancellation for small n).
  [[nodiscard]] double cdf(std::int64_t n) const noexcept;

  /// P[N >= n], computed from suffix sums (no cancellation for large n).
  [[nodiscard]] double tail(std::int64_t n) const noexcept;

  /// E[(N - k)^+] = mean * P[N >= k] - k * P[N >= k+1]. Used by the
  /// regenerative-randomization model-truncation bound.
  [[nodiscard]] double expected_excess(std::int64_t k) const noexcept;

  /// Smallest n with P[N > n] <= eps: summing n = 0..n covers the mixture up
  /// to eps. This is the step count of standard randomization.
  [[nodiscard]] std::int64_t right_truncation_point(double eps) const noexcept;

  /// Largest n with P[N < n] <= eps (0 if none); terms below it may be
  /// skipped when accumulating mixtures.
  [[nodiscard]] std::int64_t left_truncation_point(double eps) const noexcept;

 private:
  double mean_ = 0.0;
  std::int64_t first_ = 0;  // window start (inclusive)
  std::int64_t last_ = 0;   // window end (inclusive)
  std::vector<double> pmf_;     // pmf over [first_, last_]
  std::vector<double> prefix_;  // prefix_[i] = P[N <= first_ + i]
  std::vector<double> suffix_;  // suffix_[i] = P[N >= first_ + i]
};

/// log(n!) via lgamma.
[[nodiscard]] double log_factorial(std::int64_t n) noexcept;

/// Stable single-value log pmf: n*log(m) - m - log(n!). Valid for any n, m>0.
[[nodiscard]] double poisson_log_pmf(std::int64_t n, double mean) noexcept;

}  // namespace rrl
