#include "markov/dtmc.hpp"

#include "support/contracts.hpp"

namespace rrl {

RandomizedDtmc::RandomizedDtmc(const Ctmc& chain, double rate_factor) {
  RRL_EXPECTS(chain.max_exit_rate() > 0.0);
  RRL_EXPECTS(rate_factor >= 1.0);
  lambda_ = rate_factor * chain.max_exit_rate();

  const index_t n = chain.num_states();
  const CsrMatrix& rates = chain.rates();
  const auto exit = chain.exit_rates();

  std::vector<Triplet> entries;
  entries.reserve(static_cast<std::size_t>(rates.nnz()) +
                  static_cast<std::size_t>(n));
  const auto row_ptr = rates.row_ptr();
  const auto col_idx = rates.col_idx();
  const auto values = rates.values();
  self_loop_.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    // Transposed: P(i, j) becomes entry (j, i).
    for (std::int64_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      entries.push_back({col_idx[static_cast<std::size_t>(k)], i,
                         values[static_cast<std::size_t>(k)] / lambda_});
    }
    const double stay = 1.0 - exit[static_cast<std::size_t>(i)] / lambda_;
    self_loop_[static_cast<std::size_t>(i)] = stay;
    if (stay != 0.0) entries.push_back({i, i, stay});
  }
  pt_ = CsrMatrix::from_triplets(n, n, std::move(entries));
  // Format-specialization pass: randomization is compile-time work and the
  // matrix is about to be stepped thousands of times, so derive the
  // blocked kernel layout now (bit-identical products either way).
  pt_.specialize();
}

RandomizedDtmc RandomizedDtmc::from_parts(CsrMatrix pt,
                                          std::vector<double> self_loop,
                                          double lambda) {
  RRL_EXPECTS(lambda > 0.0);
  RRL_EXPECTS(pt.rows() == pt.cols());
  RRL_EXPECTS(self_loop.size() == static_cast<std::size_t>(pt.rows()));
  RandomizedDtmc dtmc;
  dtmc.pt_ = std::move(pt);
  // Specialized formats are derived, never serialized: an artifact import
  // lands here with plain CSR arrays and re-runs the specialization pass.
  dtmc.pt_.specialize();
  dtmc.self_loop_ = std::move(self_loop);
  dtmc.lambda_ = lambda;
  return dtmc;
}

}  // namespace rrl
