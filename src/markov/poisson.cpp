#include "markov/poisson.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {

namespace {
// Weights whose ratio to the mode weight is below this threshold are treated
// as numerically zero; their true total mass is far below any eps the solvers
// request (the window then extends ~ sqrt(2*69*ln10) ~ 18 std deviations).
constexpr double kRelativeFloor = 1e-30;
}  // namespace

double log_factorial(std::int64_t n) noexcept {
  // Not std::lgamma: that one stores the gamma sign in the GLOBAL signgam
  // variable (POSIX), a data race when Poisson windows are built on
  // concurrent sweep workers. lgamma_r takes the sign slot explicitly and
  // is thread-safe; the argument n + 1 >= 1 makes the sign always +1.
#if defined(_GNU_SOURCE) || defined(__USE_MISC) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

double poisson_log_pmf(std::int64_t n, double mean) noexcept {
  if (mean <= 0.0) return n == 0 ? 0.0 : -HUGE_VAL;
  return static_cast<double>(n) * std::log(mean) - mean - log_factorial(n);
}

PoissonDistribution::PoissonDistribution(double mean) : mean_(mean) {
  RRL_EXPECTS(mean >= 0.0 && std::isfinite(mean));
  if (mean == 0.0) {
    first_ = last_ = 0;
    pmf_ = {1.0};
    prefix_ = {1.0};
    suffix_ = {1.0};
    return;
  }

  const auto mode = static_cast<std::int64_t>(std::floor(mean));
  const double log_pmode = poisson_log_pmf(mode, mean);

  // Grow the window outward from the mode until the relative weight drops
  // below the floor. Work with weights normalized to the mode (value 1 at the
  // mode) so that no underflow occurs even for huge means.
  std::vector<double> down;  // weights for n = mode-1, mode-2, ...
  std::vector<double> up;    // weights for n = mode+1, mode+2, ...
  {
    double w = 1.0;
    for (std::int64_t n = mode; n > 0; --n) {
      w *= static_cast<double>(n) / mean;  // pmf(n-1)/pmf(n) = n/mean
      if (w < kRelativeFloor) break;
      down.push_back(w);
    }
  }
  {
    double w = 1.0;
    for (std::int64_t n = mode;; ++n) {
      w *= mean / static_cast<double>(n + 1);  // pmf(n+1)/pmf(n)
      if (w < kRelativeFloor) break;
      up.push_back(w);
    }
  }

  first_ = mode - static_cast<std::int64_t>(down.size());
  last_ = mode + static_cast<std::int64_t>(up.size());
  const std::size_t len = static_cast<std::size_t>(last_ - first_ + 1);
  pmf_.resize(len);
  const std::size_t mode_pos = down.size();
  pmf_[mode_pos] = 1.0;
  for (std::size_t i = 0; i < down.size(); ++i) {
    pmf_[mode_pos - 1 - i] = down[i];
  }
  for (std::size_t i = 0; i < up.size(); ++i) {
    pmf_[mode_pos + 1 + i] = up[i];
  }

  // Normalize so the window sums to exactly 1. The true mass outside the
  // window is below ~1e-30 * window-size, so the normalized weights agree
  // with the true pmf (exp(log_pmode) * w) to ~1e-13 relative while making
  // prefix and suffix sums exactly consistent. log_pmode is only needed to
  // confirm the mode weight is representable.
  RRL_ENSURES(std::isfinite(log_pmode));
  CompensatedSum total;
  for (const double w : pmf_) total.add(w);
  const double unit = 1.0 / total.value();
  for (double& w : pmf_) w *= unit;

  prefix_.resize(len);
  suffix_.resize(len);
  {
    CompensatedSum acc;
    for (std::size_t i = 0; i < len; ++i) {
      acc.add(pmf_[i]);
      prefix_[i] = std::min(1.0, acc.value());
    }
  }
  {
    CompensatedSum acc;
    for (std::size_t i = len; i-- > 0;) {
      acc.add(pmf_[i]);
      suffix_[i] = std::min(1.0, acc.value());
    }
  }
}

double PoissonDistribution::pmf(std::int64_t n) const noexcept {
  if (n < first_ || n > last_) return 0.0;
  return pmf_[static_cast<std::size_t>(n - first_)];
}

double PoissonDistribution::cdf(std::int64_t n) const noexcept {
  if (n < first_) return 0.0;
  if (n > last_) return 1.0;
  return prefix_[static_cast<std::size_t>(n - first_)];
}

double PoissonDistribution::tail(std::int64_t n) const noexcept {
  if (n <= first_) return 1.0;
  if (n > last_) return 0.0;
  return suffix_[static_cast<std::size_t>(n - first_)];
}

double PoissonDistribution::expected_excess(std::int64_t k) const noexcept {
  if (k < 0) return mean_ - static_cast<double>(k);
  if (k >= last_) return 0.0;
  // E[(N-k)^+] = sum_{n>k} (n-k) pmf(n) = mean*P[N>=k] - k*P[N>=k+1].
  // Evaluated from suffix sums; for k far below the window both tails are 1
  // and the expression reduces to mean - k exactly.
  return mean_ * tail(k) - static_cast<double>(k) * tail(k + 1);
}

std::int64_t PoissonDistribution::right_truncation_point(
    double eps) const noexcept {
  // Smallest n with P[N > n] <= eps. Scan the suffix array from the right;
  // the window is tiny compared to solver work so a linear scan is fine, but
  // the suffix array is monotone so use binary search for cleanliness.
  if (eps >= 1.0) return std::max<std::int64_t>(first_ - 1, 0);
  // find first index i where suffix_[i] <= eps  => P[N >= first_+i] <= eps,
  // so P[N > n] <= eps for n = first_+i-1.
  const auto it = std::lower_bound(
      suffix_.begin(), suffix_.end(), eps,
      [](double s, double e) { return s > e; });
  if (it == suffix_.end()) return last_;
  const std::int64_t i = it - suffix_.begin();
  return std::max<std::int64_t>(first_ + i - 1, 0);
}

std::int64_t PoissonDistribution::left_truncation_point(
    double eps) const noexcept {
  // Largest n with P[N < n] <= eps.
  if (first_ == 0 && prefix_.empty()) return 0;
  std::int64_t n = first_;
  // prefix_[i] = P[N <= first_+i]; P[N < first_] <= window floor ~ 0.
  for (std::size_t i = 0; i < prefix_.size(); ++i) {
    if (prefix_[i] <= eps) {
      n = first_ + static_cast<std::int64_t>(i) + 1;
    } else {
      break;
    }
  }
  return n;
}

}  // namespace rrl
