// Steady-state solvers for irreducible CTMCs.
//
// Two engines: GTH (Grassmann-Taksar-Heyman) elimination, the numerically
// benign direct method (no subtractions) for small chains; and power
// iteration on the randomized DTMC for larger sparse chains. Used to
// cross-validate randomization with steady-state detection (RSD) and as a
// reference in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rrl {

/// Stationary distribution by dense GTH elimination.
/// Precondition: chain irreducible and num_states() <= max_dense_states.
/// Complexity O(n^3) time, O(n^2) memory.
[[nodiscard]] std::vector<double> gth_steady_state(
    const Ctmc& chain, index_t max_dense_states = 2048);

/// Result of the sparse power iteration.
struct PowerIterationResult {
  std::vector<double> distribution;
  std::int64_t iterations = 0;
  bool converged = false;
  double final_delta = 0.0;  // last L1 step difference
};

/// Stationary distribution of an irreducible (and, via self-loops,
/// aperiodic) randomized DTMC by power iteration: pi <- pi P until the L1
/// difference of consecutive iterates is <= tol.
[[nodiscard]] PowerIterationResult power_steady_state(
    const RandomizedDtmc& dtmc, double tol = 1e-13,
    std::int64_t max_iterations = 2'000'000);

}  // namespace rrl
