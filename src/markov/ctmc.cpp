#include "markov/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "markov/scc.hpp"
#include "support/contracts.hpp"

namespace rrl {

Ctmc Ctmc::from_transitions(index_t num_states, std::vector<Triplet> rates) {
  RRL_EXPECTS(num_states > 0);
  std::vector<Triplet> kept;
  kept.reserve(rates.size());
  for (const Triplet& t : rates) {
    RRL_EXPECTS(std::isfinite(t.value) && t.value >= 0.0);
    RRL_EXPECTS(t.row != t.col);  // CTMC self-rates are meaningless
    if (t.value > 0.0) kept.push_back(t);
  }
  Ctmc chain;
  chain.rates_ = CsrMatrix::from_triplets(num_states, num_states,
                                          std::move(kept));
  chain.exit_rates_ = chain.rates_.row_sums();
  chain.max_exit_ =
      chain.exit_rates_.empty()
          ? 0.0
          : *std::max_element(chain.exit_rates_.begin(),
                              chain.exit_rates_.end());
  return chain;
}

std::vector<index_t> Ctmc::absorbing_states() const {
  std::vector<index_t> result;
  for (index_t i = 0; i < num_states(); ++i) {
    if (is_absorbing(i)) result.push_back(i);
  }
  return result;
}

CtmcStructure classify_structure(const Ctmc& chain) {
  CtmcStructure s;
  s.absorbing = chain.absorbing_states();

  // SCC over the whole graph; non-absorbing states must form exactly one
  // component among themselves. Absorbing states are singleton components.
  const SccResult scc = strongly_connected_components(chain.rates());
  std::vector<bool> comp_has_transient(static_cast<std::size_t>(scc.count),
                                       false);
  for (index_t i = 0; i < chain.num_states(); ++i) {
    if (!chain.is_absorbing(i)) {
      comp_has_transient[static_cast<std::size_t>(
          scc.component[static_cast<std::size_t>(i)])] = true;
    }
  }
  s.transient_scc_count = static_cast<index_t>(
      std::count(comp_has_transient.begin(), comp_has_transient.end(), true));
  s.valid = (s.transient_scc_count == 1) ||
            (chain.num_states() == static_cast<index_t>(s.absorbing.size()));
  s.irreducible = s.valid && s.absorbing.empty();
  return s;
}

}  // namespace rrl
