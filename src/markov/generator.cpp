#include "markov/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "markov/builder.hpp"
#include "markov/lumping.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

[[noreturn]] void gen_fail(const std::string& message) {
  throw contract_error("generator: " + message);
}

/// Hard expansion cap, matching the builder's default safety valve.
constexpr std::int64_t kMaxStates = 10'000'000;

std::string print_int(std::int64_t v) { return std::to_string(v); }

std::string print_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Typed access to the raw key=value pairs. Every get_* records the
// EFFECTIVE value (defaults included) under its key, so canonical() names
// the expansion exactly: two spellings of the same spec — params
// reordered, defaults elided or written out, "1e-3" vs "0.001" — yield
// the same canonical string, hence the same model hash.
class Params {
 public:
  Params(std::string family, const GeneratorParams& raw)
      : family_(std::move(family)) {
    for (const auto& [key, value] : raw) {
      if (!raw_.emplace(key, value).second) {
        gen_fail("duplicate parameter '" + key + "'");
      }
    }
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t lo,
                                     std::int64_t hi,
                                     std::int64_t fallback = INT64_MIN) {
    std::int64_t v = fallback;
    const auto it = raw_.find(key);
    if (it == raw_.end()) {
      if (fallback == INT64_MIN) {
        gen_fail("family '" + family_ + "' needs parameter '" + key + "'");
      }
    } else {
      const char* text = it->second.c_str();
      char* end = nullptr;
      v = std::strtoll(text, &end, 10);
      if (end == text || *end != '\0') {
        gen_fail("parameter '" + key + "' needs an integer, got '" +
                 it->second + "'");
      }
    }
    if (v < lo || v > hi) {
      gen_fail("parameter '" + key + "' out of range [" + print_int(lo) +
               ", " + print_int(hi) + "]: " + print_int(v));
    }
    canonical_.emplace(key, print_int(v));
    return v;
  }

  [[nodiscard]] double get_double(const std::string& key, double lo,
                                  double fallback = -1.0,
                                  bool has_fallback = false) {
    double v = fallback;
    const auto it = raw_.find(key);
    if (it == raw_.end()) {
      if (!has_fallback) {
        gen_fail("family '" + family_ + "' needs parameter '" + key + "'");
      }
    } else {
      const char* text = it->second.c_str();
      char* end = nullptr;
      v = std::strtod(text, &end);
      if (end == text || *end != '\0' || !std::isfinite(v)) {
        gen_fail("parameter '" + key + "' needs a finite number, got '" +
                 it->second + "'");
      }
    }
    if (v < lo) {
      gen_fail("parameter '" + key + "' must be >= " + print_double(lo) +
               ", got " + print_double(v));
    }
    canonical_.emplace(key, print_double(v));
    return v;
  }

  [[nodiscard]] bool get_flag(const std::string& key, bool fallback) {
    return get_int(key, 0, 1, fallback ? 1 : 0) != 0;
  }

  /// Reject any parameter no family getter consumed.
  void finish() const {
    for (const auto& entry : raw_) {
      if (canonical_.count(entry.first) == 0) {
        gen_fail("unknown parameter '" + entry.first + "' for family '" +
                 family_ + "'");
      }
    }
  }

  /// Family + every effective parameter, sorted by key.
  [[nodiscard]] std::string canonical() const {
    std::string spec = family_;
    for (const auto& [key, value] : canonical_) {
      spec += ' ';
      spec += key;
      spec += '=';
      spec += value;
    }
    return spec;
  }

 private:
  std::string family_;
  std::map<std::string, std::string> raw_;
  std::map<std::string, std::string> canonical_;
};

/// (base)^exp with the kMaxStates overflow guard, as the exact state count
/// of the tuple-structured families.
std::int64_t checked_power(std::int64_t base, std::int64_t exp,
                           const std::string& what) {
  std::int64_t count = 1;
  for (std::int64_t i = 0; i < exp; ++i) {
    if (count > kMaxStates / base) {
      gen_fail(what + " would expand beyond the " + print_int(kMaxStates) +
               "-state cap");
    }
    count *= base;
  }
  return count;
}

// Per-group / per-tier counts packed one byte each into a u64 state (the
// family validators cap the per-position count at 250 and the positions
// at 8).
std::int64_t unpack(std::uint64_t s, int i) {
  return static_cast<std::int64_t>((s >> (8 * i)) & 0xff);
}
std::uint64_t repack(std::uint64_t s, int i, std::int64_t c) {
  const int shift = 8 * i;
  return (s & ~(std::uint64_t{0xff} << shift)) |
         (static_cast<std::uint64_t>(c) << shift);
}

using Builder = StateSpaceBuilder<std::uint64_t>;

/// Shared tail of every family: run the reserved BFS from the all-up /
/// empty state 0, then attach rewards, unit initial mass on state 0 and
/// state 0 as the regenerative hint (it is the natural "everything fresh"
/// regeneration point of all three families).
template <class ExpandFn, class RewardFn>
ModelFile assemble(std::int64_t expected_states,
                   std::int64_t transition_bound, const ExpandFn& expand,
                   const RewardFn& reward_of) {
  ReserveHint hint;
  hint.states = static_cast<index_t>(expected_states);
  hint.transitions = transition_bound;
  Builder::Result result = Builder::explore(
      {0}, expand, static_cast<index_t>(expected_states), hint);
  RRL_ENSURES(static_cast<std::int64_t>(result.states.size()) ==
              expected_states);

  ModelFile file;
  file.chain = std::move(result.chain);
  const std::size_t n = result.states.size();
  file.rewards.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    file.rewards[i] = reward_of(result.states[i]);
  }
  file.initial.assign(n, 0.0);
  file.initial[0] = 1.0;
  file.regenerative = 0;
  return file;
}

ModelFile build_k_of_n(Params& p) {
  const std::int64_t n = p.get_int("n", 1, 250);
  const std::int64_t k = p.get_int("k", 1, n);
  const std::int64_t groups = p.get_int("groups", 1, 8);
  const double lambda = p.get_double("lambda", 0.0);
  const double mu = p.get_double("mu", 0.0);
  if (lambda <= 0.0 || mu <= 0.0) {
    gen_fail("k_of_n needs lambda > 0 and mu > 0");
  }
  const std::int64_t states = checked_power(n + 1, groups, "k_of_n");
  const std::int64_t max_failed = n - k;  // group down when failed > this

  auto expand = [&](const std::uint64_t& s, const Builder::EmitFn& emit) {
    for (int i = 0; i < groups; ++i) {
      const std::int64_t c = unpack(s, i);
      if (c < n) {
        emit(repack(s, i, c + 1), static_cast<double>(n - c) * lambda);
      }
      if (c > 0) emit(repack(s, i, c - 1), mu);
    }
  };
  auto reward_of = [&](std::uint64_t s) {
    for (int i = 0; i < groups; ++i) {
      if (unpack(s, i) > max_failed) return 1.0;  // some group is down
    }
    return 0.0;
  };
  return assemble(states, 2 * groups * states, expand, reward_of);
}

ModelFile build_tiered_repair(Params& p) {
  const std::int64_t tiers = p.get_int("tiers", 1, 8);
  const std::int64_t n = p.get_int("n", 1, 250);
  const std::int64_t k = p.get_int("k", 1, n);
  const double lambda = p.get_double("lambda", 0.0);
  const double mu = p.get_double("mu", 0.0);
  const double scale = p.get_double("scale", 0.0, 1.0, true);
  const std::int64_t repairmen =
      p.get_int("repairmen", 1, tiers * n, tiers * n);
  if (lambda <= 0.0 || mu <= 0.0 || scale <= 0.0) {
    gen_fail("tiered_repair needs lambda > 0, mu > 0 and scale > 0");
  }
  const std::int64_t states = checked_power(n + 1, tiers, "tiered_repair");

  std::vector<double> tier_lambda(static_cast<std::size_t>(tiers));
  for (std::int64_t t = 0; t < tiers; ++t) {
    tier_lambda[static_cast<std::size_t>(t)] =
        lambda * std::pow(scale, static_cast<double>(t));
  }

  auto expand = [&](const std::uint64_t& s, const Builder::EmitFn& emit) {
    std::int64_t free_repairmen = repairmen;
    for (int t = 0; t < tiers; ++t) {
      const std::int64_t c = unpack(s, t);
      if (c < n) {
        emit(repack(s, t, c + 1),
             static_cast<double>(n - c) *
                 tier_lambda[static_cast<std::size_t>(t)]);
      }
      // Preemptive priority: lower tiers grab repairmen first.
      const std::int64_t assigned = std::min(c, free_repairmen);
      free_repairmen -= assigned;
      if (assigned > 0) {
        emit(repack(s, t, c - 1), static_cast<double>(assigned) * mu);
      }
    }
  };
  auto reward_of = [&](std::uint64_t s) {
    double up = 0.0;
    for (int t = 0; t < tiers; ++t) {
      if (unpack(s, t) <= n - k) up += 1.0;
    }
    return up;
  };
  return assemble(states, 2 * tiers * states, expand, reward_of);
}

ModelFile build_queue(Params& p) {
  const std::int64_t capacity = p.get_int("capacity", 1, kMaxStates);
  const std::int64_t servers = p.get_int("servers", 1, 64);
  const double arrival = p.get_double("arrival", 0.0);
  const double service = p.get_double("service", 0.0);
  const double fail = p.get_double("fail", 0.0, 0.0, true);
  const double repair = p.get_double("repair", 0.0, 0.0, true);
  if (arrival <= 0.0 || service <= 0.0) {
    gen_fail("queue needs arrival > 0 and service > 0");
  }
  if (fail > 0.0 && repair <= 0.0) {
    gen_fail("queue needs repair > 0 when fail > 0 (no way back up)");
  }
  // Without breakdowns the up-server count never leaves `servers`, so the
  // reachable space is one band of the (jobs, up) grid.
  const std::int64_t bands = fail > 0.0 ? servers + 1 : 1;
  if (capacity + 1 > kMaxStates / bands) {
    gen_fail("queue would expand beyond the " + print_int(kMaxStates) +
             "-state cap");
  }
  const std::int64_t states = (capacity + 1) * bands;

  const auto jobs_of = [](std::uint64_t s) {
    return static_cast<std::int64_t>(s & 0xffffffffULL);
  };
  const auto up_of = [](std::uint64_t s) {
    return static_cast<std::int64_t>(s >> 32);
  };
  const auto make = [](std::int64_t jobs, std::int64_t up) {
    return static_cast<std::uint64_t>(jobs) |
           (static_cast<std::uint64_t>(up) << 32);
  };

  auto expand = [&](const std::uint64_t& s, const Builder::EmitFn& emit) {
    const std::int64_t jobs = jobs_of(s);
    const std::int64_t up = up_of(s);
    if (jobs < capacity) emit(make(jobs + 1, up), arrival);
    const std::int64_t busy = std::min(jobs, up);
    if (busy > 0) {
      emit(make(jobs - 1, up), static_cast<double>(busy) * service);
    }
    if (fail > 0.0 && up > 0) {
      emit(make(jobs, up - 1), static_cast<double>(up) * fail);
    }
    if (up < servers) {
      emit(make(jobs, up + 1), static_cast<double>(servers - up) * repair);
    }
  };
  auto reward_of = [&](std::uint64_t s) {
    return static_cast<double>(std::min(jobs_of(s), up_of(s))) * service;
  };

  // Initial state: empty queue, all servers up.
  ReserveHint hint;
  hint.states = static_cast<index_t>(states);
  hint.transitions = 4 * states;
  Builder::Result result =
      Builder::explore({make(0, servers)}, expand,
                       static_cast<index_t>(states), hint);
  RRL_ENSURES(static_cast<std::int64_t>(result.states.size()) == states);

  ModelFile file;
  file.chain = std::move(result.chain);
  const std::size_t count = result.states.size();
  file.rewards.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    file.rewards[i] = reward_of(result.states[i]);
  }
  file.initial.assign(count, 0.0);
  file.initial[0] = 1.0;
  file.regenerative = 0;
  return file;
}

}  // namespace

ModelFile generate_model(const std::string& family,
                         const GeneratorParams& params) {
  Params p(family, params);
  const bool lump = p.get_flag("lump", false);

  ModelFile file;
  if (family == "k_of_n") {
    file = build_k_of_n(p);
  } else if (family == "tiered_repair") {
    file = build_tiered_repair(p);
  } else if (family == "queue") {
    file = build_queue(p);
  } else {
    std::string known;
    for (const std::string& f : generator_families()) {
      if (!known.empty()) known += ", ";
      known += f;
    }
    gen_fail("unknown family '" + family + "' (known: " + known + ")");
  }
  p.finish();
  const std::string spec = p.canonical();

  if (lump) {
    LumpResult lumped = lump_model(file);
    file = std::move(lumped.lumped);
  }
  file.spec_key = spec;
  return file;
}

std::vector<std::string> generator_families() {
  return {"k_of_n", "tiered_repair", "queue"};
}

}  // namespace rrl
