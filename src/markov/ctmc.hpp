// Homogeneous continuous-time Markov chain representation.
//
// The paper assumes state space Omega = S u {f_1..f_A} with the f_i absorbing
// and all states of S strongly connected with paths to the f_i (A = 0 means X
// is irreducible). This module stores the off-diagonal rate matrix in CSR
// form together with per-state exit rates, and provides the structural
// classification needed to validate that assumption.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace rrl {

/// Immutable CTMC: off-diagonal transition rates + exit rates.
class Ctmc {
 public:
  Ctmc() = default;

  /// Build from a triplet list of off-diagonal rates.
  /// Preconditions: rates are finite and non-negative; no diagonal entries.
  /// Zero-rate entries are dropped; duplicates are summed.
  static Ctmc from_transitions(index_t num_states,
                               std::vector<Triplet> rates);

  [[nodiscard]] index_t num_states() const noexcept {
    return rates_.rows();
  }
  [[nodiscard]] std::int64_t num_transitions() const noexcept {
    return rates_.nnz();
  }

  /// Off-diagonal rate matrix R; row i holds the rates out of state i.
  [[nodiscard]] const CsrMatrix& rates() const noexcept { return rates_; }

  /// Total output rate of each state (row sums of R).
  [[nodiscard]] std::span<const double> exit_rates() const noexcept {
    return exit_rates_;
  }

  /// Maximum output rate over all states (the paper's Lambda before any
  /// safety factor).
  [[nodiscard]] double max_exit_rate() const noexcept { return max_exit_; }

  [[nodiscard]] bool is_absorbing(index_t i) const {
    return exit_rates_[static_cast<std::size_t>(i)] == 0.0;
  }

  /// Indices of all absorbing states, in increasing order.
  [[nodiscard]] std::vector<index_t> absorbing_states() const;

 private:
  CsrMatrix rates_;
  std::vector<double> exit_rates_;
  double max_exit_ = 0.0;
};

/// Result of checking the paper's structural assumption on a CTMC.
struct CtmcStructure {
  /// True iff the non-absorbing states form one strongly connected component
  /// and (when reachable_from is given) every state is reachable.
  bool valid = false;
  /// True iff there are no absorbing states (A = 0) and the chain is
  /// irreducible.
  bool irreducible = false;
  /// The absorbing states f_1..f_A in index order.
  std::vector<index_t> absorbing;
  /// Number of strongly connected components among non-absorbing states.
  index_t transient_scc_count = 0;
};

/// Classify a CTMC against the paper's assumptions (Section 1): S strongly
/// connected, f_i absorbing.
[[nodiscard]] CtmcStructure classify_structure(const Ctmc& chain);

}  // namespace rrl
