// Randomized (uniformized) DTMC.
//
// Randomization with rate Lambda >= max exit rate turns the CTMC X into the
// DTMC X^ with transition matrix P = I + Q/Lambda subordinated to a Poisson
// process of rate Lambda. This class materializes P transposed in CSR form so
// that distribution stepping pi' = pi * P is a gather-style SpMV.
#pragma once

#include <span>
#include <vector>

#include "markov/ctmc.hpp"

namespace rrl {

class RandomizedDtmc {
 public:
  /// Randomize `chain` with Lambda = rate_factor * max_exit_rate().
  /// rate_factor = 1 reproduces the paper's choice (Lambda = max output
  /// rate); factors > 1 add self-loop slack (useful to guarantee
  /// aperiodicity for steady-state detection).
  /// Precondition: chain.max_exit_rate() > 0 and rate_factor >= 1.
  explicit RandomizedDtmc(const Ctmc& chain, double rate_factor = 1.0);

  /// Re-assemble a randomized DTMC from previously exported parts — the
  /// compile → execute import path (core/compiled_artifact.hpp): `pt` is
  /// P transposed in CSR gather form exactly as transition_transposed()
  /// returns it, `self_loop` the per-state stay probabilities, `lambda`
  /// the randomization rate. Preconditions: pt square, self_loop sized to
  /// its rows, lambda > 0.
  static RandomizedDtmc from_parts(CsrMatrix pt,
                                   std::vector<double> self_loop,
                                   double lambda);

  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] index_t num_states() const noexcept {
    return pt_.rows();
  }

  /// out = in * P  (one randomization step of a probability vector).
  /// Preconditions: sizes match num_states(); in and out are distinct.
  void step(std::span<const double> in, std::span<double> out) const {
    pt_.mul_vec(in, out);
  }

  /// out = in * P with the gather rows partitioned across `pool`
  /// (bit-identical to the serial step — see CsrMatrix::mul_vec).
  void step(std::span<const double> in, std::span<double> out,
            ThreadPool& pool) const {
    pt_.mul_vec(in, out, pool);
  }

  /// P transposed, row j = incoming probabilities of state j.
  [[nodiscard]] const CsrMatrix& transition_transposed() const noexcept {
    return pt_;
  }

  /// Self-loop probability of state i: 1 - exit(i)/Lambda.
  [[nodiscard]] double self_loop(index_t i) const {
    return self_loop_[static_cast<std::size_t>(i)];
  }

  /// All self-loop probabilities (the from_parts export counterpart).
  [[nodiscard]] std::span<const double> self_loops() const noexcept {
    return self_loop_;
  }

 private:
  RandomizedDtmc() = default;  // for from_parts

  CsrMatrix pt_;
  std::vector<double> self_loop_;
  double lambda_ = 0.0;
};

}  // namespace rrl
