// Parametric CTMC families: large models from a few-line spec.
//
// The models this library was seeded with (RAID-5, multiproc, cluster)
// have tens of states; the fleet, cache and SIMD layers want 10^5..10^7.
// Rather than shipping megabyte .rrlm files, a model file (or a .study
// referencing one) carries a single line
//
//   generator <family> <key>=<value> ...
//
// and the reader expands it on the fly (io/model_format.hpp routes here).
// Expansion is DETERMINISTIC — same spec, same chain, byte for byte — so
// a spec names its content exactly: remote study workers re-expand
// instead of receiving the chain, and hash_model() hashes the canonical
// spec string instead of walking the CSR arrays.
//
// Families (all rates per hour, all validated with precise errors):
//
//   k_of_n     g exchangeable groups of n components, group down when
//              more than n-k have failed (i.e. fewer than k working),
//              per-component failure rate lambda, one repairman per group
//              at rate mu. Reward 1 while ANY group is down (system
//              unavailability). States: (n+1)^g ordered tuples — the
//              groups are interchangeable, so `lump=1` collapses them to
//              the C(n+g, g) multisets (orders of magnitude).
//              Params: n, k, groups, lambda, mu [, lump].
//
//   tiered_repair  T tiers of n components; tier t fails at rate
//              lambda * scale^t; a shared pool of `repairmen` works at
//              rate mu each, assigned preemptively to the lowest-index
//              tier with failures first. Reward = number of tiers with at
//              least k components up (performability: surviving
//              capacity). scale=1 with a full repair pool makes the tiers
//              exchangeable (lumpable); scale != 1 grades the symmetry
//              away — lumping stays exact either way.
//              Params: tiers, n, k, lambda, mu [, scale, repairmen, lump].
//
//   queue      M/M/c/K queue with server breakdowns: jobs 0..capacity,
//              up-servers 0..servers; arrivals `arrival`, per-server
//              service `service`, per-server failure `fail`, per-server
//              repair `repair`. Reward = min(jobs, up) * service
//              (instantaneous throughput — a queueing-style
//              performability measure). Large `capacity` with fast
//              arrival/service against slow fail/repair is the stiff,
//              banded, symmetry-free stress case for the Krylov solver.
//              Params: capacity, servers, arrival, service [, fail,
//              repair, lump].
//
// Every family accepts `lump=1` to run the exact lumping pass
// (markov/lumping.hpp) right after expansion; the returned ModelFile then
// carries pre_lump_states. The expansion itself is allocation-churn-free:
// each family computes its exact state count up front and hands the
// builder a ReserveHint.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "io/model_format.hpp"

namespace rrl {

/// Raw key=value pairs exactly as parsed from a generator line.
using GeneratorParams = std::vector<std::pair<std::string, std::string>>;

/// Expand `family` with `params` into a rewarded CTMC. The returned
/// ModelFile has spec_key set to the canonical spec (family + every
/// effective parameter, defaults included, sorted by key) and, for
/// `lump=1`, pre_lump_states set. Throws contract_error on an unknown
/// family, unknown/duplicate/malformed parameters, out-of-range values,
/// or a spec that would expand beyond the state cap.
[[nodiscard]] ModelFile generate_model(const std::string& family,
                                       const GeneratorParams& params);

/// The registered family names, in documentation order.
[[nodiscard]] std::vector<std::string> generator_families();

}  // namespace rrl
