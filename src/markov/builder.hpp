// Generic breadth-first state-space builder.
//
// Model generators (e.g. the RAID-5 model of the paper's Section 3) describe
// a CTMC implicitly: a structured state type plus a function emitting the
// outgoing transitions of a state. This template explores the reachable state
// space from a set of initial states, interning each structured state to a
// dense index, and assembles the resulting Ctmc.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "markov/ctmc.hpp"
#include "support/contracts.hpp"

namespace rrl {

/// BFS expansion of an implicitly defined CTMC.
///
/// State must be hashable (via Hash) and equality comparable. The expand
/// callable is invoked as expand(state, emit) and must call
/// emit(successor_state, rate) for every outgoing transition (rate >= 0;
/// zero rates are ignored).
/// Capacity hint for explore(): a generator that knows (or can bound) the
/// size of its state space declares it up front, and the builder reserves
/// the state table, the intern map and the triplet buffer once instead of
/// growing them through the doubling schedule. At 10^6+ states the repeated
/// reallocate-and-copy of a multi-megabyte triplet vector is the dominant
/// expansion cost; with an accurate hint the BFS allocates nothing past
/// warm-up. Over-estimates only cost address space; under-estimates merely
/// fall back to growth.
struct ReserveHint {
  index_t states = 0;            ///< expected number of reachable states
  std::int64_t transitions = 0;  ///< expected (or bounding) transition count
};

template <class State, class Hash = std::hash<State>>
class StateSpaceBuilder {
 public:
  using EmitFn = std::function<void(const State&, double)>;
  using ExpandFn = std::function<void(const State&, const EmitFn&)>;

  /// Result: the assembled chain plus the index -> structured-state map.
  struct Result {
    Ctmc chain;
    std::vector<State> states;
    std::unordered_map<State, index_t, Hash> index_of;
  };

  /// Explore everything reachable from `initial_states` and build the CTMC.
  /// `max_states` is a safety valve against runaway generators.
  [[nodiscard]] static Result explore(const std::vector<State>& initial_states,
                                      const ExpandFn& expand,
                                      index_t max_states = 10'000'000,
                                      const ReserveHint& hint = {}) {
    Result r;
    if (hint.states > 0) {
      r.states.reserve(static_cast<std::size_t>(hint.states));
      r.index_of.reserve(static_cast<std::size_t>(hint.states));
    }
    std::deque<index_t> frontier;
    auto intern = [&](const State& s) -> index_t {
      const auto it = r.index_of.find(s);
      if (it != r.index_of.end()) return it->second;
      RRL_ENSURES(static_cast<index_t>(r.states.size()) < max_states);
      const index_t id = static_cast<index_t>(r.states.size());
      r.states.push_back(s);
      r.index_of.emplace(s, id);
      frontier.push_back(id);
      return id;
    };

    for (const State& s : initial_states) intern(s);

    std::vector<Triplet> rates;
    if (hint.transitions > 0) {
      rates.reserve(static_cast<std::size_t>(hint.transitions));
    }
    while (!frontier.empty()) {
      const index_t from = frontier.front();
      frontier.pop_front();
      // Copy: interning may reallocate r.states.
      const State current = r.states[static_cast<std::size_t>(from)];
      expand(current, [&](const State& to, double rate) {
        RRL_EXPECTS(rate >= 0.0);
        if (rate == 0.0) return;
        const index_t to_id = intern(to);
        RRL_EXPECTS(to_id != from);  // no self-loop rates in a CTMC
        rates.push_back({from, to_id, rate});
      });
    }
    r.chain = Ctmc::from_transitions(static_cast<index_t>(r.states.size()),
                                     std::move(rates));
    return r;
  }
};

}  // namespace rrl
