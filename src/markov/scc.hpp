// Strongly connected components (iterative Tarjan) over a CSR adjacency
// pattern. Used to validate the paper's structural assumptions on models.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace rrl {

/// Result of an SCC decomposition.
struct SccResult {
  /// Component id per vertex, in [0, count). Ids are in reverse topological
  /// order of the condensation (Tarjan property).
  std::vector<index_t> component;
  index_t count = 0;
};

/// Decompose the directed graph given by the sparsity pattern of `adjacency`
/// (an entry (i, j) is an edge i -> j; values are ignored).
[[nodiscard]] SccResult strongly_connected_components(
    const CsrMatrix& adjacency);

}  // namespace rrl
