#include "markov/steady_state.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {

std::vector<double> gth_steady_state(const Ctmc& chain,
                                     index_t max_dense_states) {
  const index_t n = chain.num_states();
  RRL_EXPECTS(n > 0 && n <= max_dense_states);

  // Dense copy of the off-diagonal rate matrix.
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<double> a(un * un, 0.0);
  {
    const CsrMatrix& r = chain.rates();
    const auto row_ptr = r.row_ptr();
    const auto col_idx = r.col_idx();
    const auto values = r.values();
    for (index_t i = 0; i < n; ++i) {
      for (std::int64_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        a[static_cast<std::size_t>(i) * un +
          static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])] =
            values[static_cast<std::size_t>(k)];
      }
    }
  }

  // GTH elimination: fold state m into states 0..m-1 using only additions,
  // divisions and multiplications of non-negative numbers.
  for (std::size_t m = un - 1; m >= 1; --m) {
    double out_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) out_sum += a[m * un + j];
    RRL_ENSURES(out_sum > 0.0);  // irreducibility guarantees an exit
    for (std::size_t i = 0; i < m; ++i) {
      const double w = a[i * un + m] / out_sum;
      if (w == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (j != i) a[i * un + j] += w * a[m * un + j];
      }
    }
  }

  // Back substitution: pi_0 = 1, then unfold.
  std::vector<double> pi(un, 0.0);
  pi[0] = 1.0;
  for (std::size_t m = 1; m < un; ++m) {
    double out_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) out_sum += a[m * un + j];
    double inflow = 0.0;
    for (std::size_t i = 0; i < m; ++i) inflow += pi[i] * a[i * un + m];
    pi[m] = inflow / out_sum;
  }
  const double total = sum(pi);
  RRL_ENSURES(total > 0.0);
  for (double& p : pi) p /= total;
  return pi;
}

PowerIterationResult power_steady_state(const RandomizedDtmc& dtmc, double tol,
                                        std::int64_t max_iterations) {
  const std::size_t n = static_cast<std::size_t>(dtmc.num_states());
  PowerIterationResult result;
  std::vector<double> cur(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::int64_t it = 0; it < max_iterations; ++it) {
    dtmc.step(cur, next);
    const double delta = dist_l1(cur, next);
    cur.swap(next);
    result.iterations = it + 1;
    result.final_delta = delta;
    if (delta <= tol) {
      result.converged = true;
      break;
    }
  }
  // Renormalize to wash out accumulated round-off.
  const double total = sum(cur);
  for (double& p : cur) p /= total;
  result.distribution = std::move(cur);
  return result;
}

}  // namespace rrl
