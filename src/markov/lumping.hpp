// Ordinary (strong) lumpability for rewarded CTMCs.
//
// A partition {B_1, ..., B_K} of the state space is ordinarily lumpable
// when for every pair of blocks B != C the aggregate rate q(s, C) =
// sum_{u in C} q(s, u) is the same for every s in B. The aggregated
// process on blocks is then itself a CTMC — for EVERY initial
// distribution — with block-to-block rates equal to those shared
// aggregates (Kemeny & Snell). If additionally the reward rate is
// constant on each block, both of the paper's measures are preserved
// exactly: TRR(t) and MRR(t) of the lumped rewarded chain equal those of
// the original, to the last bit of the underlying theory (the solvers'
// eps-bounds then apply unchanged on the smaller chain).
//
// lump_model() computes the COARSEST such partition that also keeps
// rewards block-constant, by classic partition refinement: start from
// blocks of equal reward, then repeatedly split blocks whose members
// disagree on their aggregate rates into the current blocks, until a
// fixpoint. The fixpoint partition satisfies the lumpability condition by
// construction, so the pass is exact for ANY input chain — a model with
// no symmetry simply comes back with one block per state (no reduction,
// no harm). On the generator families (markov/generator.hpp) whose groups
// are exchangeable, the reduction is combinatorial: a k-of-n fleet of g
// identical groups collapses from (n+1)^g ordered tuples to the
// C(n+g, g) multisets — orders of magnitude at the sizes this library
// targets.
//
// Everything here is deterministic (blocks are numbered by their smallest
// original state, refinement scans states in index order), which the
// study subsystem relies on: remote workers re-expand and re-lump a
// generated model from its spec and must land on the byte-identical
// chain.
#pragma once

#include <vector>

#include "io/model_format.hpp"
#include "markov/ctmc.hpp"

namespace rrl {

/// The outcome of a lumping pass.
struct LumpResult {
  /// The lumped rewarded chain. Rewards are the (block-constant) original
  /// rewards; the initial distribution is summed per block; a regenerative
  /// hint is mapped to its block. pre_lump_states records the original
  /// state count; spec_key is left empty — a lumped chain is different
  /// content, so a caller that wants spec-based hashing must stamp a spec
  /// that names the lumping (the generator's `lump=1` does).
  ModelFile lumped;
  /// block_of[s] = lumped state of original state s.
  std::vector<index_t> block_of;
  /// Number of states before lumping (== block_of.size()).
  index_t original_states = 0;

  [[nodiscard]] index_t lumped_states() const noexcept {
    return lumped.chain.num_states();
  }
};

/// Lump `model` over its coarsest reward-preserving ordinarily-lumpable
/// partition. Exact for every input (worst case: no reduction). The input
/// is not modified.
[[nodiscard]] LumpResult lump_model(const ModelFile& model);

}  // namespace rrl
