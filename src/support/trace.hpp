// Scoped trace spans with Chrome-trace-event JSON output.
//
// A Span marks one timed region (unit execution, a scenario solve, a
// schema compile, artifact I/O, a wire pump). Spans are buffered in
// per-thread buffers — no cross-thread synchronization while tracing —
// and flushed on demand as a Chrome trace event file ("X" complete
// events), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Cost model: tracing is OFF by default and the disabled path is a single
// relaxed atomic-bool load and branch per span — cheap enough that spans
// stay compiled in everywhere, including worker processes. When enabled,
// a span costs two steady_clock reads and a bounded-buffer append.
//
// Spans never touch solver state or results: a study's reduced report is
// byte-identical with tracing on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace rrl::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
void record(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
            std::uint64_t arg) noexcept;
[[nodiscard]] std::uint64_t now_us() noexcept;
}  // namespace detail

/// Whether span collection is armed. Inline so the disabled cost at a
/// span site is exactly one load + branch.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm / disarm collection. Spans opened while disabled record nothing
/// even if collection is enabled before they close.
void enable() noexcept;
void disable() noexcept;

/// Drop every buffered event (test support).
void reset();

/// RAII timed region. `name` must be a string literal (or otherwise
/// outlive the flush); `arg` is an optional numeric payload rendered as
/// {"args":{"v":...}} — unit ids, scenario counts, byte counts.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = 0) noexcept {
    if (enabled()) {
      name_ = name;
      arg_ = arg;
      start_us_ = detail::now_us();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      detail::record(name_, start_us_, detail::now_us() - start_us_, arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::uint64_t arg_ = 0;
};

/// Write every buffered event from every thread as a Chrome trace JSON
/// object ({"traceEvents":[...]}) and return the number of events
/// written. Threads that keep tracing during the flush are safe; their
/// in-flight spans land in a later flush.
std::size_t write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; false if the file could not be written.
bool write_chrome_trace_file(const std::string& path);

}  // namespace rrl::trace
