// Wall-clock stopwatch used by solver statistics and benchmark harnesses.
#pragma once

#include <chrono>

namespace rrl {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restart timing from now.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rrl
