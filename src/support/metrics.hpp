// Process-wide always-on metrics registry.
//
// The paper's own evaluation is counter-driven — Tables 1–2 compare the
// methods by randomization steps and truncation points — so the engine
// keeps the same accounting about itself, cheaply enough to leave on in
// production (the netdata global-statistics idiom: plain relaxed atomics,
// no locks anywhere near a hot path).
//
// Usage pattern at an instrumentation site:
//
//   static auto& c = metrics::counter("rrl_scenarios_solved_total");
//   c.add(1);
//
// The registry lookup happens once per call site (function-local static);
// after that an increment is a single relaxed fetch_add on a cache-line-
// padded atomic. Registration is mutex-protected but returns references
// with stable addresses for the life of the process (instruments are
// never deleted), so call sites may cache them freely across threads.
//
// Three instrument kinds:
//   Counter    monotone u64 (events, bytes, steps)
//   Gauge      last-written i64 (pool size, kernel ISA, queue depth)
//   Histogram  log2-bucketed distribution of doubles + count + sum
//              (per-solve truncation steps, unit seconds)
//
// snapshot() copies every instrument into plain structs; the snapshot is
// what gets formatted (write_prometheus), shipped over the wire by fleet
// workers (kStatsReport frames), and merged across processes
// (merge_counters). Metrics NEVER feed back into solver results: the
// reduced report of a study is byte-identical with metrics read or
// ignored, at any fleet size.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rrl::metrics {

/// Monotonically increasing event counter (relaxed; readers tolerate any
/// interleaving — totals are exact once writers quiesce).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-written signed value (set wins; add for up/down adjustments).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative doubles. Bucket k counts
/// observations v with upper bound 2^(k + kMinExponent); the first bucket
/// also absorbs everything smaller, the last everything larger. With
/// kMinExponent = -20 the buckets span ~1 microsecond to ~4000 seconds
/// when observations are in seconds — wide enough for both per-solve step
/// counts and wall-clock durations.
class Histogram {
 public:
  static constexpr int kBuckets = 33;
  static constexpr int kMinExponent = -20;

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int k) const noexcept {
    return buckets_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of bucket k (= 2^(k + kMinExponent)); the last bucket
  /// is unbounded (+inf in the exposition format).
  [[nodiscard]] static double bucket_bound(int k) noexcept;

 private:
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The instrument named `name`, creating it on first use. The returned
/// reference is valid for the life of the process; call sites should
/// cache it (function-local static) so the registry lock is off the hot
/// path. Requesting the same name as two different kinds is a contract
/// violation and aborts.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Plain-struct copy of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

/// Point-in-time copy of every registered instrument, sorted by name.
/// Taken with relaxed loads: concurrent writers may or may not be
/// visible, but each value is a real value the instrument held.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of the named counter, or 0 when it was never registered —
  /// absent and never-incremented are indistinguishable by design.
  [[nodiscard]] std::uint64_t value(std::string_view counter_name) const;
};

[[nodiscard]] MetricsSnapshot snapshot();

/// Prometheus text exposition (version 0.0.4): `# TYPE` headers, one
/// sample per line, histograms as cumulative `_bucket{le=...}` series
/// plus `_sum`/`_count`. The future daemon's `/metrics` endpoint is a
/// thin wrapper over this.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Write the current snapshot to `path` in Prometheus text format.
/// Returns false if the file could not be written.
bool write_prometheus_file(const std::string& path);

/// Sum `from` into `into` by counter name (names absent from `into` are
/// appended). Counters are per-process absolute values, so summing the
/// latest snapshot of every fleet member yields fleet totals.
void merge_counters(
    std::vector<std::pair<std::string, std::uint64_t>>& into,
    const std::vector<std::pair<std::string, std::uint64_t>>& from);

}  // namespace rrl::metrics
