// Tiny command-line option parser used by the examples and benchmark
// harnesses (no external dependencies; supports --key=value and --key value
// as well as boolean flags).
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rrl {

/// Parses `--key=value`, `--key value` and bare `--flag` arguments.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[arg] = argv[++i];
      } else {
        options_[arg] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return options_.count(key) != 0;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::strtod(it->second.c_str(),
                                                         nullptr);
  }

  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback
                                : std::strtol(it->second.c_str(), nullptr, 10);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Splits `spec` at `separator`, dropping empty tokens ("a,,b" -> a, b).
[[nodiscard]] inline std::vector<std::string> parse_string_list(
    const std::string& spec, char separator = ',') {
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(separator, begin);
    if (end == std::string::npos) end = spec.size();
    if (end > begin) tokens.push_back(spec.substr(begin, end - begin));
    begin = end + 1;
  }
  return tokens;
}

/// Parses a separated list of doubles ("1,10,100" or "1:1e5:20"). Empty
/// tokens are skipped; a token that is not entirely numeric ("10;100",
/// "20x") is skipped too rather than silently truncated at the first bad
/// character, so malformed input surfaces as a missing value.
[[nodiscard]] inline std::vector<double> parse_double_list(
    const std::string& spec, char separator = ',') {
  std::vector<double> values;
  for (const std::string& token : parse_string_list(spec, separator)) {
    const char* str = token.c_str();
    char* parsed_end = nullptr;
    const double v = std::strtod(str, &parsed_end);
    if (parsed_end != str && *parsed_end == '\0') values.push_back(v);
  }
  return values;
}

/// Reads an environment variable as bool ("1", "true", "yes" => true).
[[nodiscard]] inline bool env_flag(const char* name, bool fallback = false) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  return s == "1" || s == "true" || s == "yes";
}

/// Reads an environment variable as double, with fallback.
[[nodiscard]] inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtod(v, nullptr);
}

}  // namespace rrl
