#include "support/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace rrl::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Event {
  const char* name;
  std::uint64_t start_us;
  std::uint64_t dur_us;
  std::uint64_t arg;
};

// Per-thread event buffer, registered once in a global list. The owning
// thread appends; flushers read — both under the buffer's own mutex,
// which is uncontended except during a flush. Buffers are never removed
// (a dead thread's events must survive until the flush), so the list
// only grows; tids are small sequential ids assigned at registration.
struct ThreadBuffer {
  std::mutex mutex;
  int tid = 0;
  std::vector<Event> events;
};

struct Global {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

Global& global() {
  static Global* g = new Global();  // leaked: outlives thread exit order
  return *g;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* tls = [] {
    Global& g = global();
    std::lock_guard lock(g.mutex);
    g.buffers.push_back(std::make_unique<ThreadBuffer>());
    g.buffers.back()->tid = g.next_tid++;
    return g.buffers.back().get();
  }();
  return *tls;
}

// One steady-clock anchor per process so every thread's timestamps share
// an origin (Chrome traces want a common monotonic timeline).
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

namespace detail {

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

void record(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
            std::uint64_t arg) noexcept {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  buf.events.push_back(Event{name, start_us, dur_us, arg});
}

}  // namespace detail

void enable() noexcept {
  process_epoch();  // pin the timeline origin before the first span
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() noexcept {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void reset() {
  Global& g = global();
  std::lock_guard lock(g.mutex);
  for (auto& buf : g.buffers) {
    std::lock_guard inner(buf->mutex);
    buf->events.clear();
  }
}

std::size_t write_chrome_trace(std::ostream& out) {
  Global& g = global();
  const long pid = static_cast<long>(::getpid());
  std::size_t written = 0;
  char buf[256];
  out << "{\"traceEvents\":[";
  {
    std::lock_guard lock(g.mutex);
    for (auto& tb : g.buffers) {
      std::lock_guard inner(tb->mutex);
      for (const Event& e : tb->events) {
        if (written != 0) out << ",";
        std::snprintf(buf, sizeof(buf),
                      "\n{\"name\":\"%s\",\"cat\":\"rrl\",\"ph\":\"X\","
                      "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                      ",\"pid\":%ld,\"tid\":%d,\"args\":{\"v\":%" PRIu64
                      "}}",
                      e.name, e.start_us, e.dur_us, pid, tb->tid, e.arg);
        out << buf;
        ++written;
      }
      tb->events.clear();
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return written;
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace rrl::trace
