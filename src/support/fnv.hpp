// FNV-1a 64-bit hashing, shared by every content-addressing site: the
// model repository's content hash, the artifact codec's payload checksum,
// and the artifact store's config-key file names. One implementation so
// the three can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rrl {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Mix `n` raw bytes into a running FNV-1a state.
inline void fnv1a_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnv1aPrime;
  }
}

/// One-shot hash of a byte span.
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const char> bytes) {
  std::uint64_t h = kFnv1aOffset;
  fnv1a_mix(h, bytes.data(), bytes.size());
  return h;
}

}  // namespace rrl
