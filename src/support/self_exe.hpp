// Path of the running executable — the self-exec primitive behind the
// dispatch orchestrator (a --serve parent exec's its own binary as
// --worker) and the test/bench harnesses that locate sibling binaries in
// the build directory. One implementation so a platform fix (PATH_MAX,
// a non-/proc fallback) lands everywhere at once.
#pragma once

#include <unistd.h>

#include <filesystem>
#include <string>

namespace rrl {

/// The running binary's path via /proc/self/exe; `fallback` (typically
/// argv[0], which then must be exec-resolvable) when /proc is
/// unavailable.
[[nodiscard]] inline std::string self_exe_path(
    const char* fallback = "") {
  char buffer[4096];
  const ssize_t n =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return fallback;
  buffer[n] = '\0';
  return buffer;
}

/// Path of `name` next to the running binary (build-directory siblings),
/// or empty when the running binary cannot be resolved.
[[nodiscard]] inline std::string self_sibling_path(const char* name) {
  const std::string self = self_exe_path();
  if (self.empty()) return "";
  return (std::filesystem::path(self).parent_path() / name).string();
}

}  // namespace rrl
