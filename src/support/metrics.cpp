#include "support/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

namespace rrl::metrics {
namespace {

// One registry per instrument kind. std::map nodes never move, so the
// references handed out stay valid as the registry grows. The mutex only
// guards registration and snapshotting — increments go straight to the
// atomics.
//
// Instrument kinds share one namespace: registering "x" as a counter and
// again as a gauge is a programming error (the exposition format would
// emit two conflicting TYPE lines), detected here and fatal.
enum class Kind : int { kCounter, kGauge, kHistogram };

struct Registry {
  std::mutex mutex;
  std::map<std::string, Kind, std::less<>> kinds;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

void check_kind(Registry& r, std::string_view name, Kind kind) {
  const auto it = r.kinds.find(name);
  if (it == r.kinds.end()) {
    r.kinds.emplace(std::string(name), kind);
  } else if (it->second != kind) {
    std::fprintf(stderr,
                 "rrl metrics: instrument '%.*s' registered as two "
                 "different kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
}

template <class T>
T& get_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& m,
                 std::string_view name) {
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> (C++20) — no CAS loop needed here.
  sum_.fetch_add(v, std::memory_order_relaxed);
  int k = 0;
  if (v > 0.0 && std::isfinite(v)) {
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
    k = std::clamp(exp - kMinExponent, 0, kBuckets - 1);
  } else if (!(v <= 0.0)) {  // NaN / +inf land in the overflow bucket
    k = kBuckets - 1;
  }
  buckets_[static_cast<std::size_t>(k)].fetch_add(1,
                                                  std::memory_order_relaxed);
}

double Histogram::bucket_bound(int k) noexcept {
  return std::ldexp(1.0, k + kMinExponent);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  check_kind(r, name, Kind::kCounter);
  return get_or_create(r.counters, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  check_kind(r, name, Kind::kGauge);
  return get_or_create(r.gauges, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  check_kind(r, name, Kind::kHistogram);
  return get_or_create(r.histograms, name);
}

std::uint64_t MetricsSnapshot::value(std::string_view counter_name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), counter_name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  if (it != counters.end() && it->first == counter_name) return it->second;
  return 0;
}

MetricsSnapshot snapshot() {
  Registry& r = registry();
  MetricsSnapshot snap;
  std::lock_guard lock(r.mutex);
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      hs.buckets[static_cast<std::size_t>(k)] = h->bucket(k);
    }
    snap.histograms.emplace_back(name, hs);
  }
  // std::map iterates in name order already; the contract says sorted.
  return snap;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snap) {
  char buf[256];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %" PRIu64 "\n",
                  name.c_str(), name.c_str(), value);
    out << buf;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %" PRId64 "\n",
                  name.c_str(), name.c_str(), value);
    out << buf;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", name.c_str());
    out << buf;
    std::uint64_t cumulative = 0;
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      cumulative += h.buckets[static_cast<std::size_t>(k)];
      if (h.buckets[static_cast<std::size_t>(k)] == 0 &&
          k != Histogram::kBuckets - 1) {
        continue;  // keep the exposition compact: only occupied buckets
      }
      if (k == Histogram::kBuckets - 1) {
        std::snprintf(buf, sizeof(buf),
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                      cumulative);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "%s_bucket{le=\"%.9g\"} %" PRIu64 "\n", name.c_str(),
                      Histogram::bucket_bound(k), cumulative);
      }
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_sum %.17g\n%s_count %" PRIu64 "\n",
                  name.c_str(), h.sum, name.c_str(), h.count);
    out << buf;
  }
}

bool write_prometheus_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_prometheus(out, snapshot());
  out.flush();
  return static_cast<bool>(out);
}

void merge_counters(
    std::vector<std::pair<std::string, std::uint64_t>>& into,
    const std::vector<std::pair<std::string, std::uint64_t>>& from) {
  for (const auto& [name, value] : from) {
    auto it = std::find_if(into.begin(), into.end(), [&](const auto& e) {
      return e.first == name;
    });
    if (it == into.end()) {
      into.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  std::sort(into.begin(), into.end());
}

}  // namespace rrl::metrics
