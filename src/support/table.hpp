// Plain-text table printer used by the benchmark harnesses to emit the same
// rows/series the paper's tables and figures report.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace rrl {

/// Column-aligned ASCII table. Collects rows of strings and prints them with
/// a header rule, right-aligning numeric-looking cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row) {
    RRL_EXPECTS(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  /// Render the table to `os`.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
           << r[c];
      }
      os << " |\n";
    };
    print_row(header_);
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << std::string(width[c] + 2, '-') << '|';
    os << '\n';
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant digits (benchmark output).
inline std::string fmt_sig(double v, int digits = 5) {
  std::ostringstream ss;
  ss << std::setprecision(digits) << v;
  return ss.str();
}

/// Format a double in scientific notation (values such as UR(t) at ε=1e-12).
inline std::string fmt_sci(double v, int digits = 6) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(digits) << v;
  return ss.str();
}

}  // namespace rrl
