// Minimal contract-checking helpers in the spirit of the C++ Core Guidelines
// (I.6/I.8: Expects/Ensures). Violations throw rrl::contract_error so that
// library misuse is diagnosable in tests and never silently corrupts results.
#pragma once

#include <stdexcept>
#include <string>

namespace rrl {

/// Thrown when a precondition, postcondition or internal invariant fails.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw contract_error(std::string(kind) + " failed: " + cond + " at " + file +
                       ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace rrl

/// Precondition check: caller obligations on entry to a function.
#define RRL_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rrl::detail::contract_fail("precondition", #cond, __FILE__,        \
                                   __LINE__);                              \
  } while (false)

/// Postcondition / invariant check inside library code.
#define RRL_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rrl::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
