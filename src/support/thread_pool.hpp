// Minimal persistent worker pool for the scenario-sweep layer.
//
// The sweep engine and the row-partitioned SpMV kernels both need the same
// primitive: run `body(index)` for every index of a fixed-size range across
// a small set of long-lived threads, then join. parallel_for() provides it
// with dynamic (work-stealing-ish) index scheduling via one shared atomic
// cursor, so uneven scenario costs — an SR solve at t = 1e5 next to an RRL
// solve — still load-balance. The callable is passed through a plain
// function-pointer thunk (no std::function), so a parallel_for call
// allocates nothing: it is safe to drive from a solver hot loop.
//
// Determinism contract: parallel_for() imposes NO ordering between indices;
// deterministic results come from each index writing only to its own
// pre-allocated slot (ordered reduction happens in the caller, by slot).
// The worker id passed alongside the index is a stable slot in
// [0, num_threads()) for per-worker scratch (e.g. one SolveWorkspace per
// worker); worker 0 is always the calling thread, which participates.
//
// Reentrancy: a parallel_for issued from INSIDE another parallel_for body
// (any pool) runs inline on the calling thread — the outer loop already
// owns the cores. The worker id the nested body sees stays within the
// driven pool's contract: the ambient slot when the nested call drives the
// SAME pool (that slot belongs to this thread there), slot 0 when it
// drives a different pool (which then has no loop of its own in flight).
// Driving the SAME pool from two different orchestrator threads at once is
// not supported (each orchestrating thread gets its own pool); the entry
// check fails fast on that misuse.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/contracts.hpp"
#include "support/metrics.hpp"

namespace rrl {

class ThreadPool {
 public:
  /// A pool of `threads` workers INCLUDING the calling thread (so
  /// ThreadPool(4) spawns 3 std::threads); <= 0 selects the hardware
  /// concurrency. ThreadPool(1) runs everything inline on the caller.
  explicit ThreadPool(int threads = 0) {
    int n = threads > 0 ? threads : hardware_threads();
    if (n < 1) n = 1;
    num_threads_ = n;
    workers_.reserve(static_cast<std::size_t>(n - 1));
    try {
      for (int w = 1; w < n; ++w) {
        workers_.emplace_back(
            [this, w] { worker_loop(static_cast<std::size_t>(w)); });
      }
    } catch (...) {
      // Thread exhaustion partway through: the destructor will not run, so
      // join the already-spawned workers here before surfacing the error
      // (destroying a joinable std::thread would terminate the process).
      shutdown();
      throw;
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Worker count including the calling thread (>= 1).
  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// std::thread::hardware_concurrency() with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

  /// True while the calling thread is executing parallel_for() work of a
  /// MULTI-threaded loop (a pool worker, or the caller participating as
  /// worker 0). Inner layers consult this to skip NESTED parallelism —
  /// e.g. RRL's OpenMP inversion loop stays serial inside a sweep worker,
  /// where scenario-level parallelism already owns the cores. A 1-thread
  /// pool deliberately does not set it: there the cores belong to inner
  /// layers.
  [[nodiscard]] static bool in_parallel_region() noexcept {
    return in_region_;
  }

  /// Runs body(index, worker) — or body(index), if that is the callable's
  /// arity — for every index in [0, count), distributing indices
  /// dynamically over the pool; blocks until all have finished. `worker`
  /// is the executing thread's stable slot in [0, num_threads()). The
  /// first exception thrown by any body is rethrown on the caller after
  /// the loop has drained (remaining indices still execute).
  template <typename Body>
  void parallel_for(std::size_t count, Body&& body) {
    using Fn = std::remove_reference_t<Body>;
    run(count, const_cast<std::remove_const_t<Fn>*>(&body),
        [](void* ctx, std::size_t i, std::size_t worker) {
          Fn& fn = *static_cast<Fn*>(ctx);
          if constexpr (std::is_invocable_v<Fn&, std::size_t, std::size_t>) {
            fn(i, worker);
          } else {
            fn(i);
          }
        });
  }

 private:
  using BodyFn = void (*)(void* ctx, std::size_t index, std::size_t worker);

  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void run(std::size_t count, void* ctx, BodyFn fn) {
    if (count == 0) return;
    // Task accounting: one loop, `count` indices — whether it runs inline
    // or across the workers (the split is visible via num_threads()).
    static auto& loops = metrics::counter("rrl_pool_loops_total");
    static auto& indices = metrics::counter("rrl_pool_indices_total");
    loops.add(1);
    indices.add(count);
    if (num_threads_ == 1 || count == 1 || in_region_) {
      // Inline on the caller, with the same drain-then-rethrow exception
      // contract as the threaded path. Reentrant calls (in_region_) land
      // here by design; the slot they see must be valid for THIS pool —
      // the ambient slot only when the enclosing loop runs on this very
      // pool (then it is this thread's own slot here), otherwise 0.
      if (in_region_ && region_pool_ != this) {
        // Slot 0 of this pool is claimed below, so this pool must have no
        // loop of its own in flight: fail fast on the unsupported
        // cross-drive instead of silently racing on slot-indexed scratch.
        const std::lock_guard<std::mutex> lock(mutex_);
        RRL_EXPECTS(body_ctx_ == nullptr);
      }
      const std::size_t slot = region_pool_ == this ? worker_slot_ : 0;
      std::exception_ptr error;
      for (std::size_t i = 0; i < count; ++i) {
        try {
          fn(ctx, i, slot);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      // One loop at a time per pool: two orchestrator threads driving the
      // same pool would corrupt each other's in-flight loop.
      RRL_EXPECTS(body_ctx_ == nullptr);
      body_ctx_ = ctx;
      body_fn_ = fn;
      count_ = count;
      cursor_.store(0, std::memory_order_relaxed);
      active_ = num_threads_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    run_indices(0);  // the caller is worker 0
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    body_ctx_ = nullptr;
    body_fn_ = nullptr;
    if (error_) {
      const std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  void run_indices(std::size_t worker) {
    // Save/restore rather than set/clear: a nested parallel_for on a
    // DIFFERENT pool (e.g. pooled SpMV inside a sweep scenario) must not
    // switch the guard off for the remainder of the outer region.
    const bool was_in_region = in_region_;
    const std::size_t was_worker = worker_slot_;
    const ThreadPool* was_pool = region_pool_;
    in_region_ = true;
    worker_slot_ = worker;
    region_pool_ = this;
    for (;;) {
      const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) break;
      try {
        body_fn_(body_ctx_, i, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
    in_region_ = was_in_region;
    worker_slot_ = was_worker;
    region_pool_ = was_pool;
  }

  void worker_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      lock.unlock();
      run_indices(worker);
      lock.lock();
      const bool last = --active_ == 0;
      lock.unlock();
      if (last) done_cv_.notify_one();
    }
  }

  inline static thread_local bool in_region_ = false;
  inline static thread_local std::size_t worker_slot_ = 0;
  inline static thread_local const ThreadPool* region_pool_ = nullptr;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int num_threads_ = 1;

  // State of the in-flight parallel_for (guarded by mutex_ except for the
  // cursor, which is the only cross-thread hot path).
  void* body_ctx_ = nullptr;
  BodyFn body_fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> cursor_{0};
  int active_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace rrl
