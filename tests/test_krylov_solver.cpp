// Uniformized-Krylov backend: registry wiring, agreement with standard
// randomization within the combined tolerance on the paper's models (both
// measures), degenerate inputs, the step-cap budget contract, and the
// artifact round trip it shares with SR.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiled_artifact.hpp"
#include "core/krylov_solver.hpp"
#include "io/artifact_codec.hpp"
#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

constexpr double kEps = 1e-9;

struct Model {
  std::string label;
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> initial;
  index_t regenerative = 0;
};

Model raid_model() {
  Raid5Params p;
  p.groups = 20;
  const Raid5Model m = build_raid5_availability(p);
  return {"raid5-g20", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

Model multiproc_model() {
  const MultiprocModel m = build_multiproc_availability({});
  return {"multiproc", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

TEST(KrylovSolver, RegisteredUnderItsName) {
  const std::vector<std::string> names = registered_solvers();
  EXPECT_NE(std::find(names.begin(), names.end(), "krylov"), names.end());
  const Model model = raid_model();
  SolverConfig config;
  config.epsilon = kEps;
  const auto solver = make_solver("krylov", model.chain, model.rewards,
                                  model.initial, config);
  EXPECT_EQ(solver->name(), "krylov");
}

TEST(KrylovSolver, AgreesWithStandardRandomization) {
  const std::vector<double> grid = log_time_grid(0.5, 2000.0, 7);
  for (const Model& model : {raid_model(), multiproc_model()}) {
    SolverConfig config;
    config.epsilon = kEps;
    config.regenerative = model.regenerative;
    const auto sr = make_solver("sr", model.chain, model.rewards,
                                model.initial, config);
    const auto krylov = make_solver("krylov", model.chain, model.rewards,
                                    model.initial, config);
    for (const MeasureKind measure :
         {MeasureKind::kTrr, MeasureKind::kMrr}) {
      const SolveReport a = sr->solve_grid({measure, grid, -1.0});
      const SolveReport b = krylov->solve_grid({measure, grid, -1.0});
      ASSERT_EQ(a.points.size(), b.points.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_NEAR(a.points[i].value, b.points[i].value, 2.0 * kEps)
            << model.label << " " << measure_name(measure)
            << " t=" << grid[i];
        EXPECT_FALSE(b.points[i].stats.capped);
      }
    }
  }
}

TEST(KrylovSolver, TimeZeroIsTheInitialReward) {
  const Model model = multiproc_model();
  SolverConfig config;
  config.epsilon = kEps;
  const auto solver = make_solver("krylov", model.chain, model.rewards,
                                  model.initial, config);
  double expected = 0.0;
  for (index_t s = 0; s < model.chain.num_states(); ++s) {
    expected += model.initial[static_cast<std::size_t>(s)] *
                model.rewards[static_cast<std::size_t>(s)];
  }
  const SolveReport report =
      solver->solve_grid(SolveRequest::trr({0.0, 10.0}));
  EXPECT_DOUBLE_EQ(report.points[0].value, expected);
}

TEST(KrylovSolver, ZeroRewardsShortCircuit) {
  const Model model = raid_model();
  const std::vector<double> zero(
      static_cast<std::size_t>(model.chain.num_states()), 0.0);
  SolverConfig config;
  config.epsilon = kEps;
  const auto solver =
      make_solver("krylov", model.chain, zero, model.initial, config);
  const SolveReport report =
      solver->solve_grid(SolveRequest::mrr(log_time_grid(1.0, 1e6, 5)));
  for (const TransientValue& p : report.points) {
    EXPECT_EQ(p.value, 0.0);
    EXPECT_FALSE(p.stats.capped);
  }
  EXPECT_EQ(report.total.dtmc_steps, 0);
}

TEST(KrylovSolver, StepCapMarksPointsCapped) {
  const Model model = raid_model();
  SolverConfig config;
  config.epsilon = kEps;
  config.step_cap = 1;  // far below one Arnoldi sweep
  const auto solver = make_solver("krylov", model.chain, model.rewards,
                                  model.initial, config);
  const SolveReport report =
      solver->solve_grid(SolveRequest::trr({5000.0}));
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_TRUE(report.points[0].stats.capped);
}

TEST(KrylovSolver, ArtifactRoundTripIsBitIdentical) {
  const std::vector<double> grid = log_time_grid(1.0, 300.0, 4);
  const Model model = multiproc_model();
  SolverConfig config;
  config.epsilon = kEps;
  const auto cold = make_solver("krylov", model.chain, model.rewards,
                                model.initial, config);
  const SolveReport cold_trr = cold->solve_grid(SolveRequest::trr(grid));

  CompiledArtifact exported =
      export_artifact(*cold, /*model_hash=*/99, config);
  exported.model_spec = "k_of_n demo=1";  // provenance must survive codec
  exported.pre_lump_states = 123;
  std::ostringstream out(std::ios::binary);
  write_artifact(out, exported);
  std::istringstream in(out.str(), std::ios::binary);
  const CompiledArtifact restored = read_artifact(in);
  EXPECT_EQ(restored.model_spec, "k_of_n demo=1");
  EXPECT_EQ(restored.pre_lump_states, 123);

  const auto warm = make_solver("krylov", model.chain, model.rewards,
                                model.initial, config);
  warm->import_compiled(restored);
  const SolveReport warm_trr = warm->solve_grid(SolveRequest::trr(grid));
  ASSERT_EQ(warm_trr.points.size(), cold_trr.points.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(warm_trr.points[i].value, cold_trr.points[i].value);
  }
}

}  // namespace
}  // namespace rrl
