// Property-based cross-solver agreement over randomized CTMCs
// (parameterized gtest sweep): for every generated model and time point,
// all applicable solvers must agree within a small multiple of eps, and the
// structural invariants of the regenerative schema must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/regenerative.hpp"
#include "core/rr_solver.hpp"
#include "core/rrl_solver.hpp"
#include "core/standard_randomization.hpp"
#include "core/steady_state_detection.hpp"
#include "models/simple.hpp"

namespace rrl {
namespace {

struct CaseSpec {
  std::uint64_t seed;
  index_t states;
  index_t absorbing;
  double t;
};

class CrossSolver : public ::testing::TestWithParam<CaseSpec> {
 protected:
  static constexpr double kEps = 1e-10;

  void SetUp() override {
    const CaseSpec spec = GetParam();
    chain_ = make_random_ctmc({.num_states = spec.states,
                               .num_absorbing = spec.absorbing,
                               .seed = spec.seed});
    rewards_.assign(static_cast<std::size_t>(spec.states), 0.0);
    // A transient reward and (when present) rewarded absorbing states with
    // distinct rates, per the paper's general reward structure.
    rewards_[static_cast<std::size_t>(spec.states) / 2] = 0.75;
    for (index_t i = 0; i < spec.absorbing; ++i) {
      rewards_[static_cast<std::size_t>(spec.states - 1 - i)] =
          1.0 - 0.25 * static_cast<double>(i);
    }
    alpha_.assign(static_cast<std::size_t>(spec.states), 0.0);
    alpha_[0] = 1.0;
  }

  Ctmc chain_;
  std::vector<double> rewards_;
  std::vector<double> alpha_;
};

TEST_P(CrossSolver, TrrAgreesAcrossAllMethods) {
  const CaseSpec spec = GetParam();
  SrOptions sr_opt;
  sr_opt.epsilon = kEps;
  const StandardRandomization sr(chain_, rewards_, alpha_, sr_opt);
  const double reference = sr.trr(spec.t).value;

  RrOptions rr_opt;
  rr_opt.epsilon = kEps;
  const RegenerativeRandomization rr(chain_, rewards_, alpha_, 0, rr_opt);
  EXPECT_NEAR(rr.trr(spec.t).value, reference, 10.0 * kEps);

  RrlOptions rrl_opt;
  rrl_opt.epsilon = kEps;
  const RegenerativeRandomizationLaplace rrl_solver(chain_, rewards_, alpha_,
                                                    0, rrl_opt);
  const auto rrl_result = rrl_solver.trr(spec.t);
  EXPECT_TRUE(rrl_result.stats.inversion_converged);
  EXPECT_NEAR(rrl_result.value, reference, 10.0 * kEps);

  if (spec.absorbing == 0) {
    RsdOptions rsd_opt;
    rsd_opt.epsilon = kEps;
    const RandomizationSteadyStateDetection rsd(chain_, rewards_, alpha_,
                                                rsd_opt);
    EXPECT_NEAR(rsd.trr(spec.t).value, reference, 10.0 * kEps);
  }
}

TEST_P(CrossSolver, MrrAgreesAcrossAllMethods) {
  const CaseSpec spec = GetParam();
  SrOptions sr_opt;
  sr_opt.epsilon = kEps;
  const StandardRandomization sr(chain_, rewards_, alpha_, sr_opt);
  const double reference = sr.mrr(spec.t).value;
  const double tol = 10.0 * kEps * std::max(1.0, spec.t);

  RrOptions rr_opt;
  rr_opt.epsilon = kEps;
  const RegenerativeRandomization rr(chain_, rewards_, alpha_, 0, rr_opt);
  EXPECT_NEAR(rr.mrr(spec.t).value, reference, tol);

  RrlOptions rrl_opt;
  rrl_opt.epsilon = kEps;
  const RegenerativeRandomizationLaplace rrl_solver(chain_, rewards_, alpha_,
                                                    0, rrl_opt);
  EXPECT_NEAR(rrl_solver.mrr(spec.t).value, reference, tol);
}

TEST_P(CrossSolver, SchemaInvariantsHold) {
  const CaseSpec spec = GetParam();
  const auto schema =
      compute_regenerative_schema(chain_, rewards_, alpha_, 0, spec.t, {});
  // a(0) = 1, non-increasing, in [0, 1].
  EXPECT_DOUBLE_EQ(schema.main.a[0], 1.0);
  for (std::size_t k = 0; k < schema.main.a.size(); ++k) {
    EXPECT_GE(schema.main.a[k], 0.0);
    EXPECT_LE(schema.main.a[k], 1.0 + 1e-14);
    if (k > 0) {
      EXPECT_LE(schema.main.a[k], schema.main.a[k - 1] * (1.0 + 1e-14));
    }
    // c(k) <= r_max * a(k).
    EXPECT_LE(schema.main.c[k],
              schema.r_max * schema.main.a[k] * (1.0 + 1e-12));
  }
  // Mass conservation per step.
  for (std::size_t k = 0; k + 1 < schema.main.a.size(); ++k) {
    double out = schema.main.a[k + 1] + schema.main.qa[k];
    for (const auto& va : schema.main.va) out += va[k];
    EXPECT_NEAR(out, schema.main.a[k], 1e-13);
  }
}

std::string case_name(const ::testing::TestParamInfo<CaseSpec>& info) {
  const CaseSpec& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.states) +
         "_A" + std::to_string(c.absorbing) + "_t" +
         std::to_string(static_cast<int>(c.t * 10));
}

INSTANTIATE_TEST_SUITE_P(
    RandomModels, CrossSolver,
    ::testing::Values(
        // Irreducible models (A = 0) across sizes and horizons.
        CaseSpec{1, 8, 0, 0.4}, CaseSpec{2, 8, 0, 4.0},
        CaseSpec{3, 15, 0, 12.0}, CaseSpec{4, 15, 0, 120.0},
        CaseSpec{5, 30, 0, 7.0}, CaseSpec{6, 30, 0, 70.0},
        // Absorbing models (A = 1, 2, 3).
        CaseSpec{7, 10, 1, 1.5}, CaseSpec{8, 10, 1, 15.0},
        CaseSpec{9, 20, 2, 3.0}, CaseSpec{10, 20, 2, 30.0},
        CaseSpec{11, 25, 3, 9.0}, CaseSpec{12, 12, 1, 90.0}),
    case_name);

}  // namespace
}  // namespace rrl
