// The original regenerative randomization method against analytic ground
// truth and standard randomization.
#include "core/rr_solver.hpp"

#include <gtest/gtest.h>

#include "core/standard_randomization.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Rr, TwoStateUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomization rr(m.chain, {0.0, 1.0}, {1.0, 0.0}, 0);
  for (const double t : {0.1, 1.0, 100.0, 1e4}) {
    EXPECT_NEAR(rr.trr(t).value, m.unavailability(t), 1e-11) << "t=" << t;
  }
}

TEST(Rr, TwoStateIntervalUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomization rr(m.chain, {0.0, 1.0}, {1.0, 0.0}, 0);
  for (const double t : {1.0, 50.0, 5e3}) {
    EXPECT_NEAR(rr.mrr(t).value, m.interval_unavailability(t), 1e-11)
        << "t=" << t;
  }
}

TEST(Rr, ErlangUnreliability) {
  const auto m = make_erlang(4, 0.8);
  std::vector<double> reward(5, 0.0);
  reward[4] = 1.0;
  std::vector<double> alpha(5, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomization rr(m.chain, reward, alpha, 0);
  for (const double t : {0.5, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(rr.trr(t).value, m.unreliability(t), 1e-11) << "t=" << t;
  }
}

TEST(Rr, MatchesSrOnRandomAbsorbingChain) {
  const auto c = make_random_ctmc(
      {.num_states = 18, .num_absorbing = 1, .seed = 3});
  std::vector<double> rewards(18, 0.0);
  rewards[17] = 1.0;
  std::vector<double> alpha(18, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(c, rewards, alpha);
  const RegenerativeRandomization rr(c, rewards, alpha, 0);
  for (const double t : {0.2, 2.0, 20.0}) {
    EXPECT_NEAR(rr.trr(t).value, sr.trr(t).value, 1e-11) << "t=" << t;
    EXPECT_NEAR(rr.mrr(t).value, sr.mrr(t).value, 1e-11) << "t=" << t;
  }
}

TEST(Rr, WorksWithNonDeltaInitialDistribution) {
  const auto m = make_two_state(2e-3, 0.5);
  const std::vector<double> alpha = {0.6, 0.4};
  const RegenerativeRandomization rr(m.chain, {0.0, 1.0}, alpha, 0);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, alpha);
  for (const double t : {1.0, 30.0}) {
    EXPECT_NEAR(rr.trr(t).value, sr.trr(t).value, 1e-11) << "t=" << t;
  }
}

TEST(Rr, StatsAccounting) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomization rr(m.chain, {0.0, 1.0}, {1.0, 0.0}, 0);
  const auto r = rr.trr(1e4);
  const auto schema = rr.schema(1e4);
  EXPECT_EQ(r.stats.dtmc_steps, schema.dtmc_steps());
  // The V-solve is a standard randomization: ~ Lambda_V * t steps.
  EXPECT_GT(r.stats.vmodel_steps, static_cast<std::int64_t>(5e3));
  EXPECT_DOUBLE_EQ(r.stats.lambda, 1.0);
}

TEST(Rr, StepCountGrowsSlowlyForLargeT) {
  // K grows ~ logarithmically in t while the SR baseline grows linearly.
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomization rr(m.chain, {0.0, 1.0}, {1.0, 0.0}, 0);
  const auto k4 = rr.trr(1e4).stats.dtmc_steps;
  const auto k6 = rr.trr(1e6).stats.dtmc_steps;
  EXPECT_LT(k6, k4 + 60);  // two decades cost a bounded number of steps
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0});
  EXPECT_LT(k6, sr.trr(1e6).stats.dtmc_steps / 1000);
}

TEST(Rr, RegenerativeStateChoiceDoesNotChangeTheAnswer) {
  const auto c = make_random_ctmc({.num_states = 12, .seed = 19});
  std::vector<double> rewards(12, 0.0);
  rewards[5] = 1.0;
  std::vector<double> alpha(12, 0.0);
  alpha[0] = 1.0;
  const double t = 10.0;
  const RegenerativeRandomization rr0(c, rewards, alpha, 0);
  const RegenerativeRandomization rr7(c, rewards, alpha, 7);
  EXPECT_NEAR(rr0.trr(t).value, rr7.trr(t).value, 1e-11);
}

TEST(Rr, RejectsInvalidRegenerativeState) {
  const auto m = make_erlang(3, 1.0);
  std::vector<double> rewards(4, 0.0);
  rewards[3] = 1.0;
  std::vector<double> alpha(4, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomization rr(m.chain, rewards, alpha, 3);
  EXPECT_THROW((void)rr.trr(1.0), contract_error);  // state 3 is absorbing
}

}  // namespace
}  // namespace rrl
