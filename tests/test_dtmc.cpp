// Unit tests for the randomized (uniformized) DTMC.
#include "markov/dtmc.hpp"

#include <gtest/gtest.h>

#include "models/simple.hpp"
#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Dtmc, LambdaIsMaxExitRate) {
  const auto m = make_two_state(1e-3, 1.0);
  const RandomizedDtmc d(m.chain);
  EXPECT_DOUBLE_EQ(d.lambda(), 1.0);
}

TEST(Dtmc, RateFactorScalesLambda) {
  const auto m = make_two_state(1e-3, 1.0);
  const RandomizedDtmc d(m.chain, 1.5);
  EXPECT_DOUBLE_EQ(d.lambda(), 1.5);
}

TEST(Dtmc, TransitionMatrixIsStochastic) {
  const Ctmc c = Ctmc::from_transitions(
      3, {{0, 1, 2.0}, {0, 2, 1.0}, {1, 0, 5.0}, {2, 0, 0.5}});
  const RandomizedDtmc d(c);
  // Row sums of P = column sums of the stored P^T.
  std::vector<double> ones(3, 1.0);
  std::vector<double> col_sums(3, 0.0);
  d.transition_transposed().mul_vec_transposed(ones, col_sums);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(col_sums[i], 1.0, 1e-15) << "row " << i;
  }
}

TEST(Dtmc, SelfLoopProbabilities) {
  const Ctmc c = Ctmc::from_transitions(
      3, {{0, 1, 2.0}, {1, 0, 4.0}, {2, 0, 1.0}});
  const RandomizedDtmc d(c);
  EXPECT_DOUBLE_EQ(d.lambda(), 4.0);
  EXPECT_DOUBLE_EQ(d.self_loop(0), 0.5);
  EXPECT_DOUBLE_EQ(d.self_loop(1), 0.0);
  EXPECT_DOUBLE_EQ(d.self_loop(2), 0.75);
}

TEST(Dtmc, StepPreservesProbabilityMass) {
  const auto m = make_mm1k(2.0, 3.0, 5);
  const RandomizedDtmc d(m.chain);
  std::vector<double> pi(6, 0.0);
  pi[0] = 1.0;
  std::vector<double> next(6, 0.0);
  for (int k = 0; k < 100; ++k) {
    d.step(pi, next);
    pi.swap(next);
    EXPECT_NEAR(sum(pi), 1.0, 1e-13);
  }
}

TEST(Dtmc, StepMatchesManualComputation) {
  // Two-state: P = [[1-l/L, l/L], [m/L, 1-m/L]] with L = max(l, m).
  const auto m = make_two_state(0.5, 2.0);
  const RandomizedDtmc d(m.chain);
  std::vector<double> pi = {0.25, 0.75};
  std::vector<double> next(2, 0.0);
  d.step(pi, next);
  EXPECT_NEAR(next[0], 0.25 * (1 - 0.25) + 0.75 * 1.0, 1e-15);
  EXPECT_NEAR(next[1], 0.25 * 0.25 + 0.75 * 0.0, 1e-15);
}

TEST(Dtmc, AbsorbingStateGetsFullSelfLoop) {
  const Ctmc c = Ctmc::from_transitions(2, {{0, 1, 1.0}});
  const RandomizedDtmc d(c);
  EXPECT_DOUBLE_EQ(d.self_loop(1), 1.0);
  std::vector<double> pi = {0.0, 1.0};
  std::vector<double> next(2, 0.0);
  d.step(pi, next);
  EXPECT_DOUBLE_EQ(next[1], 1.0);
}

TEST(Dtmc, RejectsAllAbsorbingChain) {
  const Ctmc c = Ctmc::from_transitions(2, {{0, 1, 0.0}});
  EXPECT_THROW(RandomizedDtmc{c}, contract_error);
}

TEST(Dtmc, RejectsRateFactorBelowOne) {
  const auto m = make_two_state(1.0, 1.0);
  EXPECT_THROW(RandomizedDtmc(m.chain, 0.5), contract_error);
}

}  // namespace
}  // namespace rrl
