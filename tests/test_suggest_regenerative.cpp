// Tests of the regenerative-state selection heuristic.
#include <gtest/gtest.h>

#include "core/regenerative.hpp"
#include "core/rrl_solver.hpp"
#include "models/raid5.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(SuggestRegenerative, TwoStatePicksTheUpState) {
  // Stationary mass: up ~ mu/(lambda+mu) ~ 1: state 0 must be suggested.
  const auto m = make_two_state(1e-3, 1.0);
  EXPECT_EQ(suggest_regenerative_state(m.chain), 0);
}

TEST(SuggestRegenerative, RaidPicksThePerfectState) {
  Raid5Params p;
  p.groups = 5;
  const auto avail = build_raid5_availability(p);
  EXPECT_EQ(suggest_regenerative_state(avail.chain, 256),
            avail.initial_state);
  // Works on the absorbing (reliability) variant too: the conditional
  // occupancy still concentrates on the perfect state.
  const auto rel = build_raid5_reliability(p);
  EXPECT_EQ(suggest_regenerative_state(rel.chain, 256), rel.initial_state);
}

TEST(SuggestRegenerative, NeverSuggestsAbsorbingStates) {
  const auto c = make_random_ctmc(
      {.num_states = 15, .num_absorbing = 3, .seed = 29});
  const index_t r = suggest_regenerative_state(c);
  EXPECT_FALSE(c.is_absorbing(r));
}

TEST(SuggestRegenerative, SuggestionIsUsableAndConsistent) {
  const auto c = make_random_ctmc({.num_states = 20, .seed = 55});
  std::vector<double> rewards(20, 0.0);
  rewards[9] = 1.0;
  std::vector<double> alpha(20, 0.0);
  alpha[0] = 1.0;
  const index_t r = suggest_regenerative_state(c);
  const RegenerativeRandomizationLaplace with_suggested(c, rewards, alpha,
                                                        r);
  const RegenerativeRandomizationLaplace with_default(c, rewards, alpha, 0);
  const double t = 25.0;
  EXPECT_NEAR(with_suggested.trr(t).value, with_default.trr(t).value,
              1e-10);
}

TEST(SuggestRegenerative, MeasurablyBetterThanAWorstCaseChoice) {
  // On the RAID model, the perfect state (suggested) yields a much smaller
  // truncation K than a rarely-visited degraded state.
  Raid5Params p;
  p.groups = 5;
  const auto m = build_raid5_availability(p);
  const auto rewards = m.failure_rewards();
  const auto alpha = m.initial_distribution();
  const index_t good = suggest_regenerative_state(m.chain, 256);
  // Find some deep degraded state (many failed disks) as the bad choice.
  index_t bad = good;
  for (std::size_t i = 0; i < m.states.size(); ++i) {
    if (!m.states[i].failed && m.states[i].nfd >= 3) {
      bad = static_cast<index_t>(i);
      break;
    }
  }
  ASSERT_NE(bad, good);
  RegenerativeOptions opt;
  opt.epsilon = 1e-10;
  const double t = 1e4;
  const auto schema_good =
      compute_regenerative_schema(m.chain, rewards, alpha, good, t, opt);
  const auto schema_bad =
      compute_regenerative_schema(m.chain, rewards, alpha, bad, t, opt);
  EXPECT_LT(schema_good.dtmc_steps() * 2, schema_bad.dtmc_steps());
}

TEST(SuggestRegenerative, RejectsDegenerateInputs) {
  const auto m = make_two_state(1.0, 2.0);
  EXPECT_THROW((void)suggest_regenerative_state(m.chain, 0),
               contract_error);
}

}  // namespace
}  // namespace rrl
