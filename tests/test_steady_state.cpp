// Unit tests for the GTH and power-iteration steady-state solvers.
#include "markov/steady_state.hpp"

#include <gtest/gtest.h>

#include "models/simple.hpp"
#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Gth, TwoStateClosedForm) {
  const auto m = make_two_state(1e-3, 1.0);
  const auto pi = gth_steady_state(m.chain);
  const double expected_down = 1e-3 / (1e-3 + 1.0);
  EXPECT_NEAR(pi[0], 1.0 - expected_down, 1e-15);
  EXPECT_NEAR(pi[1], expected_down, 1e-15);
}

TEST(Gth, Mm1kGeometricStationary) {
  const auto m = make_mm1k(2.0, 3.0, 8);
  const auto pi = gth_steady_state(m.chain);
  for (int i = 0; i <= 8; ++i) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(i)], m.stationary(i), 1e-14)
        << "i=" << i;
  }
}

TEST(Gth, SatisfiesBalanceEquations) {
  const auto c = make_random_ctmc({.num_states = 30, .seed = 42});
  const auto pi = gth_steady_state(c);
  EXPECT_NEAR(sum(pi), 1.0, 1e-13);
  // pi Q = 0  <=>  for all j: sum_i pi_i R(i,j) = pi_j * exit_j.
  std::vector<double> inflow(30, 0.0);
  c.rates().mul_vec_transposed(pi, inflow);
  for (index_t j = 0; j < 30; ++j) {
    EXPECT_NEAR(inflow[static_cast<std::size_t>(j)],
                pi[static_cast<std::size_t>(j)] *
                    c.exit_rates()[static_cast<std::size_t>(j)],
                1e-12);
  }
}

TEST(Gth, NumericallyBenignOnStiffChain) {
  // Rates spanning 8 orders of magnitude (a dependability-model signature).
  const Ctmc c = Ctmc::from_transitions(
      3, {{0, 1, 1e-8}, {1, 0, 1.0}, {1, 2, 1e-6}, {2, 0, 0.25}});
  const auto pi = gth_steady_state(c);
  EXPECT_NEAR(sum(pi), 1.0, 1e-14);
  // Balance at state 2: pi_1 * 1e-6 = pi_2 * 0.25.
  EXPECT_NEAR(pi[1] * 1e-6, pi[2] * 0.25, 1e-18);
}

TEST(Gth, RejectsOversizedChain) {
  const auto m = make_mm1k(1.0, 1.0, 9);
  EXPECT_THROW(gth_steady_state(m.chain, /*max_dense_states=*/5),
               contract_error);
}

TEST(PowerIteration, MatchesGth) {
  const auto c = make_random_ctmc({.num_states = 40, .seed = 7});
  const auto ref = gth_steady_state(c);
  // rate_factor > 1 guarantees aperiodicity.
  const RandomizedDtmc d(c, 1.05);
  const auto r = power_steady_state(d, 1e-14);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(dist_l1(r.distribution, ref), 1e-10);
}

TEST(PowerIteration, ReportsNonConvergence) {
  const auto m = make_two_state(1e-6, 1.0);  // very stiff => slow mixing
  const RandomizedDtmc d(m.chain);
  const auto r = power_steady_state(d, 1e-16, /*max_iterations=*/3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

}  // namespace
}  // namespace rrl
