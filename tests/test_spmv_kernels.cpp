// Unit tests for the vectorized SpMV kernel layer (sparse/spmv_kernels.hpp,
// sparse/sell.hpp): every kernel variant compiled into this binary and
// usable on this host is run against the scalar reference and must match
// BITWISE — the determinism contract the solvers' reproducibility
// guarantees stand on. Comparisons go through memcmp, not EXPECT_EQ on
// doubles: -0.0 == 0.0 would hide a sign flip the contract forbids.
#include "sparse/spmv_kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/sell.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

// Every variant usable right now: compiled into the binary AND supported
// by the running CPU. Always contains at least the scalar reference.
std::vector<const SpmvKernels*> available_variants() {
  std::vector<const SpmvKernels*> variants;
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (const SpmvKernels* k = kernels_for(isa)) variants.push_back(k);
  }
  return variants;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  // The empty-vector guard matters: memcmp's pointer arguments may not be
  // null even for a zero count, and empty vectors may hand out nullptr.
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> test_vector(std::size_t n) {
  std::vector<double> x(n);
  // Irregular magnitudes (including negatives and exact zeros) so a changed
  // accumulation order actually changes bits instead of hiding in symmetry.
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (static_cast<double>(i % 17) - 8.0) / (1.0 + static_cast<double>(i % 29));
  }
  return x;
}

// Deterministic irregular matrix: varying row lengths (including empty
// rows and one dense row) exercise every fringe of the blocked walk.
CsrMatrix irregular(index_t n) {
  std::vector<Triplet> entries;
  for (index_t r = 0; r < n; ++r) {
    if (r % 7 == 3) continue;  // empty rows
    for (index_t k = 0; k < (r % 11) + 1; ++k) {
      const index_t c = (r * 31 + k * 17) % n;
      entries.push_back({r, c, 1.0 / (1.0 + r + 3.0 * k) - 0.05 * k});
    }
  }
  if (n > 5) {
    for (index_t c = 0; c < n; ++c) entries.push_back({5, c, 0.25 - 0.001 * c});
  }
  return CsrMatrix::from_triplets(n, n, entries);
}

std::vector<double> reference_product(const CsrMatrix& m,
                                      const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(m.rows()), 0.0);
  m.mul_vec_with(scalar_kernels(), x, y);
  return y;
}

TEST(SpmvKernels, IsaNames) {
  EXPECT_STREQ(kernel_isa_name(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(kernel_isa_name(KernelIsa::kAvx2), "avx2");
  EXPECT_STREQ(kernel_isa_name(KernelIsa::kAvx512), "avx512");
}

TEST(SpmvKernels, ScalarVariantIsAlwaysAvailable) {
  EXPECT_EQ(kernels_for(KernelIsa::kScalar), &scalar_kernels());
  EXPECT_NE(kernels_for(best_supported_isa()), nullptr);
  EXPECT_EQ(scalar_kernels().isa, KernelIsa::kScalar);
  ASSERT_NE(scalar_kernels().csr_rows, nullptr);
  ASSERT_NE(scalar_kernels().sell_chunks, nullptr);
}

TEST(SpmvKernels, EveryVariantMatchesScalarBitwiseOnCsr) {
  const struct {
    const char* what;
    CsrMatrix m;
  } cases[] = {
      {"empty matrix", CsrMatrix::from_triplets(0, 0, {})},
      {"single empty row", CsrMatrix::from_triplets(1, 1, {})},
      {"single dense row",
       [] {
         std::vector<Triplet> e;
         for (index_t c = 0; c < 64; ++c) e.push_back({0, c, 0.125 * (c - 30)});
         return CsrMatrix::from_triplets(1, 64, e);
       }()},
      {"duplicates summed (some to zero)",
       CsrMatrix::from_triplets(9, 9, {{0, 1, 1.5},
                                       {0, 1, 2.5},
                                       {1, 0, -1.0},
                                       {1, 0, 1.0},
                                       {8, 8, 3.0}})},
      {"irregular 19", irregular(19)},
      {"irregular 533", irregular(533)},
  };
  for (const auto& c : cases) {
    const std::vector<double> x =
        test_vector(static_cast<std::size_t>(c.m.cols()));
    const std::vector<double> want = reference_product(c.m, x);
    for (const SpmvKernels* k : available_variants()) {
      std::vector<double> got(static_cast<std::size_t>(c.m.rows()), -7.0);
      c.m.mul_vec_with(*k, x, got);
      EXPECT_TRUE(bits_equal(got, want)) << c.what << " via " << k->name;
    }
  }
}

TEST(SpmvKernels, ForcedSellMatchesCsrBitwiseAcrossVariants) {
  // Sizes straddling the chunk width: exact multiples, one-past, sub-chunk
  // tails — every split of blocked span vs CSR fringe.
  for (const index_t n : {8, 9, 16, 64, 67, 533}) {
    CsrMatrix blocked = irregular(n);
    blocked.specialize(/*force_blocked=*/true);
    ASSERT_NE(blocked.sell(), nullptr) << "n=" << n;
    EXPECT_EQ(blocked.sell()->covered_rows, n / kSellChunkRows * kSellChunkRows);

    const std::vector<double> x = test_vector(static_cast<std::size_t>(n));
    const std::vector<double> want = reference_product(irregular(n), x);
    for (const SpmvKernels* k : available_variants()) {
      std::vector<double> got(static_cast<std::size_t>(n), -7.0);
      blocked.mul_vec_with(*k, x, got);
      EXPECT_TRUE(bits_equal(got, want)) << "n=" << n << " via " << k->name;
    }
  }
}

TEST(SpmvKernels, SellLayoutShapeInvariants) {
  const CsrMatrix m = irregular(67);
  const auto layout =
      build_sell_layout(m.rows(), m.row_ptr(), m.col_idx(), m.values(),
                        /*force=*/true);
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->covered_rows, 64);
  EXPECT_EQ(layout->num_chunks, 8);
  ASSERT_EQ(layout->chunk_ptr.size(), 9u);
  EXPECT_EQ(layout->chunk_ptr.front(), 0);
  for (std::size_t c = 1; c < layout->chunk_ptr.size(); ++c) {
    EXPECT_LE(layout->chunk_ptr[c - 1], layout->chunk_ptr[c]);
  }
  const auto slots = static_cast<std::size_t>(layout->slots());
  EXPECT_EQ(layout->col_idx.size(), slots * kSellChunkRows);
  EXPECT_EQ(layout->values.size(), slots * kSellChunkRows);
}

TEST(SpmvKernels, SpecializeHeuristicRejectsSmallMatrices) {
  // Far below kMinSellNnz: the histogram pass must decline (the padding
  // and indirection would cost more than the blocked walk saves).
  CsrMatrix m = irregular(67);
  m.specialize();
  EXPECT_EQ(m.sell(), nullptr);

  // Fewer rows than one chunk: nothing to block even under force.
  CsrMatrix tiny = irregular(7);
  tiny.specialize(/*force_blocked=*/true);
  EXPECT_EQ(tiny.sell(), nullptr);
}

TEST(SpmvKernels, SpecializeAcceptsLargeEnoughMatrices) {
  // kMinSellNnz entries with moderate padding: the heuristic should adopt
  // the blocked layout without force. 1024 rows x ~8/row = ~8k entries.
  std::vector<Triplet> entries;
  const index_t n = 1024;
  for (index_t r = 0; r < n; ++r) {
    for (index_t k = 0; k < 8; ++k) {
      entries.push_back({r, (r * 13 + k * 37) % n, 1.0 + 0.01 * k});
    }
  }
  CsrMatrix m = CsrMatrix::from_triplets(n, n, entries);
  m.specialize();
  ASSERT_NE(m.sell(), nullptr);
  EXPECT_EQ(m.sell()->covered_rows, n);
}

TEST(SpmvKernels, MulVecLeadingPrefixBitwiseAndSuffixUntouched) {
  const index_t n = 67;
  CsrMatrix blocked = irregular(n);
  blocked.specialize(/*force_blocked=*/true);
  ASSERT_NE(blocked.sell(), nullptr);
  const std::vector<double> x = test_vector(static_cast<std::size_t>(n));
  const std::vector<double> full = reference_product(irregular(n), x);

  ThreadPool pool(4);
  for (const index_t leading : {0, 1, 7, 8, 9, 16, 63, 64, 67}) {
    for (const bool pooled : {false, true}) {
      std::vector<double> y(static_cast<std::size_t>(n), 123.25);
      if (pooled) {
        blocked.mul_vec_leading(x, y, leading, pool);
      } else {
        blocked.mul_vec_leading(x, y, leading);
      }
      for (index_t r = 0; r < n; ++r) {
        const double want =
            r < leading ? full[static_cast<std::size_t>(r)] : 123.25;
        const double got = y[static_cast<std::size_t>(r)];
        EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
            << "leading=" << leading << " row=" << r
            << (pooled ? " (pooled)" : "");
      }
    }
  }
}

TEST(SpmvKernels, PooledMulVecMatchesSerialBitwiseOnForcedSell) {
  const index_t n = 533;
  CsrMatrix blocked = irregular(n);
  blocked.specialize(/*force_blocked=*/true);
  ASSERT_NE(blocked.sell(), nullptr);
  const std::vector<double> x = test_vector(static_cast<std::size_t>(n));
  std::vector<double> serial(static_cast<std::size_t>(n), 0.0);
  blocked.mul_vec(x, serial);
  EXPECT_TRUE(bits_equal(serial, reference_product(irregular(n), x)));

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(static_cast<std::size_t>(n), -1.0);
    blocked.mul_vec(x, parallel, pool);
    EXPECT_TRUE(bits_equal(parallel, serial)) << "threads=" << threads;
  }
}

TEST(SpmvKernels, ResolveKernelsOverridePlumbing) {
  // The pure resolution hook behind the RRL_KERNEL environment override
  // (active_kernels() feeds it getenv("RRL_KERNEL") once per process).
  const KernelIsa best = best_supported_isa();
  EXPECT_EQ(resolve_kernels("scalar").isa, KernelIsa::kScalar);
  EXPECT_EQ(resolve_kernels(nullptr).isa, best);
  EXPECT_EQ(resolve_kernels("").isa, best);
  EXPECT_EQ(resolve_kernels("auto").isa, best);
  // Unknown names and a requested-but-unavailable variant fall back to the
  // best supported one (with a warning on stderr) instead of crashing a
  // run over a typo.
  EXPECT_EQ(resolve_kernels("bogus").isa, best);
  EXPECT_EQ(resolve_kernels(kernel_isa_name(best)).isa, best);
  if (kernels_for(KernelIsa::kAvx512) == nullptr) {
    EXPECT_EQ(resolve_kernels("avx512").isa, best);
  }
}

TEST(SpmvKernels, ActiveKernelsIsStableAndUsable) {
  const SpmvKernels& first = active_kernels();
  EXPECT_EQ(&first, &active_kernels());  // resolved once, then pinned
  EXPECT_NE(kernels_for(first.isa), nullptr);
  ASSERT_NE(first.csr_rows, nullptr);
  ASSERT_NE(first.sell_chunks, nullptr);
}

}  // namespace
}  // namespace rrl
