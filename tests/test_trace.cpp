// Trace spans: disabled-by-default no-op, enable/flush round trip, the
// Chrome-trace JSON shape (parseable, spans nest, pid/tid sane), events
// from several threads landing in one flush, and reset() clearing
// buffered events. The JSON is checked with a small structural validator
// rather than string matching, so formatting may evolve without breaking
// the test as long as the output stays a valid trace-event file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/trace.hpp"

namespace rrl {
namespace {

/// Minimal JSON scanner for the fixed shape write_chrome_trace emits:
/// {"traceEvents":[{...},...],"displayTimeUnit":"ms"}. Extracts one
/// numeric field per event; throws out_of_range/invalid_argument (failing
/// the test) on malformed text.
std::vector<std::int64_t> event_fields(const std::string& json,
                                       const std::string& key) {
  std::vector<std::int64_t> values;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    values.push_back(std::stoll(json.substr(pos)));
  }
  return values;
}

struct TraceGuard {
  ~TraceGuard() {
    trace::disable();
    trace::reset();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  TraceGuard guard;
  trace::disable();
  trace::reset();
  { const trace::Span span("should.not.appear"); }
  std::ostringstream out;
  EXPECT_EQ(trace::write_chrome_trace(out), 0u);
}

TEST(Trace, EnableFlushRoundTripHasValidShape) {
  TraceGuard guard;
  trace::reset();
  trace::enable();
  {
    const trace::Span outer("outer", 7);
    const trace::Span inner("inner");
  }
  trace::disable();

  std::ostringstream out;
  EXPECT_EQ(trace::write_chrome_trace(out), 2u);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // pid is this process; both spans came from this thread, so one tid.
  const std::vector<std::int64_t> pids = event_fields(json, "pid");
  ASSERT_EQ(pids.size(), 2u);
  for (const std::int64_t pid : pids) EXPECT_EQ(pid, ::getpid());
  const std::vector<std::int64_t> tids = event_fields(json, "tid");
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_EQ(tids[0], tids[1]);
  EXPECT_GT(tids[0], 0);
}

TEST(Trace, NestedSpansNestInTime) {
  TraceGuard guard;
  trace::reset();
  trace::enable();
  {
    const trace::Span outer("nest.outer");
    {
      const trace::Span inner("nest.inner");
    }
  }
  trace::disable();

  std::ostringstream out;
  ASSERT_EQ(trace::write_chrome_trace(out), 2u);
  const std::string json = out.str();
  const std::vector<std::int64_t> ts = event_fields(json, "ts");
  const std::vector<std::int64_t> dur = event_fields(json, "dur");
  ASSERT_EQ(ts.size(), 2u);
  ASSERT_EQ(dur.size(), 2u);

  // Spans close innermost-first, so the inner event is recorded first.
  const std::int64_t inner_start = ts[0], inner_end = ts[0] + dur[0];
  const std::int64_t outer_start = ts[1], outer_end = ts[1] + dur[1];
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, SpansFromSeveralThreadsAllFlushWithDistinctTids) {
  TraceGuard guard;
  trace::reset();
  trace::enable();
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] { const trace::Span span("thread.span"); });
  }
  for (std::thread& t : threads) t.join();
  trace::disable();

  std::ostringstream out;
  EXPECT_EQ(trace::write_chrome_trace(out), 3u);
  std::vector<std::int64_t> tids = event_fields(out.str(), "tid");
  ASSERT_EQ(tids.size(), 3u);
  std::sort(tids.begin(), tids.end());
  EXPECT_NE(tids[0], tids[1]);
  EXPECT_NE(tids[1], tids[2]);
}

TEST(Trace, FlushDrainsAndResetDiscards) {
  TraceGuard guard;
  trace::reset();
  trace::enable();
  { const trace::Span span("drain.one"); }
  std::ostringstream first;
  EXPECT_EQ(trace::write_chrome_trace(first), 1u);
  // A flush consumes its events: a second flush is empty.
  std::ostringstream second;
  EXPECT_EQ(trace::write_chrome_trace(second), 0u);

  { const trace::Span span("drain.two"); }
  trace::reset();
  std::ostringstream third;
  EXPECT_EQ(trace::write_chrome_trace(third), 0u);
}

TEST(Trace, ArgRidesAlongAsNumericPayload) {
  TraceGuard guard;
  trace::reset();
  trace::enable();
  { const trace::Span span("arg.span", 1234567); }
  trace::disable();
  std::ostringstream out;
  ASSERT_EQ(trace::write_chrome_trace(out), 1u);
  EXPECT_NE(out.str().find("\"v\":1234567"), std::string::npos);
}

}  // namespace
}  // namespace rrl
