// Dispatch orchestrator end-to-end, against the real rrl_solve binary
// (located next to this test binary): (1) the serve acceptance — the
// work-stealing fleet's merged report is byte-for-byte the single-process
// unsharded report for worker counts 1 and 3; (2) death recovery — a
// worker killed mid-run has its unit re-dispatched to a survivor and the
// report is still byte-identical; (3) a fleet that loses every worker
// fails loudly; (4) the exit-code regression — study, serve and merge all
// report partial results AND a nonzero exit code when a scenario errors.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"
#include "support/trace.hpp"

namespace rrl {
namespace {

namespace fs = std::filesystem;

/// The rrl_solve binary next to this test binary (both live in the build
/// directory); empty when absent.
std::string rrl_solve_path() {
  const std::string candidate = self_sibling_path("rrl_solve");
  std::error_code ec;
  return !candidate.empty() && fs::exists(candidate, ec) && !ec
             ? candidate
             : "";
}

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rrl-dispatch-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

void write_model(const fs::path& path, const Ctmc& chain,
                 const std::vector<double>& rewards,
                 const std::vector<double>& initial, index_t regenerative) {
  write_model_file(path.string(), chain, rewards, initial, regenerative);
}

/// A study over three models (two sizes of RAID-5 plus multiproc) — 6
/// work units of 4 scenarios under `solvers rr rrl`, enough for dynamic
/// handout to matter.
fs::path write_fleet_study(const TempDir& dir) {
  const MultiprocModel multi = build_multiproc_availability({});
  write_model(dir.path / "multi.rrlm", multi.chain, multi.failure_rewards(),
              multi.initial_distribution(), multi.initial_state);
  for (const int groups : {6, 12}) {
    Raid5Params p;
    p.groups = groups;
    const Raid5Model raid = build_raid5_availability(p);
    write_model(dir.path / ("raid" + std::to_string(groups) + ".rrlm"),
                raid.chain, raid.failure_rewards(),
                raid.initial_distribution(), raid.initial_state);
  }
  const fs::path study = dir.path / "fleet.study";
  std::ofstream(study) << "model raid12.rrlm\n"
                          "model raid6.rrlm\n"
                          "model multi.rrlm\n"
                          "solvers rr rrl\n"
                          "measures both\n"
                          "epsilons 1e-8\n"
                          "grid 1:500:3\n"
                          "times 5 50\n"
                          "jobs 1\n";
  return study;
}

/// The single-process reference report of a study file.
std::string reference_csv(const fs::path& study_path) {
  const StudySpec spec = read_study_file(study_path.string());
  ModelRepository repository;
  SolverCache cache;
  const StudyRun run = run_study(spec, repository, cache);
  std::ostringstream csv;
  write_report_csv(csv, run.total_scenarios, run.rows());
  return csv.str();
}

DispatchOptions worker_fleet(const std::string& binary,
                             const fs::path& study_path, int workers) {
  DispatchOptions options;
  options.workers = workers;
  options.worker_command = {binary, "--worker", "--study",
                            study_path.string(), "--jobs", "1"};
  return options;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(Dispatch, ServeReportByteIdenticalForOneAndThreeWorkers) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);

  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);
  EXPECT_EQ(plan.units.size(), 6u);

  for (const int workers : {1, 3}) {
    std::ostringstream out;
    StudyReducer reducer(out, plan.total_scenarios);
    const DispatchReport report =
        dispatch_study(plan, worker_fleet(binary, study, workers), reducer);
    EXPECT_EQ(report.units, plan.units.size());
    EXPECT_EQ(report.scenarios, plan.total_scenarios);
    EXPECT_EQ(report.failed_scenarios, 0u);
    EXPECT_EQ(report.workers_lost, 0u);
    EXPECT_EQ(report.redispatched, 0u);
    EXPECT_EQ(out.str(), reference)
        << "serve report diverged with " << workers << " workers";
  }
}

std::uint64_t fleet_value(const DispatchReport& report,
                          const std::string& name) {
  for (const auto& [counter, value] : report.fleet_counters) {
    if (counter == name) return value;
  }
  return 0;
}

TEST(Dispatch, WorkerStatsAccountEveryUnitAndObservabilityKeepsBytes) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);

  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);

  // Observability fully armed in the parent — tracing on, live stats
  // lines at a fast cadence — must not move the reduced report by a byte.
  trace::enable();
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  DispatchOptions options = worker_fleet(binary, study, 3);
  options.stats_interval_ms = 50;
  const DispatchReport report = dispatch_study(plan, options, reducer);
  trace::disable();
  trace::reset();

  EXPECT_EQ(out.str(), reference)
      << "observability perturbed the reduced report";

  // Per-worker accounting: one entry per spawned worker, every unit and
  // scenario attributed to exactly one of them, busy time positive.
  ASSERT_EQ(report.worker_stats.size(), 3u);
  std::size_t units = 0;
  std::uint64_t scenarios = 0;
  double busy = 0.0;
  for (const WorkerStats& ws : report.worker_stats) {
    EXPECT_EQ(ws.label.rfind("local-", 0), 0u) << ws.label;
    EXPECT_FALSE(ws.remote);
    EXPECT_FALSE(ws.lost);
    units += ws.units;
    scenarios += ws.scenarios;
    busy += ws.busy_seconds;
  }
  EXPECT_EQ(units, report.units);
  EXPECT_EQ(scenarios, report.scenarios);
  EXPECT_GT(busy, 0.0);
  EXPECT_NEAR(busy, report.worker_seconds,
              1e-9 * (1.0 + report.worker_seconds));

  // Fleet totals merge every worker's LATEST snapshot; the stats frame
  // precedes its result frame, so the merged counters cover every unit
  // and every scenario the fleet executed.
  EXPECT_EQ(fleet_value(report, "rrl_exec_units_total"), report.units);
  EXPECT_EQ(fleet_value(report, "rrl_scenarios_solved_total"),
            report.scenarios);
  EXPECT_GT(fleet_value(report, "rrl_solve_dtmc_steps_total"), 0u);
}

TEST(Dispatch, WorkerKilledMidRunIsRedispatchedAndReportIsByteIdentical) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);

  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);

  // Worker 0 accepts its first unit, sits on it for half a second and
  // dies (abnormally, without replying) while worker 1 is still churning
  // through the queue — the in-flight unit must migrate to worker 1, and
  // the final report must not show a seam. (The idle-survivor death
  // schedule is the separate test below.)
  DispatchOptions options = worker_fleet(binary, study, 2);
  options.worker_extra_args = {
      {"--test-die-after", "0", "--test-die-delay-ms", "500"}};
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report = dispatch_study(plan, options, reducer);
  EXPECT_EQ(report.units, plan.units.size());
  EXPECT_EQ(report.workers_lost, 1u);
  EXPECT_EQ(report.redispatched, 1u);
  EXPECT_EQ(report.failed_scenarios, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Dispatch, RequeuedUnitReachesAnAlreadyIdleSurvivor) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  // Two units, two workers: each worker gets one unit at hello. Worker 0
  // sits on its assignment for 2.5 s and then dies without replying;
  // worker 1 finishes its unit in a fraction of that and goes IDLE with
  // an empty queue long before the death is detected. The re-queued unit
  // must still reach the idle survivor — a survivor that is idle at
  // requeue time sends no further frames, so only the dispatcher's own
  // re-arming can hand it the work. (The units are sized to take a few
  // hundred ms so worker 1 cannot drain the whole queue before worker
  // 0's slower process startup completes its handshake.)
  Raid5Params p;
  p.groups = 12;
  const Raid5Model raid = build_raid5_availability(p);
  write_model(dir.path / "raid.rrlm", raid.chain, raid.failure_rewards(),
              raid.initial_distribution(), raid.initial_state);
  const fs::path study = dir.path / "tiny.study";
  std::ofstream(study) << "model raid.rrlm\n"
                          "solvers rr rrl\n"
                          "measures both\n"
                          "grid 1:2000:4\n"
                          "jobs 1\n";
  const std::string reference = reference_csv(study);

  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);
  ASSERT_EQ(plan.units.size(), 2u);

  DispatchOptions options = worker_fleet(binary, study, 2);
  options.worker_extra_args = {
      {"--test-die-after", "0", "--test-die-delay-ms", "2500"}};
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report = dispatch_study(plan, options, reducer);
  EXPECT_EQ(report.units, 2u);
  EXPECT_EQ(report.workers_lost, 1u);
  EXPECT_EQ(report.redispatched, 1u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Dispatch, DeafWorkerMakesAssignWriteFailAnObservedDeathNotACrash) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);

  // A SOLO worker closes its end of the parent->worker pipe just before
  // returning its first result, then hangs WITHOUT exiting: the parent's
  // next assign write to it hits EPIPE with the worker process still
  // alive. The write failure must be treated as an observed death — the
  // worker buried, and (no survivors, no listener) the dispatch failing
  // loudly — and emphatically NOT a SIGPIPE kill of the parent, which is
  // what this regression pinned down: a worker dying mid-write used to
  // be able to take the whole study down with it.
  DispatchOptions options = worker_fleet(binary, study, 1);
  options.worker_extra_args = {{"--test-deaf-after", "1"}};
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  EXPECT_THROW((void)dispatch_study(plan, options, reducer),
               contract_error);
}

TEST(Dispatch, AllWorkersLostFailsLoudly) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);

  // Every worker dies on its first assignment: no survivor can make
  // progress, and dispatch must fail rather than hang or under-report.
  DispatchOptions options = worker_fleet(binary, study, 2);
  options.worker_extra_args = {{"--test-die-after", "0"},
                               {"--test-die-after", "0"}};
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  EXPECT_THROW((void)dispatch_study(plan, options, reducer),
               contract_error);
}

TEST(Dispatch, PartialFailureExitsNonzeroInStudyServeAndMergeModes) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  // An absorbing chain: rsd scenarios fail structurally, rrl succeeds —
  // a PARTIALLY failed study.
  const MultiprocModel rel = build_multiproc_reliability({});
  write_model(dir.path / "absorbing.rrlm", rel.chain,
              rel.failure_rewards(), rel.initial_distribution(),
              rel.initial_state);
  const fs::path study = dir.path / "failing.study";
  std::ofstream(study) << "model absorbing.rrlm\n"
                          "solvers rsd rrl\n"
                          "times 5 50\n";

  const std::string quiet = " 2>/dev/null >/dev/null";
  const fs::path study_csv = dir.path / "study.csv";
  // Regression: the partial results must be WRITTEN and the exit code
  // must still be nonzero — an error string inside the CSV alone would
  // let pipelines treat a half-failed study as success.
  EXPECT_EQ(run_command(binary + " --study " + study.string() + " --out " +
                        study_csv.string() + quiet),
            1);
  std::ifstream in(study_csv);
  std::uint64_t total = 0;
  const std::vector<ReportRow> rows = read_report_csv(in, total);
  EXPECT_EQ(total, 2u);
  std::size_t failed = 0;
  std::size_t values = 0;
  for (const ReportRow& row : rows) {
    failed += row.failed() ? 1 : 0;
    values += row.failed() ? 0 : 1;
  }
  EXPECT_EQ(failed, 1u);  // rsd
  EXPECT_GT(values, 0u);  // rrl's points made it out

  const fs::path serve_csv = dir.path / "serve.csv";
  EXPECT_EQ(run_command(binary + " --serve --workers 2 --study " +
                        study.string() + " --out " + serve_csv.string() +
                        quiet),
            1);
  std::ifstream study_bytes(study_csv), serve_bytes(serve_csv);
  std::stringstream a, b;
  a << study_bytes.rdbuf();
  b << serve_bytes.rdbuf();
  EXPECT_EQ(b.str(), a.str());  // identical partial report

  const fs::path merged_csv = dir.path / "merged.csv";
  EXPECT_EQ(run_command(binary + " --merge " + study_csv.string() +
                        " --out " + merged_csv.string() + quiet),
            1);

  // And a fully successful study still exits 0 end to end.
  const fs::path ok_study = dir.path / "ok.study";
  std::ofstream(ok_study) << "model absorbing.rrlm\n"
                             "solvers rrl\n"
                             "times 5 50\n";
  EXPECT_EQ(run_command(binary + " --serve --workers 2 --study " +
                        ok_study.string() + " --out " +
                        (dir.path / "ok.csv").string() + quiet),
            0);
}

}  // namespace
}  // namespace rrl
