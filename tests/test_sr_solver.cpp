// Standard randomization against analytic ground truth.
#include "core/standard_randomization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Sr, TwoStateUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0});
  for (const double t : {0.1, 1.0, 10.0, 1000.0}) {
    EXPECT_NEAR(sr.trr(t).value, m.unavailability(t), 1e-12) << "t=" << t;
  }
}

TEST(Sr, TwoStateIntervalUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0});
  for (const double t : {0.5, 5.0, 500.0}) {
    EXPECT_NEAR(sr.mrr(t).value, m.interval_unavailability(t), 1e-12)
        << "t=" << t;
  }
}

TEST(Sr, ErlangUnreliability) {
  const auto m = make_erlang(4, 0.8);
  // Reward 1 on the absorbing state (index = stages).
  std::vector<double> reward(5, 0.0);
  reward[4] = 1.0;
  std::vector<double> alpha(5, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(m.chain, reward, alpha);
  for (const double t : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(sr.trr(t).value, m.unreliability(t), 1e-12) << "t=" << t;
  }
}

TEST(Sr, ErlangIntervalUnreliability) {
  const auto m = make_erlang(3, 1.0);
  std::vector<double> reward(4, 0.0);
  reward[3] = 1.0;
  std::vector<double> alpha(4, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(m.chain, reward, alpha);
  for (const double t : {1.0, 5.0, 25.0}) {
    EXPECT_NEAR(sr.mrr(t).value, m.interval_unreliability(t), 1e-12)
        << "t=" << t;
  }
}

TEST(Sr, TimeZeroReturnsInitialRewardRate) {
  const auto m = make_two_state(1e-3, 1.0);
  const StandardRandomization up(m.chain, {0.0, 1.0}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(up.trr(0.0).value, 0.0);
  const StandardRandomization down(m.chain, {0.0, 1.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(down.trr(0.0).value, 1.0);
}

TEST(Sr, StepCountIsPoissonTruncation) {
  const auto m = make_two_state(1e-3, 1.0);
  SrOptions opt;
  opt.epsilon = 1e-12;
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0}, opt);
  const auto r = sr.trr(1000.0);
  // Lambda*t = 1000; truncation ~ mean + ~8 std devs.
  EXPECT_GT(r.stats.dtmc_steps, 1000);
  EXPECT_LT(r.stats.dtmc_steps, 1000 + 300);
  EXPECT_DOUBLE_EQ(r.stats.lambda, 1.0);
}

TEST(Sr, StepsGrowLinearlyInTime) {
  const auto m = make_two_state(1e-3, 1.0);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0});
  const auto s1 = sr.trr(1e3).stats.dtmc_steps;
  const auto s2 = sr.trr(1e4).stats.dtmc_steps;
  // Truncation is mean + O(sqrt(mean)), so the ratio undershoots 10 a bit.
  const double ratio = static_cast<double>(s2) / static_cast<double>(s1);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 10.5);
}

TEST(Sr, CapIsHonoredAndFlagged) {
  const auto m = make_two_state(1e-3, 1.0);
  SrOptions opt;
  opt.step_cap = 100;
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0}, opt);
  const auto r = sr.trr(1e4);
  EXPECT_TRUE(r.stats.capped);
  EXPECT_EQ(r.stats.dtmc_steps, 100);
}

TEST(Sr, ZeroRewardShortCircuits) {
  const auto m = make_two_state(1e-3, 1.0);
  const StandardRandomization sr(m.chain, {0.0, 0.0}, {1.0, 0.0});
  const auto r = sr.trr(100.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_EQ(r.stats.dtmc_steps, 0);
}

TEST(Sr, GeneralRewardStructure) {
  // MRR with non-indicator rewards: mean queue length of an M/M/1/K over
  // [0, t] approaches the stationary mean for large t.
  const auto m = make_mm1k(1.0, 2.0, 6);
  std::vector<double> rewards(7);
  for (int i = 0; i <= 6; ++i) rewards[static_cast<std::size_t>(i)] = i;
  std::vector<double> alpha(7, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(m.chain, rewards, alpha);
  const double long_run = sr.mrr(2000.0).value;
  EXPECT_NEAR(long_run, m.stationary_mean_length(), 1e-2);
}

TEST(Sr, RejectsBadInputs) {
  const auto m = make_two_state(1e-3, 1.0);
  EXPECT_THROW(StandardRandomization(m.chain, {0.0}, {1.0, 0.0}),
               contract_error);
  EXPECT_THROW(StandardRandomization(m.chain, {0.0, 1.0}, {0.4, 0.4}),
               contract_error);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, {1.0, 0.0});
  EXPECT_THROW((void)sr.trr(-1.0), contract_error);
  EXPECT_THROW((void)sr.mrr(0.0), contract_error);
}

}  // namespace
}  // namespace rrl
