// Amortized time-grid sweeps through the uniform TransientSolver interface:
// (1) the four methods agree within 2*eps on shared log-spaced grids over
// the RAID-5 and multiprocessor models, (2) solve_grid's aggregate stats
// show the amortization (a whole grid costs <= 1.5x one solve at the
// largest time, far below the sum of per-point solves), and (3) grid
// results match single-point solves.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

constexpr double kEps = 1e-10;

struct GridCase {
  std::string label;
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> initial;
  index_t regenerative = 0;
};

GridCase raid_case() {
  Raid5Params p;
  p.groups = 20;
  const Raid5Model m = build_raid5_availability(p);
  return {"raid5-g20", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

GridCase multiproc_case() {
  const MultiprocModel m = build_multiproc_availability({});
  return {"multiproc", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

std::unique_ptr<TransientSolver> solver_for(const GridCase& c,
                                            const std::string& name,
                                            double eps = kEps) {
  SolverConfig config;
  config.epsilon = eps;
  config.regenerative = c.regenerative;
  return make_solver(name, c.chain, c.rewards, c.initial, config);
}

TEST(SolveGridAgreement, AllFourMethodsAgreeWithin2Eps) {
  // Both availability models are irreducible, so every method applies.
  const std::vector<double> grid = log_time_grid(1.0, 1e3, 10);
  for (const GridCase& c : {raid_case(), multiproc_case()}) {
    for (const MeasureKind kind : {MeasureKind::kTrr, MeasureKind::kMrr}) {
      SolveRequest request;
      request.measure = kind;
      request.times = grid;
      const SolveReport reference =
          solver_for(c, "sr")->solve_grid(request);
      for (const std::string name : {"rsd", "rr", "rrl"}) {
        const SolveReport report = solver_for(c, name)->solve_grid(request);
        ASSERT_EQ(report.points.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
          EXPECT_NEAR(report.points[i].value, reference.points[i].value,
                      2.0 * kEps)
              << c.label << " " << name << " t=" << grid[i]
              << (kind == MeasureKind::kTrr ? " trr" : " mrr");
        }
      }
    }
  }
}

TEST(SolveGridAmortization, GridCostsAtMost1p5xSingleLargestSolve) {
  // The acceptance bar of the interface refactor: on a 20-point grid, the
  // sweep's aggregate work is <= 1.5x ONE solve at the largest time, for
  // every method (SR/RR are the paper's expensive ones).
  const GridCase c = raid_case();
  const std::vector<double> grid = log_time_grid(1.0, 1e3, 20);
  const double t_max = grid.back();
  for (const std::string name : {"sr", "rsd", "rr", "rrl"}) {
    const auto solver = solver_for(c, name, 1e-12);
    const SolveReport report =
        solver->solve_grid(SolveRequest::trr(grid, 1e-12));
    const TransientValue single =
        solver->solve_point(t_max, MeasureKind::kTrr, 1e-12);
    EXPECT_LE(static_cast<double>(report.total.dtmc_steps),
              1.5 * static_cast<double>(single.stats.dtmc_steps))
        << name;
    if (name == "rr") {
      EXPECT_LE(static_cast<double>(report.total.vmodel_steps),
                1.5 * static_cast<double>(single.stats.vmodel_steps));
    }
  }
}

TEST(SolveGridAmortization, StepGrowthIsSublinearVsPerPointSolves) {
  // Summing what each point alone would need (the per-point stats) must be
  // far above what the shared pass actually performed (the aggregate).
  const GridCase c = multiproc_case();
  const std::vector<double> grid = log_time_grid(1.0, 1e4, 20);
  for (const std::string name : {"sr", "rsd"}) {
    const SolveReport report =
        solver_for(c, name)->solve_grid(SolveRequest::trr(grid));
    std::int64_t per_point_sum = 0;
    for (const TransientValue& p : report.points) {
      per_point_sum += p.stats.dtmc_steps;
    }
    EXPECT_GE(per_point_sum, 2 * report.total.dtmc_steps) << name;
  }
}

TEST(SolveGrid, MatchesSinglePointSolves) {
  const GridCase c = multiproc_case();
  const std::vector<double> grid = log_time_grid(0.5, 200.0, 6);
  for (const std::string name : {"sr", "rsd", "rr", "rrl"}) {
    const auto solver = solver_for(c, name);
    for (const MeasureKind kind : {MeasureKind::kTrr, MeasureKind::kMrr}) {
      SolveRequest request;
      request.measure = kind;
      request.times = grid;
      const SolveReport report = solver->solve_grid(request);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const TransientValue single = solver->solve_point(grid[i], kind);
        EXPECT_NEAR(report.points[i].value, single.value, 2.0 * kEps)
            << name << " t=" << grid[i];
      }
    }
  }
}

TEST(SolveGrid, HandlesUnsortedDuplicateAndZeroTimes) {
  const GridCase c = multiproc_case();
  const std::vector<double> times = {100.0, 1.0, 100.0, 0.0, 10.0};
  for (const std::string name : {"sr", "rsd", "rr", "rrl"}) {
    const auto solver = solver_for(c, name);
    const SolveReport report =
        solver->solve_grid(SolveRequest::trr(times));
    ASSERT_EQ(report.points.size(), times.size());
    EXPECT_NEAR(report.points[0].value, report.points[2].value, 1e-14)
        << name;
    // TRR(0) is the initial reward rate (zero mass on the failed state).
    EXPECT_NEAR(report.points[3].value, 0.0, 1e-14) << name;
    EXPECT_NEAR(report.points[1].value,
                solver->solve_point(1.0, MeasureKind::kTrr).value, 2.0 * kEps)
        << name;
  }
}

TEST(SolveGrid, RequestEpsilonOverridesConstructionEpsilon) {
  const GridCase c = multiproc_case();
  const auto solver = solver_for(c, "sr", 1e-12);
  const SolveReport tight =
      solver->solve_grid(SolveRequest::trr({1e3}));
  const SolveReport loose =
      solver->solve_grid(SolveRequest::trr({1e3}, 1e-4));
  EXPECT_LT(loose.total.dtmc_steps, tight.total.dtmc_steps);
  EXPECT_NEAR(loose.points[0].value, tight.points[0].value, 2e-4);
}

TEST(SolveGrid, RejectsEmptyAndNegativeTimes) {
  const GridCase c = multiproc_case();
  const auto solver = solver_for(c, "sr");
  EXPECT_THROW((void)solver->solve_grid(SolveRequest::trr({})),
               contract_error);
  EXPECT_THROW((void)solver->solve_grid(SolveRequest::trr({-1.0})),
               contract_error);
  // MRR needs strictly positive times.
  EXPECT_THROW((void)solver->solve_grid(SolveRequest::mrr({0.0})),
               contract_error);
}

TEST(SolveGrid, LogTimeGridCoversRangeInclusive) {
  const auto grid = log_time_grid(2.0, 2000.0, 7);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_DOUBLE_EQ(grid.front(), 2.0);
  EXPECT_DOUBLE_EQ(grid.back(), 2000.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
  EXPECT_EQ(log_time_grid(5.0, 50.0, 1), std::vector<double>{50.0});
}

}  // namespace
}  // namespace rrl
