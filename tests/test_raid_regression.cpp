// Regression anchors: exact measure values of the paper-grid RAID instances
// as computed by this library (cross-validated between independent solvers
// when first recorded). These protect the numerical pipeline against silent
// behavioural drift; the paper's own spot values are compared in
// bench/ablation_accuracy and EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "core/rrl_solver.hpp"
#include "models/raid5.hpp"

namespace rrl {
namespace {

RegenerativeRandomizationLaplace reliability_solver(int groups,
                                                    const Raid5Model*& keep) {
  static Raid5Model g20 = [] {
    Raid5Params p;
    p.groups = 20;
    return build_raid5_reliability(p);
  }();
  static Raid5Model g40 = [] {
    Raid5Params p;
    p.groups = 40;
    return build_raid5_reliability(p);
  }();
  Raid5Model& m = groups == 20 ? g20 : g40;
  keep = &m;
  RrlOptions opt;
  opt.epsilon = 1e-12;
  return {m.chain, m.failure_rewards(), m.initial_distribution(),
          m.initial_state, opt};
}

TEST(RaidRegression, UnreliabilityG20) {
  const Raid5Model* m = nullptr;
  const auto solver = reliability_solver(20, m);
  // Anchors recorded from this library (RRL = SR to < 1e-11 at t <= 1e3).
  EXPECT_NEAR(solver.trr(1e0).value, 1.698126825e-06, 1e-11);
  EXPECT_NEAR(solver.trr(1e2).value, 6.821651114e-04, 1e-9);
  EXPECT_NEAR(solver.trr(1e5).value, 4.989483479e-01, 1e-6);
}

TEST(RaidRegression, UnreliabilityG40) {
  const Raid5Model* m = nullptr;
  const auto solver = reliability_solver(40, m);
  EXPECT_NEAR(solver.trr(1e0).value, 3.359057657e-06, 1e-11);
  EXPECT_NEAR(solver.trr(1e2).value, 1.335622939e-03, 1e-9);
  EXPECT_NEAR(solver.trr(1e5).value, 7.416146488e-01, 1e-6);
}

TEST(RaidRegression, ModelFingerprints) {
  const Raid5Model* m20 = nullptr;
  (void)reliability_solver(20, m20);
  EXPECT_EQ(m20->chain.num_states(), 2481);
  EXPECT_EQ(m20->chain.num_transitions(), 13140);
  EXPECT_NEAR(m20->chain.max_exit_rate(), 23.751810, 1e-5);
  const Raid5Model* m40 = nullptr;
  (void)reliability_solver(40, m40);
  EXPECT_EQ(m40->chain.num_states(), 8161);
  EXPECT_EQ(m40->chain.num_transitions(), 45520);
  EXPECT_NEAR(m40->chain.max_exit_rate(), 43.753410, 1e-5);
}

TEST(RaidRegression, BiggerArraysAreLessReliable) {
  const Raid5Model* m = nullptr;
  const auto g20 = reliability_solver(20, m);
  const auto g40 = reliability_solver(40, m);
  for (const double t : {1e2, 1e4}) {
    EXPECT_GT(g40.trr(t).value, g20.trr(t).value) << "t=" << t;
  }
}

TEST(RaidRegression, SparesImproveAvailability) {
  auto ua_at = [](int disk_spares, int ctrl_spares) {
    Raid5Params p;
    p.groups = 5;
    p.disk_spares = disk_spares;
    p.ctrl_spares = ctrl_spares;
    const auto m = build_raid5_availability(p);
    RrlOptions opt;
    opt.epsilon = 1e-12;
    const RegenerativeRandomizationLaplace solver(
        m.chain, m.failure_rewards(), m.initial_distribution(),
        m.initial_state, opt);
    return solver.trr(1e4).value;
  };
  const double bare = ua_at(0, 0);
  const double disks_only = ua_at(3, 0);
  const double full = ua_at(3, 1);
  EXPECT_GT(bare, disks_only);
  EXPECT_GT(disks_only, full);
}

TEST(RaidRegression, StepCountsMatchPaperGrid) {
  // Tables 1-2 fidelity locked in as a regression (paper values +-2 steps).
  const Raid5Model* m = nullptr;
  const auto g20 = reliability_solver(20, m);
  EXPECT_NEAR(static_cast<double>(g20.schema(1e0).dtmc_steps()), 56, 2);
  EXPECT_NEAR(static_cast<double>(g20.schema(1e1).dtmc_steps()), 323, 2);
  EXPECT_NEAR(static_cast<double>(g20.schema(1e2).dtmc_steps()), 2233, 2);
  EXPECT_NEAR(static_cast<double>(g20.schema(1e3).dtmc_steps()), 2708, 2);
  const auto g40 = reliability_solver(40, m);
  EXPECT_NEAR(static_cast<double>(g40.schema(1e0).dtmc_steps()), 86, 2);
  EXPECT_NEAR(static_cast<double>(g40.schema(1e3).dtmc_steps()), 5122, 2);
}

}  // namespace
}  // namespace rrl
