// Tests for the support utilities (CLI parser, table printer, stopwatch,
// contracts).
#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace rrl {
namespace {

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--beta", "2",  "--flag",
                        "--name", "hello", "positional"};
  const CliArgs args(8, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get_long("beta", 0), 2);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("name", ""), "hello");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 3.25), 3.25);
  EXPECT_EQ(args.get_string("missing", "d"), "d");
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, ExplicitFalseFlag) {
  const char* argv[] = {"prog", "--flag=false"};
  const CliArgs args(2, argv);
  EXPECT_FALSE(args.get_bool("flag", true));
}

TEST(Table, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("|   a | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| 333 |           4 |"), std::string::npos);
}

TEST(Table, RejectsAridityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(Formatting, SigAndSci) {
  EXPECT_EQ(fmt_sig(1234.5678, 5), "1234.6");
  EXPECT_EQ(fmt_sci(0.000123456, 3), "1.235e-04");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-3;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.millis(), 0.0);  // both units advance monotonically
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

TEST(Contracts, MacrosThrowWithContext) {
  try {
    RRL_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace rrl
