// Metrics registry: register-once stable references, counter / gauge /
// histogram semantics, snapshot consistency, Prometheus text formatting,
// cross-process counter merging, and — the reason this test is on the
// thread-sanitizer target list — concurrent increments from pool workers
// racing a snapshot reader without a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

// The registry is process-global and shared with every other test in this
// binary, so each test uses its own metric names and reads them back via
// MetricsSnapshot::value() rather than comparing whole snapshots.

TEST(Metrics, RegistrationReturnsStableReferences) {
  metrics::Counter& a = metrics::counter("test_metrics_stable_total");
  metrics::Counter& b = metrics::counter("test_metrics_stable_total");
  EXPECT_EQ(&a, &b);

  metrics::Gauge& g1 = metrics::gauge("test_metrics_stable_gauge");
  metrics::Gauge& g2 = metrics::gauge("test_metrics_stable_gauge");
  EXPECT_EQ(&g1, &g2);

  metrics::Histogram& h1 = metrics::histogram("test_metrics_stable_hist");
  metrics::Histogram& h2 = metrics::histogram("test_metrics_stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, CounterAccumulatesAndSnapshotSeesIt) {
  metrics::Counter& c = metrics::counter("test_metrics_counter_total");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  EXPECT_EQ(metrics::snapshot().value("test_metrics_counter_total"),
            before + 42);
}

TEST(Metrics, GaugeSetWinsAndAddAdjusts) {
  metrics::Gauge& g = metrics::gauge("test_metrics_gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.set(2);
  EXPECT_EQ(g.value(), 2);

  const metrics::MetricsSnapshot snap = metrics::snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test_metrics_gauge") {
      found = true;
      EXPECT_EQ(value, 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, AbsentCounterReadsAsZero) {
  EXPECT_EQ(metrics::snapshot().value("test_metrics_never_registered"), 0u);
}

TEST(Metrics, HistogramCountsSumsAndBuckets) {
  metrics::Histogram& h = metrics::histogram("test_metrics_hist");
  const std::uint64_t count_before = h.count();
  const double sum_before = h.sum();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1e9);  // beyond the last bound: absorbed by the last bucket
  h.observe(0.0);  // below the first bound: absorbed by the first bucket
  EXPECT_EQ(h.count(), count_before + 4);
  EXPECT_DOUBLE_EQ(h.sum(), sum_before + 0.5 + 1.5 + 1e9);

  // Every observation lands in exactly one bucket.
  std::uint64_t total = 0;
  for (int k = 0; k < metrics::Histogram::kBuckets; ++k) total += h.bucket(k);
  EXPECT_EQ(total, h.count());

  // Bounds double per bucket; the first is 2^kMinExponent.
  EXPECT_DOUBLE_EQ(metrics::Histogram::bucket_bound(0),
                   std::ldexp(1.0, metrics::Histogram::kMinExponent));
  EXPECT_DOUBLE_EQ(metrics::Histogram::bucket_bound(5),
                   2.0 * metrics::Histogram::bucket_bound(4));
}

TEST(Metrics, PrometheusExpositionShape) {
  metrics::counter("test_metrics_prom_total").add(3);
  metrics::gauge("test_metrics_prom_gauge").set(-5);
  metrics::histogram("test_metrics_prom_hist").observe(1.0);

  std::ostringstream out;
  metrics::write_prometheus(out, metrics::snapshot());
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE test_metrics_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_metrics_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_metrics_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_metrics_prom_gauge -5\n"), std::string::npos);
  // Histograms expose cumulative buckets ending at +Inf, plus sum/count.
  EXPECT_NE(text.find("test_metrics_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_metrics_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("test_metrics_prom_hist_count"), std::string::npos);
}

TEST(Metrics, MergeCountersSumsByNameAndAppendsNewNames) {
  std::vector<std::pair<std::string, std::uint64_t>> into = {
      {"a_total", 10}, {"b_total", 1}};
  const std::vector<std::pair<std::string, std::uint64_t>> from = {
      {"b_total", 2}, {"c_total", 30}};
  metrics::merge_counters(into, from);
  ASSERT_EQ(into.size(), 3u);
  // merge_counters keeps the result name-sorted.
  EXPECT_EQ(into[0].first, "a_total");
  EXPECT_EQ(into[0].second, 10u);
  EXPECT_EQ(into[1].first, "b_total");
  EXPECT_EQ(into[1].second, 3u);
  EXPECT_EQ(into[2].first, "c_total");
  EXPECT_EQ(into[2].second, 30u);
}

// The TSan acceptance: pool workers hammering one counter and one
// histogram while another thread snapshots mid-flight. Under
// -fsanitize=thread any non-atomic access would be flagged; functionally
// the final totals must be exact once the writers quiesce.
TEST(Metrics, ConcurrentIncrementsAndSnapshotsAreRaceFree) {
  metrics::Counter& c = metrics::counter("test_metrics_race_total");
  metrics::Histogram& h = metrics::histogram("test_metrics_race_hist");
  const std::uint64_t count_before = c.value();
  const std::uint64_t hist_before = h.count();

  constexpr std::size_t kIncrements = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const metrics::MetricsSnapshot snap = metrics::snapshot();
      // Monotone counter: any mid-flight value is within range.
      EXPECT_LE(snap.value("test_metrics_race_total"),
                count_before + kIncrements);
    }
  });

  ThreadPool pool(4);
  pool.parallel_for(kIncrements, [&](std::size_t i) {
    c.add(1);
    h.observe(static_cast<double>(i % 7) * 0.25);
  });
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(c.value(), count_before + kIncrements);
  EXPECT_EQ(h.count(), hist_before + kIncrements);
}

}  // namespace
}  // namespace rrl
