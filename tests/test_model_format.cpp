// Tests of the plain-text model interchange format.
#include "io/model_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "core/rrl_solver.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(ModelFormat, ParsesMinimalModel) {
  std::istringstream in(R"(# a two-state availability model
states 2
transition 0 1 0.001
transition 1 0 1.0
reward 1 1.0
)");
  const ModelFile m = read_model(in);
  EXPECT_EQ(m.chain.num_states(), 2);
  EXPECT_EQ(m.chain.num_transitions(), 2);
  EXPECT_DOUBLE_EQ(m.rewards[1], 1.0);
  EXPECT_DOUBLE_EQ(m.initial[0], 1.0);  // default: delta at state 0
  EXPECT_EQ(m.regenerative, -1);
}

TEST(ModelFormat, ParsesFullModel) {
  std::istringstream in(R"(states 3
regenerative 0
initial 0 0.25
initial 1 0.75
reward 2 0.5
transition 0 1 1.0   # inline comment
transition 1 2 2.0
transition 2 0 3.0
)");
  const ModelFile m = read_model(in);
  EXPECT_EQ(m.regenerative, 0);
  EXPECT_DOUBLE_EQ(m.initial[1], 0.75);
  EXPECT_DOUBLE_EQ(m.rewards[2], 0.5);
  EXPECT_DOUBLE_EQ(m.chain.rates().coeff(1, 2), 2.0);
}

TEST(ModelFormat, DuplicateTransitionsAreSummed) {
  std::istringstream in(R"(states 2
transition 0 1 1.0
transition 0 1 0.5
transition 1 0 1.0
)");
  const ModelFile m = read_model(in);
  EXPECT_DOUBLE_EQ(m.chain.rates().coeff(0, 1), 1.5);
}

TEST(ModelFormat, RoundTripPreservesTheModel) {
  Raid5Params p;
  p.groups = 3;
  const Raid5Model original = build_raid5_availability(p);
  std::stringstream buffer;
  write_model(buffer, original.chain, original.failure_rewards(),
              original.initial_distribution(), original.initial_state);
  const ModelFile loaded = read_model(buffer);

  EXPECT_EQ(loaded.chain.num_states(), original.chain.num_states());
  EXPECT_EQ(loaded.chain.num_transitions(),
            original.chain.num_transitions());
  EXPECT_EQ(loaded.regenerative, original.initial_state);
  for (index_t i = 0; i < original.chain.num_states(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.chain.exit_rates()[static_cast<std::size_t>(i)],
                     original.chain.exit_rates()[static_cast<std::size_t>(i)])
        << "state " << i;
  }
  // And the loaded model solves to the same measure.
  RrlOptions opt;
  opt.epsilon = 1e-12;
  const RegenerativeRandomizationLaplace a(
      original.chain, original.failure_rewards(),
      original.initial_distribution(), original.initial_state, opt);
  const RegenerativeRandomizationLaplace b(loaded.chain, loaded.rewards,
                                           loaded.initial,
                                           loaded.regenerative, opt);
  EXPECT_NEAR(a.trr(100.0).value, b.trr(100.0).value, 1e-15);
}

TEST(ModelFormat, FileRoundTrip) {
  const MultiprocModel m = build_multiproc_reliability({});
  const std::string path = "/tmp/rrl_model_roundtrip_test.rrlm";
  write_model_file(path, m.chain, m.failure_rewards(),
                   m.initial_distribution(), m.initial_state);
  const ModelFile loaded = read_model_file(path);
  EXPECT_EQ(loaded.chain.num_states(), m.chain.num_states());
  EXPECT_EQ(loaded.chain.num_transitions(), m.chain.num_transitions());
}

TEST(ModelFormat, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* fragment) {
    std::istringstream in(text);
    try {
      (void)read_model(in);
      FAIL() << "expected parse failure for: " << text;
    } catch (const contract_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("transition 0 1 1.0\n", "'states <N>' must come before");
  expect_error("states 2\nstates 3\n", "duplicate 'states'");
  expect_error("states 0\n", "positive count");
  expect_error("states 2\ntransition 0 5 1.0\n", "bad target state");
  expect_error("states 2\ntransition 0 1 -2\n", "non-negative rate");
  expect_error("states 2\ntransition 1 1 1.0\n", "self-loop");
  expect_error("states 2\nreward 0 -1\n", "non-negative value");
  expect_error("states 2\ninitial 0 1.5\n", "probability in [0, 1]");
  expect_error("states 2\nfrobnicate 1\n", "unknown keyword");
  expect_error("states 2\ntransition 0 1 1\ninitial 0 0.4\n", "sums to");
}

TEST(ModelFormat, MissingStatesLine) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW((void)read_model(in), contract_error);
}

TEST(ModelFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_model_file("/nonexistent/path/model.rrlm"),
               contract_error);
}

}  // namespace
}  // namespace rrl
