// SchemaCache behavior at the eviction boundaries (capacity 0, 1,
// exactly-full, re-insert after evict), the hit/miss/seed accounting, and
// the seed/snapshot round trip that carries compiled schemas across
// processes (core of the artifact warm-start path).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/schema_cache.hpp"
#include "markov/ctmc.hpp"

namespace rrl {
namespace {

/// Synthetic builder with a call counter: LRU behavior is observable as
/// "how often was the expensive compile invoked for this key".
struct CountingBuilder {
  int builds = 0;
  RegenerativeSchema operator()() {
    ++builds;
    RegenerativeSchema schema;
    schema.lambda = static_cast<double>(builds);  // marks the build
    return schema;
  }
};

TEST(SchemaCache, CapacityZeroNeverRetains) {
  const SchemaCache cache(0);
  CountingBuilder builder;
  const auto build = [&] { return builder(); };
  (void)cache.get(1.0, 1e-8, false, false, build);
  (void)cache.get(1.0, 1e-8, false, false, build);
  EXPECT_EQ(builder.builds, 2);  // same key, both computed
  EXPECT_EQ(cache.size(), 0u);
  const SchemaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);

  // Seeding a degenerate cache is a no-op.
  cache.seed(1.0, 1e-8, RegenerativeSchema{}, false, false);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().seeded, 0u);
}

TEST(SchemaCache, CapacityOneEvictsOnSecondKey) {
  const SchemaCache cache(1);
  CountingBuilder builder;
  const auto build = [&] { return builder(); };

  (void)cache.get(1.0, 1e-8, false, false, build);  // miss, retained
  (void)cache.get(1.0, 1e-8, false, false, build);  // hit
  EXPECT_EQ(builder.builds, 1);
  EXPECT_EQ(cache.size(), 1u);

  (void)cache.get(2.0, 1e-8, false, false, build);  // miss, evicts (1.0)
  EXPECT_EQ(builder.builds, 2);
  EXPECT_EQ(cache.size(), 1u);

  (void)cache.get(1.0, 1e-8, false, false, build);  // re-insert after evict
  EXPECT_EQ(builder.builds, 3);
  (void)cache.get(1.0, 1e-8, false, false, build);  // and it is retained
  EXPECT_EQ(builder.builds, 3);

  const SchemaCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(SchemaCache, ExactlyFullStaysResident) {
  constexpr std::size_t kCapacity = 3;
  const SchemaCache cache(kCapacity);
  CountingBuilder builder;
  const auto build = [&] { return builder(); };

  for (int k = 0; k < static_cast<int>(kCapacity); ++k) {
    (void)cache.get(static_cast<double>(k), 1e-8, false, false, build);
  }
  EXPECT_EQ(builder.builds, 3);
  EXPECT_EQ(cache.size(), kCapacity);

  // At exact capacity every key still hits — nothing was evicted early.
  for (int k = 0; k < static_cast<int>(kCapacity); ++k) {
    (void)cache.get(static_cast<double>(k), 1e-8, false, false, build);
  }
  EXPECT_EQ(builder.builds, 3);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(SchemaCache, EvictsLeastRecentlyUsed) {
  const SchemaCache cache(2);
  CountingBuilder builder;
  const auto build = [&] { return builder(); };

  (void)cache.get(1.0, 1e-8, false, false, build);  // A
  (void)cache.get(2.0, 1e-8, false, false, build);  // B
  (void)cache.get(1.0, 1e-8, false, false, build);  // touch A: B is LRU
  (void)cache.get(3.0, 1e-8, false, false, build);  // C evicts B, not A
  EXPECT_EQ(builder.builds, 3);

  (void)cache.get(1.0, 1e-8, false, false, build);  // A still resident
  EXPECT_EQ(builder.builds, 3);
  (void)cache.get(2.0, 1e-8, false, false, build);  // B was evicted
  EXPECT_EQ(builder.builds, 4);
}

TEST(SchemaCache, SeedPopulatesWithoutBuilding) {
  const SchemaCache cache(4);
  RegenerativeSchema schema;
  schema.lambda = 42.0;
  schema.t = 10.0;
  cache.seed(10.0, 1e-8, schema, false, false);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().seeded, 1u);

  // A get for the seeded key must not invoke the builder.
  CountingBuilder builder;
  const auto compiled =
      cache.get(10.0, 1e-8, false, false, [&] { return builder(); });
  EXPECT_EQ(builder.builds, 0);
  EXPECT_EQ(compiled->schema.lambda, 42.0);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Seeding an existing key keeps the resident entry (both are identical
  // in real use; the marker shows which one survived).
  RegenerativeSchema other = schema;
  other.lambda = 7.0;
  cache.seed(10.0, 1e-8, other, false, false);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().seeded, 1u);  // not counted again
  const auto again =
      cache.get(10.0, 1e-8, false, false, [&] { return builder(); });
  EXPECT_EQ(again->schema.lambda, 42.0);
}

TEST(SchemaCache, SnapshotRoundTripsThroughSeed) {
  // Build a REAL schema on a small irreducible chain so the derived
  // objects (V-model, transform) can be materialized from the seeded copy.
  std::vector<Triplet> rates = {{0, 1, 2.0}, {1, 0, 5.0}, {1, 2, 1.0},
                                {2, 0, 4.0}};
  const Ctmc chain = Ctmc::from_transitions(3, std::move(rates));
  const std::vector<double> rewards = {1.0, 0.5, 0.0};
  const std::vector<double> initial = {1.0, 0.0, 0.0};
  const RegenerativeSchema schema = compute_regenerative_schema(
      chain, rewards, initial, 0, 50.0, RegenerativeOptions{1e-10, 1.0, -1});

  const SchemaCache source(4);
  source.seed(50.0, 1e-10, schema, /*want_transform=*/true,
              /*want_vmodel=*/true);
  const std::vector<SchemaCache::Entry> entries = source.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].t, 50.0);
  EXPECT_EQ(entries[0].eps, 1e-10);
  ASSERT_NE(entries[0].compiled, nullptr);
  EXPECT_NE(entries[0].compiled->transform, nullptr);
  EXPECT_NE(entries[0].compiled->vmodel, nullptr);

  // Seed a second cache from the snapshot (the import path) and verify
  // the schema series survive bit-exactly.
  const SchemaCache target(4);
  target.seed(entries[0].t, entries[0].eps, entries[0].compiled->schema,
              true, true);
  CountingBuilder builder;
  const auto compiled =
      target.get(50.0, 1e-10, true, true, [&] { return builder(); });
  EXPECT_EQ(builder.builds, 0);
  EXPECT_EQ(compiled->schema.main.a, schema.main.a);
  EXPECT_EQ(compiled->schema.main.c, schema.main.c);
  EXPECT_EQ(compiled->schema.lambda, schema.lambda);
  ASSERT_NE(compiled->vmodel, nullptr);
  EXPECT_EQ(compiled->vmodel->chain.num_states(),
            entries[0].compiled->vmodel->chain.num_states());
}

}  // namespace
}  // namespace rrl
