// ThreadPool: every index runs exactly once, worker slots stay in range,
// slot-indexed writes make results independent of scheduling, exceptions
// propagate, and a pool survives many parallel_for rounds (the sweep
// engine's usage pattern).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace rrl {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(count, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, WorkerSlotsAreInRangeAndCallerIsWorkerZero) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> by_worker(4);
  pool.parallel_for(512, [&](std::size_t, std::size_t worker) {
    ASSERT_LT(worker, 4u);
    by_worker[worker].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& w : by_worker) total += w.load();
  EXPECT_EQ(total, 512);

  // A 1-thread pool runs everything inline as worker 0.
  ThreadPool serial(1);
  serial.parallel_for(16, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
  });
}

TEST(ThreadPool, SlotIndexedWritesAreDeterministic) {
  // The determinism contract: each index writes its own slot, so results
  // are identical at every thread count.
  const std::size_t n = 2048;
  std::vector<double> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<double>(i * i) + 0.5;
  }
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> got(n, -1.0);
    pool.parallel_for(n, [&](std::size_t i) {
      got[i] = static_cast<double>(i * i) + 0.5;
    });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAndLoopDrains) {
  // The inline (1-thread) and threaded paths share the contract: the loop
  // drains before the first exception is rethrown.
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            executed.fetch_add(1, std::memory_order_relaxed);
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "threads=" << threads;
    // Every index still executed, and the pool remains usable afterwards.
    EXPECT_EQ(executed.load(), 100) << "threads=" << threads;
    std::atomic<int> after{0};
    pool.parallel_for(10, [&](std::size_t) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 10) << "threads=" << threads;
  }
}

TEST(ThreadPool, SurvivesManyRounds) {
  ThreadPool pool(3);
  std::int64_t sum = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::int64_t> slot(17, 0);
    pool.parallel_for(slot.size(), [&](std::size_t i) {
      slot[i] = static_cast<std::int64_t>(i) + round;
    });
    sum += std::accumulate(slot.begin(), slot.end(), std::int64_t{0});
  }
  // sum_{round} sum_i (i + round) = 200*136 + 17*sum(rounds).
  EXPECT_EQ(sum, 200 * 136 + 17 * (199 * 200 / 2));
}

TEST(ThreadPool, NestedLoopsKeepWorkerSlotsWithinTheDrivenPool) {
  // A parallel_for issued from inside another parallel_for runs inline;
  // the slot its body sees must be valid for the pool being driven: the
  // ambient slot for same-pool nesting (it belongs to this thread there),
  // slot 0 for a different (smaller) pool — slot-indexed scratch like the
  // sweep engine's per-worker workspaces must never be indexed out of
  // bounds.
  ThreadPool outer(8);
  outer.parallel_for(64, [&](std::size_t, std::size_t outer_worker) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    ThreadPool inner(2);  // smaller than the outer slot range
    inner.parallel_for(4, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, 0u);  // inner pool's own contract
    });
    outer.parallel_for(3, [&](std::size_t, std::size_t same_pool_worker) {
      EXPECT_EQ(same_pool_worker, outer_worker);  // this thread's own slot
    });
  });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool defaulted(0);
  EXPECT_EQ(defaulted.num_threads(), ThreadPool::hardware_threads());
}

}  // namespace
}  // namespace rrl
