// The paper's proposed method (RRL) against analytic ground truth, SR, and
// its own error bound.
#include "core/rrl_solver.hpp"

#include <gtest/gtest.h>

#include "core/standard_randomization.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Rrl, TwoStateUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  for (const double t : {0.1, 1.0, 100.0, 1e4, 1e6}) {
    const auto r = solver.trr(t);
    EXPECT_TRUE(r.stats.inversion_converged) << "t=" << t;
    EXPECT_NEAR(r.value, m.unavailability(t), 1e-11) << "t=" << t;
  }
}

TEST(Rrl, TwoStateIntervalUnavailability) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  for (const double t : {1.0, 50.0, 5e3, 1e5}) {
    const auto r = solver.mrr(t);
    EXPECT_TRUE(r.stats.inversion_converged) << "t=" << t;
    EXPECT_NEAR(r.value, m.interval_unavailability(t), 1e-10) << "t=" << t;
  }
}

TEST(Rrl, ErlangUnreliability) {
  const auto m = make_erlang(4, 0.8);
  std::vector<double> reward(5, 0.0);
  reward[4] = 1.0;
  std::vector<double> alpha(5, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomizationLaplace solver(m.chain, reward, alpha, 0);
  for (const double t : {0.5, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(solver.trr(t).value, m.unreliability(t), 1e-11)
        << "t=" << t;
  }
}

TEST(Rrl, MatchesSrWithinEpsilonOnRandomChains) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto c = make_random_ctmc(
        {.num_states = 16, .num_absorbing = 1, .seed = seed});
    std::vector<double> rewards(16, 0.0);
    rewards[15] = 1.0;
    rewards[4] = 0.3;
    std::vector<double> alpha(16, 0.0);
    alpha[0] = 1.0;
    RrlOptions opt;
    opt.epsilon = 1e-10;
    const RegenerativeRandomizationLaplace rrl_solver(c, rewards, alpha, 0,
                                                      opt);
    SrOptions sr_opt;
    sr_opt.epsilon = 1e-13;
    const StandardRandomization sr(c, rewards, alpha, sr_opt);
    for (const double t : {0.5, 5.0, 50.0}) {
      EXPECT_NEAR(rrl_solver.trr(t).value, sr.trr(t).value, 1e-10)
          << "seed=" << seed << " t=" << t;
      EXPECT_NEAR(rrl_solver.mrr(t).value, sr.mrr(t).value, 1e-9 * t)
          << "seed=" << seed << " t=" << t;
    }
  }
}

TEST(Rrl, PaperEpsilonAccuracyTarget) {
  // eps = 1e-12 on a UR-style measure ~ 0.5: the inversion must deliver
  // ~12 absolute digits (the paper reports ~14 significant digits demanded
  // of the algorithm at t = 1e5).
  const auto m = make_erlang(2, 1e-5);
  std::vector<double> reward(3, 0.0);
  reward[2] = 1.0;
  std::vector<double> alpha(3, 0.0);
  alpha[0] = 1.0;
  RrlOptions opt;
  opt.epsilon = 1e-12;
  const RegenerativeRandomizationLaplace solver(m.chain, reward, alpha, 0,
                                                opt);
  const double t = 1e5;
  const auto r = solver.trr(t);
  EXPECT_TRUE(r.stats.inversion_converged);
  EXPECT_NEAR(r.value, m.unreliability(t), 1e-11);
}

TEST(Rrl, NonDeltaInitialDistributionUsesPrimedChain) {
  const auto m = make_two_state(2e-3, 0.5);
  const std::vector<double> alpha = {0.6, 0.4};
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0}, alpha,
                                                0);
  const StandardRandomization sr(m.chain, {0.0, 1.0}, alpha);
  for (const double t : {1.0, 30.0, 500.0}) {
    EXPECT_NEAR(solver.trr(t).value, sr.trr(t).value, 1e-11) << "t=" << t;
    EXPECT_NEAR(solver.mrr(t).value, sr.mrr(t).value, 1e-10) << "t=" << t;
  }
}

TEST(Rrl, AbscissaeCountIsModest) {
  // The paper reports 105..329 abscissae across its whole experiment set;
  // small models should stay in the same range.
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  for (const double t : {1.0, 100.0, 1e4}) {
    const auto r = solver.trr(t);
    EXPECT_GE(r.stats.abscissae, 8) << "t=" << t;
    EXPECT_LE(r.stats.abscissae, 1000) << "t=" << t;
  }
}

TEST(Rrl, WorkDoesNotGrowLinearlyInT) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  const auto r4 = solver.trr(1e4);
  const auto r6 = solver.trr(1e6);
  // Schema steps grow logarithmically; abscissae stay bounded.
  EXPECT_LT(r6.stats.dtmc_steps, r4.stats.dtmc_steps + 60);
  EXPECT_LT(r6.stats.abscissae, 1000);
}

TEST(Rrl, TimeZero) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {0.0, 1.0}, 0);
  EXPECT_DOUBLE_EQ(solver.trr(0.0).value, 1.0);
}

TEST(Rrl, ZeroRewardsShortCircuit) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 0.0},
                                                {1.0, 0.0}, 0);
  const auto r = solver.trr(10.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_EQ(r.stats.abscissae, 0);
}

TEST(Rrl, TMultiplierOptionsAllWork) {
  const auto m = make_two_state(1e-3, 1.0);
  for (const double mult : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    RrlOptions opt;
    opt.t_multiplier = mult;
    const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                  {1.0, 0.0}, 0, opt);
    const double t = 100.0;
    EXPECT_NEAR(solver.trr(t).value, m.unavailability(t), 1e-10)
        << "mult=" << mult;
  }
}

TEST(Rrl, MrrStaysBelowPeakTrr) {
  // MRR over [0, t] of a non-decreasing TRR is bounded by TRR(t).
  const auto m = make_erlang(3, 0.5);
  std::vector<double> reward(4, 0.0);
  reward[3] = 1.0;
  std::vector<double> alpha(4, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomizationLaplace solver(m.chain, reward, alpha, 0);
  for (const double t : {1.0, 10.0}) {
    EXPECT_LE(solver.mrr(t).value, solver.trr(t).value + 1e-12)
        << "t=" << t;
  }
}

}  // namespace
}  // namespace rrl
