// Study planner: (1) the expansion order and unit partition — contiguous
// (model, solver) blocks covering the cartesian product exactly, matching
// run_study's documented scenario indices; (2) cost annotations ordering
// big models above small ones; (3) the plan fingerprint — stable across
// re-plans of the same study, sensitive to anything that changes a
// scenario index's meaning; (4) the unit-level executor agreeing
// bit-for-bit with the whole-study runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

ModelFile multiproc_file() {
  const MultiprocModel m = build_multiproc_availability({});
  ModelFile f;
  f.chain = m.chain;
  f.rewards = m.failure_rewards();
  f.initial = m.initial_distribution();
  f.regenerative = m.initial_state;
  return f;
}

ModelFile raid_file(int groups = 10) {
  Raid5Params p;
  p.groups = groups;
  const Raid5Model m = build_raid5_availability(p);
  ModelFile f;
  f.chain = m.chain;
  f.rewards = m.failure_rewards();
  f.initial = m.initial_distribution();
  f.regenerative = m.initial_state;
  return f;
}

std::string write_temp_model(const std::string& name, const ModelFile& f) {
  const std::string path = "test_study_plan_" + name + ".rrlm";
  write_model_file(path, f.chain, f.rewards, f.initial, f.regenerative);
  return path;
}

StudySpec two_model_spec(const std::string& small_path,
                         const std::string& big_path) {
  std::istringstream in("model " + small_path + "\n" +
                        "model " + big_path + "\n" +
                        "solvers rr rrl\n"
                        "measures both\n"
                        "epsilons 1e-8 1e-10\n"
                        "grid 1:100:3\n"
                        "times 7 70\n");
  return read_study(in);
}

TEST(StudyPlan, UnitsPartitionTheExpansionBySharedSolver) {
  const std::string small = write_temp_model("small", multiproc_file());
  const std::string big = write_temp_model("big", raid_file(20));
  const StudySpec spec = two_model_spec(small, big);

  ModelRepository repo;
  const StudyPlan plan = build_study_plan(spec, repo);

  // 2 models x 2 solvers x 2 measures x 2 epsilons x 2 grids.
  EXPECT_EQ(plan.total_scenarios, 32u);
  ASSERT_EQ(plan.scenarios.size(), 32u);
  // One unit per (model, solver), each 2x2x2 scenarios, contiguous.
  ASSERT_EQ(plan.units.size(), 4u);
  std::size_t expected_first = 0;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const WorkUnit& unit = plan.units[u];
    EXPECT_EQ(unit.id, u);
    EXPECT_EQ(unit.first, expected_first);
    EXPECT_EQ(unit.count, 8u);
    expected_first += unit.count;
    // Every scenario of the unit shares (model, solver) — the solver-
    // sharing grain that keeps batched V-solves alive under re-chunking.
    const PlannedScenario& head = plan.scenarios[unit.first];
    for (std::size_t i = 0; i < unit.count; ++i) {
      const PlannedScenario& s = plan.scenarios[unit.first + i];
      EXPECT_EQ(s.meta.index, unit.first + i);  // global order
      EXPECT_EQ(s.model.get(), head.model.get());
      EXPECT_EQ(s.meta.solver, head.meta.solver);
      // Canonical construction epsilon: the study's tightest.
      EXPECT_EQ(s.config.epsilon, 1e-10);
    }
  }

  // Model-major then solver order, matching the documented expansion.
  EXPECT_EQ(plan.scenarios[0].meta.model, small);
  EXPECT_EQ(plan.scenarios[0].meta.solver, "rr");
  EXPECT_EQ(plan.scenarios[8].meta.solver, "rrl");
  EXPECT_EQ(plan.scenarios[16].meta.model, big);

  // Cost annotation: the big model's units dominate the small model's.
  EXPECT_GT(plan.units[2].cost, plan.units[0].cost);
  EXPECT_GT(plan.units[3].cost, plan.units[1].cost);

  std::remove(small.c_str());
  std::remove(big.c_str());
}

TEST(StudyPlan, FingerprintIsStableAndSensitive) {
  const std::string small = write_temp_model("fp_small", multiproc_file());
  const std::string big = write_temp_model("fp_big", raid_file());
  const StudySpec spec = two_model_spec(small, big);

  ModelRepository repo;
  const StudyPlan a = build_study_plan(spec, repo);
  // Re-planning the same study — even through a fresh repository, as a
  // dispatch worker does — agrees: that is the serve handshake.
  ModelRepository other_repo;
  const StudyPlan b = build_study_plan(spec, other_repo);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  // Any change to a scenario index's meaning changes the fingerprint.
  StudySpec swapped = spec;
  std::swap(swapped.models[0], swapped.models[1]);
  std::swap(swapped.model_labels[0], swapped.model_labels[1]);
  EXPECT_NE(build_study_plan(swapped, repo).fingerprint, a.fingerprint);

  StudySpec fewer = spec;
  fewer.epsilons = {1e-8};
  EXPECT_NE(build_study_plan(fewer, repo).fingerprint, a.fingerprint);

  StudySpec regrid = spec;
  regrid.grids[0][1] *= 1.0000001;
  EXPECT_NE(build_study_plan(regrid, repo).fingerprint, a.fingerprint);

  std::remove(small.c_str());
  std::remove(big.c_str());
}

TEST(StudyPlan, RejectsUnknownSolversUpFront) {
  const std::string small = write_temp_model("bad_solver", multiproc_file());
  std::istringstream in("model " + small + "\nsolvers rr frobnicate\n" +
                        "times 1 10\n");
  const StudySpec spec = read_study(in);
  ModelRepository repo;
  EXPECT_THROW((void)build_study_plan(spec, repo), contract_error);
  std::remove(small.c_str());
}

TEST(StudyExec, UnitExecutionMatchesWholeStudyBitForBit) {
  const std::string small = write_temp_model("exec_small", multiproc_file());
  const std::string big = write_temp_model("exec_big", raid_file());
  const StudySpec spec = two_model_spec(small, big);

  // Whole study through the single-process runner.
  ModelRepository repo;
  SolverCache run_cache;
  const StudyRun whole = run_study(spec, repo, run_cache);
  ASSERT_EQ(whole.sweep.failed(), 0u);

  // The same study unit by unit, in REVERSE order, through a persistent
  // pool and workspace set (the dispatch worker's shape) and a separate
  // cache.
  const StudyPlan plan = build_study_plan(spec, repo);
  SolverCache unit_cache;
  ThreadPool pool(2);
  std::vector<SolveWorkspace> workspaces;
  ExecOptions exec;
  exec.jobs = 2;
  std::vector<ReportRow> rows;
  for (auto it = plan.units.rbegin(); it != plan.units.rend(); ++it) {
    const ExecutedSlice slice =
        execute_unit(plan, *it, unit_cache, exec, &pool, &workspaces);
    // Unit scenarios share one compiled solver: exactly 1 miss per unit.
    EXPECT_EQ(slice.cache.misses, 1u);
    EXPECT_EQ(slice.cache.hits, it->count - 1);
    const std::vector<ReportRow> unit_rows = slice_rows(slice, plan.grids);
    rows.insert(rows.begin(), unit_rows.begin(), unit_rows.end());
  }

  // Reassembled rows == the whole run's rows, bit for bit (values AND
  // formatting; the diagnostic fields are excluded from the canonical
  // layout).
  std::ostringstream whole_csv;
  write_report_csv(whole_csv, whole.total_scenarios, whole.rows());
  std::ostringstream unit_csv;
  write_report_csv(unit_csv, plan.total_scenarios, rows);
  EXPECT_EQ(unit_csv.str(), whole_csv.str());

  // Tier provenance: first unit execution compiles, the rest of the unit
  // shares in memory.
  SolverCache tier_cache;
  const ExecutedSlice tiered =
      execute_unit(plan, plan.units.front(), tier_cache, exec);
  ASSERT_EQ(tiered.tiers.size(), plan.units.front().count);
  EXPECT_EQ(tiered.tiers.front(), CacheTier::kCompiled);
  for (std::size_t i = 1; i < tiered.tiers.size(); ++i) {
    EXPECT_EQ(tiered.tiers[i], CacheTier::kMemory);
  }

  std::remove(small.c_str());
  std::remove(big.c_str());
}

}  // namespace
}  // namespace rrl
