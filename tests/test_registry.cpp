// Solver registry/factory: the four built-in methods are constructible by
// name, unknown names are rejected with a helpful message, user-supplied
// factories can be added, and the ModelFile overload honours the file's
// regenerative-state hint.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/registry.hpp"
#include "io/model_format.hpp"
#include "models/multiproc.hpp"
#include "models/simple.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

struct Fixture {
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> alpha;

  Fixture() {
    const auto m = make_two_state(1e-3, 1.0);
    chain = m.chain;
    rewards = {0.0, 1.0};
    alpha = {1.0, 0.0};
  }
};

TEST(Registry, BuiltinsAreRegisteredInOrder) {
  const auto names = registered_solvers();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "sr");
  EXPECT_EQ(names[1], "rsd");
  EXPECT_EQ(names[2], "rr");
  EXPECT_EQ(names[3], "rrl");
  for (const auto& name : {"sr", "rsd", "rr", "rrl"}) {
    EXPECT_TRUE(solver_registered(name));
    EXPECT_FALSE(solver_description(name).empty());
  }
  EXPECT_FALSE(solver_registered("no-such-method"));
}

TEST(Registry, ConstructsEveryBuiltinAndNamesMatch) {
  const Fixture f;
  SolverConfig config;
  config.epsilon = 1e-10;
  config.regenerative = 0;
  for (const std::string name : {"sr", "rsd", "rr", "rrl"}) {
    const auto solver = make_solver(name, f.chain, f.rewards, f.alpha,
                                    config);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), name);
    const auto r = solver->solve_point(100.0, MeasureKind::kTrr);
    EXPECT_NEAR(r.value, make_two_state(1e-3, 1.0).unavailability(100.0),
                1e-9);
  }
}

TEST(Registry, UnknownNameThrowsListingRegistered) {
  const Fixture f;
  try {
    (void)make_solver("nope", f.chain, f.rewards, f.alpha);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    EXPECT_NE(what.find("rrl"), std::string::npos);
  }
}

TEST(Registry, EpsilonAndStepCapAreForwarded) {
  const Fixture f;
  SolverConfig loose;
  loose.epsilon = 1e-6;
  SolverConfig tight;
  tight.epsilon = 1e-12;
  const auto srl = make_solver("sr", f.chain, f.rewards, f.alpha, loose);
  const auto srt = make_solver("sr", f.chain, f.rewards, f.alpha, tight);
  EXPECT_LT(srl->solve_point(1000.0, MeasureKind::kTrr).stats.dtmc_steps,
            srt->solve_point(1000.0, MeasureKind::kTrr).stats.dtmc_steps);

  SolverConfig capped = tight;
  capped.step_cap = 10;
  const auto src = make_solver("sr", f.chain, f.rewards, f.alpha, capped);
  const auto r = src->solve_point(1000.0, MeasureKind::kTrr);
  EXPECT_TRUE(r.stats.capped);
  EXPECT_LE(r.stats.dtmc_steps, 10);
}

TEST(Registry, StepCapReachesTheSchemaOfRrAndRrl) {
  // The documented contract: config.step_cap also bounds the regenerative
  // schema, so a by-name solve on a huge model cannot run away.
  const MultiprocModel m = build_multiproc_availability({});
  SolverConfig config;
  config.epsilon = 1e-12;
  config.regenerative = m.initial_state;
  config.step_cap = 3;
  for (const std::string name : {"rr", "rrl"}) {
    const auto solver =
        make_solver(name, m.chain, m.failure_rewards(),
                    m.initial_distribution(), config);
    const auto r = solver->solve_point(1000.0, MeasureKind::kTrr);
    EXPECT_TRUE(r.stats.capped) << name;
    EXPECT_LE(r.stats.dtmc_steps, 2 * 3) << name;  // K (+ L) each capped
  }
}

TEST(Registry, AutoRegenerativeStateWorks) {
  // config.regenerative < 0 must select a state automatically for rr/rrl.
  const Fixture f;
  SolverConfig config;
  config.epsilon = 1e-10;
  config.regenerative = -1;
  for (const std::string name : {"rr", "rrl"}) {
    const auto solver = make_solver(name, f.chain, f.rewards, f.alpha,
                                    config);
    EXPECT_NEAR(solver->solve_point(50.0, MeasureKind::kTrr).value,
                make_two_state(1e-3, 1.0).unavailability(50.0), 1e-9);
  }
}

TEST(Registry, UserFactoriesCanBeRegistered) {
  ASSERT_FALSE(solver_registered("custom-sr"));
  register_solver("custom-sr",
                  [](const Ctmc& chain, std::vector<double> rewards,
                     std::vector<double> initial, const SolverConfig& config)
                      -> std::unique_ptr<TransientSolver> {
                    SrOptions opt;
                    opt.epsilon = config.epsilon;
                    return std::make_unique<StandardRandomization>(
                        chain, std::move(rewards), std::move(initial), opt);
                  },
                  "SR behind a custom name");
  EXPECT_TRUE(solver_registered("custom-sr"));
  EXPECT_EQ(solver_description("custom-sr"), "SR behind a custom name");
  const auto names = registered_solvers();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom-sr"), names.end());

  const Fixture f;
  const auto solver = make_solver("custom-sr", f.chain, f.rewards, f.alpha);
  EXPECT_EQ(solver->name(), "sr");  // the wrapped method's own name

  // Re-registering the same name replaces the factory; registering with no
  // description keeps the previous text.
  register_solver("custom-sr",
                  [](const Ctmc& chain, std::vector<double> rewards,
                     std::vector<double> initial, const SolverConfig&)
                      -> std::unique_ptr<TransientSolver> {
                    SrOptions opt;
                    opt.epsilon = 1e-6;
                    return std::make_unique<StandardRandomization>(
                        chain, std::move(rewards), std::move(initial), opt);
                  });
  EXPECT_EQ(solver_description("custom-sr"), "SR behind a custom name");
  const auto replaced =
      make_solver("custom-sr", f.chain, f.rewards, f.alpha);
  ASSERT_NE(replaced, nullptr);  // replacement factory actually callable
  EXPECT_EQ(std::count(names.begin(), names.end(), "custom-sr"), 1);
}

TEST(Registry, ModelFileOverloadUsesHint) {
  // A model file carrying `regenerative 0` constructs rr/rrl without an
  // explicit state in the config.
  std::istringstream in(
      "states 2\n"
      "transition 0 1 0.001\n"
      "transition 1 0 1.0\n"
      "reward 1 1\n"
      "initial 0 1\n"
      "regenerative 0\n");
  const ModelFile model = read_model(in);
  const auto solver = make_solver("rrl", model);
  EXPECT_NEAR(solver->solve_point(100.0, MeasureKind::kTrr).value,
              make_two_state(1e-3, 1.0).unavailability(100.0), 1e-9);
}

}  // namespace
}  // namespace rrl
