// Unit tests for the CTMC representation and structural classification.
#include "markov/ctmc.hpp"

#include <gtest/gtest.h>

#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Ctmc, ExitRatesAndMax) {
  const Ctmc c = Ctmc::from_transitions(
      3, {{0, 1, 2.0}, {0, 2, 1.0}, {1, 0, 5.0}});
  EXPECT_EQ(c.num_states(), 3);
  EXPECT_EQ(c.num_transitions(), 3);
  EXPECT_DOUBLE_EQ(c.exit_rates()[0], 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rates()[1], 5.0);
  EXPECT_DOUBLE_EQ(c.exit_rates()[2], 0.0);
  EXPECT_DOUBLE_EQ(c.max_exit_rate(), 5.0);
}

TEST(Ctmc, AbsorbingDetection) {
  const Ctmc c = Ctmc::from_transitions(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  EXPECT_FALSE(c.is_absorbing(0));
  EXPECT_FALSE(c.is_absorbing(1));
  EXPECT_TRUE(c.is_absorbing(2));
  const auto abs = c.absorbing_states();
  ASSERT_EQ(abs.size(), 1u);
  EXPECT_EQ(abs[0], 2);
}

TEST(Ctmc, ZeroRatesAreDropped) {
  const Ctmc c = Ctmc::from_transitions(2, {{0, 1, 0.0}, {1, 0, 1.0}});
  EXPECT_EQ(c.num_transitions(), 1);
  EXPECT_TRUE(c.is_absorbing(0));
}

TEST(Ctmc, RejectsSelfLoops) {
  EXPECT_THROW(Ctmc::from_transitions(2, {{0, 0, 1.0}}), contract_error);
}

TEST(Ctmc, RejectsNegativeRates) {
  EXPECT_THROW(Ctmc::from_transitions(2, {{0, 1, -1.0}}), contract_error);
}

TEST(CtmcStructure, IrreducibleChain) {
  const auto m = make_two_state(1e-3, 1.0);
  const CtmcStructure s = classify_structure(m.chain);
  EXPECT_TRUE(s.valid);
  EXPECT_TRUE(s.irreducible);
  EXPECT_TRUE(s.absorbing.empty());
  EXPECT_EQ(s.transient_scc_count, 1);
}

TEST(CtmcStructure, AbsorbingChainIsValidButNotIrreducible) {
  // 0 <-> 1, both -> f (paper structure with A = 1).
  const Ctmc c = Ctmc::from_transitions(
      3, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 0.1}, {1, 2, 0.1}});
  const CtmcStructure s = classify_structure(c);
  EXPECT_TRUE(s.valid);
  EXPECT_FALSE(s.irreducible);
  ASSERT_EQ(s.absorbing.size(), 1u);
  EXPECT_EQ(s.absorbing[0], 2);
}

TEST(CtmcStructure, DisconnectedTransientPartIsInvalid) {
  // Two separate cycles: transient states form two SCCs.
  const Ctmc c = Ctmc::from_transitions(
      4, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 1.0}, {3, 2, 1.0}});
  const CtmcStructure s = classify_structure(c);
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.transient_scc_count, 2);
}

TEST(CtmcStructure, OneWayChainIsInvalid) {
  // 0 -> 1 -> 2 with no way back: {0} and {1} are separate SCCs.
  const Ctmc c = Ctmc::from_transitions(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  const CtmcStructure s = classify_structure(c);
  EXPECT_FALSE(s.valid);
}

}  // namespace
}  // namespace rrl
