// Unit tests for the analytic reference models.
#include "models/simple.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "markov/ctmc.hpp"
#include "markov/scc.hpp"

namespace rrl {
namespace {

TEST(TwoState, ClosedFormLimits) {
  const auto m = make_two_state(2e-3, 0.5);
  EXPECT_DOUBLE_EQ(m.unavailability(0.0), 0.0);
  const double ss = 2e-3 / (2e-3 + 0.5);
  EXPECT_NEAR(m.unavailability(1e6), ss, 1e-15);
  // UA is increasing from 0 to the steady state.
  EXPECT_LT(m.unavailability(1.0), m.unavailability(10.0));
  EXPECT_LT(m.unavailability(10.0), ss);
}

TEST(TwoState, IntervalUnavailabilityIsAverageOfUa) {
  const auto m = make_two_state(1e-2, 1.0);
  // Numerical quadrature of UA over [0, t] (Simpson) vs the closed form.
  const double t = 7.0;
  const int n = 4000;
  const double h = t / n;
  double integral = m.unavailability(0.0) + m.unavailability(t);
  for (int i = 1; i < n; ++i) {
    integral += (i % 2 == 1 ? 4.0 : 2.0) * m.unavailability(i * h);
  }
  integral *= h / 3.0;
  EXPECT_NEAR(m.interval_unavailability(t), integral / t, 1e-12);
}

TEST(Erlang, UnreliabilityMatchesGammaCdf) {
  const auto m = make_erlang(4, 0.5);
  // P[Erlang(4, 0.5) <= t]; spot values against independent evaluation.
  EXPECT_NEAR(m.unreliability(0.0), 0.0, 1e-15);
  // For n=1 the Erlang is exponential.
  const auto e1 = make_erlang(1, 2.0);
  EXPECT_NEAR(e1.unreliability(1.5), 1.0 - std::exp(-3.0), 1e-14);
  // Monotone in t.
  EXPECT_LT(m.unreliability(1.0), m.unreliability(5.0));
  EXPECT_NEAR(m.unreliability(1e4), 1.0, 1e-12);
}

TEST(Erlang, IntervalUnreliabilityQuadratureCheck) {
  const auto m = make_erlang(3, 1.0);
  const double t = 5.0;
  const int n = 4000;
  const double h = t / n;
  double integral = m.unreliability(0.0) + m.unreliability(t);
  for (int i = 1; i < n; ++i) {
    integral += (i % 2 == 1 ? 4.0 : 2.0) * m.unreliability(i * h);
  }
  integral *= h / 3.0;
  EXPECT_NEAR(m.interval_unreliability(t), integral / t, 1e-12);
}

TEST(Erlang, ChainStructure) {
  const auto m = make_erlang(5, 1.0);
  EXPECT_EQ(m.chain.num_states(), 6);
  EXPECT_TRUE(m.chain.is_absorbing(5));
  EXPECT_EQ(m.chain.num_transitions(), 5);
}

TEST(BirthDeath, StructureAndRates) {
  const Ctmc c = make_birth_death({1.0, 2.0}, {3.0, 4.0});
  EXPECT_EQ(c.num_states(), 3);
  EXPECT_DOUBLE_EQ(c.rates().coeff(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.rates().coeff(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(c.rates().coeff(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.rates().coeff(2, 1), 4.0);
}

TEST(Mm1k, StationaryDistributionSumsToOne) {
  const auto m = make_mm1k(1.5, 2.0, 10);
  double total = 0.0;
  for (int i = 0; i <= 10; ++i) total += m.stationary(i);
  EXPECT_NEAR(total, 1.0, 1e-14);
  EXPECT_GT(m.stationary_mean_length(), 0.0);
  EXPECT_LT(m.stationary_mean_length(), 10.0);
}

TEST(Cycle, PeriodicStructure) {
  const Ctmc c = make_cycle(5, 2.0);
  EXPECT_EQ(c.num_states(), 5);
  EXPECT_EQ(c.num_transitions(), 5);
  const auto scc = strongly_connected_components(c.rates());
  EXPECT_EQ(scc.count, 1);
}

TEST(RandomCtmc, SatisfiesPaperStructure) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto c = make_random_ctmc(
        {.num_states = 25, .num_absorbing = 2, .seed = seed});
    const CtmcStructure s = classify_structure(c);
    EXPECT_TRUE(s.valid) << "seed=" << seed;
    EXPECT_EQ(s.absorbing.size(), 2u) << "seed=" << seed;
  }
}

TEST(RandomCtmc, IrreducibleWhenNoAbsorbing) {
  const auto c = make_random_ctmc({.num_states = 30, .seed = 3});
  EXPECT_TRUE(classify_structure(c).irreducible);
}

TEST(RandomCtmc, Deterministic) {
  const auto a = make_random_ctmc({.num_states = 15, .seed = 9});
  const auto b = make_random_ctmc({.num_states = 15, .seed = 9});
  EXPECT_EQ(a.num_transitions(), b.num_transitions());
  EXPECT_DOUBLE_EQ(a.max_exit_rate(), b.max_exit_rate());
}

}  // namespace
}  // namespace rrl
