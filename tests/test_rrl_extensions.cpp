// Tests of the RRL extensions: rigorous bounds (the flavour of the paper's
// reference [2]) and the batch multi-time-point API.
#include <gtest/gtest.h>

#include <vector>

#include "core/rrl_solver.hpp"
#include "core/standard_randomization.hpp"
#include "models/raid5.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(RrlBounds, BracketTheTrueValue) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  for (const double t : {1.0, 100.0, 1e4}) {
    const auto b = solver.trr_bounds(t);
    const double truth = m.unavailability(t);
    EXPECT_LE(b.lower, truth) << "t=" << t;
    EXPECT_GE(b.upper, truth) << "t=" << t;
    EXPECT_LE(b.lower, b.value);
    EXPECT_GE(b.upper, b.value);
    // The bracket is tight: within a few eps of the point estimate.
    EXPECT_LE(b.upper - b.lower, 5e-12) << "t=" << t;
  }
}

TEST(RrlBounds, MrrBracket) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  for (const double t : {10.0, 1e3}) {
    const auto b = solver.mrr_bounds(t);
    const double truth = m.interval_unavailability(t);
    EXPECT_LE(b.lower, truth + 1e-15) << "t=" << t;
    EXPECT_GE(b.upper, truth - 1e-15) << "t=" << t;
  }
}

TEST(RrlBounds, RespectRewardRange) {
  const auto m = make_erlang(3, 2.0);
  std::vector<double> reward(4, 0.0);
  reward[3] = 1.0;
  std::vector<double> alpha(4, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomizationLaplace solver(m.chain, reward, alpha, 0);
  const auto b = solver.trr_bounds(50.0);  // UR(50) ~ 1
  EXPECT_GE(b.lower, 0.0);
  EXPECT_LE(b.upper, 1.0);  // clipped at r_max
}

TEST(RrlBatch, MatchesPerPointSolves) {
  const auto c = make_random_ctmc(
      {.num_states = 14, .num_absorbing = 1, .seed = 8});
  std::vector<double> rewards(14, 0.0);
  rewards[13] = 1.0;
  std::vector<double> alpha(14, 0.0);
  alpha[0] = 1.0;
  const RegenerativeRandomizationLaplace solver(c, rewards, alpha, 0);
  const std::vector<double> ts = {0.5, 2.0, 8.0, 32.0, 128.0};
  const auto batch_trr = solver.trr_many(ts);
  const auto batch_mrr = solver.mrr_many(ts);
  ASSERT_EQ(batch_trr.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(batch_trr[i].value, solver.trr(ts[i]).value, 2e-12)
        << "t=" << ts[i];
    EXPECT_NEAR(batch_mrr[i].value, solver.mrr(ts[i]).value, 2e-12)
        << "t=" << ts[i];
  }
}

TEST(RrlBatch, UnsortedSweepIsFine) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  const std::vector<double> ts = {1e4, 1.0, 100.0};
  const auto batch = solver.trr_many(ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(batch[i].value, m.unavailability(ts[i]), 1e-11);
  }
}

TEST(RrlBatch, SchemaIsPaidOnce) {
  // The first entry carries the shared schema step count; the rest only
  // pay inversions.
  const auto model = [] {
    Raid5Params p;
    p.groups = 3;
    return build_raid5_availability(p);
  }();
  const RegenerativeRandomizationLaplace solver(
      model.chain, model.failure_rewards(), model.initial_distribution(),
      model.initial_state);
  const std::vector<double> ts = {1.0, 10.0, 100.0, 1000.0};
  const auto batch = solver.trr_many(ts);
  EXPECT_GT(batch[0].stats.dtmc_steps, 0);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].stats.dtmc_steps, 0);
    EXPECT_GT(batch[i].stats.abscissae, 0);
  }
  // Batch matches the per-point values on the RAID model too.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(batch[i].value, solver.trr(ts[i]).value, 2e-12);
  }
}

TEST(RrlBatch, RejectsEmptyAndNonPositive) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  EXPECT_THROW((void)solver.trr_many({}), contract_error);
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW((void)solver.trr_many(bad), contract_error);
}

TEST(RrlBounds, RejectsNonPositiveTime) {
  const auto m = make_two_state(1e-3, 1.0);
  const RegenerativeRandomizationLaplace solver(m.chain, {0.0, 1.0},
                                                {1.0, 0.0}, 0);
  EXPECT_THROW((void)solver.trr_bounds(0.0), contract_error);
}

}  // namespace
}  // namespace rrl
