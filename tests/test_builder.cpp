// Unit tests for the BFS state-space builder.
#include "markov/builder.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace rrl {
namespace {

struct Pair {
  int a = 0;
  int b = 0;
  friend bool operator==(const Pair&, const Pair&) = default;
};
struct PairHash {
  std::size_t operator()(const Pair& p) const noexcept {
    return std::hash<long long>{}(static_cast<long long>(p.a) * 1000003 +
                                  p.b);
  }
};

TEST(Builder, ExploresReachableStatesOnly) {
  // Random walk on a 3x3 grid, started in a corner; all 9 cells reachable.
  using B = StateSpaceBuilder<Pair, PairHash>;
  const auto result = B::explore(
      {Pair{0, 0}},
      [](const Pair& s, const B::EmitFn& emit) {
        if (s.a < 2) emit(Pair{s.a + 1, s.b}, 1.0);
        if (s.a > 0) emit(Pair{s.a - 1, s.b}, 1.0);
        if (s.b < 2) emit(Pair{s.a, s.b + 1}, 1.0);
        if (s.b > 0) emit(Pair{s.a, s.b - 1}, 1.0);
      });
  EXPECT_EQ(result.chain.num_states(), 9);
  EXPECT_EQ(result.chain.num_transitions(), 24);  // 12 grid edges, both ways
  EXPECT_EQ(result.states.size(), 9u);
  EXPECT_EQ(result.index_of.size(), 9u);
  // Index 0 is the initial state.
  EXPECT_EQ(result.index_of.at(Pair{0, 0}), 0);
}

TEST(Builder, UnreachableStatesAreNotCreated) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  const auto result = B::explore(
      {Pair{0, 0}},
      [](const Pair& s, const B::EmitFn& emit) {
        if (s.a < 3) emit(Pair{s.a + 1, 0}, 2.0);  // one-way chain
      });
  EXPECT_EQ(result.chain.num_states(), 4);
  EXPECT_TRUE(result.chain.is_absorbing(result.index_of.at(Pair{3, 0})));
}

TEST(Builder, ParallelTransitionsAreSummed) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  const auto result = B::explore(
      {Pair{0, 0}},
      [](const Pair& s, const B::EmitFn& emit) {
        if (s.a == 0) {
          emit(Pair{1, 0}, 1.5);
          emit(Pair{1, 0}, 2.5);  // second event to the same successor
        }
      });
  EXPECT_DOUBLE_EQ(result.chain.exit_rates()[0], 4.0);
  EXPECT_EQ(result.chain.num_transitions(), 1);
}

TEST(Builder, ZeroRatesIgnored) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  const auto result = B::explore(
      {Pair{0, 0}},
      [](const Pair& s, const B::EmitFn& emit) {
        if (s.a == 0) emit(Pair{1, 0}, 0.0);
      });
  EXPECT_EQ(result.chain.num_states(), 1);
}

TEST(Builder, SelfLoopEmissionIsRejected) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  EXPECT_THROW(
      B::explore({Pair{0, 0}},
                 [](const Pair& s, const B::EmitFn& emit) {
                   emit(s, 1.0);
                 }),
      contract_error);
}

TEST(Builder, MaxStatesSafetyValve) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  EXPECT_THROW(
      B::explore({Pair{0, 0}},
                 [](const Pair& s, const B::EmitFn& emit) {
                   emit(Pair{s.a + 1, 0}, 1.0);  // unbounded generator
                 },
                 /*max_states=*/100),
      contract_error);
}

TEST(Builder, MultipleInitialStates) {
  using B = StateSpaceBuilder<Pair, PairHash>;
  const auto result = B::explore(
      {Pair{0, 0}, Pair{5, 5}},
      [](const Pair& s, const B::EmitFn& emit) {
        if (s.a == 0) emit(Pair{1, 0}, 1.0);
        if (s.a == 5) emit(Pair{0, 0}, 1.0);
      });
  EXPECT_EQ(result.chain.num_states(), 3);
  EXPECT_EQ(result.index_of.at(Pair{5, 5}), 1);
}

}  // namespace
}  // namespace rrl
