// Tests of the regenerative schema computation (Section 2 core).
#include "core/regenerative.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "markov/poisson.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

RegenerativeSchema two_state_schema(double t, double eps = 1e-12) {
  static const TwoStateModel m = make_two_state(1e-3, 1.0);
  static const std::vector<double> rewards = {0.0, 1.0};
  static const std::vector<double> alpha = {1.0, 0.0};
  RegenerativeOptions opt;
  opt.epsilon = eps;
  return compute_regenerative_schema(m.chain, rewards, alpha, 0, t, opt);
}

TEST(Schema, BasicShapeTwoState) {
  const auto s = two_state_schema(100.0);
  EXPECT_DOUBLE_EQ(s.alpha_r, 1.0);
  EXPECT_FALSE(s.has_primed);
  EXPECT_DOUBLE_EQ(s.lambda, 1.0);  // max exit rate = mu
  EXPECT_GE(s.K(), 1);
  EXPECT_DOUBLE_EQ(s.main.a[0], 1.0);
  EXPECT_DOUBLE_EQ(s.r_max, 1.0);
}

TEST(Schema, TwoStateAtMaxExitRateIsExact) {
  // At Lambda = mu the down state has no self-loop, so every excursion
  // returns after exactly two randomization steps: the schema is exact with
  // K = 2 for every horizon — regenerative randomization nails two-state
  // availability models in O(1) steps.
  for (const double t : {1.0, 1e3, 1e6}) {
    const auto s = two_state_schema(t);
    EXPECT_EQ(s.K(), 2) << "t=" << t;
    EXPECT_TRUE(s.main.exact) << "t=" << t;
    EXPECT_DOUBLE_EQ(s.main.a.back(), 0.0) << "t=" << t;
  }
}

TEST(Schema, SurvivalMassIsNonIncreasing) {
  const auto s = two_state_schema(1000.0);
  for (std::size_t k = 1; k < s.main.a.size(); ++k) {
    EXPECT_LE(s.main.a[k], s.main.a[k - 1] * (1.0 + 1e-14)) << "k=" << k;
  }
}

TEST(Schema, MassConservationPerStep) {
  // a(k) = a(k+1) + qa(k) + sum_i va_i(k): every step's mass must be fully
  // accounted for (survive, regenerate, or absorb).
  const auto c = make_random_ctmc(
      {.num_states = 20, .num_absorbing = 2, .seed = 11});
  std::vector<double> rewards(20, 0.0);
  rewards[18] = 1.0;  // one absorbing state rewarded
  std::vector<double> alpha(20, 0.0);
  alpha[0] = 1.0;
  const auto s =
      compute_regenerative_schema(c, rewards, alpha, 0, 50.0, {});
  ASSERT_EQ(s.absorbing.size(), 2u);
  for (std::size_t k = 0; k + 1 < s.main.a.size(); ++k) {
    double out = s.main.a[k + 1] + s.main.qa[k];
    for (const auto& va : s.main.va) out += va[k];
    EXPECT_NEAR(out, s.main.a[k], 1e-14) << "k=" << k;
  }
}

TEST(Schema, TwoStateExcursionIsExactlyGeometric) {
  // With rate slack (Lambda = 2*mu) the down state keeps a self-loop of
  // probability 1/2: a(1) = lambda/L and a(k) decays geometrically.
  static const TwoStateModel m = make_two_state(1e-3, 1.0);
  static const std::vector<double> rewards = {0.0, 1.0};
  static const std::vector<double> alpha = {1.0, 0.0};
  RegenerativeOptions opt;
  opt.rate_factor = 2.0;
  const auto s =
      compute_regenerative_schema(m.chain, rewards, alpha, 0, 10.0, opt);
  const double L = 2.0;
  EXPECT_NEAR(s.main.a[1], 1e-3 / L, 1e-16);
  const double stay = 1.0 - 1.0 / L;
  for (std::size_t k = 2; k < s.main.a.size(); ++k) {
    EXPECT_NEAR(s.main.a[k], s.main.a[k - 1] * stay,
                1e-15 * s.main.a[k - 1])
        << "k=" << k;
  }
}

TEST(Schema, RewardMassMatchesDownStateProbability) {
  // c(k) = P[excursion alive at age k and in the rewarded state]; for the
  // two-state model every surviving excursion of age >= 1 sits in `down`.
  const auto s = two_state_schema(10.0);
  EXPECT_DOUBLE_EQ(s.main.c[0], 0.0);  // at r, reward 0
  for (std::size_t k = 1; k < s.main.c.size(); ++k) {
    EXPECT_NEAR(s.main.c[k], s.main.a[k], 1e-18);
  }
}

RegenerativeSchema three_state_schema(double t) {
  // 3-state repairable system (the quickstart model): excursions linger in
  // the degraded/down states with genuine self-loops, so the truncation
  // point exhibits the paper's two regimes.
  static const Ctmc chain = Ctmc::from_transitions(3, {{0, 1, 2e-3},
                                                       {1, 0, 1.0},
                                                       {1, 2, 1e-3},
                                                       {2, 0, 0.5}});
  static const std::vector<double> rewards = {0.0, 0.0, 1.0};
  static const std::vector<double> alpha = {1.0, 0.0, 0.0};
  RegenerativeOptions opt;
  opt.epsilon = 1e-12;
  return compute_regenerative_schema(chain, rewards, alpha, 0, t, opt);
}

TEST(Schema, TruncationGrowsLogarithmicallyInTime) {
  const auto k1 = three_state_schema(1e2).K();
  const auto k2 = three_state_schema(1e4).K();
  const auto k3 = three_state_schema(1e6).K();
  EXPECT_GT(k2, k1);
  EXPECT_GT(k3, k2);
  // Two decades of t add a constant number of steps in the log regime.
  const auto d1 = k2 - k1;
  const auto d2 = k3 - k2;
  EXPECT_NEAR(static_cast<double>(d2), static_cast<double>(d1),
              0.5 * static_cast<double>(d1) + 4.0);
}

TEST(Schema, TruncationMeetsTheErrorBound) {
  const double t = 1e4;
  const auto s = three_state_schema(t);
  // Recompute the bound at K: r_max * a(K) * E[(N - K)^+] <= eps/2.
  const PoissonDistribution poisson(s.lambda * t);
  const double bound =
      s.r_max * s.main.a.back() * poisson.expected_excess(s.K());
  EXPECT_LE(bound, 1e-12 / 2.0);
  // And K is minimal: the bound one step earlier must exceed the budget.
  const double bound_before =
      s.r_max * s.main.a[static_cast<std::size_t>(s.K()) - 1] *
      poisson.expected_excess(s.K() - 1);
  EXPECT_GT(bound_before, 1e-12 / 2.0);
}

TEST(Schema, ErlangChainTerminatesExactly) {
  // From state 0 of an Erlang absorption chain every excursion is absorbed
  // after exactly `stages` steps (all exit rates equal => no self-loops), so
  // a(stages) == 0 and the schema is exact regardless of t.
  const auto m = make_erlang(5, 2.0);
  std::vector<double> rewards(6, 0.0);
  rewards[5] = 1.0;
  std::vector<double> alpha(6, 0.0);
  alpha[0] = 1.0;
  const auto s =
      compute_regenerative_schema(m.chain, rewards, alpha, 0, 1e9, {});
  EXPECT_TRUE(s.main.exact);
  EXPECT_EQ(s.K(), 5);
  EXPECT_DOUBLE_EQ(s.main.a.back(), 0.0);
  // All absorption happens at the last step.
  EXPECT_NEAR(s.main.va[0][4], 1.0, 1e-15);
}

TEST(Schema, PrimedChainAppearsWhenInitialMassOffR) {
  const auto m = make_two_state(1e-3, 1.0);
  const std::vector<double> rewards = {0.0, 1.0};
  const std::vector<double> alpha = {0.25, 0.75};
  const auto s =
      compute_regenerative_schema(m.chain, rewards, alpha, 0, 100.0, {});
  EXPECT_TRUE(s.has_primed);
  EXPECT_DOUBLE_EQ(s.alpha_r, 0.25);
  EXPECT_DOUBLE_EQ(s.primed.a[0], 0.75);
  EXPECT_GE(s.L(), 1);
  EXPECT_EQ(s.dtmc_steps(), s.K() + s.L());
  // The primed excursion (started in `down`) also decays geometrically.
  for (std::size_t k = 1; k < s.primed.a.size(); ++k) {
    EXPECT_LE(s.primed.a[k], s.primed.a[k - 1]);
  }
}

TEST(Schema, StepCountMatchesPaperAccounting) {
  const auto s = two_state_schema(1000.0);
  EXPECT_EQ(s.dtmc_steps(), s.K());
  EXPECT_EQ(static_cast<std::int64_t>(s.main.a.size()) - 1, s.K());
  EXPECT_EQ(s.main.qa.size(), s.main.a.size() - 1);
}

TEST(Schema, SmallTimeReducesToPoissonRegime) {
  // For tiny t the criterion stops as soon as the Poisson mass is covered,
  // like standard randomization.
  const auto s = two_state_schema(0.1);
  // lambda*t ~ 0.1: a handful of steps suffices.
  EXPECT_LE(s.K(), 20);
}

TEST(Schema, CapFlagsTheResult) {
  RegenerativeOptions opt;
  opt.epsilon = 1e-12;
  opt.step_cap = 3;
  const Ctmc chain = Ctmc::from_transitions(
      3, {{0, 1, 2e-3}, {1, 0, 1.0}, {1, 2, 1e-3}, {2, 0, 0.5}});
  const std::vector<double> rewards = {0.0, 0.0, 1.0};
  const std::vector<double> alpha = {1.0, 0.0, 0.0};
  const auto s =
      compute_regenerative_schema(chain, rewards, alpha, 0, 1e6, opt);
  EXPECT_TRUE(s.capped);
  EXPECT_EQ(s.K(), 3);
}

TEST(Schema, RejectsAbsorbingRegenerativeState) {
  const auto m = make_erlang(2, 1.0);
  std::vector<double> rewards(3, 0.0);
  std::vector<double> alpha = {1.0, 0.0, 0.0};
  EXPECT_THROW((void)compute_regenerative_schema(m.chain, rewards, alpha, 2,
                                                 1.0, {}),
               contract_error);
}

TEST(Schema, RejectsInitialMassOnAbsorbingStates) {
  const auto m = make_erlang(2, 1.0);
  std::vector<double> rewards(3, 0.0);
  std::vector<double> alpha = {0.5, 0.0, 0.5};
  EXPECT_THROW((void)compute_regenerative_schema(m.chain, rewards, alpha, 0,
                                                 1.0, {}),
               contract_error);
}

TEST(Schema, ZeroRewardsTruncateImmediately) {
  const auto m = make_two_state(1e-3, 1.0);
  const std::vector<double> rewards = {0.0, 0.0};
  const std::vector<double> alpha = {1.0, 0.0};
  const auto s =
      compute_regenerative_schema(m.chain, rewards, alpha, 0, 1e6, {});
  EXPECT_EQ(s.K(), 0);  // r_max == 0 => bound is identically zero
}

}  // namespace
}  // namespace rrl
