// Artifact codec round trip (the acceptance criterion of the compile →
// execute split): for every solver on RAID-5 and multiproc, export the
// compiled artifact, serialize, deserialize, import into a freshly
// constructed solver — and the warm solver's answers are bit-identical to
// the cold one's WITHOUT recompiling the schema. Plus rejection of every
// corruption class: flipped payload bytes, truncation, bad magic, foreign
// version, foreign endianness, trailing garbage.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiled_artifact.hpp"
#include "io/artifact_codec.hpp"
#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

constexpr double kEps = 1e-8;

struct Model {
  std::string label;
  Ctmc chain;
  std::vector<double> rewards;
  std::vector<double> initial;
  index_t regenerative = 0;
};

Model raid_model() {
  Raid5Params p;
  p.groups = 20;
  const Raid5Model m = build_raid5_availability(p);
  return {"raid5-g20", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

Model multiproc_model() {
  const MultiprocModel m = build_multiproc_availability({});
  return {"multiproc", m.chain, m.failure_rewards(),
          m.initial_distribution(), m.initial_state};
}

std::string serialized(const CompiledArtifact& artifact) {
  std::ostringstream out(std::ios::binary);
  write_artifact(out, artifact);
  return out.str();
}

CompiledArtifact deserialized(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return read_artifact(in);
}

TEST(ArtifactCodec, RoundTripSolvesBitIdenticallyForAllSolvers) {
  const std::vector<double> grid = log_time_grid(1.0, 300.0, 4);
  for (const Model& model : {raid_model(), multiproc_model()}) {
    for (const std::string name : {"sr", "rsd", "rr", "rrl"}) {
      SolverConfig config;
      config.epsilon = kEps;
      config.regenerative = model.regenerative;
      const auto cold = make_solver(name, model.chain, model.rewards,
                                    model.initial, config);

      // Drive the cold solver first so its compiled state (the rr/rrl
      // schema memo) holds what a real run would persist.
      SolveReport cold_trr = cold->solve_grid(SolveRequest::trr(grid));
      SolveReport cold_mrr = cold->solve_grid(SolveRequest::mrr(grid));

      const CompiledArtifact exported =
          export_artifact(*cold, /*model_hash=*/1234, config);
      EXPECT_TRUE(artifact_matches(exported, name, 1234, config));
      const CompiledArtifact imported = deserialized(serialized(exported));
      EXPECT_TRUE(artifact_matches(imported, name, 1234, config));

      auto warm = make_solver(name, model.chain, model.rewards,
                              model.initial, config);
      warm->import_compiled(imported);
      const SolveReport warm_trr = warm->solve_grid(SolveRequest::trr(grid));
      const SolveReport warm_mrr = warm->solve_grid(SolveRequest::mrr(grid));

      EXPECT_EQ(warm_trr.values(), cold_trr.values())
          << model.label << "/" << name;
      EXPECT_EQ(warm_mrr.values(), cold_mrr.values())
          << model.label << "/" << name;
      EXPECT_EQ(warm_trr.total.dtmc_steps, cold_trr.total.dtmc_steps);
      EXPECT_EQ(warm_mrr.total.vmodel_steps, cold_mrr.total.vmodel_steps);

      // The warm regenerative solvers must have answered from the seeded
      // memo — zero schema compilations.
      if (name == "rr") {
        const auto* solver =
            dynamic_cast<const RegenerativeRandomization*>(warm.get());
        ASSERT_NE(solver, nullptr);
        EXPECT_EQ(solver->schema_cache_stats().misses, 0u) << model.label;
        EXPECT_GE(solver->schema_cache_stats().seeded, 1u) << model.label;
      } else if (name == "rrl") {
        const auto* solver =
            dynamic_cast<const RegenerativeRandomizationLaplace*>(
                warm.get());
        ASSERT_NE(solver, nullptr);
        EXPECT_EQ(solver->schema_cache_stats().misses, 0u) << model.label;
        EXPECT_GE(solver->schema_cache_stats().seeded, 1u) << model.label;
      }
    }
  }
}

TEST(ArtifactCodec, FieldsSurviveExactly) {
  const Model model = multiproc_model();
  SolverConfig config;
  config.epsilon = kEps;
  config.regenerative = model.regenerative;
  config.step_cap = 123456789;
  const auto solver = make_solver("rrl", model.chain, model.rewards,
                                  model.initial, config);
  (void)solver->solve_grid(SolveRequest::trr({10.0, 250.0}));

  const CompiledArtifact a = export_artifact(*solver, 99, config);
  ASSERT_FALSE(a.schemas.empty());
  const CompiledArtifact b = deserialized(serialized(a));
  EXPECT_EQ(b.solver, a.solver);
  EXPECT_EQ(b.model_hash, a.model_hash);
  EXPECT_EQ(b.config.epsilon, a.config.epsilon);
  EXPECT_EQ(b.config.step_cap, a.config.step_cap);
  ASSERT_EQ(b.schemas.size(), a.schemas.size());
  for (std::size_t i = 0; i < a.schemas.size(); ++i) {
    EXPECT_EQ(b.schemas[i].t, a.schemas[i].t);
    EXPECT_EQ(b.schemas[i].eps, a.schemas[i].eps);
    EXPECT_EQ(b.schemas[i].schema.main.a, a.schemas[i].schema.main.a);
    EXPECT_EQ(b.schemas[i].schema.main.c, a.schemas[i].schema.main.c);
    EXPECT_EQ(b.schemas[i].schema.main.qa, a.schemas[i].schema.main.qa);
    EXPECT_EQ(b.schemas[i].schema.lambda, a.schemas[i].schema.lambda);
    EXPECT_EQ(b.schemas[i].schema.capped, a.schemas[i].schema.capped);
  }
}

TEST(ArtifactCodec, RejectsEveryCorruptionClass) {
  const Model model = multiproc_model();
  SolverConfig config;
  config.epsilon = kEps;
  config.regenerative = model.regenerative;
  const auto solver = make_solver("sr", model.chain, model.rewards,
                                  model.initial, config);
  const std::string bytes =
      serialized(export_artifact(*solver, 7, config));

  // Control: the pristine bytes parse.
  EXPECT_NO_THROW((void)deserialized(bytes));

  // Flipped payload byte: checksum mismatch (or malformed structure).
  for (const std::size_t offset : {bytes.size() / 2, bytes.size() - 12}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5a);
    EXPECT_THROW((void)deserialized(corrupt), contract_error)
        << "offset " << offset;
  }

  // Truncation at several depths (header, payload, checksum).
  for (const std::size_t keep : {std::size_t{4}, std::size_t{16},
                                 bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)deserialized(bytes.substr(0, keep)), contract_error)
        << "keep " << keep;
  }

  // Bad magic: not an artifact file at all.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)deserialized(bad_magic), contract_error);

  // Foreign format version.
  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(bad_version[8] + 1);
  EXPECT_THROW((void)deserialized(bad_version), contract_error);

  // Foreign endianness: the tag reads back byte-swapped.
  std::string bad_endian = bytes;
  std::swap(bad_endian[12], bad_endian[13]);
  EXPECT_THROW((void)deserialized(bad_endian), contract_error);

  // Trailing garbage after the checksum is silently ignored by streams,
  // but garbage INSIDE the framed payload is not: growing the declared
  // length without bytes to back it is a truncation.
  std::string grown = bytes;
  grown[14] = static_cast<char>(grown[14] + 1);  // payload length field
  EXPECT_THROW((void)deserialized(grown), contract_error);
}

TEST(ArtifactCodec, ImportIgnoresForeignSchemas) {
  // A schema for another regenerative state must not be adopted (the
  // structural guard behind artifact_matches).
  const Model model = multiproc_model();
  SolverConfig config;
  config.epsilon = kEps;
  config.regenerative = model.regenerative;
  const auto donor = make_solver("rrl", model.chain, model.rewards,
                                 model.initial, config);
  (void)donor->solve_grid(SolveRequest::trr({100.0}));
  CompiledArtifact artifact = export_artifact(*donor, 1, config);
  ASSERT_FALSE(artifact.schemas.empty());
  for (ArtifactSchemaEntry& e : artifact.schemas) {
    e.schema.regenerative = model.regenerative + 1;
  }

  auto warm = make_solver("rrl", model.chain, model.rewards, model.initial,
                          config);
  warm->import_compiled(artifact);
  const auto* rrl_warm =
      dynamic_cast<const RegenerativeRandomizationLaplace*>(warm.get());
  ASSERT_NE(rrl_warm, nullptr);
  EXPECT_EQ(rrl_warm->schema_cache_stats().seeded, 0u);
}

}  // namespace
}  // namespace rrl
