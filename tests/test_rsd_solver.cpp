// Randomization with steady-state detection against SR and GTH.
#include "core/steady_state_detection.hpp"

#include <gtest/gtest.h>

#include "core/standard_randomization.hpp"
#include "markov/steady_state.hpp"
#include "models/simple.hpp"
#include "sparse/vector_ops.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(Rsd, MatchesClosedFormBeforeDetection) {
  const auto m = make_two_state(1e-3, 1.0);
  const RandomizationSteadyStateDetection rsd(m.chain, {0.0, 1.0},
                                              {1.0, 0.0});
  for (const double t : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(rsd.trr(t).value, m.unavailability(t), 1e-11) << "t=" << t;
  }
}

TEST(Rsd, MatchesClosedFormAfterDetection) {
  const auto m = make_two_state(1e-3, 1.0);
  const RandomizationSteadyStateDetection rsd(m.chain, {0.0, 1.0},
                                              {1.0, 0.0});
  for (const double t : {1e3, 1e5, 1e7}) {
    const auto r = rsd.trr(t);
    EXPECT_NEAR(r.value, m.unavailability(t), 1e-10) << "t=" << t;
    EXPECT_GT(r.stats.detection_step, 0) << "t=" << t;
  }
}

TEST(Rsd, StepCountSaturates) {
  // The defining behaviour (Table 1, RSD column): steps stop growing once
  // stationarity is detected.
  const auto m = make_two_state(1e-2, 1.0);
  const RandomizationSteadyStateDetection rsd(m.chain, {0.0, 1.0},
                                              {1.0, 0.0});
  const auto s4 = rsd.trr(1e4).stats.dtmc_steps;
  const auto s6 = rsd.trr(1e6).stats.dtmc_steps;
  const auto s8 = rsd.trr(1e8).stats.dtmc_steps;
  EXPECT_EQ(s4, s6);
  EXPECT_EQ(s6, s8);
}

TEST(Rsd, MrrMatchesSr) {
  const auto c = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[12] = 1.0;
  rewards[3] = 0.5;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(c, rewards, alpha);
  const RandomizationSteadyStateDetection rsd(c, rewards, alpha);
  for (const double t : {0.5, 5.0, 500.0}) {
    EXPECT_NEAR(rsd.mrr(t).value, sr.mrr(t).value, 1e-10) << "t=" << t;
    EXPECT_NEAR(rsd.trr(t).value, sr.trr(t).value, 1e-10) << "t=" << t;
  }
}

TEST(Rsd, DetectedValueMatchesGthStationaryReward) {
  const auto c = make_random_ctmc({.num_states = 30, .seed = 13});
  std::vector<double> rewards(30, 0.0);
  rewards[7] = 1.0;
  std::vector<double> alpha(30, 0.0);
  alpha[0] = 1.0;
  const RandomizationSteadyStateDetection rsd(c, rewards, alpha);
  const auto pi = gth_steady_state(c);
  const double stationary_reward = dot(pi, rewards);
  EXPECT_NEAR(rsd.trr(1e8).value, stationary_reward, 1e-9);
}

TEST(Rsd, PeriodicChainNeedsRateSlack) {
  // A pure cycle randomized at Lambda = max exit has no self-loops: pi^(n)
  // never settles and detection must not fire; with rate_factor > 1 the
  // chain is aperiodic and detection works.
  const Ctmc cycle = make_cycle(6, 1.0);
  std::vector<double> rewards(6, 0.0);
  rewards[0] = 1.0;
  std::vector<double> alpha(6, 0.0);
  alpha[0] = 1.0;

  RsdOptions strict;
  strict.rate_factor = 1.0;
  const RandomizationSteadyStateDetection periodic(cycle, rewards, alpha,
                                                   strict);
  const auto r1 = periodic.trr(200.0);
  EXPECT_EQ(r1.stats.detection_step, -1);  // never detected

  RsdOptions slack;
  slack.rate_factor = 1.25;
  const RandomizationSteadyStateDetection aperiodic(cycle, rewards, alpha,
                                                    slack);
  const auto r2 = aperiodic.trr(2000.0);
  EXPECT_GT(r2.stats.detection_step, 0);
  EXPECT_NEAR(r2.value, 1.0 / 6.0, 1e-9);  // uniform stationary distribution
  EXPECT_NEAR(r1.value, 1.0 / 6.0, 1e-9);
}

TEST(Rsd, RejectsAbsorbingModels) {
  const auto m = make_erlang(3, 1.0);
  std::vector<double> rewards(4, 0.0);
  std::vector<double> alpha(4, 0.0);
  alpha[0] = 1.0;
  EXPECT_THROW(
      RandomizationSteadyStateDetection(m.chain, rewards, alpha),
      contract_error);
}

TEST(Rsd, DetectionToleranceIsConfigurable) {
  const auto m = make_two_state(1e-2, 1.0);
  RsdOptions loose;
  loose.detection_tol = 1e-4;
  RsdOptions tight;
  tight.detection_tol = 1e-14;
  const RandomizationSteadyStateDetection a(m.chain, {0.0, 1.0}, {1.0, 0.0},
                                            loose);
  const RandomizationSteadyStateDetection b(m.chain, {0.0, 1.0}, {1.0, 0.0},
                                            tight);
  const auto ra = a.trr(1e6);
  const auto rb = b.trr(1e6);
  EXPECT_LT(ra.stats.detection_step, rb.stats.detection_step);
}

}  // namespace
}  // namespace rrl
