// Dispatch wire codec: frame round-trips for every message type,
// incremental decoding from a byte-stream buffer (pipes deliver bytes,
// not messages), and every corruption class of a complete frame throwing
// instead of being misread.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "io/wire_codec.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

ReportRow sample_row(std::uint64_t scenario, std::uint64_t point) {
  ReportRow row;
  row.scenario = scenario;
  row.point = point;
  row.model = "models/raid, \"g20\".rrlm";  // worst-case free text
  row.solver = "rrl";
  row.measure = "mrr";
  row.epsilon = 1e-10;
  row.t = 1234.5;
  row.value = 0.12345678901234567;
  row.dtmc_steps = 4242;
  row.error = scenario % 2 == 0 ? "" : "failed: expected a, got b";
  row.seconds = 0.25;
  row.tier = "disk";
  return row;
}

void expect_rows_equal(const ReportRow& a, const ReportRow& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.measure, b.measure);
  EXPECT_EQ(a.epsilon, b.epsilon);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.dtmc_steps, b.dtmc_steps);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.tier, b.tier);
}

TEST(WireCodec, FramesRoundTripEveryType) {
  WireHello hello;
  hello.plan_fingerprint = 0xdeadbeefcafef00dULL;
  hello.unit_count = 12;
  hello.total_scenarios = 96;

  WireAssign assign;
  assign.unit = 7;
  assign.first_scenario = 56;
  assign.scenario_count = 8;

  WireResult result;
  result.unit = 7;
  result.seconds = 1.5;
  result.rows = {sample_row(56, 0), sample_row(56, 1), sample_row(57, 0)};

  std::string stream;
  stream += encode_frame(WireType::kHello, encode_hello(hello));
  stream += encode_frame(WireType::kAssign, encode_assign(assign));
  stream += encode_frame(WireType::kResult, encode_result(result));
  stream += encode_frame(WireType::kShutdown, {});

  std::size_t consumed = 0;
  auto frame = decode_frame(stream, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kHello);
  const WireHello hello2 = decode_hello(frame->payload);
  EXPECT_EQ(hello2.protocol, kWireProtocolVersion);
  EXPECT_EQ(hello2.plan_fingerprint, hello.plan_fingerprint);
  EXPECT_EQ(hello2.unit_count, hello.unit_count);
  EXPECT_EQ(hello2.total_scenarios, hello.total_scenarios);
  stream.erase(0, consumed);

  frame = decode_frame(stream, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kAssign);
  const WireAssign assign2 = decode_assign(frame->payload);
  EXPECT_EQ(assign2.unit, assign.unit);
  EXPECT_EQ(assign2.first_scenario, assign.first_scenario);
  EXPECT_EQ(assign2.scenario_count, assign.scenario_count);
  stream.erase(0, consumed);

  frame = decode_frame(stream, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kResult);
  const WireResult result2 = decode_result(frame->payload);
  EXPECT_EQ(result2.unit, result.unit);
  EXPECT_EQ(result2.seconds, result.seconds);
  ASSERT_EQ(result2.rows.size(), result.rows.size());
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    expect_rows_equal(result2.rows[i], result.rows[i]);
  }
  stream.erase(0, consumed);

  frame = decode_frame(stream, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
  stream.erase(0, consumed);
  EXPECT_TRUE(stream.empty());
}

TEST(WireCodec, DecodesIncrementallyFromPartialBuffers) {
  WireAssign assign;
  assign.unit = 3;
  assign.first_scenario = 24;
  assign.scenario_count = 8;
  const std::string frame =
      encode_frame(WireType::kAssign, encode_assign(assign));

  // Every proper prefix is "not yet", never an error or a wrong parse —
  // exactly what a pipe read loop needs.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    std::size_t consumed = 1;  // must be reset to 0 by the codec
    const auto partial = decode_frame(frame.substr(0, n), consumed);
    EXPECT_FALSE(partial.has_value()) << "prefix of " << n << " bytes";
    EXPECT_EQ(consumed, 0u);
  }
  // The full frame plus trailing bytes consumes exactly the frame.
  std::size_t consumed = 0;
  const auto full = decode_frame(frame + "extra", consumed);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decode_assign(full->payload).unit, 3u);
}

TEST(WireCodec, FleetFrameTypesRoundTrip) {
  // kPing carries nothing — it exists purely to refresh last_heard.
  const std::string ping = encode_frame(WireType::kPing, {});
  std::size_t consumed = 0;
  auto frame = decode_frame(ping, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kPing);
  EXPECT_TRUE(frame->payload.empty());

  WireArtifactRequest request;
  request.model_hash = 0x0123456789abcdefULL;
  request.solver = "rrl";
  request.epsilon = 1e-10;
  request.rate_factor = 1.0625;
  request.regenerative = 7;
  request.step_cap = 123456;
  const WireArtifactRequest request2 =
      decode_artifact_request(encode_artifact_request(request));
  EXPECT_EQ(request2.model_hash, request.model_hash);
  EXPECT_EQ(request2.solver, request.solver);
  EXPECT_EQ(request2.epsilon, request.epsilon);
  EXPECT_EQ(request2.rate_factor, request.rate_factor);
  EXPECT_EQ(request2.regenerative, request.regenerative);
  EXPECT_EQ(request2.step_cap, request.step_cap);

  WireArtifactData data;
  data.model_hash = request.model_hash;
  data.solver = "rrl";
  data.found = true;
  data.blob = std::string("binary\0blob\xff with NULs", 22);
  const WireArtifactData data2 =
      decode_artifact_data(encode_artifact_data(data));
  EXPECT_EQ(data2.model_hash, data.model_hash);
  EXPECT_EQ(data2.solver, data.solver);
  EXPECT_TRUE(data2.found);
  EXPECT_EQ(data2.blob, data.blob);

  // The parent-side miss: found=false with an empty blob.
  data.found = false;
  data.blob.clear();
  const WireArtifactData miss =
      decode_artifact_data(encode_artifact_data(data));
  EXPECT_FALSE(miss.found);
  EXPECT_TRUE(miss.blob.empty());

  // A found flag that is neither 0 nor 1 is corruption, not "truthy".
  // Locate the flag byte robustly: encode found=true and found=false and
  // take the first byte that differs.
  data.found = true;
  data.blob.clear();
  const std::string with_true = encode_artifact_data(data);
  data.found = false;
  const std::string with_false = encode_artifact_data(data);
  ASSERT_EQ(with_true.size(), with_false.size());
  std::size_t flag_at = with_true.size();
  for (std::size_t i = 0; i < with_true.size(); ++i) {
    if (with_true[i] != with_false[i]) {
      flag_at = i;
      break;
    }
  }
  ASSERT_LT(flag_at, with_true.size());
  std::string bad = with_true;
  bad[flag_at] = 2;
  EXPECT_THROW((void)decode_artifact_data(bad), contract_error);
}

TEST(WireCodec, EveryFrameSplitAtEveryByteOffsetDecodesIdentically) {
  // The satellite-hardening contract: a TCP stream may hand the reader
  // ANY byte-level chunking of the frame sequence — every split must
  // decode to exactly the same frames, never a tear, never a misparse.
  WireResult result;
  result.unit = 2;
  result.seconds = 0.5;
  result.rows = {sample_row(16, 0), sample_row(17, 1)};
  WireArtifactData data;
  data.model_hash = 42;
  data.solver = "rr";
  data.found = true;
  data.blob = "artifact-bytes";

  std::string stream;
  stream += encode_frame(WireType::kHello, encode_hello({}));
  stream += encode_frame(WireType::kPing, {});
  stream += encode_frame(WireType::kAssign, encode_assign({3, 24, 8}));
  stream += encode_frame(WireType::kArtifactRequest,
                         encode_artifact_request({42, "rr", 1e-8, 0, 0, -1}));
  stream += encode_frame(WireType::kArtifactData, encode_artifact_data(data));
  stream += encode_frame(WireType::kResult, encode_result(result));
  stream += encode_frame(WireType::kShutdown, {});

  // The reference decode from the whole stream at once.
  const auto decode_all = [](std::string buffer) {
    std::vector<WireFrame> frames;
    std::size_t consumed = 0;
    while (true) {
      auto frame = decode_frame(buffer, consumed);
      if (!frame.has_value()) break;
      buffer.erase(0, consumed);
      frames.push_back(std::move(*frame));
    }
    EXPECT_TRUE(buffer.empty());
    return frames;
  };
  const std::vector<WireFrame> reference = decode_all(stream);
  ASSERT_EQ(reference.size(), 7u);

  // Deliver the stream in two chunks split at EVERY byte offset, decoding
  // greedily after each chunk arrives — the read-loop discipline of the
  // channel inbox.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    std::vector<WireFrame> frames;
    std::string buffer;
    std::size_t consumed = 0;
    for (const std::string& chunk :
         {stream.substr(0, split), stream.substr(split)}) {
      buffer += chunk;
      while (true) {
        auto frame = decode_frame(buffer, consumed);
        if (!frame.has_value()) break;
        buffer.erase(0, consumed);
        frames.push_back(std::move(*frame));
      }
    }
    ASSERT_TRUE(buffer.empty()) << "split at " << split;
    ASSERT_EQ(frames.size(), reference.size()) << "split at " << split;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, reference[i].type) << "split at " << split;
      EXPECT_EQ(frames[i].payload, reference[i].payload)
          << "split at " << split;
    }
  }
}

TEST(WireCodec, RejectsEveryCorruptionClass) {
  const std::string good =
      encode_frame(WireType::kAssign, encode_assign({5, 40, 8}));
  std::size_t consumed = 0;

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Foreign protocol version.
  bad = good;
  bad[8] = static_cast<char>(bad[8] + 1);
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Foreign endianness tag.
  bad = good;
  std::swap(bad[12], bad[13]);
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Unknown frame type.
  bad = good;
  bad[14] = 99;
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Flipped payload byte: checksum mismatch.
  bad = good;
  bad[bad.size() - 9] = static_cast<char>(bad[bad.size() - 9] ^ 0x40);
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Oversized declared length is corruption, not a huge wait-for-more.
  bad = good;
  for (std::size_t i = 16; i < 24; ++i) bad[i] = '\xff';
  EXPECT_THROW((void)decode_frame(bad, consumed), contract_error);

  // Payload-level: truncated and trailing-byte payloads.
  EXPECT_THROW((void)decode_assign(std::string(7, '\0')), contract_error);
  EXPECT_THROW((void)decode_assign(std::string(25, '\0')), contract_error);
  EXPECT_THROW((void)decode_hello(std::string(3, '\0')), contract_error);
  // A result whose row count cannot fit the remaining bytes.
  std::string huge;
  huge.append(16, '\0');                 // unit + seconds
  huge.append(8, '\x7f');                // absurd row count
  EXPECT_THROW((void)decode_result(huge), contract_error);

  // The original still parses (the mutations above did not).
  EXPECT_TRUE(decode_frame(good, consumed).has_value());
}

TEST(WireCodec, StatsReportRoundTripsThroughAFrame) {
  WireStatsReport stats;
  stats.units = 42;
  stats.busy_seconds = 3.0625;
  stats.counters = {
      {"rrl_scenarios_solved_total", 12345},
      {"rrl_cache_memory_hits_total", 678},
      {"rrl_wire_bytes_out_total", 0xffffffffffffffffULL},
  };

  const std::string frame_bytes =
      encode_frame(WireType::kStatsReport, encode_stats_report(stats));
  std::size_t consumed = 0;
  const auto frame = decode_frame(frame_bytes, consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, WireType::kStatsReport);
  EXPECT_EQ(consumed, frame_bytes.size());

  const WireStatsReport stats2 = decode_stats_report(frame->payload);
  EXPECT_EQ(stats2.units, stats.units);
  EXPECT_EQ(stats2.busy_seconds, stats.busy_seconds);
  ASSERT_EQ(stats2.counters.size(), stats.counters.size());
  for (std::size_t i = 0; i < stats.counters.size(); ++i) {
    EXPECT_EQ(stats2.counters[i].first, stats.counters[i].first);
    EXPECT_EQ(stats2.counters[i].second, stats.counters[i].second);
  }

  // An empty snapshot (a worker before its first solve) is legal.
  const WireStatsReport empty = decode_stats_report(
      encode_stats_report(WireStatsReport{}));
  EXPECT_EQ(empty.units, 0u);
  EXPECT_TRUE(empty.counters.empty());
}

TEST(WireCodec, StatsReportRejectsCorruptPayloads) {
  // Truncated: cut anywhere inside a valid payload.
  WireStatsReport stats;
  stats.units = 1;
  stats.counters = {{"a_total", 1}};
  const std::string payload = encode_stats_report(stats);
  EXPECT_THROW((void)decode_stats_report(payload.substr(0, 20)),
               contract_error);

  // A counter count the payload cannot possibly hold is refused before
  // any allocation.
  std::string huge;
  huge.append(16, '\0');   // units + busy_seconds
  huge.append(8, '\x7f');  // absurd counter count
  EXPECT_THROW((void)decode_stats_report(huge), contract_error);

  // Trailing bytes after a complete payload are corruption.
  EXPECT_THROW((void)decode_stats_report(payload + "x"), contract_error);
}

}  // namespace
}  // namespace rrl
