// Disk artifact store: content-addressed store/load, corrupt and stale
// entries degrading to misses, and the acceptance criterion — a
// warm-started study (fresh in-process caches, shared store directory,
// i.e. a second process) reproduces the cold run's report byte-for-byte
// while reporting nonzero disk-tier hits.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/artifact_codec.hpp"
#include "io/model_format.hpp"
#include "models/multiproc.hpp"
#include "rrl.hpp"
#include "study/artifact_store.hpp"

namespace rrl {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rrl-store-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

CompiledArtifact sample_artifact(const MultiprocModel& model,
                                 const SolverConfig& config,
                                 std::uint64_t model_hash) {
  const auto solver =
      make_solver("rrl", model.chain, model.failure_rewards(),
                  model.initial_distribution(), config);
  (void)solver->solve_grid(SolveRequest::trr({50.0, 500.0}));
  return export_artifact(*solver, model_hash, config);
}

TEST(ArtifactStore, StoreThenLoadRoundTrips) {
  const TempDir dir;
  const ArtifactStore store(dir.path.string());
  const MultiprocModel model = build_multiproc_availability({});
  SolverConfig config;
  config.epsilon = 1e-8;
  config.regenerative = model.initial_state;
  const CompiledArtifact artifact = sample_artifact(model, config, 42);

  EXPECT_TRUE(store.store(artifact));
  EXPECT_TRUE(fs::exists(store.entry_path(42, "rrl", config)));

  const auto loaded = store.load(42, "rrl", config);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->schemas.size(), artifact.schemas.size());
  EXPECT_EQ(loaded->schemas[0].schema.main.a,
            artifact.schemas[0].schema.main.a);

  const ArtifactStoreStats stats = store.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ArtifactStore, MissStaleAndCorruptAllDegradeToMisses) {
  const TempDir dir;
  const ArtifactStore store(dir.path.string());
  const MultiprocModel model = build_multiproc_availability({});
  SolverConfig config;
  config.epsilon = 1e-8;
  config.regenerative = model.initial_state;

  // Absent: plain miss.
  EXPECT_FALSE(store.load(1, "rrl", config).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().invalid, 0u);

  const CompiledArtifact artifact = sample_artifact(model, config, 1);
  ASSERT_TRUE(store.store(artifact));

  // Different config: a different address, so a miss (never a near-match).
  SolverConfig other = config;
  other.epsilon = 1e-10;
  EXPECT_FALSE(store.load(1, "rrl", other).has_value());

  // A file whose EMBEDDED identity does not match its address (e.g.
  // hand-copied between model directories) is rejected as stale.
  const std::string alias_path = store.entry_path(2, "rrl", config);
  fs::create_directories(fs::path(alias_path).parent_path());
  fs::copy_file(store.entry_path(1, "rrl", config), alias_path);
  EXPECT_FALSE(store.load(2, "rrl", config).has_value());
  EXPECT_GE(store.stats().invalid, 1u);

  // Corrupt bytes: rejected, and a later store() heals the entry.
  {
    std::ofstream out(store.entry_path(1, "rrl", config),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  EXPECT_FALSE(store.load(1, "rrl", config).has_value());
  ASSERT_TRUE(store.store(artifact));
  EXPECT_TRUE(store.load(1, "rrl", config).has_value());
}

TEST(ArtifactStore, SolverCacheWarmStartSkipsCompilation) {
  const TempDir dir;
  const auto store =
      std::make_shared<const ArtifactStore>(dir.path.string());
  const MultiprocModel multi = build_multiproc_availability({});
  ModelFile file;
  file.chain = multi.chain;
  file.rewards = multi.failure_rewards();
  file.initial = multi.initial_distribution();
  file.regenerative = multi.initial_state;

  SolverConfig config;
  config.epsilon = 1e-10;
  config.regenerative = multi.initial_state;
  const SolveRequest request = SolveRequest::trr({10.0, 1000.0});

  // Cold "process": compile, solve, flush.
  ModelRepository repo_cold;
  const auto model_cold = repo_cold.adopt("multiproc", file);
  SolverCache cold;
  cold.attach_store(store);
  const auto solver_cold = cold.get_or_build(model_cold, "rrl", config);
  const SolveReport report_cold = solver_cold->solve_grid(request);
  EXPECT_EQ(cold.stats().disk_hits, 0u);
  EXPECT_EQ(cold.stats().disk_misses, 1u);
  EXPECT_EQ(cold.flush_to_store(), 1u);

  // Warm "process": fresh repository and cache, shared directory.
  ModelRepository repo_warm;
  const auto model_warm = repo_warm.adopt("multiproc", file);
  SolverCache warm;
  warm.attach_store(store);
  const auto solver_warm = warm.get_or_build(model_warm, "rrl", config);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  const SolveReport report_warm = solver_warm->solve_grid(request);
  EXPECT_EQ(report_warm.values(), report_cold.values());

  // The warm solver answered from the seeded memo: no schema compile.
  const auto* rrl_warm =
      dynamic_cast<const RegenerativeRandomizationLaplace*>(
          solver_warm.get());
  ASSERT_NE(rrl_warm, nullptr);
  EXPECT_EQ(rrl_warm->schema_cache_stats().misses, 0u);
  EXPECT_GE(rrl_warm->schema_cache_stats().seeded, 1u);

  // Cold mode: reads disabled, the compile runs again, the store is
  // refreshed.
  SolverCache refreshed;
  refreshed.attach_store(store, /*read=*/false);
  const auto solver_refreshed =
      refreshed.get_or_build(model_warm, "rrl", config);
  EXPECT_EQ(refreshed.stats().disk_hits, 0u);
  EXPECT_EQ(refreshed.stats().disk_misses, 0u);  // never consulted
  EXPECT_EQ(solver_refreshed->solve_grid(request).values(),
            report_cold.values());
}

TEST(ArtifactStoreGc, SweepRemovesTempAndInvalidEntries) {
  const TempDir dir;
  const ArtifactStore store(dir.path.string());
  const MultiprocModel model = build_multiproc_availability({});
  SolverConfig config;
  config.epsilon = 1e-8;
  config.regenerative = model.initial_state;
  ASSERT_TRUE(store.store(sample_artifact(model, config, 1)));
  ASSERT_TRUE(store.store(sample_artifact(model, config, 2)));

  // A crashed writer's leftover temp and a corrupt entry.
  const fs::path temp = fs::path(store.entry_path(1, "rrl", config))
                            .parent_path() /
                        "rrl-deadbeef.rrla.tmp999-0";
  std::ofstream(temp) << "half-written";
  const fs::path bad = fs::path(store.entry_path(2, "rrl", config))
                           .parent_path() /
                       "rsd-deadbeef.rrla";
  std::ofstream(bad) << "garbage";

  const ArtifactGcStats gc = store.gc();
  EXPECT_EQ(gc.scanned, 3u);  // 2 valid + 1 corrupt
  EXPECT_EQ(gc.removed_temp, 1u);
  EXPECT_EQ(gc.removed_invalid, 1u);
  EXPECT_EQ(gc.evicted, 0u);  // no cap: sweep only
  EXPECT_FALSE(fs::exists(temp));
  EXPECT_FALSE(fs::exists(bad));
  EXPECT_TRUE(store.load(1, "rrl", config).has_value());
  EXPECT_TRUE(store.load(2, "rrl", config).has_value());

  // A missing root is an empty sweep, not an error.
  const ArtifactGcStats none =
      ArtifactStore((dir.path / "absent").string()).gc(1);
  EXPECT_EQ(none.scanned, 0u);
}

TEST(ArtifactStoreGc, CapEvictsLeastRecentlyUsedFirst) {
  const TempDir dir;
  const ArtifactStore store(dir.path.string());
  const MultiprocModel model = build_multiproc_availability({});
  SolverConfig config;
  config.epsilon = 1e-8;
  config.regenerative = model.initial_state;
  for (const std::uint64_t hash : {1u, 2u, 3u}) {
    ASSERT_TRUE(store.store(sample_artifact(model, config, hash)));
  }
  const auto set_age = [&](std::uint64_t hash, int hours_old) {
    fs::last_write_time(store.entry_path(hash, "rrl", config),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(hours_old));
  };
  set_age(1, 3);  // oldest
  set_age(2, 2);
  set_age(3, 1);  // newest

  const std::uint64_t total = store.gc().bytes_before;
  ASSERT_GT(total, 0u);

  // Cap boundary: an exactly-full store evicts nothing.
  const ArtifactGcStats at_cap = store.gc(total);
  EXPECT_EQ(at_cap.evicted, 0u);
  EXPECT_EQ(at_cap.bytes_after, total);

  // One byte over: the LEAST RECENTLY USED entry goes first, and
  // eviction stops the moment the store fits.
  const ArtifactGcStats over = store.gc(total - 1);
  EXPECT_EQ(over.evicted, 1u);
  EXPECT_FALSE(fs::exists(store.entry_path(1, "rrl", config)));
  EXPECT_TRUE(fs::exists(store.entry_path(2, "rrl", config)));
  EXPECT_TRUE(fs::exists(store.entry_path(3, "rrl", config)));
  EXPECT_LE(over.bytes_after, total - 1);

  // A verified load REFRESHES recency: after using entry 2, entry 3 is
  // the oldest and is evicted next.
  set_age(2, 30);
  ASSERT_TRUE(store.load(2, "rrl", config).has_value());  // touch
  const ArtifactGcStats next = store.gc(1);
  EXPECT_EQ(next.evicted, 2u);  // both remaining go under a 1-byte cap...
  // ...in LRU order: had the cap allowed one survivor it would have been
  // entry 2 — assert the ORDER via a fresh pair instead.
  ASSERT_TRUE(store.store(sample_artifact(model, config, 4)));
  ASSERT_TRUE(store.store(sample_artifact(model, config, 5)));
  set_age(4, 20);
  set_age(5, 10);
  ASSERT_TRUE(store.load(4, "rrl", config).has_value());  // 4 now newest
  const std::uint64_t pair_total = store.gc().bytes_before;
  const ArtifactGcStats lru = store.gc(pair_total - 1);
  EXPECT_EQ(lru.evicted, 1u);
  EXPECT_TRUE(fs::exists(store.entry_path(4, "rrl", config)));
  EXPECT_FALSE(fs::exists(store.entry_path(5, "rrl", config)));
}

TEST(ArtifactStore, WarmStudyReproducesColdReportByteForByte) {
  // The acceptance run: a full study cold, then the same study from a
  // fresh cache over the shared store — the CSV reports must be
  // byte-identical and the warm run must report nonzero disk hits.
  const TempDir dir;
  const MultiprocModel multi = build_multiproc_availability({});
  const fs::path model_path = dir.path / "multiproc.rrlm";
  write_model_file(model_path.string(), multi.chain,
                   multi.failure_rewards(), multi.initial_distribution(),
                   multi.initial_state);

  StudySpec spec;
  spec.models = {model_path.string()};
  spec.model_labels = {"multiproc.rrlm"};
  spec.solvers = {"sr", "rsd", "rr", "rrl"};
  spec.measures = {MeasureKind::kTrr, MeasureKind::kMrr};
  spec.epsilons = {1e-8, 1e-10};
  spec.grids = {log_time_grid(1.0, 2000.0, 4), {5.0, 50.0}};
  spec.jobs = 2;

  const auto store =
      std::make_shared<const ArtifactStore>((dir.path / "cache").string());
  const auto run_csv = [&](SolverCache& cache, StudyRun& run) {
    ModelRepository repository;  // fresh per "process"
    run = run_study(spec, repository, cache);
    std::ostringstream csv;
    write_report_csv(csv, run.total_scenarios, run.rows());
    return csv.str();
  };

  SolverCache cold_cache;
  cold_cache.attach_store(store);
  StudyRun cold_run;
  const std::string cold_csv = run_csv(cold_cache, cold_run);
  EXPECT_EQ(cold_run.sweep.failed(), 0u);
  EXPECT_EQ(cold_run.cache.disk_hits, 0u);
  EXPECT_GT(cold_cache.flush_to_store(), 0u);

  SolverCache warm_cache;
  warm_cache.attach_store(store);
  StudyRun warm_run;
  const std::string warm_csv = run_csv(warm_cache, warm_run);
  EXPECT_EQ(warm_run.sweep.failed(), 0u);
  EXPECT_GT(warm_run.cache.disk_hits, 0u);
  EXPECT_EQ(warm_run.cache.disk_misses, 0u);
  EXPECT_EQ(warm_csv, cold_csv);
}

}  // namespace
}  // namespace rrl
