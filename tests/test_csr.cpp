// Unit tests for the CSR sparse-matrix substrate.
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/contracts.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

CsrMatrix small() {
  // [ 1 2 0 ]
  // [ 0 0 3 ]
  // [ 4 0 5 ]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 4.0}, {2, 2, 5.0}});
}

TEST(Csr, BasicShape) {
  const CsrMatrix m = small();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 5);
}

TEST(Csr, CoeffLookup) {
  const CsrMatrix m = small();
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.coeff(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.coeff(2, 1), 0.0);
}

TEST(Csr, DuplicatesAreSummed) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 1.5}, {0, 1, 2.5}, {1, 0, -1.0}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 0), 0.0);  // summed to zero but pattern kept
  EXPECT_EQ(m.nnz(), 2);
}

TEST(Csr, UnsortedInputIsSorted) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 3, {{1, 2, 6.0}, {0, 2, 3.0}, {1, 0, 4.0}, {0, 0, 1.0}});
  const auto cols = m.col_idx();
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
  EXPECT_EQ(cols[2], 0);
  EXPECT_EQ(cols[3], 2);
}

TEST(Csr, EmptyRows) {
  const CsrMatrix m = CsrMatrix::from_triplets(4, 4, {{3, 0, 7.0}});
  const auto rp = m.row_ptr();
  EXPECT_EQ(rp[0], 0);
  EXPECT_EQ(rp[1], 0);
  EXPECT_EQ(rp[2], 0);
  EXPECT_EQ(rp[3], 0);
  EXPECT_EQ(rp[4], 1);
  EXPECT_DOUBLE_EQ(m.coeff(3, 0), 7.0);
}

TEST(Csr, MulVec) {
  const CsrMatrix m = small();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3, 0.0);
  m.mul_vec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 2);  // 5
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 3);            // 9
  EXPECT_DOUBLE_EQ(y[2], 4.0 * 1 + 5.0 * 3);  // 19
}

TEST(Csr, MulVecTransposed) {
  const CsrMatrix m = small();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3, 0.0);
  m.mul_vec_transposed(x, y);
  // y = A^T x: y_j = sum_i A(i,j) x_i
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 4.0 * 3);  // 13
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 1);            // 2
  EXPECT_DOUBLE_EQ(y[2], 3.0 * 2 + 5.0 * 3);  // 21
}

TEST(Csr, TransposedMatchesMulVecTransposed) {
  const CsrMatrix m = small();
  const CsrMatrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 3);
  EXPECT_EQ(mt.nnz(), m.nnz());
  const std::vector<double> x = {0.5, -1.0, 2.0};
  std::vector<double> y1(3, 0.0);
  std::vector<double> y2(3, 0.0);
  m.mul_vec_transposed(x, y1);
  mt.mul_vec(x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Csr, DoubleTransposeRoundTrip) {
  const CsrMatrix m = small();
  const CsrMatrix mtt = m.transposed().transposed();
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(mtt.coeff(i, j), m.coeff(i, j));
    }
  }
}

TEST(Csr, RowSums) {
  const auto sums = small().row_sums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(Csr, RejectsOutOfRangeIndices) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               contract_error);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               contract_error);
}

TEST(Csr, MulVecRejectsBadSizes) {
  const CsrMatrix m = small();
  std::vector<double> x(2, 0.0);
  std::vector<double> y(3, 0.0);
  EXPECT_THROW(m.mul_vec(x, y), contract_error);
}

TEST(Csr, PooledMulVecRejectsBadSizes) {
  // The pooled overload validates BOTH operands itself: a wrong x must be
  // rejected here, not deep inside the leading-rows delegate it forwards to.
  const CsrMatrix m = small();
  ThreadPool pool(2);
  std::vector<double> x_bad(2, 0.0);
  std::vector<double> x(3, 0.0);
  std::vector<double> y_bad(2, 0.0);
  std::vector<double> y(3, 0.0);
  EXPECT_THROW(m.mul_vec(x_bad, y, pool), contract_error);
  EXPECT_THROW(m.mul_vec(x, y_bad, pool), contract_error);
}

TEST(Csr, MulVecLeadingZeroTouchesNothing) {
  // leading == 0 is a no-op by contract: y keeps its bits (the batched
  // V-solve hits this when every trailing block has already retired).
  const CsrMatrix m = small();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3, 42.5);
  m.mul_vec_leading(x, y, 0);
  ThreadPool pool(2);
  m.mul_vec_leading(x, y, 0, pool);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 42.5);
  // ... and x is still validated even when no rows are computed.
  const std::vector<double> x_bad = {1.0};
  EXPECT_THROW(m.mul_vec_leading(x_bad, y, 0), contract_error);
}

TEST(Csr, RectangularMatrix) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, 4, {{0, 3, 1.0}, {1, 1, 2.0}});
  const std::vector<double> x = {1.0, 1.0, 1.0, 1.0};
  std::vector<double> y(2, 0.0);
  m.mul_vec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  const CsrMatrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 4);
  EXPECT_EQ(mt.cols(), 2);
  EXPECT_DOUBLE_EQ(mt.coeff(3, 0), 1.0);
}

TEST(Csr, ParallelMulVecMatchesSerialBitwise) {
  // The row-partitioned path accumulates each row in the same order as the
  // serial kernel, so results must be bit-identical at every pool size —
  // including degenerate patterns (empty rows, one dense row).
  std::vector<Triplet> entries;
  const index_t n = 257;
  for (index_t r = 0; r < n; ++r) {
    if (r % 7 == 3) continue;  // leave some rows empty
    for (index_t k = 0; k < (r % 11) + 1; ++k) {
      const index_t c = (r * 31 + k * 17) % n;
      entries.push_back({r, c, 1.0 / (1.0 + r + 3.0 * k)});
    }
  }
  for (index_t c = 0; c < n; ++c) entries.push_back({5, c, 0.25});  // dense
  const CsrMatrix m = CsrMatrix::from_triplets(n, n, entries);

  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  }
  std::vector<double> serial(static_cast<std::size_t>(n), 0.0);
  m.mul_vec(x, serial);

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(static_cast<std::size_t>(n), -1.0);
    m.mul_vec(x, parallel, pool);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(Csr, ParallelMulVecTinyMatrixFallsBackToSerial) {
  const CsrMatrix m = small();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> serial(3, 0.0);
  std::vector<double> parallel(3, 0.0);
  m.mul_vec(x, serial);
  ThreadPool pool(8);  // more workers than rows
  m.mul_vec(x, parallel, pool);
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace rrl
