// Parametric model generator: grammar, canonicalization, expansion
// counts, structural validity and the spec-key hashing path of the model
// repository (interning a generated model must not depend on walking the
// expanded chain).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "io/model_format.hpp"
#include "markov/generator.hpp"
#include "markov/scc.hpp"
#include "rrl.hpp"
#include "study/model_repository.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

ModelFile parse(const std::string& text) {
  std::istringstream in(text);
  return read_model(in);
}

TEST(Generator, KOfNExpandsTheFullTupleSpace) {
  const ModelFile m =
      parse("generator k_of_n n=3 k=2 groups=2 lambda=0.01 mu=1\n");
  EXPECT_EQ(m.chain.num_states(), 16);  // (n+1)^groups
  EXPECT_EQ(m.regenerative, 0);
  EXPECT_EQ(m.pre_lump_states, -1);
  EXPECT_FALSE(m.spec_key.empty());
  EXPECT_DOUBLE_EQ(m.initial[0], 1.0);
  // Reward 1 exactly on states where some group has > n-k = 1 failures:
  // group counts in {2, 3} — 4 bad combinations per group arrangement.
  int down = 0;
  for (const double r : m.rewards) {
    EXPECT_TRUE(r == 0.0 || r == 1.0);
    if (r == 1.0) ++down;
  }
  // P(some group in {2,3}) over 4x4 tuple grid: 16 - 2*2 = 12.
  EXPECT_EQ(down, 12);
  // Failure/repair reaches every tuple from every tuple: irreducible.
  EXPECT_EQ(strongly_connected_components(m.chain.rates()).count, 1);
}

TEST(Generator, LumpCollapsesExchangeableGroupsToMultisets) {
  const ModelFile lumped =
      parse("generator k_of_n n=3 k=2 groups=3 lambda=0.01 mu=1 lump=1\n");
  // (n+1)^g = 64 ordered tuples collapse to C(n+g, g) = C(6,3) = 20
  // multisets of per-group failure counts.
  EXPECT_EQ(lumped.pre_lump_states, 64);
  EXPECT_EQ(lumped.chain.num_states(), 20);
  EXPECT_EQ(lumped.regenerative, 0);
  EXPECT_DOUBLE_EQ(lumped.initial[0], 1.0);
  EXPECT_EQ(strongly_connected_components(lumped.chain.rates()).count, 1);
}

TEST(Generator, TieredRepairAndQueueCounts) {
  const ModelFile tiered = parse(
      "generator tiered_repair tiers=2 n=2 k=1 lambda=0.1 mu=1\n");
  EXPECT_EQ(tiered.chain.num_states(), 9);  // (n+1)^tiers
  // Performability reward: number of up tiers, in {0, 1, 2}.
  for (const double r : tiered.rewards) {
    EXPECT_TRUE(r == 0.0 || r == 1.0 || r == 2.0);
  }

  const ModelFile queue = parse(
      "generator queue capacity=4 servers=2 arrival=1 service=2 "
      "fail=0.01 repair=1\n");
  EXPECT_EQ(queue.chain.num_states(), 15);  // (K+1)*(c+1)
  EXPECT_EQ(strongly_connected_components(queue.chain.rates()).count, 1);

  // Without breakdowns only the all-up band is reachable.
  const ModelFile up_only =
      parse("generator queue capacity=4 servers=2 arrival=1 service=2\n");
  EXPECT_EQ(up_only.chain.num_states(), 5);
}

TEST(Generator, SpecKeyIsCanonicalAcrossSpellings) {
  // Parameter order, defaulted-vs-explicit params and numeric spellings
  // must all canonicalize to one spec (and so one model hash).
  const ModelFile a =
      parse("generator k_of_n n=3 k=2 groups=2 lambda=1e-2 mu=1\n");
  const ModelFile b =
      parse("generator k_of_n mu=1.0 groups=2 lambda=0.01 k=2 n=3 lump=0\n");
  EXPECT_EQ(a.spec_key, b.spec_key);
  EXPECT_EQ(hash_model(a), hash_model(b));

  const ModelFile c =
      parse("generator k_of_n n=3 k=2 groups=2 lambda=1e-2 mu=2\n");
  EXPECT_NE(a.spec_key, c.spec_key);
  EXPECT_NE(hash_model(a), hash_model(c));
  // Lumped and unlumped expansions are different content.
  const ModelFile d =
      parse("generator k_of_n n=3 k=2 groups=2 lambda=1e-2 mu=1 lump=1\n");
  EXPECT_NE(hash_model(a), hash_model(d));
}

TEST(Generator, RepositoryInternsBySpec) {
  ModelRepository repo;
  const auto first = repo.adopt(
      "a", parse("generator k_of_n n=3 k=2 groups=2 lambda=0.01 mu=1\n"));
  const auto second = repo.adopt(
      "b", parse("generator k_of_n k=2 n=3 mu=1 groups=2 lambda=1e-2\n"));
  EXPECT_EQ(first.get(), second.get());  // one interned entry
  EXPECT_EQ(repo.size(), 1u);
}

TEST(Generator, GrammarErrors) {
  // Unknown family.
  EXPECT_THROW(parse("generator nosuch n=3\n"), contract_error);
  // Missing required parameter.
  EXPECT_THROW(parse("generator k_of_n n=3 k=2 groups=2 lambda=0.01\n"),
               contract_error);
  // Unknown parameter.
  EXPECT_THROW(
      parse("generator k_of_n n=3 k=2 groups=2 lambda=0.01 mu=1 zz=1\n"),
      contract_error);
  // Duplicate parameter.
  EXPECT_THROW(
      parse("generator k_of_n n=3 n=4 k=2 groups=2 lambda=0.01 mu=1\n"),
      contract_error);
  // Out of range (k > n).
  EXPECT_THROW(parse("generator k_of_n n=3 k=5 groups=2 lambda=0.01 mu=1\n"),
               contract_error);
  // Malformed value.
  EXPECT_THROW(
      parse("generator k_of_n n=abc k=2 groups=2 lambda=0.01 mu=1\n"),
      contract_error);
  // Malformed key=value token.
  EXPECT_THROW(parse("generator k_of_n n 3\n"), contract_error);
  // Generator mixed with explicit lines (both orders).
  EXPECT_THROW(parse("states 2\ngenerator k_of_n n=1 k=1 groups=1 "
                     "lambda=1 mu=1\n"),
               contract_error);
  EXPECT_THROW(parse("generator k_of_n n=1 k=1 groups=1 lambda=1 mu=1\n"
                     "states 2\n"),
               contract_error);
  // Duplicate generator line.
  EXPECT_THROW(parse("generator k_of_n n=1 k=1 groups=1 lambda=1 mu=1\n"
                     "generator queue capacity=1 servers=1 arrival=1 "
                     "service=1\n"),
               contract_error);
  // Expansion beyond the state cap.
  EXPECT_THROW(
      parse("generator k_of_n n=250 k=2 groups=8 lambda=0.01 mu=1\n"),
      contract_error);
  // Queue with failures but no repair (no way back up).
  EXPECT_THROW(parse("generator queue capacity=4 servers=2 arrival=1 "
                     "service=2 fail=0.01\n"),
               contract_error);
}

TEST(Generator, DeterministicExpansion) {
  const std::string spec =
      "generator tiered_repair tiers=3 n=2 k=1 lambda=0.1 mu=1 scale=2\n";
  const ModelFile a = parse(spec);
  const ModelFile b = parse(spec);
  ASSERT_EQ(a.chain.num_states(), b.chain.num_states());
  const CsrMatrix& ra = a.chain.rates();
  const CsrMatrix& rb = b.chain.rates();
  ASSERT_EQ(ra.nnz(), rb.nnz());
  EXPECT_TRUE(std::equal(ra.col_idx().begin(), ra.col_idx().end(),
                         rb.col_idx().begin()));
  EXPECT_TRUE(std::equal(ra.values().begin(), ra.values().end(),
                         rb.values().begin()));
  EXPECT_EQ(a.rewards, b.rewards);
}

}  // namespace
}  // namespace rrl
