// Unit tests for the iterative Tarjan SCC decomposition.
#include "markov/scc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rrl {
namespace {

CsrMatrix graph(index_t n, std::vector<Triplet> edges) {
  for (auto& e : edges) e.value = 1.0;
  return CsrMatrix::from_triplets(n, n, std::move(edges));
}

TEST(Scc, SingleCycle) {
  const auto g = graph(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 1);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
}

TEST(Scc, Dag) {
  const auto g = graph(3, {{0, 1, 0}, {1, 2, 0}});
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 3);
  std::set<index_t> ids(r.component.begin(), r.component.end());
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Scc, TwoComponentsWithBridge) {
  // {0,1} cycle -> {2,3} cycle.
  const auto g = graph(
      4, {{0, 1, 0}, {1, 0, 0}, {1, 2, 0}, {2, 3, 0}, {3, 2, 0}});
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
  // Tarjan numbers components in reverse topological order: the sink
  // component {2,3} gets the smaller id.
  EXPECT_LT(r.component[2], r.component[0]);
}

TEST(Scc, IsolatedVertices) {
  const auto g = graph(3, {{0, 1, 0}});
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 3);
}

TEST(Scc, SelfLoopOnlyVertex) {
  const auto g = graph(2, {{0, 0, 0}, {0, 1, 0}});
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 2);
}

TEST(Scc, LargeCycleIterativeDfs) {
  // Deep recursion would overflow a recursive Tarjan; the iterative version
  // must handle a 200k-cycle.
  std::vector<Triplet> edges;
  const index_t n = 200'000;
  edges.reserve(n);
  for (index_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, 1.0});
  const SccResult r = strongly_connected_components(
      CsrMatrix::from_triplets(n, n, std::move(edges)));
  EXPECT_EQ(r.count, 1);
}

}  // namespace
}  // namespace rrl
