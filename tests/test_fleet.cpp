// Elastic TCP fleet end-to-end, against the real rrl_solve binary
// joining over loopback sockets: (1) the remote-only fleet's merged
// report is byte-for-byte the single-process report for 1 and 3 workers;
// (2) a remote killed mid-unit is re-dispatched around; (3) an empty
// fleet waits for a late joiner instead of failing; (4) a hung remote
// (socket healthy, no results, no pings) is reclaimed by the heartbeat
// timeout; (5) a remote whose plan disagrees is rejected without killing
// the study; (6) a warm parent store serves every artifact fetch (zero
// recompiles on remotes) while a cold parent degrades to local compiles,
// counted; (7) the SolverCache fetcher hook's tier/counter unit
// semantics.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/multiproc.hpp"
#include "models/raid5.hpp"
#include "rrl.hpp"

namespace rrl {
namespace {

namespace fs = std::filesystem;

std::string rrl_solve_path() {
  const std::string candidate = self_sibling_path("rrl_solve");
  std::error_code ec;
  return !candidate.empty() && fs::exists(candidate, ec) && !ec
             ? candidate
             : "";
}

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rrl-fleet-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

void write_model(const fs::path& path, const Ctmc& chain,
                 const std::vector<double>& rewards,
                 const std::vector<double>& initial, index_t regenerative) {
  write_model_file(path.string(), chain, rewards, initial, regenerative);
}

/// The same three-model study the dispatch tests use: 6 work units of 4
/// scenarios, enough for dynamic handout (and re-dispatch) to matter.
fs::path write_fleet_study(const TempDir& dir) {
  const MultiprocModel multi = build_multiproc_availability({});
  write_model(dir.path / "multi.rrlm", multi.chain, multi.failure_rewards(),
              multi.initial_distribution(), multi.initial_state);
  for (const int groups : {6, 12}) {
    Raid5Params p;
    p.groups = groups;
    const Raid5Model raid = build_raid5_availability(p);
    write_model(dir.path / ("raid" + std::to_string(groups) + ".rrlm"),
                raid.chain, raid.failure_rewards(),
                raid.initial_distribution(), raid.initial_state);
  }
  const fs::path study = dir.path / "fleet.study";
  std::ofstream(study) << "model raid12.rrlm\n"
                          "model raid6.rrlm\n"
                          "model multi.rrlm\n"
                          "solvers rr rrl\n"
                          "measures both\n"
                          "epsilons 1e-8\n"
                          "grid 1:500:3\n"
                          "times 5 50\n"
                          "jobs 1\n";
  return study;
}

/// The single-process reference report of a study file.
std::string reference_csv(const fs::path& study_path) {
  const StudySpec spec = read_study_file(study_path.string());
  ModelRepository repository;
  SolverCache cache;
  const StudyRun run = run_study(spec, repository, cache);
  std::ostringstream csv;
  write_report_csv(csv, run.total_scenarios, run.rows());
  return csv.str();
}

StudyPlan plan_of(const fs::path& study_path) {
  const StudySpec spec = read_study_file(study_path.string());
  ModelRepository repository;
  return build_study_plan(spec, repository);
}

/// fork/exec a `rrl_solve --connect` worker against the loopback port
/// (stdout/stderr silenced); returns its pid, or -1 on fork failure.
pid_t spawn_connect(const std::string& binary, const fs::path& study,
                    int port, const std::vector<std::string>& extra = {}) {
  std::vector<std::string> argv = {binary,
                                   "--connect",
                                   "127.0.0.1:" + std::to_string(port),
                                   "--study",
                                   study.string(),
                                   "--jobs",
                                   "1",
                                   "--heartbeat-ms",
                                   "200"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (FILE* sink = std::fopen("/dev/null", "w")) {
      ::dup2(fileno(sink), STDOUT_FILENO);
      ::dup2(fileno(sink), STDERR_FILENO);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

/// waitpid: the exit code, or -signal when terminated by one.
int reap(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return WIFSIGNALED(status) ? -WTERMSIG(status) : -1;
}

DispatchOptions remote_only(int listen_fd) {
  DispatchOptions options;
  options.workers = 0;
  options.listen_fd = listen_fd;
  return options;
}

TEST(Fleet, TcpByteIdenticalForOneAndThreeRemoteWorkers) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  for (const int remotes : {1, 3}) {
    const TcpListener listener = tcp_listen(0);
    std::vector<pid_t> pids;
    for (int i = 0; i < remotes; ++i) {
      pids.push_back(spawn_connect(binary, study, listener.port));
    }
    std::ostringstream out;
    StudyReducer reducer(out, plan.total_scenarios);
    const DispatchReport report =
        dispatch_study(plan, remote_only(listener.fd), reducer);
    ::close(listener.fd);
    for (const pid_t pid : pids) (void)reap(pid);

    EXPECT_EQ(report.remote_workers, static_cast<std::size_t>(remotes));
    EXPECT_EQ(report.units, plan.units.size());
    EXPECT_EQ(report.failed_scenarios, 0u);
    EXPECT_EQ(report.workers_lost, 0u);
    EXPECT_EQ(report.redispatched, 0u);
    EXPECT_EQ(out.str(), reference)
        << "TCP fleet report diverged with " << remotes << " workers";
  }
}

TEST(Fleet, RemoteKilledMidRunIsRedispatchedAndReportIsByteIdentical) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  const TcpListener listener = tcp_listen(0);
  // Remote 0 accepts its first unit, sits on it and dies without
  // replying (the socket EOF is the observed death); remote 1 must
  // absorb the re-queued unit.
  const pid_t doomed = spawn_connect(
      binary, study, listener.port,
      {"--test-die-after", "0", "--test-die-delay-ms", "500"});
  const pid_t survivor = spawn_connect(binary, study, listener.port);
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report =
      dispatch_study(plan, remote_only(listener.fd), reducer);
  ::close(listener.fd);
  EXPECT_EQ(reap(doomed), 3);  // the hook's deliberate abnormal exit
  (void)reap(survivor);

  EXPECT_EQ(report.remote_workers, 2u);
  EXPECT_EQ(report.workers_lost, 1u);
  EXPECT_EQ(report.redispatched, 1u);
  EXPECT_EQ(report.failed_scenarios, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, EmptyFleetWaitsForALateJoiner) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  // No local workers, no remotes yet: the dispatcher must WAIT on the
  // armed listener, not throw "all workers lost". The joiner arrives
  // 300 ms into the run and drains the whole queue.
  const TcpListener listener = tcp_listen(0);
  pid_t joiner = -1;
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    joiner = spawn_connect(binary, study, listener.port);
  });
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report =
      dispatch_study(plan, remote_only(listener.fd), reducer);
  late.join();
  ::close(listener.fd);
  ASSERT_GT(joiner, 0);
  (void)reap(joiner);

  EXPECT_EQ(report.remote_workers, 1u);
  EXPECT_EQ(report.units, plan.units.size());
  EXPECT_EQ(report.workers_lost, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, HungRemoteIsReclaimedByTheHeartbeatTimeout) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  const TcpListener listener = tcp_listen(0);
  // The FIRST joiner takes its first unit and goes silent WITHOUT dying
  // or closing the socket — the unit is held hostage by a healthy
  // connection, so no EOF will ever come and only the heartbeat sweep
  // can reclaim it. A healthy worker joins 300 ms later, drains the
  // rest of the queue, and must also absorb the hostage unit once the
  // timeout declares the mute remote dead.
  const pid_t mute =
      spawn_connect(binary, study, listener.port, {"--test-mute-after", "0"});
  pid_t survivor = -1;
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    survivor = spawn_connect(binary, study, listener.port);
  });
  DispatchOptions options = remote_only(listener.fd);
  options.heartbeat_timeout_ms = 1500;  // workers ping every 200 ms
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report = dispatch_study(plan, options, reducer);
  late.join();
  ::close(listener.fd);
  // The hung process never exits on its own; the test owns its lifetime.
  ::kill(mute, SIGKILL);
  EXPECT_EQ(reap(mute), -SIGKILL);
  (void)reap(survivor);

  EXPECT_EQ(report.remote_workers, 2u);
  EXPECT_EQ(report.workers_lost, 1u);
  EXPECT_EQ(report.redispatched, 1u);
  EXPECT_EQ(report.failed_scenarios, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, MismatchedRemoteIsRejectedWithoutKillingTheStudy) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  // A second study over the same models but a different grid: its plan
  // fingerprint disagrees, so a worker running it must be turned away at
  // the handshake — rejected, not counted as a lost worker, and the
  // study completes on the agreeing worker alone.
  const fs::path other = dir.path / "other.study";
  std::ofstream(other) << "model raid12.rrlm\n"
                          "model raid6.rrlm\n"
                          "model multi.rrlm\n"
                          "solvers rr rrl\n"
                          "measures both\n"
                          "epsilons 1e-8\n"
                          "grid 1:400:3\n"
                          "times 5 50\n"
                          "jobs 1\n";

  const TcpListener listener = tcp_listen(0);
  const pid_t stray = spawn_connect(binary, other, listener.port);
  const pid_t good = spawn_connect(binary, study, listener.port);
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report =
      dispatch_study(plan, remote_only(listener.fd), reducer);
  ::close(listener.fd);
  (void)reap(stray);
  (void)reap(good);

  EXPECT_EQ(report.remotes_rejected, 1u);
  EXPECT_EQ(report.remote_workers, 1u);
  EXPECT_EQ(report.workers_lost, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, WarmParentStoreServesEveryArtifactFetch) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);

  // Warm the parent's store with an in-process run (this also yields the
  // reference bytes), exactly what `--serve --cache-dir` does on a
  // second invocation.
  const auto store =
      std::make_shared<ArtifactStore>((dir.path / "store").string());
  std::string reference;
  {
    const StudySpec spec = read_study_file(study.string());
    ModelRepository repository;
    SolverCache cache;
    cache.attach_store(store);
    const StudyRun run = run_study(spec, repository, cache);
    cache.flush_to_store();
    std::ostringstream csv;
    write_report_csv(csv, run.total_scenarios, run.rows());
    reference = csv.str();
  }
  const StudyPlan plan = plan_of(study);

  const TcpListener listener = tcp_listen(0);
  const pid_t a = spawn_connect(binary, study, listener.port);
  const pid_t b = spawn_connect(binary, study, listener.port);
  DispatchOptions options = remote_only(listener.fd);
  options.artifact_store = store.get();
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report = dispatch_study(plan, options, reducer);
  ::close(listener.fd);
  (void)reap(a);
  (void)reap(b);

  // The perf headline: every remote cache miss was answered from the
  // parent's store — zero cold recompiles across the fleet — and the
  // fetched warm starts answered bit-identically.
  EXPECT_GT(report.artifact_requests, 0u);
  EXPECT_EQ(report.artifact_hits, report.artifact_requests);
  EXPECT_EQ(report.failed_scenarios, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, ColdParentFallsBackToLocalCompilesAndCountsMisses) {
  const std::string binary = rrl_solve_path();
  if (binary.empty()) GTEST_SKIP() << "rrl_solve not built";
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const std::string reference = reference_csv(study);
  const StudyPlan plan = plan_of(study);

  // No parent store at all: every artifact request is answered "not
  // found", the worker compiles locally, and the report must not care.
  const TcpListener listener = tcp_listen(0);
  const pid_t worker = spawn_connect(binary, study, listener.port);
  std::ostringstream out;
  StudyReducer reducer(out, plan.total_scenarios);
  const DispatchReport report =
      dispatch_study(plan, remote_only(listener.fd), reducer);
  ::close(listener.fd);
  (void)reap(worker);

  EXPECT_GT(report.artifact_requests, 0u);
  EXPECT_EQ(report.artifact_hits, 0u);
  EXPECT_EQ(report.failed_scenarios, 0u);
  EXPECT_EQ(out.str(), reference);
}

TEST(Fleet, FetcherHookWarmStartsBitIdenticallyAndCountsBothWays) {
  const TempDir dir;
  const fs::path study = write_fleet_study(dir);
  const StudySpec spec = read_study_file(study.string());
  ModelRepository repository;
  const StudyPlan plan = build_study_plan(spec, repository);
  ASSERT_FALSE(plan.scenarios.empty());
  const PlannedScenario& scenario = plan.scenarios[0];

  // Warm a store with scenario 0's compiled (and solved — the schema is
  // what makes the artifact worth exporting) solver.
  const auto store =
      std::make_shared<ArtifactStore>((dir.path / "store").string());
  SolveReport cold_report;
  {
    SolverCache warm;
    warm.attach_store(store);
    const auto solver = warm.get_or_build(scenario.model,
                                          scenario.meta.solver,
                                          scenario.config);
    cold_report = solver->solve_grid(scenario.request);
    ASSERT_GT(warm.flush_to_store(), 0u);
  }

  // A cache whose fetcher serves from that store: the double miss
  // (memory, no disk tier) must resolve through the hook as tier
  // "fetch", exactly once, and answer bit-identically to the cold run.
  SolverCache fetched;
  std::size_t calls = 0;
  fetched.set_fetcher([&](const SolverCacheKey& key) {
    ++calls;
    SolverConfig config;
    config.epsilon = key.epsilon;
    config.rate_factor = key.rate_factor;
    config.regenerative = static_cast<index_t>(key.regenerative);
    config.step_cap = key.step_cap;
    return store->load(key.model_hash, key.solver, config);
  });
  CacheTier tier = CacheTier::kNone;
  const auto solver = fetched.get_or_build(
      scenario.model, scenario.meta.solver, scenario.config, &tier);
  EXPECT_EQ(tier, CacheTier::kFetched);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(fetched.stats().fetch_hits, 1u);
  EXPECT_EQ(fetched.stats().fetch_misses, 0u);
  const SolveReport fetched_report = solver->solve_grid(scenario.request);
  ASSERT_EQ(fetched_report.points.size(), cold_report.points.size());
  for (std::size_t p = 0; p < cold_report.points.size(); ++p) {
    EXPECT_EQ(fetched_report.points[p].value, cold_report.points[p].value);
  }

  // The second lookup shares the in-memory entry; the fetcher is not
  // consulted again.
  tier = CacheTier::kNone;
  (void)fetched.get_or_build(scenario.model, scenario.meta.solver,
                             scenario.config, &tier);
  EXPECT_EQ(tier, CacheTier::kMemory);
  EXPECT_EQ(calls, 1u);

  // A fetcher that has nothing: a counted miss and a cold compile, never
  // an error.
  SolverCache empty_handed;
  empty_handed.set_fetcher(
      [](const SolverCacheKey&) -> std::optional<CompiledArtifact> {
        return std::nullopt;
      });
  tier = CacheTier::kNone;
  (void)empty_handed.get_or_build(scenario.model, scenario.meta.solver,
                                  scenario.config, &tier);
  EXPECT_EQ(tier, CacheTier::kCompiled);
  EXPECT_EQ(empty_handed.stats().fetch_hits, 0u);
  EXPECT_EQ(empty_handed.stats().fetch_misses, 1u);
}

}  // namespace
}  // namespace rrl
