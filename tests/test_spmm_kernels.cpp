// Multi-RHS SpMM layer (sparse/block.hpp, CsrMatrix::mul_block) and the
// shared-pass batched randomization solves built on it
// (core/randomization_batch.hpp, rr_solver's equal-matrix classes).
//
// The load-bearing contract everywhere: every output column of every SpMM
// variant — each ISA, CSR rows and SELL chunks, serial and pooled, wide
// and narrow tiles, full and fringe column counts — is BITWISE the scalar
// single-vector SpMV of that column, and therefore every batched solve is
// bitwise the per-scenario solve it replaces. Comparisons go through
// memcmp, not EXPECT_DOUBLE_EQ: -0.0 == 0.0 would hide exactly the sign
// flips the contract forbids.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/randomization_batch.hpp"
#include "core/rr_solver.hpp"
#include "core/standard_randomization.hpp"
#include "core/steady_state_detection.hpp"
#include "core/sweep_engine.hpp"
#include "models/simple.hpp"
#include "sparse/block.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv_kernels.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace rrl {
namespace {

std::vector<const SpmvKernels*> available_variants() {
  std::vector<const SpmvKernels*> variants;
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (const SpmvKernels* k = kernels_for(isa)) variants.push_back(k);
  }
  return variants;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Per-column irregular data: column j gets a distinct salt so a kernel
// that mixes lanes cannot cancel out.
std::vector<double> column_vector(std::size_t n, std::size_t salt) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i + 5 * salt;
    x[i] = (static_cast<double>(k % 17) - 8.0) /
           (1.0 + static_cast<double>(k % 29));
  }
  return x;
}

// Deterministic irregular matrix (same shape family as the SpMV tests):
// varying row lengths, empty rows, one dense row.
CsrMatrix irregular(index_t n) {
  std::vector<Triplet> entries;
  for (index_t r = 0; r < n; ++r) {
    if (r % 7 == 3) continue;
    for (index_t k = 0; k < (r % 11) + 1; ++k) {
      const index_t c = (r * 31 + k * 17) % n;
      entries.push_back({r, c, 1.0 / (1.0 + r + 3.0 * k) - 0.05 * k});
    }
  }
  if (n > 5) {
    for (index_t c = 0; c < n; ++c) {
      entries.push_back({5, c, 0.25 - 0.001 * c});
    }
  }
  return CsrMatrix::from_triplets(n, n, entries);
}

// Operands covering every tile of the block pair.
std::vector<SpmmOperand> all_ops(const DenseBlock& x, DenseBlock& y) {
  std::vector<SpmmOperand> ops;
  for (index_t t = 0; t < x.num_tiles(); ++t) {
    ops.push_back(
        SpmmOperand{x.tile(t), y.tile(t), x.tile_width(t), x.tile_cols(t)});
  }
  return ops;
}

std::vector<double> extract_column(const DenseBlock& b, index_t col) {
  std::vector<double> v(static_cast<std::size_t>(b.rows()));
  for (index_t r = 0; r < b.rows(); ++r) {
    v[static_cast<std::size_t>(r)] = b.at(r, col);
  }
  return v;
}

// Scalar single-vector reference for one column.
std::vector<double> reference_column(const CsrMatrix& m,
                                     const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(m.rows()), 0.0);
  m.mul_vec_with(scalar_kernels(), x, y);
  return y;
}

// ---------------------------------------------------------------------------
// DenseBlock layout.

TEST(DenseBlock, TilePlanCoversEveryFringeWidth) {
  const struct {
    index_t cols;
    std::vector<index_t> widths;
    std::vector<index_t> lives;
  } cases[] = {
      {0, {}, {}},
      {1, {4}, {1}},
      {4, {4}, {4}},
      {5, {8}, {5}},
      {8, {8}, {8}},
      {9, {8, 4}, {8, 1}},
      {12, {8, 4}, {8, 4}},
      {13, {8, 8}, {8, 5}},
      {16, {8, 8}, {8, 8}},
      {17, {8, 8, 4}, {8, 8, 1}},
  };
  DenseBlock b;
  for (const auto& c : cases) {
    b.reshape(10, c.cols);
    ASSERT_EQ(b.num_tiles(), static_cast<index_t>(c.widths.size()))
        << "cols=" << c.cols;
    for (index_t t = 0; t < b.num_tiles(); ++t) {
      EXPECT_EQ(b.tile_width(t), c.widths[static_cast<std::size_t>(t)])
          << "cols=" << c.cols << " tile " << t;
      EXPECT_EQ(b.tile_cols(t), c.lives[static_cast<std::size_t>(t)]);
      EXPECT_EQ(b.tile_col_begin(t), t * kSpmmTileWide);
    }
  }
}

TEST(DenseBlock, ColumnAddressingRoundTripsAndPaddingStaysZero) {
  DenseBlock b;
  b.reshape(7, 9);  // wide tile + 1-live narrow fringe
  EXPECT_EQ(DenseBlock::tile_of(8), 1);
  EXPECT_EQ(DenseBlock::lane_of(8), 0);
  for (index_t col = 0; col < 9; ++col) {
    const auto v = column_vector(7, static_cast<std::size_t>(col));
    b.fill_column(col, v);
  }
  for (index_t col = 0; col < 9; ++col) {
    EXPECT_EQ(extract_column(b, col),
              column_vector(7, static_cast<std::size_t>(col)))
        << "col " << col;
  }
  // Padding lanes of the fringe tile (lanes 1..3 of the width-4 tile)
  // were never written and must still be the reshape() zeros.
  const double* fringe = b.tile(1);
  for (index_t r = 0; r < 7; ++r) {
    for (index_t lane = 1; lane < 4; ++lane) {
      EXPECT_EQ(fringe[r * 4 + lane], 0.0) << "row " << r;
    }
  }
}

TEST(DenseBlock, ReshapeZeroFillsAcrossReuse) {
  DenseBlock b;
  b.reshape(16, 12);
  for (index_t col = 0; col < 12; ++col) {
    b.fill_column(col, std::vector<double>(16, -3.5));
  }
  b.reshape(4, 3);  // shrink: must be zero, not stale -3.5
  for (index_t col = 0; col < 3; ++col) {
    EXPECT_EQ(extract_column(b, col), std::vector<double>(4, 0.0));
  }
  b.reshape(32, 9);  // grow again
  for (index_t col = 0; col < 9; ++col) {
    EXPECT_EQ(extract_column(b, col), std::vector<double>(32, 0.0));
  }
}

// ---------------------------------------------------------------------------
// Kernel-level bit-identity: every variant, every layout, every width.

TEST(SpmmKernels, EveryVariantMatchesPerColumnScalarSpmvOnCsr) {
  const struct {
    const char* what;
    CsrMatrix m;
  } cases[] = {
      {"empty matrix", CsrMatrix::from_triplets(0, 0, {})},
      {"single dense row",
       [] {
         std::vector<Triplet> e;
         for (index_t c = 0; c < 64; ++c) {
           e.push_back({0, c, 0.125 * (c - 30)});
         }
         return CsrMatrix::from_triplets(1, 64, e);
       }()},
      {"irregular 19", irregular(19)},
      {"irregular 533", irregular(533)},
  };
  for (const auto& c : cases) {
    for (const index_t n_cols : {1, 2, 4, 5, 7, 8, 9, 12}) {
      DenseBlock x;
      DenseBlock y;
      x.reshape(c.m.cols(), n_cols);
      y.reshape(c.m.rows(), n_cols);
      std::vector<std::vector<double>> want;
      for (index_t j = 0; j < n_cols; ++j) {
        const auto col = column_vector(static_cast<std::size_t>(c.m.cols()),
                                       static_cast<std::size_t>(j));
        x.fill_column(j, col);
        want.push_back(reference_column(c.m, col));
      }
      for (const SpmvKernels* k : available_variants()) {
        y.reshape(c.m.rows(), n_cols);  // reset outputs
        c.m.mul_block_with(*k, all_ops(x, y), c.m.rows());
        for (index_t j = 0; j < n_cols; ++j) {
          EXPECT_TRUE(bits_equal(extract_column(y, j),
                                 want[static_cast<std::size_t>(j)]))
              << c.what << " cols=" << n_cols << " col " << j << " via "
              << k->name;
        }
      }
    }
  }
}

TEST(SpmmKernels, ForcedSellBlockMatchesScalarSpmvBitwise) {
  for (const index_t n : {16, 67, 533}) {
    CsrMatrix blocked = irregular(n);
    blocked.specialize(/*force_blocked=*/true);
    ASSERT_NE(blocked.sell(), nullptr) << "n=" << n;
    for (const index_t n_cols : {1, 5, 8, 12}) {
      DenseBlock x;
      DenseBlock y;
      x.reshape(n, n_cols);
      std::vector<std::vector<double>> want;
      for (index_t j = 0; j < n_cols; ++j) {
        const auto col = column_vector(static_cast<std::size_t>(n),
                                       static_cast<std::size_t>(j));
        x.fill_column(j, col);
        want.push_back(reference_column(irregular(n), col));
      }
      for (const SpmvKernels* k : available_variants()) {
        y.reshape(n, n_cols);
        blocked.mul_block_with(*k, all_ops(x, y), n);
        for (index_t j = 0; j < n_cols; ++j) {
          EXPECT_TRUE(bits_equal(extract_column(y, j),
                                 want[static_cast<std::size_t>(j)]))
              << "n=" << n << " cols=" << n_cols << " col " << j << " via "
              << k->name;
        }
      }
    }
  }
}

TEST(SpmmKernels, PooledMulBlockMatchesSerialBitwise) {
  const index_t n = 533;
  CsrMatrix blocked = irregular(n);
  blocked.specialize(/*force_blocked=*/true);
  ASSERT_NE(blocked.sell(), nullptr);
  const index_t n_cols = 12;
  DenseBlock x;
  x.reshape(n, n_cols);
  for (index_t j = 0; j < n_cols; ++j) {
    x.fill_column(j, column_vector(static_cast<std::size_t>(n),
                                   static_cast<std::size_t>(j)));
  }
  DenseBlock serial;
  serial.reshape(n, n_cols);
  {
    auto ops = all_ops(x, serial);
    blocked.mul_block(ops, n);
  }
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    DenseBlock pooled;
    pooled.reshape(n, n_cols);
    auto ops = all_ops(x, pooled);
    blocked.mul_block(ops, n, pool);
    for (index_t j = 0; j < n_cols; ++j) {
      EXPECT_TRUE(
          bits_equal(extract_column(pooled, j), extract_column(serial, j)))
          << "threads=" << threads << " col " << j;
    }
  }
}

TEST(SpmmKernels, LeadingPrefixComputedSuffixUntouched) {
  const index_t n = 67;
  CsrMatrix blocked = irregular(n);
  blocked.specialize(/*force_blocked=*/true);
  ASSERT_NE(blocked.sell(), nullptr);
  const index_t n_cols = 5;
  DenseBlock x;
  x.reshape(n, n_cols);
  std::vector<std::vector<double>> want;
  for (index_t j = 0; j < n_cols; ++j) {
    const auto col = column_vector(static_cast<std::size_t>(n),
                                   static_cast<std::size_t>(j));
    x.fill_column(j, col);
    want.push_back(reference_column(irregular(n), col));
  }
  ThreadPool pool(4);
  for (const index_t leading : {0, 1, 8, 9, 63, 64, 67}) {
    for (const bool pooled : {false, true}) {
      DenseBlock y;
      y.reshape(n, n_cols);
      for (index_t j = 0; j < n_cols; ++j) {
        y.fill_column(j, std::vector<double>(static_cast<std::size_t>(n),
                                             123.25));
      }
      auto ops = all_ops(x, y);
      if (pooled) {
        blocked.mul_block(ops, leading, pool);
      } else {
        blocked.mul_block(ops, leading);
      }
      for (index_t j = 0; j < n_cols; ++j) {
        for (index_t r = 0; r < n; ++r) {
          const double want_v =
              r < leading
                  ? want[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(r)]
                  : 123.25;
          const double got_v = y.at(r, j);
          EXPECT_EQ(std::memcmp(&got_v, &want_v, sizeof(double)), 0)
              << "leading=" << leading << " row=" << r << " col=" << j
              << (pooled ? " (pooled)" : "");
        }
      }
    }
  }
}

TEST(SpmmKernels, EveryCompiledVariantProvidesTheFullMmSet) {
  for (const SpmvKernels* k : available_variants()) {
    EXPECT_NE(k->csr_rows_mm4, nullptr) << k->name;
    EXPECT_NE(k->csr_rows_mm8, nullptr) << k->name;
    EXPECT_NE(k->sell_chunks_mm4, nullptr) << k->name;
    EXPECT_NE(k->sell_chunks_mm8, nullptr) << k->name;
  }
}

TEST(SpmmKernels, SpmmEnabledReadsEnvironmentPerCall) {
  unsetenv("RRL_SPMM");
  EXPECT_TRUE(spmm_enabled());
  setenv("RRL_SPMM", "off", 1);
  EXPECT_FALSE(spmm_enabled());
  setenv("RRL_SPMM", "0", 1);
  EXPECT_FALSE(spmm_enabled());
  setenv("RRL_SPMM", "on", 1);
  EXPECT_TRUE(spmm_enabled());
  unsetenv("RRL_SPMM");
  EXPECT_TRUE(spmm_enabled());
}

TEST(SpmmKernels, MetricsCountProductsAndColumns) {
  const CsrMatrix m = irregular(19);
  DenseBlock x;
  DenseBlock y;
  x.reshape(19, 9);
  y.reshape(19, 9);
  const auto before_products =
      metrics::counter("rrl_spmm_products_total").value();
  const auto before_columns =
      metrics::counter("rrl_spmm_columns_total").value();
  auto ops = all_ops(x, y);
  m.mul_block(ops, 19);
  EXPECT_EQ(metrics::counter("rrl_spmm_products_total").value(),
            before_products + 1);
  EXPECT_EQ(metrics::counter("rrl_spmm_columns_total").value(),
            before_columns + 9);
}

// ---------------------------------------------------------------------------
// Shared-pass batched SR/RSD solves.

struct BatchFixture {
  std::vector<SolveReport> reports;
  std::vector<std::string> errors;
  std::vector<RandBatchItem> items;

  BatchFixture(const TransientSolver& solver,
               const std::vector<SolveRequest>& requests) {
    reports.resize(requests.size());
    errors.resize(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      items.push_back(
          RandBatchItem{&solver, &requests[i], &reports[i], &errors[i]});
    }
  }
};

void expect_reports_equal(const SolveReport& got, const SolveReport& want,
                          const std::string& label) {
  ASSERT_EQ(got.points.size(), want.points.size()) << label;
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    const double g = got.points[i].value;
    const double w = want.points[i].value;
    EXPECT_EQ(std::memcmp(&g, &w, sizeof(double)), 0)
        << label << " point " << i << " got=" << g << " want=" << w;
    EXPECT_EQ(got.points[i].stats.dtmc_steps, want.points[i].stats.dtmc_steps)
        << label << " point " << i;
    EXPECT_EQ(got.points[i].stats.capped, want.points[i].stats.capped);
    EXPECT_EQ(got.points[i].stats.detection_step,
              want.points[i].stats.detection_step)
        << label << " point " << i;
    EXPECT_EQ(got.points[i].stats.lambda, want.points[i].stats.lambda);
  }
  EXPECT_EQ(got.total.dtmc_steps, want.total.dtmc_steps) << label;
  EXPECT_EQ(got.total.capped, want.total.capped) << label;
  EXPECT_EQ(got.total.detection_step, want.total.detection_step) << label;
  EXPECT_EQ(got.total.lambda, want.total.lambda) << label;
}

TEST(RandomizationBatch, SrBatchMatchesSoloBitwise) {
  const Ctmc chain = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[12] = 1.0;
  rewards[3] = 0.5;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  SrOptions options;
  options.epsilon = 1e-8;
  const StandardRandomization sr(chain, rewards, alpha, options);

  // Scenarios varying everything the batch must keep per-column: epsilon
  // (truncation/pass length), measure (Poisson weights), and the grid.
  std::vector<SolveRequest> requests;
  requests.push_back(SolveRequest::trr({0.5, 5.0, 50.0}));
  requests.push_back(SolveRequest::trr({0.5, 5.0, 50.0}, 1e-4));
  requests.push_back(SolveRequest::mrr({0.5, 5.0, 50.0}));
  requests.push_back(SolveRequest::mrr({1.0, 10.0}, 1e-10));
  requests.push_back(SolveRequest::trr({100.0}, 1e-12));
  requests.push_back(SolveRequest::trr({0.25}, 1e-6));

  std::vector<SolveReport> solo;
  for (const SolveRequest& r : requests) solo.push_back(sr.solve_grid(r));

  ThreadPool pool(4);
  SolveWorkspace workspace;
  for (const bool with_pool : {false, true}) {
    for (const bool with_workspace : {false, true}) {
      BatchFixture fx(sr, requests);
      solve_randomization_batch(fx.items, with_pool ? &pool : nullptr,
                                with_workspace ? &workspace : nullptr);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(fx.errors[i], "");
        expect_reports_equal(
            fx.reports[i], solo[i],
            "sr item " + std::to_string(i) +
                (with_pool ? " pool" : " serial") +
                (with_workspace ? " ws" : ""));
      }
    }
  }
}

TEST(RandomizationBatch, RsdBatchMatchesSoloIncludingDetection) {
  const auto m = make_two_state(1e-3, 1.0);
  const RandomizationSteadyStateDetection rsd(m.chain, {0.0, 1.0},
                                              {1.0, 0.0});
  std::vector<SolveRequest> requests;
  // Large horizons so detection fires (per the solo RSD tests), at three
  // different epsilons — three different spans tolerances, so the columns
  // fold at different steps.
  requests.push_back(SolveRequest::trr({1.0, 1e3, 1e5}));
  requests.push_back(SolveRequest::trr({1.0, 1e3, 1e5}, 1e-6));
  requests.push_back(SolveRequest::mrr({10.0, 1e4}, 1e-9));
  requests.push_back(SolveRequest::trr({0.1}));

  std::vector<SolveReport> solo;
  for (const SolveRequest& r : requests) solo.push_back(rsd.solve_grid(r));
  // Sanity: the workload actually exercises the detection fold.
  EXPECT_GT(solo[0].total.detection_step, 0);

  ThreadPool pool(2);
  for (const bool with_pool : {false, true}) {
    BatchFixture fx(rsd, requests);
    solve_randomization_batch(fx.items, with_pool ? &pool : nullptr);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(fx.errors[i], "");
      expect_reports_equal(fx.reports[i], solo[i],
                           "rsd item " + std::to_string(i));
    }
  }
}

TEST(RandomizationBatch, MixedSolversGroupByInstance) {
  const Ctmc chain = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[12] = 1.0;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(chain, rewards, alpha);
  const RandomizationSteadyStateDetection rsd(chain, rewards, alpha);
  EXPECT_TRUE(randomization_batchable(sr));
  EXPECT_TRUE(randomization_batchable(rsd));

  const std::vector<SolveRequest> requests = {
      SolveRequest::trr({1.0, 10.0}),
      SolveRequest::mrr({5.0}),
      SolveRequest::trr({1.0, 10.0}),
      SolveRequest::mrr({5.0}),
  };
  std::vector<SolveReport> reports(4);
  std::vector<std::string> errors(4);
  // Interleaved: items 0/2 drive sr, 1/3 drive rsd — two groups.
  std::vector<RandBatchItem> items = {
      {&sr, &requests[0], &reports[0], &errors[0]},
      {&rsd, &requests[1], &reports[1], &errors[1]},
      {&sr, &requests[2], &reports[2], &errors[2]},
      {&rsd, &requests[3], &reports[3], &errors[3]},
  };
  solve_randomization_batch(items, nullptr);
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  expect_reports_equal(reports[0], sr.solve_grid(requests[0]), "sr 0");
  expect_reports_equal(reports[1], rsd.solve_grid(requests[1]), "rsd 1");
  expect_reports_equal(reports[2], sr.solve_grid(requests[2]), "sr 2");
  expect_reports_equal(reports[3], rsd.solve_grid(requests[3]), "rsd 3");
}

TEST(RandomizationBatch, SingletonGroupRunsThePlainSolve) {
  const Ctmc chain = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[3] = 2.0;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(chain, rewards, alpha);
  const std::vector<SolveRequest> requests = {SolveRequest::trr({3.0})};
  BatchFixture fx(sr, requests);
  solve_randomization_batch(fx.items, nullptr);
  EXPECT_EQ(fx.errors[0], "");
  expect_reports_equal(fx.reports[0], sr.solve_grid(requests[0]),
                       "singleton");
}

TEST(RandomizationBatch, ZeroRewardsReportZeroValues) {
  const Ctmc chain = make_random_ctmc({.num_states = 10, .seed = 3});
  std::vector<double> alpha(10, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(chain, std::vector<double>(10, 0.0), alpha);
  const std::vector<SolveRequest> requests = {
      SolveRequest::trr({1.0, 10.0}), SolveRequest::mrr({5.0})};
  BatchFixture fx(sr, requests);
  solve_randomization_batch(fx.items, nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(fx.errors[i], "");
    for (const TransientValue& p : fx.reports[i].points) {
      EXPECT_EQ(p.value, 0.0);
      EXPECT_EQ(p.stats.lambda, sr.lambda());
    }
    EXPECT_EQ(fx.reports[i].total.lambda, sr.lambda());
  }
}

TEST(RandomizationBatch, BadItemIsIsolated) {
  const Ctmc chain = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[12] = 1.0;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  const StandardRandomization sr(chain, rewards, alpha);
  const std::vector<SolveRequest> requests = {
      SolveRequest::trr({1.0, 10.0}),
      SolveRequest::mrr({0.0}),  // MRR at t = 0: contract violation
      SolveRequest::trr({1.0, 10.0}),
  };
  BatchFixture fx(sr, requests);
  solve_randomization_batch(fx.items, nullptr);
  EXPECT_EQ(fx.errors[0], "");
  EXPECT_NE(fx.errors[1], "");
  EXPECT_EQ(fx.errors[2], "");
  const SolveReport solo = sr.solve_grid(requests[0]);
  expect_reports_equal(fx.reports[0], solo, "survivor 0");
  expect_reports_equal(fx.reports[2], solo, "survivor 2");
}

TEST(RandomizationBatch, RunSweepRoutingIsBitIdenticalOnAndOff) {
  const Ctmc chain = make_random_ctmc({.num_states = 25, .seed = 77});
  std::vector<double> rewards(25, 0.0);
  rewards[12] = 1.0;
  rewards[3] = 0.5;
  std::vector<double> alpha(25, 0.0);
  alpha[0] = 1.0;
  const auto sr = std::make_shared<StandardRandomization>(chain, rewards,
                                                          alpha);
  const auto rsd = std::make_shared<RandomizationSteadyStateDetection>(
      chain, rewards, alpha);

  BatchRequest batch;
  for (int i = 0; i < 4; ++i) {
    SweepScenario scenario;
    scenario.model = "random25";
    scenario.solver = i % 2 == 0 ? "sr" : "rsd";
    scenario.chain = &chain;
    scenario.request.measure =
        i < 2 ? MeasureKind::kTrr : MeasureKind::kMrr;
    scenario.request.times = {1.0, 10.0, 100.0};
    scenario.request.epsilon = i < 2 ? 1e-8 : 1e-10;
    scenario.shared_solver =
        i % 2 == 0 ? std::static_pointer_cast<const TransientSolver>(sr)
                   : std::static_pointer_cast<const TransientSolver>(rsd);
    batch.scenarios.push_back(std::move(scenario));
  }

  const auto before = metrics::counter("rrl_spmm_products_total").value();
  batch.spmm = true;
  batch.jobs = 1;
  const SweepReport on = run_sweep(batch);
  EXPECT_EQ(on.failed(), 0u);
  EXPECT_GT(metrics::counter("rrl_spmm_products_total").value(), before)
      << "spmm routing did not engage";

  batch.spmm = false;
  for (const int jobs : {1, 4}) {
    batch.jobs = jobs;
    const SweepReport off = run_sweep(batch);
    EXPECT_EQ(off.failed(), 0u);
    for (std::size_t s = 0; s < on.results.size(); ++s) {
      expect_reports_equal(on.results[s].report, off.results[s].report,
                           "scenario " + std::to_string(s) +
                               " jobs=" + std::to_string(jobs));
    }
  }
}

// ---------------------------------------------------------------------------
// RR equal-matrix SpMM classes.

TEST(RandomizationBatch, RrEqualMatrixClassesStepJointlyAndBitwise) {
  // A 3-cycle with regenerative state 0 terminates its excursions exactly
  // (a(3) = 0), so the truncated series saturates at the same K for every
  // horizon: distinct t_max compile distinct schema groups whose V
  // stepping matrices are bitwise EQUAL — exactly what the SpMM class path
  // batches.
  const Ctmc cycle = Ctmc::from_transitions(
      3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  const std::vector<double> rewards = {1.0, 0.5, 0.25};
  const std::vector<double> alpha = {1.0, 0.0, 0.0};
  RrOptions options;
  options.epsilon = 1e-10;
  const RegenerativeRandomization rr(cycle, rewards, alpha,
                                     /*regenerative_state=*/0, options);

  const std::vector<SolveRequest> requests = {SolveRequest::trr({5.0}),
                                              SolveRequest::trr({9.0})};
  std::vector<SolveReport> solo;
  for (const SolveRequest& r : requests) solo.push_back(rr.solve_grid(r));
  // Distinct horizons, identical truncated V-models: the class's premise.
  const auto& va = rr.compiled_for(5.0, 1e-10)->vmodel->chain;
  const auto& vb = rr.compiled_for(9.0, 1e-10)->vmodel->chain;
  ASSERT_EQ(va.num_states(), vb.num_states());
  ASSERT_EQ(va.num_transitions(), vb.num_transitions());
  ASSERT_EQ(0, std::memcmp(va.rates().values().data(),
                           vb.rates().values().data(),
                           va.rates().values().size_bytes()));

  const auto run_batch = [&] {
    std::vector<SolveReport> reports(requests.size());
    std::vector<std::string> errors(requests.size());
    std::vector<RrBatchItem> items;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      items.push_back(
          RrBatchItem{&rr, &requests[i], &reports[i], &errors[i]});
    }
    solve_rr_batch(items, nullptr);
    for (const std::string& e : errors) EXPECT_EQ(e, "");
    return reports;
  };

  const auto before = metrics::counter("rrl_spmm_products_total").value();
  const std::vector<SolveReport> joint = run_batch();
  EXPECT_GT(metrics::counter("rrl_spmm_products_total").value(), before)
      << "equal-matrix class did not engage";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(joint[i].values(), solo[i].values()) << i;
    EXPECT_EQ(joint[i].total.vmodel_steps, solo[i].total.vmodel_steps);
    EXPECT_EQ(joint[i].total.dtmc_steps, solo[i].total.dtmc_steps);
  }

  // RRL_SPMM=off must take the classic schedules — same bits, no products.
  setenv("RRL_SPMM", "off", 1);
  const auto off_before = metrics::counter("rrl_spmm_products_total").value();
  const std::vector<SolveReport> classic = run_batch();
  EXPECT_EQ(metrics::counter("rrl_spmm_products_total").value(), off_before);
  unsetenv("RRL_SPMM");
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(classic[i].values(), solo[i].values()) << i;
  }
}

}  // namespace
}  // namespace rrl
