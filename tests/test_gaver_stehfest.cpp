// Tests of the Gaver-Stehfest inverter and its cross-validation against the
// Durbin/Crump method on the paper's transforms.
#include "laplace/gaver_stehfest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/regenerative.hpp"
#include "core/rrl_transform.hpp"
#include "models/simple.hpp"
#include "support/contracts.hpp"

namespace rrl {
namespace {

TEST(GaverStehfest, WeightsSumToZero) {
  // sum_k zeta_k = 0 is the constant-function consistency condition
  // (together with sum zeta_k k ... it reproduces f = 1 from F = 1/s).
  for (const int order : {8, 12, 14, 16}) {
    long double sum = 0.0L;
    for (int k = 1; k <= order; ++k) sum += stehfest_weight(k, order);
    EXPECT_NEAR(static_cast<double>(sum), 0.0, 1e-4)
        << "order=" << order;  // magnitudes reach ~1e8; 1e-4 abs is tight
  }
}

TEST(GaverStehfest, KnownSmallWeights) {
  // Classical n = 2 weights: zeta_1 = 2... actually {2, -2}? Verify via the
  // defining sum: n=2, half=1: k=1: j in [1,1]: 1*2!/ (0! 1! 0! 0! 1!) = 2,
  // sign (-1)^{1+1} = +; k=2: j=1: 2 / (0! 1! 0! 1! 0!) = 2, sign -1^{2+1}=-.
  EXPECT_DOUBLE_EQ(stehfest_weight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(stehfest_weight(2, 2), -2.0);
}

TEST(GaverStehfest, InvertsConstant) {
  const auto r = gaver_stehfest_invert([](double s) { return 1.0 / s; },
                                       3.0, 14);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
  EXPECT_EQ(r.abscissae, 14);
}

TEST(GaverStehfest, InvertsExponential) {
  // Order 14 delivers ~5-6 digits *relative to the function's scale*
  // (max |f| ~ 1 here) — the intrinsic truncation accuracy of the method,
  // degrading for steeply decaying f (b = 3: bt = 4.5).
  for (const double b : {0.2, 1.0, 3.0}) {
    const double t = 1.5;
    const auto r = gaver_stehfest_invert(
        [b](double s) { return 1.0 / (s + b); }, t, 14);
    const double truth = std::exp(-b * t);
    EXPECT_NEAR(r.value, truth, 1e-4) << "b=" << b;
  }
}

TEST(GaverStehfest, InvertsRamp) {
  const double t = 2.0;
  const auto r =
      gaver_stehfest_invert([](double s) { return 1.0 / (s * s); }, t, 14);
  EXPECT_NEAR(r.value, t, 1e-6 * t);
}

TEST(GaverStehfest, AccuracySaturatesInDoublePrecision) {
  // Truncation error shrinks with the order while the alternating weights
  // (~10^{n/2}) amplify round-off: accuracy improves up to order ~16 and
  // then degrades. This is the documented reason the paper's Durbin-family
  // method (stable at eps = 1e-12) is needed instead.
  const double t = 1.0;
  const auto f = [](double s) { return 1.0 / (s + 1.0); };
  const double truth = std::exp(-t);
  const double err10 =
      std::abs(gaver_stehfest_invert(f, t, 10).value - truth);
  const double err16 =
      std::abs(gaver_stehfest_invert(f, t, 16).value - truth);
  const double err20 =
      std::abs(gaver_stehfest_invert(f, t, 20).value - truth);
  EXPECT_LT(err16, err10);        // still truncation-dominated
  EXPECT_LT(err16, 1e-6);         // ~7 digits at best
  EXPECT_GT(err20, 1e-13);        // never reaches the Durbin regime
}

TEST(GaverStehfest, CrossChecksTheClosedFormTransform) {
  // Independent inversion of the Section 2.1 transform must agree with the
  // analytic two-state availability to GS accuracy (~1e-8).
  const auto m = make_two_state(1e-3, 1.0);
  const std::vector<double> rewards = {0.0, 1.0};
  const std::vector<double> alpha = {1.0, 0.0};
  for (const double t : {1.0, 50.0, 2000.0}) {
    const auto schema =
        compute_regenerative_schema(m.chain, rewards, alpha, 0, t, {});
    const TrrTransform transform(schema);
    const auto r = gaver_stehfest_invert(
        [&](double s) {
          return transform.trr(std::complex<double>(s, 0.0)).real();
        },
        t, 14);
    EXPECT_NEAR(r.value, m.unavailability(t),
                5e-5 * m.unavailability(t) + 1e-10)
        << "t=" << t;
  }
}

TEST(GaverStehfest, RejectsInvalidArguments) {
  const auto f = [](double s) { return 1.0 / s; };
  EXPECT_THROW((void)gaver_stehfest_invert(f, 0.0, 14), contract_error);
  EXPECT_THROW((void)gaver_stehfest_invert(f, 1.0, 13), contract_error);
  EXPECT_THROW((void)gaver_stehfest_invert(f, 1.0, 22), contract_error);
  EXPECT_THROW((void)stehfest_weight(0, 14), contract_error);
}

}  // namespace
}  // namespace rrl
